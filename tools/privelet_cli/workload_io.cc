#include "privelet_cli/workload_io.h"

#include <fstream>
#include <string>

#include "privelet/serving/protocol.h"

namespace privelet::cli {

namespace {

Status WorkloadError(const std::string& path, std::size_t line_no,
                     const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                 ": " + what);
}

}  // namespace

// The predicate grammar lives in serving/protocol.cc, shared with the
// daemon's text mode — one grammar, one implementation. (The shared
// parser also rejects signed indices like "-1", which the old
// std::stoull-based parser silently wrapped.)
Result<std::vector<query::RangeQuery>> ReadWorkloadFile(
    const std::string& path, const data::Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<query::RangeQuery> queries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto query = serving::ParseQueryLine(schema, line);
    if (!query.ok()) {
      return WorkloadError(path, line_no, query.status().message());
    }
    queries.push_back(std::move(*query));
  }
  return queries;
}

Status WriteWorkloadFile(const std::string& path, const data::Schema& schema,
                         std::span<const query::RangeQuery> queries) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "# privelet workload (see tools/privelet_cli/workload_io.h)\n";
  for (const query::RangeQuery& q : queries) {
    bool any = false;
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (!q.range(a).has_value()) continue;
      if (any) out << ' ';
      out << schema.attribute(a).name() << '=' << q.range(a)->lo << ':'
          << q.range(a)->hi;
      any = true;
    }
    if (!any) out << '*';
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace privelet::cli
