#include "privelet_cli/workload_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace privelet::cli {

namespace {

Status WorkloadError(const std::string& path, std::size_t line_no,
                     const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                 ": " + what);
}

Result<std::size_t> ParseIndex(const std::string& token) {
  std::size_t value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoull(token, &pos);
  } catch (...) {
    return Status::InvalidArgument("'" + token + "' is not an index");
  }
  if (pos != token.size()) {
    return Status::InvalidArgument("'" + token + "' is not an index");
  }
  return value;
}

Status ApplyPredicate(const data::Schema& schema, const std::string& token,
                      query::RangeQuery* query) {
  const std::size_t eq = token.find('=');
  const std::size_t at = token.find('@');
  if (eq != std::string::npos) {
    const std::string name = token.substr(0, eq);
    const std::string bounds = token.substr(eq + 1);
    const std::size_t colon = bounds.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("'" + token + "': expected name=lo:hi");
    }
    PRIVELET_ASSIGN_OR_RETURN(std::size_t attr, schema.FindAttribute(name));
    PRIVELET_ASSIGN_OR_RETURN(std::size_t lo,
                              ParseIndex(bounds.substr(0, colon)));
    PRIVELET_ASSIGN_OR_RETURN(std::size_t hi,
                              ParseIndex(bounds.substr(colon + 1)));
    return query->SetRange(schema, attr, lo, hi);
  }
  if (at != std::string::npos) {
    const std::string name = token.substr(0, at);
    PRIVELET_ASSIGN_OR_RETURN(std::size_t attr, schema.FindAttribute(name));
    PRIVELET_ASSIGN_OR_RETURN(std::size_t node,
                              ParseIndex(token.substr(at + 1)));
    return query->SetHierarchyNode(schema, attr, node);
  }
  return Status::InvalidArgument("'" + token +
                                 "': expected name=lo:hi or name@node");
}

}  // namespace

Result<std::vector<query::RangeQuery>> ReadWorkloadFile(
    const std::string& path, const data::Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<query::RangeQuery> queries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token)) continue;  // blank / comment-only line

    query::RangeQuery query(schema.num_attributes());
    if (token != "*") {
      do {
        Status st = ApplyPredicate(schema, token, &query);
        if (!st.ok()) {
          return WorkloadError(path, line_no, st.message());
        }
      } while (fields >> token);
    } else if (fields >> token) {
      return WorkloadError(path, line_no, "'*' takes no predicates");
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

Status WriteWorkloadFile(const std::string& path, const data::Schema& schema,
                         std::span<const query::RangeQuery> queries) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "# privelet workload (see tools/privelet_cli/workload_io.h)\n";
  for (const query::RangeQuery& q : queries) {
    bool any = false;
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (!q.range(a).has_value()) continue;
      if (any) out << ' ';
      out << schema.attribute(a).name() << '=' << q.range(a)->lo << ':'
          << q.range(a)->hi;
      any = true;
    }
    if (!any) out << '*';
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace privelet::cli
