// privelet_cli — the operational entry point of the library: publish a
// differentially-private release once, persist it as a PVLS snapshot,
// then serve range-count workloads from the snapshot without ever
// re-publishing (the paper's publish-once / query-forever model,
// conf_icde_XiaoWG10). See docs/ARCHITECTURE.md for the dataflow and the
// README quickstart for a three-command tour.
//
//   privelet_cli gen      synthetic/census table -> CSV + schema spec
//   privelet_cli plan     schema + workload -> ranked mechanism choice
//   privelet_cli publish  CSV or generated table -> snapshot (.pvls)
//   privelet_cli inspect  snapshot -> metadata summary (validates CRC)
//   privelet_cli query    snapshot + workload -> one answer per line
//   privelet_cli serve    multi-release batch front end over a ReleaseStore
//   privelet_cli daemon   TCP serving daemon over a ReleaseStore
//   privelet_cli client   line client for the daemon's text protocol
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "privelet/analysis/mechanism_planner.h"
#include "privelet/common/result.h"
#include "privelet/common/stopwatch.h"
#include "privelet/common/thread_pool.h"
#include "privelet/data/census_generator.h"
#include "privelet/data/csv.h"
#include "privelet/data/synthetic_generator.h"
#include "privelet/data/table.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/hay.h"
#include "privelet/mechanism/mechanism.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/common/io_util.h"
#include "privelet/query/plan_record.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/release_store.h"
#include "privelet/query/workload.h"
#include "privelet/serving/server.h"
#include "privelet/simd/dispatch.h"
#include "privelet/storage/session_io.h"
#include "privelet/storage/snapshot.h"
#include "privelet_cli/schema_spec.h"
#include "privelet_cli/workload_io.h"

namespace privelet::cli {
namespace {

constexpr const char kUsage[] = R"(privelet_cli — publish, persist, and serve DP range-count releases

usage:
  privelet_cli gen     (--synthetic M | --census brazil|us) [--tuples N]
                       [--data-seed S] --csv-out FILE --schema-out FILE
  privelet_cli plan    --schema FILE (--workload FILE | --random N
                       [--workload-seed S]) [--epsilon E]
  privelet_cli publish (--csv FILE --schema FILE | --synthetic M | --census
                       brazil|us) [--tuples N] [--data-seed S]
                       [--mechanism basic|privelet|privelet+|hay] [--sa A,B]
                       [--auto-plan (--workload FILE | --random N
                       [--workload-seed S])]
                       [--epsilon E] [--seed S] [--threads N]
                       [--engine tiled|naive] [--tile-lines B] [--no-table]
                       [--max-memory BYTES[K|M|G]] [--scratch-dir DIR]
                       --output FILE.pvls
  privelet_cli inspect FILE.pvls
  privelet_cli query   FILE.pvls (--workload FILE | --random N
                       [--workload-seed S] [--dump-workload FILE])
                       [--threads N] [--output FILE]
  privelet_cli serve   ID=FILE.pvls [ID=FILE.pvls ...] [--threads N]
                       [--max-resident K] [--requests FILE] [--output FILE]
  privelet_cli daemon  ID=FILE.pvls [ID=FILE.pvls ...] [--host H] [--port P]
                       [--port-file FILE] [--threads N] [--loops N]
                       [--backlog K] [--max-resident K]
                       [--max-connections K] [--max-pipeline K]
  privelet_cli client  --port P [--host H] [--requests FILE]
                       [--connections N]

serve reads one request per line — `<release-id> <workload-file>` — from
stdin (or --requests), lazily memory-maps the named release, and answers
the workload in one pooled batch: `ok <n>` then n answers, or
`error: <message>`. --max-resident K keeps at most K releases resident
(LRU).

daemon serves the same releases over TCP (text + binary protocol, see
src/privelet/serving/protocol.h): verbs QUERY/BATCH/RELOAD/STATS/IDS/
PING/QUIT, one `ok <n>`-or-`error:` response per request. --port 0 (the
default) binds an ephemeral port; the bound port is printed as
`listening on H:P` and written to --port-file when given. --loops N runs
N sharded event loops (0, the default, means one per hardware thread; 1
reproduces the single-loop daemon). SIGINT/SIGTERM shut the daemon down
cleanly. client connects to a daemon, forwards stdin (or --requests)
lines, and prints each response; --connections N spreads the requests
round-robin over N connections (responses stay in request order).

plan scores every applicable mechanism against a representative workload
by exact expected per-query noise variance — a closed-form, data-free
computation that costs no privacy budget — and prints the ranking plus
the chosen (cheapest publishable) candidate. publish --auto-plan runs
the same planner, publishes under the winner, and records the decision
in the snapshot (PVLS v3; inspect prints it, the daemon's STATS reports
it). Plan-less publishes keep writing byte-identical v2 files.

--max-memory B publishes out of core: panels are staged through unlinked
mmap scratch files (--scratch-dir, default $TMPDIR) and streamed into the
snapshot so peak memory is paced by B instead of the release size. The
snapshot bytes are identical to an in-core publish of the same release.

defaults: --tuples 100000, --data-seed 42, --mechanism privelet,
          --epsilon 1.0, --seed 7, --threads <hardware> (0 = serial),
          --engine tiled, --workload-seed 7, --max-resident 0 (unbounded),
          --max-memory 0 (in-core), --output - (stdout for query/serve)
)";

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& dflt) const {
    auto it = flags.find(name);
    return it == flags.end() ? dflt : it->second;
  }
};

// Flags that never take a value.
const std::set<std::string>& BooleanFlags() {
  static const std::set<std::string> kBooleans = {"help", "no-table",
                                                  "auto-plan"};
  return kBooleans;
}

Result<Args> ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      args.flags[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    if (BooleanFlags().count(token) > 0) {
      args.flags[token] = "true";
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + token + " needs a value");
    }
    args.flags[token] = argv[++i];
  }
  return args;
}

// Flags are how the operator states the privacy parameters, so a typo'd
// flag must never fall back to a default silently — every subcommand
// declares its flag set and anything else is an error.
Status RejectUnknownFlags(const Args& args,
                          const std::set<std::string>& allowed) {
  for (const auto& [name, value] : args.flags) {
    if (name != "help" && allowed.count(name) == 0) {
      return Status::InvalidArgument("unknown flag --" + name +
                                     " (see privelet_cli help)");
    }
  }
  return Status::OK();
}

// Strictly digits: std::stoull alone would silently accept (and wrap)
// signed input like "-1", and counts/seeds are exact operator inputs —
// a garbled value must never reach the mechanism.
Result<std::size_t> ParseCountToken(const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("'" + text + "' is not a count");
  }
  std::size_t value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (...) {
    pos = std::string::npos;
  }
  if (pos != text.size()) {
    return Status::InvalidArgument("'" + text + "' is not a count");
  }
  return value;
}

Result<std::size_t> GetCount(const Args& args, const std::string& name,
                             std::size_t dflt) {
  if (!args.Has(name)) return dflt;
  auto value = ParseCountToken(args.Get(name, ""));
  if (!value.ok()) {
    return Status::InvalidArgument("--" + name + ": " +
                                   value.status().message());
  }
  return value;
}

Result<double> GetDouble(const Args& args, const std::string& name,
                         double dflt) {
  if (!args.Has(name)) return dflt;
  const std::string text = args.Get(name, "");
  double value = 0.0;
  std::size_t pos = 0;
  try {
    value = std::stod(text, &pos);
  } catch (...) {
    pos = std::string::npos;
  }
  if (pos != text.size()) {
    return Status::InvalidArgument("--" + name + ": '" + text +
                                   "' is not a number");
  }
  return value;
}

// "64M"-style byte sizes for --max-memory: strict digits with an
// optional K/M/G binary suffix (case-insensitive).
Result<std::size_t> GetByteSize(const Args& args, const std::string& name,
                                std::size_t dflt) {
  if (!args.Has(name)) return dflt;
  std::string text = args.Get(name, "");
  std::size_t multiplier = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'K': case 'k': multiplier = std::size_t{1} << 10; break;
      case 'M': case 'm': multiplier = std::size_t{1} << 20; break;
      case 'G': case 'g': multiplier = std::size_t{1} << 30; break;
      default: break;
    }
    if (multiplier != 1) text.pop_back();
  }
  const Status bad = Status::InvalidArgument(
      "--" + name + ": '" + args.Get(name, "") +
      "' is not a byte size (digits with optional K/M/G suffix)");
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return bad;
  }
  std::size_t value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (...) {
    pos = std::string::npos;
  }
  if (pos != text.size()) return bad;
  if (value > std::numeric_limits<std::size_t>::max() / multiplier) {
    return Status::InvalidArgument("--" + name + ": byte size overflows");
  }
  return value * multiplier;
}

Result<matrix::EngineOptions> GetEngineOptions(const Args& args) {
  matrix::EngineOptions options;
  const std::string engine = args.Get("engine", "tiled");
  if (engine == "naive") {
    options.engine = matrix::LineEngine::kNaive;
  } else if (engine != "tiled") {
    return Status::InvalidArgument("--engine must be tiled or naive");
  }
  PRIVELET_ASSIGN_OR_RETURN(
      options.tile_lines,
      GetCount(args, "tile-lines", matrix::kDefaultTileLines));
  if (options.tile_lines == 0) {
    return Status::InvalidArgument("--tile-lines must be >= 1");
  }
  PRIVELET_ASSIGN_OR_RETURN(options.max_memory_bytes,
                            GetByteSize(args, "max-memory", 0));
  options.scratch_dir = args.Get("scratch-dir", "");
  if (!options.out_of_core() && !options.scratch_dir.empty()) {
    return Status::InvalidArgument("--scratch-dir requires --max-memory");
  }
  return options;
}

// nullptr (serial) when --threads 0.
Result<std::unique_ptr<common::ThreadPool>> GetPool(const Args& args) {
  PRIVELET_ASSIGN_OR_RETURN(
      std::size_t threads,
      GetCount(args, "threads", common::ThreadPool::DefaultThreadCount()));
  if (threads == 0) return std::unique_ptr<common::ThreadPool>();
  return std::make_unique<common::ThreadPool>(threads);
}

Result<std::unique_ptr<mechanism::Mechanism>> MakeMechanism(const Args& args) {
  const std::string name = args.Get("mechanism", "privelet");
  if (name == "basic") {
    return std::unique_ptr<mechanism::Mechanism>(
        std::make_unique<mechanism::BasicMechanism>());
  }
  if (name == "hay") {
    return std::unique_ptr<mechanism::Mechanism>(
        std::make_unique<mechanism::HayHierarchicalMechanism>());
  }
  if (name == "privelet" || name == "privelet+") {
    std::vector<std::string> sa;
    const std::string sa_csv = args.Get("sa", "");
    for (std::size_t begin = 0; begin < sa_csv.size();) {
      const std::size_t comma = sa_csv.find(',', begin);
      const std::size_t end = comma == std::string::npos ? sa_csv.size() : comma;
      if (end > begin) sa.push_back(sa_csv.substr(begin, end - begin));
      begin = end + 1;
    }
    if (name == "privelet+" && sa.empty()) {
      return Status::InvalidArgument(
          "--mechanism privelet+ needs --sa with at least one attribute");
    }
    if (name == "privelet" && !sa.empty()) {
      return Status::InvalidArgument("--sa requires --mechanism privelet+");
    }
    return std::unique_ptr<mechanism::Mechanism>(
        std::make_unique<mechanism::PriveletPlusMechanism>(std::move(sa)));
  }
  return Status::InvalidArgument("unknown mechanism '" + name +
                                 "' (basic|privelet|privelet+|hay)");
}

// Shared by gen and publish: materializes the input table from --csv,
// --synthetic, or --census.
Result<data::Table> MakeInputTable(const Args& args) {
  const int sources = static_cast<int>(args.Has("csv")) +
                      static_cast<int>(args.Has("synthetic")) +
                      static_cast<int>(args.Has("census"));
  if (sources != 1) {
    return Status::InvalidArgument(
        "exactly one input source required: --csv, --synthetic, or --census");
  }
  PRIVELET_ASSIGN_OR_RETURN(std::size_t tuples,
                            GetCount(args, "tuples", 100'000));
  PRIVELET_ASSIGN_OR_RETURN(std::size_t data_seed,
                            GetCount(args, "data-seed", 42));
  if (args.Has("csv")) {
    if (!args.Has("schema")) {
      return Status::InvalidArgument("--csv needs --schema FILE");
    }
    PRIVELET_ASSIGN_OR_RETURN(data::Schema schema,
                              ReadSchemaSpecFile(args.Get("schema", "")));
    return data::ReadCsv(args.Get("csv", ""), schema);
  }
  if (args.Has("synthetic")) {
    PRIVELET_ASSIGN_OR_RETURN(std::size_t domain,
                              GetCount(args, "synthetic", 0));
    PRIVELET_ASSIGN_OR_RETURN(data::Schema schema,
                              data::MakeScalabilitySchema(domain));
    return data::GenerateUniformTable(schema, tuples, data_seed);
  }
  const std::string country = args.Get("census", "");
  data::CensusConfig config = data::DefaultCensusConfig(
      country == "us" ? data::CensusCountry::kUS
                      : data::CensusCountry::kBrazil);
  if (country != "us" && country != "brazil") {
    return Status::InvalidArgument("--census must be brazil or us");
  }
  config.num_tuples = tuples;
  config.seed = data_seed;
  return data::GenerateCensus(config);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "privelet_cli: %s\n", status.ToString().c_str());
  return 2;
}

// The planning workload (shared by plan and publish --auto-plan): either
// a workload file validated against the schema or a deterministic
// generated one — exactly the query sources `query` accepts.
Result<std::vector<query::RangeQuery>> MakePlanningWorkload(
    const Args& args, const data::Schema& schema) {
  if (args.Has("workload") == args.Has("random")) {
    return Status::InvalidArgument(
        "planning needs exactly one of --workload FILE or --random N");
  }
  if (args.Has("workload")) {
    return ReadWorkloadFile(args.Get("workload", ""), schema);
  }
  query::WorkloadOptions options;
  PRIVELET_ASSIGN_OR_RETURN(options.num_queries, GetCount(args, "random", 0));
  PRIVELET_ASSIGN_OR_RETURN(options.seed, GetCount(args, "workload-seed", 7));
  if (options.num_queries == 0) {
    return Status::InvalidArgument("--random must be >= 1");
  }
  return query::GenerateWorkload(schema, options);
}

// The mechanism behind a planner candidate id. Only publishable
// candidates reach this (the planner never chooses rank-only ones), and
// every publishable id maps onto the mechanisms the publish pipeline
// already supports.
std::unique_ptr<mechanism::Mechanism> MechanismForCandidate(
    const analysis::MechanismCandidate& candidate) {
  if (candidate.id == "basic") {
    return std::make_unique<mechanism::BasicMechanism>();
  }
  if (candidate.id == "hay") {
    return std::make_unique<mechanism::HayHierarchicalMechanism>();
  }
  return std::make_unique<mechanism::PriveletPlusMechanism>(
      candidate.sa_names);
}

// %.17g everywhere: plan output is diffed by the e2e test, and exact
// round-tripping makes predicted variances comparable across runs.
void PrintPlan(std::FILE* out, const analysis::MechanismPlan& plan) {
  for (std::size_t i = 0; i < plan.ranked.size(); ++i) {
    const analysis::MechanismCandidate& c = plan.ranked[i];
    std::fprintf(out, "rank %zu: %s expected_variance=%.17g%s\n", i + 1,
                 c.id.c_str(), c.expected_variance,
                 c.publishable ? "" : " (rank-only)");
  }
  std::fprintf(out, "chosen: %s predicted_variance=%.17g over %zu queries\n",
               plan.chosen.id.c_str(), plan.chosen.expected_variance,
               plan.workload_queries);
}

// ID=FILE.pvls release specs (shared by serve and daemon).
Status RegisterReleases(const std::vector<std::string>& specs,
                        query::ReleaseStore* store) {
  for (const std::string& spec : specs) {
    const std::size_t eq = spec.find('=');
    if (eq == 0 || eq == std::string::npos || eq + 1 == spec.size()) {
      return Status::InvalidArgument("release spec '" + spec +
                                     "' is not ID=FILE.pvls");
    }
    PRIVELET_RETURN_IF_ERROR(
        store->Register(spec.substr(0, eq), spec.substr(eq + 1)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

int RunGen(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"synthetic", "census", "tuples", "data-seed", "csv-out",
             "schema-out", "csv"});
  if (!flags.ok()) return Fail(flags);
  if (!args.Has("csv-out") || !args.Has("schema-out")) {
    return Fail(Status::InvalidArgument(
        "gen needs --csv-out FILE and --schema-out FILE"));
  }
  if (args.Has("csv")) {
    return Fail(Status::InvalidArgument(
        "gen generates data; --csv is a publish input (use --csv-out)"));
  }
  auto table = MakeInputTable(args);
  if (!table.ok()) return Fail(table.status());
  const std::string csv_path = args.Get("csv-out", "");
  Status st = data::WriteCsv(csv_path, *table);
  if (!st.ok()) return Fail(st);
  st = WriteSchemaSpecFile(args.Get("schema-out", ""), table->schema());
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu rows x %zu attributes to %s (schema spec: %s)\n",
              table->num_rows(), table->num_columns(), csv_path.c_str(),
              args.Get("schema-out", "").c_str());
  return 0;
}

// plan: the decision procedure without a publish — schema in, ranking
// out. Data-free by construction (the variance models are closed-form),
// so it takes a schema spec, never a table.
int RunPlan(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"schema", "workload", "random", "workload-seed", "epsilon"});
  if (!flags.ok()) return Fail(flags);
  if (!args.Has("schema")) {
    return Fail(Status::InvalidArgument("plan needs --schema FILE"));
  }
  auto schema = ReadSchemaSpecFile(args.Get("schema", ""));
  if (!schema.ok()) return Fail(schema.status());
  auto epsilon = GetDouble(args, "epsilon", 1.0);
  if (!epsilon.ok()) return Fail(epsilon.status());
  if (!std::isfinite(*epsilon) || *epsilon <= 0.0) {
    return Fail(Status::InvalidArgument(
        "--epsilon must be a finite value > 0 (got '" +
        args.Get("epsilon", "1.0") + "')"));
  }
  auto workload = MakePlanningWorkload(args, *schema);
  if (!workload.ok()) return Fail(workload.status());
  auto plan =
      analysis::PlanMechanismForWorkload(*schema, *workload, *epsilon);
  if (!plan.ok()) return Fail(plan.status());
  PrintPlan(stdout, *plan);
  return 0;
}

int RunPublish(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"csv", "schema", "synthetic", "census", "tuples", "data-seed",
             "mechanism", "sa", "epsilon", "seed", "threads", "engine",
             "tile-lines", "no-table", "max-memory", "scratch-dir", "output",
             "auto-plan", "workload", "random", "workload-seed"});
  if (!flags.ok()) return Fail(flags);
  if (!args.Has("output")) {
    return Fail(Status::InvalidArgument("publish needs --output FILE.pvls"));
  }
  const bool auto_plan = args.Has("auto-plan");
  if (!auto_plan &&
      (args.Has("workload") || args.Has("random") ||
       args.Has("workload-seed"))) {
    return Fail(Status::InvalidArgument(
        "--workload/--random/--workload-seed are planning inputs and "
        "require --auto-plan"));
  }
  if (auto_plan && (args.Has("mechanism") || args.Has("sa"))) {
    return Fail(Status::InvalidArgument(
        "--auto-plan picks the mechanism; it cannot be combined with "
        "--mechanism or --sa"));
  }
  auto table = MakeInputTable(args);
  if (!table.ok()) return Fail(table.status());
  auto mech = MakeMechanism(args);
  if (!mech.ok()) return Fail(mech.status());
  auto epsilon = GetDouble(args, "epsilon", 1.0);
  if (!epsilon.ok()) return Fail(epsilon.status());
  // The privacy guarantee is meaningless (and the Laplace scale ill-
  // defined) outside (0, inf); reject before anything reaches the
  // mechanism. std::stod parses "nan"/"inf", so finiteness is checked
  // explicitly.
  if (!std::isfinite(*epsilon) || *epsilon <= 0.0) {
    return Fail(Status::InvalidArgument(
        "--epsilon must be a finite value > 0 (got '" +
        args.Get("epsilon", "1.0") + "')"));
  }
  auto seed = GetCount(args, "seed", 7);
  if (!seed.ok()) return Fail(seed.status());
  auto options = GetEngineOptions(args);
  if (!options.ok()) return Fail(options.status());
  auto pool = GetPool(args);
  if (!pool.ok()) return Fail(pool.status());

  // --auto-plan: score every applicable mechanism on the planning
  // workload and publish under the winner; the decision rides into the
  // snapshot (PVLS v3) as provenance.
  std::optional<analysis::MechanismPlan> plan;
  std::optional<query::PlanRecord> plan_record;
  if (auto_plan) {
    auto workload = MakePlanningWorkload(args, table->schema());
    if (!workload.ok()) return Fail(workload.status());
    auto planned = analysis::PlanMechanismForWorkload(table->schema(),
                                                      *workload, *epsilon);
    if (!planned.ok()) return Fail(planned.status());
    plan = std::move(*planned);
    plan_record = plan->ToRecord();
    *mech = MechanismForCandidate(plan->chosen);
  }

  const bool streamed = options->out_of_core();
  if (streamed && args.Has("no-table")) {
    return Fail(Status::InvalidArgument(
        "--no-table cannot be combined with --max-memory (the streamed "
        "publish always persists the serving table)"));
  }

  const matrix::FrequencyMatrix m = matrix::FrequencyMatrix::FromTable(*table);
  (*mech)->set_thread_pool(pool->get());
  (*mech)->set_engine_options(*options);

  const std::string output = args.Get("output", "");
  Stopwatch publish_watch;
  double publish_seconds = 0.0;
  double save_seconds = 0.0;
  if (streamed) {
    // One fused pass: the publish streams panels into the snapshot as
    // they materialize; there is no separate whole-release save step.
    auto session = storage::PublishToFile(
        output, table->schema(), **mech, m, *epsilon, *seed, pool->get(),
        *options, plan_record.has_value() ? &*plan_record : nullptr);
    if (!session.ok()) return Fail(session.status());
    publish_seconds = publish_watch.ElapsedSeconds();
  } else {
    auto session = query::PublishingSession::Publish(
        table->schema(), **mech, m, *epsilon, *seed, pool->get(), *options);
    if (!session.ok()) return Fail(session.status());
    if (plan_record.has_value()) session->set_plan(*plan_record);
    publish_seconds = publish_watch.ElapsedSeconds();

    Stopwatch save_watch;
    Status st;
    if (args.Has("no-table")) {
      storage::ReleaseSnapshotView view;
      view.schema = &session->schema();
      view.mechanism = session->metadata().mechanism;
      view.epsilon = session->metadata().epsilon;
      view.seed = session->metadata().seed;
      view.engine_options = session->engine_options();
      view.published = &session->published();
      view.plan = plan_record.has_value() ? &*plan_record : nullptr;
      st = storage::WriteSnapshot(output, view);
    } else {
      st = storage::SaveSession(output, *session);
    }
    if (!st.ok()) return Fail(st);
    save_seconds = save_watch.ElapsedSeconds();
  }

  std::error_code ec;
  const std::uintmax_t bytes = std::filesystem::file_size(output, ec);
  std::printf(
      "published %s: n=%zu tuples, m=%zu cells, epsilon=%g, seed=%zu\n"
      "snapshot %s: %ju bytes%s (publish %.3fs, save %.3fs)\n",
      std::string((*mech)->name()).c_str(), table->num_rows(), m.size(),
      *epsilon, static_cast<std::size_t>(*seed), output.c_str(),
      ec ? static_cast<std::uintmax_t>(0) : bytes,
      args.Has("no-table") ? " (no prefix table)" : "", publish_seconds,
      save_seconds);
  if (streamed) {
    std::printf("publish mode: streamed (max-memory %zu bytes)\n",
                options->max_memory_bytes);
  } else {
    std::printf("publish mode: in-core\n");
  }
  std::printf("kernels:      %s dispatch (host best %s)\n",
              std::string(simd::IsaLevelName(simd::ResolveIsa())).c_str(),
              std::string(simd::IsaLevelName(simd::DetectBestIsa())).c_str());
  if (plan.has_value()) PrintPlan(stdout, *plan);
  return 0;
}

int RunInspect(const Args& args) {
  Status flags = RejectUnknownFlags(args, {});
  if (!flags.ok()) return Fail(flags);
  if (args.positional.size() != 1) {
    return Fail(Status::InvalidArgument("inspect takes one snapshot path"));
  }
  auto info = storage::InspectSnapshot(args.positional[0]);
  if (!info.ok()) return Fail(info.status());
  std::printf("snapshot:     %s (%ju bytes, PVLS v%u, CRC OK)\n",
              args.positional[0].c_str(),
              static_cast<std::uintmax_t>(info->file_bytes),
              static_cast<unsigned>(info->version));
  std::printf("mechanism:    %s\n", info->mechanism.empty()
                                        ? "(unknown)"
                                        : info->mechanism.c_str());
  std::printf("epsilon:      %g\n", info->epsilon);
  std::printf("seed:         %llu\n",
              static_cast<unsigned long long>(info->seed));
  std::printf("engine:       %s, tile_lines=%zu\n",
              info->engine_options.engine == matrix::LineEngine::kTiled
                  ? "tiled"
                  : "naive",
              info->engine_options.tile_lines);
  std::printf("prefix table: %s\n", info->has_prefix_table ? "yes" : "no");
  std::printf("cells:        %zu\n", info->num_cells);
  std::printf("values:       offset %ju, %ju bytes\n",
              static_cast<std::uintmax_t>(info->values_offset),
              static_cast<std::uintmax_t>(info->values_bytes));
  if (info->has_prefix_table) {
    std::printf("table:        offset %ju, %ju bytes\n",
                static_cast<std::uintmax_t>(info->table_offset),
                static_cast<std::uintmax_t>(info->table_bytes));
  }
  // Streamed (out-of-core) and in-core publishes of the same release
  // produce byte-identical snapshots, so the file cannot (and need not)
  // record which path wrote it — only the publishing process knows.
  std::printf(
      "publish mode: not recorded (streamed and in-core snapshots are "
      "byte-identical)\n");
  if (info->plan.has_value()) {
    const query::PlanRecord& plan = *info->plan;
    std::printf("plan chosen:  %s predicted_variance=%.17g\n",
                plan.chosen.c_str(), plan.predicted_variance);
    std::printf("plan against: %s runner_up_variance=%.17g\n",
                plan.runner_up.empty() ? "-" : plan.runner_up.c_str(),
                plan.runner_up_variance);
    std::printf("plan queries: %lu\n",
                static_cast<unsigned long>(plan.workload_queries));
  } else {
    std::printf("plan:         none (published without --auto-plan)\n");
  }
  for (std::size_t a = 0; a < info->schema.num_attributes(); ++a) {
    const data::Attribute& attr = info->schema.attribute(a);
    if (attr.is_ordinal()) {
      std::printf("attribute:    %s ordinal |A|=%zu\n", attr.name().c_str(),
                  attr.domain_size());
    } else {
      std::printf("attribute:    %s nominal |A|=%zu height=%zu\n",
                  attr.name().c_str(), attr.domain_size(),
                  attr.hierarchy().height());
    }
  }
  return 0;
}

int RunQuery(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"workload", "random", "workload-seed", "dump-workload",
             "threads", "output"});
  if (!flags.ok()) return Fail(flags);
  if (args.positional.size() != 1) {
    return Fail(Status::InvalidArgument("query takes one snapshot path"));
  }
  if (args.Has("workload") == args.Has("random")) {
    return Fail(Status::InvalidArgument(
        "query needs exactly one of --workload FILE or --random N"));
  }
  auto pool = GetPool(args);
  if (!pool.ok()) return Fail(pool.status());

  Stopwatch load_watch;
  auto session = storage::LoadSession(args.positional[0], pool->get());
  if (!session.ok()) return Fail(session.status());
  const double load_seconds = load_watch.ElapsedSeconds();

  std::vector<query::RangeQuery> queries;
  if (args.Has("workload")) {
    auto parsed = ReadWorkloadFile(args.Get("workload", ""),
                                   session->schema());
    if (!parsed.ok()) return Fail(parsed.status());
    queries = std::move(*parsed);
  } else {
    query::WorkloadOptions options;
    auto count = GetCount(args, "random", 0);
    if (!count.ok()) return Fail(count.status());
    auto wseed = GetCount(args, "workload-seed", 7);
    if (!wseed.ok()) return Fail(wseed.status());
    options.num_queries = *count;
    options.seed = *wseed;
    auto generated = query::GenerateWorkload(session->schema(), options);
    if (!generated.ok()) return Fail(generated.status());
    queries = std::move(*generated);
    if (args.Has("dump-workload")) {
      Status st = WriteWorkloadFile(args.Get("dump-workload", ""),
                                    session->schema(), queries);
      if (!st.ok()) return Fail(st);
    }
  }

  Stopwatch answer_watch;
  const std::vector<double> answers = session->AnswerAll(queries);
  const double answer_seconds = answer_watch.ElapsedSeconds();

  const std::string output = args.Get("output", "-");
  std::FILE* out = stdout;
  if (output != "-") {
    out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IOError("cannot open '" + output + "' for writing"));
    }
  }
  // %.17g round-trips doubles exactly, so identical releases print
  // identical answer files (the CLI e2e test diffs them).
  bool write_ok = true;
  for (const double a : answers) {
    write_ok = std::fprintf(out, "%.17g\n", a) > 0 && write_ok;
  }
  write_ok = write_ok && std::ferror(out) == 0;
  if (out != stdout) {
    write_ok = std::fclose(out) == 0 && write_ok;
  } else {
    write_ok = std::fflush(out) == 0 && write_ok;
  }
  if (!write_ok) {
    return Fail(Status::IOError("writing answers to '" + output + "' failed"));
  }

  std::fprintf(stderr, "answered %zu queries in %.3fs (load %.3fs)\n",
               answers.size(), answer_seconds, load_seconds);
  return 0;
}

// Batch serving front end over query::ReleaseStore: releases are named
// on the command line as ID=FILE.pvls pairs, requests arrive one per
// line as `<release-id> <workload-file>`, and each workload is answered
// in one pooled AnswerAll against the (lazily memory-mapped, LRU-bounded)
// release. Request failures are reported inline and do not stop the loop
// — a long-running front end must survive a bad request.
int RunServe(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"threads", "max-resident", "requests", "output"});
  if (!flags.ok()) return Fail(flags);
  if (args.positional.empty()) {
    return Fail(Status::InvalidArgument(
        "serve needs at least one ID=FILE.pvls release"));
  }
  auto pool = GetPool(args);
  if (!pool.ok()) return Fail(pool.status());
  auto max_resident = GetCount(args, "max-resident", 0);
  if (!max_resident.ok()) return Fail(max_resident.status());

  query::ReleaseStore::Options store_options;
  store_options.max_resident = *max_resident;
  store_options.pool = pool->get();
  query::ReleaseStore store(store_options);
  Status registered = RegisterReleases(args.positional, &store);
  if (!registered.ok()) return Fail(registered);

  std::ifstream request_file;
  std::istream* in = &std::cin;
  if (args.Has("requests")) {
    request_file.open(args.Get("requests", ""));
    if (!request_file) {
      return Fail(Status::IOError("cannot open requests file '" +
                                  args.Get("requests", "") + "'"));
    }
    in = &request_file;
  }
  const std::string output = args.Get("output", "-");
  std::FILE* out = stdout;
  if (output != "-") {
    out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IOError("cannot open '" + output + "' for writing"));
    }
  }

  Stopwatch serve_watch;
  std::size_t requests = 0, failures = 0, total_queries = 0;
  std::string line;
  while (std::getline(*in, line)) {
    // Requests may come from CRLF sources (nc -C, Windows-edited files).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++requests;
    std::istringstream fields(line);
    std::string id, workload_path, extra;
    const bool parsed =
        static_cast<bool>(fields >> id >> workload_path) && !(fields >> extra);
    const auto respond_error = [&](const Status& status) {
      ++failures;
      std::fprintf(out, "error: %s\n", status.ToString().c_str());
    };
    if (!parsed) {
      respond_error(Status::InvalidArgument(
          "request must be `<release-id> <workload-file>`"));
    } else {
      auto session = store.Acquire(id);
      if (!session.ok()) {
        respond_error(session.status());
      } else {
        auto queries = ReadWorkloadFile(workload_path, (*session)->schema());
        if (!queries.ok()) {
          respond_error(queries.status());
        } else {
          const std::vector<double> answers = (*session)->AnswerAll(*queries);
          total_queries += answers.size();
          std::fprintf(out, "ok %zu\n", answers.size());
          // %.17g round-trips doubles exactly (same contract as query).
          for (const double a : answers) std::fprintf(out, "%.17g\n", a);
        }
      }
    }
    // A batch front end is consumed by another process: every response
    // must be visible as soon as it is complete.
    if (std::fflush(out) != 0 || std::ferror(out) != 0) {
      if (out != stdout) std::fclose(out);
      return Fail(Status::IOError("writing answers to '" + output +
                                  "' failed"));
    }
  }
  const double seconds = serve_watch.ElapsedSeconds();
  if (out != stdout && std::fclose(out) != 0) {
    return Fail(Status::IOError("writing answers to '" + output + "' failed"));
  }

  const query::ReleaseStore::Stats stats = store.stats();
  std::fprintf(stderr,
               "served %zu requests (%zu failed), %zu queries in %.3fs "
               "(%.0f queries/s); %llu loads, %llu hits, %llu evictions\n",
               requests, failures, total_queries, seconds,
               seconds > 0 ? static_cast<double>(total_queries) / seconds : 0.0,
               static_cast<unsigned long long>(stats.loads),
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.evictions));
  return 0;
}

// ---------------------------------------------------------------------------
// daemon: the epoll TCP server (src/privelet/serving/server.h) over the
// same ID=FILE.pvls catalog as serve. Shutdown() is async-signal-safe,
// so SIGINT/SIGTERM handlers call it directly.

serving::Server* g_daemon = nullptr;

extern "C" void HandleShutdownSignal(int) {
  if (g_daemon != nullptr) g_daemon->Shutdown();
}

int RunDaemon(const Args& args) {
  Status flags = RejectUnknownFlags(
      args, {"host", "port", "port-file", "threads", "loops", "backlog",
             "max-resident", "max-connections", "max-pipeline"});
  if (!flags.ok()) return Fail(flags);
  if (args.positional.empty()) {
    return Fail(Status::InvalidArgument(
        "daemon needs at least one ID=FILE.pvls release"));
  }
  auto pool = GetPool(args);
  if (!pool.ok()) return Fail(pool.status());
  auto max_resident = GetCount(args, "max-resident", 0);
  if (!max_resident.ok()) return Fail(max_resident.status());
  auto port = GetCount(args, "port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port > 65535) {
    return Fail(Status::InvalidArgument("--port must be <= 65535"));
  }

  query::ReleaseStore::Options store_options;
  store_options.max_resident = *max_resident;
  store_options.pool = pool->get();
  query::ReleaseStore store(store_options);
  Status registered = RegisterReleases(args.positional, &store);
  if (!registered.ok()) return Fail(registered);

  serving::ServerOptions options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(*port);
  auto max_connections = GetCount(args, "max-connections",
                                  options.max_connections);
  if (!max_connections.ok()) return Fail(max_connections.status());
  options.max_connections = *max_connections;
  auto max_pipeline = GetCount(args, "max-pipeline", options.max_pipeline);
  if (!max_pipeline.ok()) return Fail(max_pipeline.status());
  if (*max_pipeline == 0) {
    return Fail(Status::InvalidArgument("--max-pipeline must be >= 1"));
  }
  options.max_pipeline = *max_pipeline;
  auto loops = GetCount(args, "loops", options.num_loops);
  if (!loops.ok()) return Fail(loops.status());
  options.num_loops = *loops;  // 0 = one per hardware thread
  auto backlog = GetCount(args, "backlog",
                          static_cast<std::uint64_t>(options.backlog));
  if (!backlog.ok()) return Fail(backlog.status());
  if (*backlog == 0 || *backlog > 65535) {
    return Fail(Status::InvalidArgument("--backlog must be in [1, 65535]"));
  }
  options.backlog = static_cast<int>(*backlog);

  serving::Server server(&store, options);
  Status st = server.Start();
  if (!st.ok()) return Fail(st);

  if (args.Has("port-file")) {
    std::ofstream port_file(args.Get("port-file", ""));
    port_file << server.port() << '\n';
    port_file.flush();
    if (!port_file) {
      return Fail(Status::IOError("cannot write --port-file '" +
                                  args.Get("port-file", "") + "'"));
    }
  }
  // Parseable readiness line: tests and scripts wait for it.
  std::printf("listening on %s:%u (%u loops)\n", options.host.c_str(),
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(server.num_loops()));
  std::fflush(stdout);

  g_daemon = &server;
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  st = server.Run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_daemon = nullptr;
  if (!st.ok()) return Fail(st);

  const serving::ServerStats stats = server.stats();
  const query::ReleaseStore::Stats store_stats = store.stats();
  std::fprintf(
      stderr,
      "daemon: %llu connections (%llu dropped), %llu requests "
      "(%llu failed), %llu queries, %llu reloads; %llu loads, %llu hits, "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_dropped),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.failures),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.reloads),
      static_cast<unsigned long long>(store_stats.loads),
      static_cast<unsigned long long>(store_stats.hits),
      static_cast<unsigned long long>(store_stats.evictions));
  return 0;
}

// ---------------------------------------------------------------------------
// client: a blocking line client for the daemon's text protocol —
// `scripts | privelet_cli client --port P` drives a daemon without
// depending on nc/socat being installed.

#if defined(__linux__)

// Reads one '\n'-terminated line from `fd` through `buffer`. Returns
// false on EOF before any byte of a line.
Result<bool> ReadSocketLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return Status::IOError("recv failed: " + common::ErrnoMessage());
    }
    if (n == 0) {
      if (!buffer->empty()) {
        return Status::IOError("connection closed mid-line");
      }
      return false;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n;
    do {
      n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      // EPIPE here means the daemon closed on us — an ordinary failure,
      // not a crash (SIGPIPE is ignored process-wide in main()).
      return Status::IOError("send failed: " + common::ErrnoMessage());
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::OK();
}

/// One daemon connection with its receive buffer.
struct ClientConn {
  int fd = -1;
  std::string buffer;
};

Result<int> ConnectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: " + common::ErrnoMessage());
  }
  // Request/response turnarounds: Nagle + delayed ACK would cost ~40ms
  // per request.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    common::CloseFd(fd);
    return Status::InvalidArgument("'" + host + "' is not an IPv4 address");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    common::CloseFd(fd);
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port) + ": " +
                           common::ErrnoMessage());
  }
  return fd;
}

int RunClient(const Args& args) {
  Status flags =
      RejectUnknownFlags(args, {"host", "port", "requests", "connections"});
  if (!flags.ok()) return Fail(flags);
  if (!args.Has("port")) {
    return Fail(Status::InvalidArgument("client needs --port P"));
  }
  auto port = GetCount(args, "port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port == 0 || *port > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [1, 65535]"));
  }
  const std::string host = args.Get("host", "127.0.0.1");
  auto num_connections = GetCount(args, "connections", 1);
  if (!num_connections.ok()) return Fail(num_connections.status());
  if (*num_connections == 0 || *num_connections > 1024) {
    return Fail(
        Status::InvalidArgument("--connections must be in [1, 1024]"));
  }

  std::ifstream request_file;
  std::istream* in = &std::cin;
  if (args.Has("requests")) {
    request_file.open(args.Get("requests", ""));
    if (!request_file) {
      return Fail(Status::IOError("cannot open requests file '" +
                                  args.Get("requests", "") + "'"));
    }
    in = &request_file;
  }

  std::vector<ClientConn> conns(*num_connections);
  const auto close_all = [&] {
    for (ClientConn& conn : conns) {
      if (conn.fd >= 0) common::CloseFd(conn.fd);
      conn.fd = -1;
    }
  };
  for (ClientConn& conn : conns) {
    auto fd = ConnectTo(host, static_cast<std::uint16_t>(*port));
    if (!fd.ok()) {
      close_all();
      return Fail(fd.status());
    }
    conn.fd = *fd;
  }

  const auto fail_closing = [&](const Status& status) {
    close_all();
    return Fail(status);
  };
  // Requests rotate over the connections (a BATCH and its predicate
  // lines stay on one). Each request is answered before the next is
  // sent, so the output order equals the input order regardless of
  // --connections — replays must diff clean against a 1-connection run.
  std::string line, response;
  std::size_t next_conn = 0;
  ClientConn* conn = &conns[0];
  std::size_t pending_payload_lines = 0;  // BATCH predicate lines still owed
  bool sent_quit = false;
  int errors = 0;
  while (std::getline(*in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const bool is_payload = pending_payload_lines > 0;
    if (!is_payload && (line.empty() || line[0] == '#')) continue;
    if (!is_payload) {
      conn = &conns[next_conn];
      next_conn = (next_conn + 1) % conns.size();
    }

    Status st = SendAll(conn->fd, line + "\n");
    if (!st.ok()) return fail_closing(st);

    if (is_payload) {
      if (--pending_payload_lines > 0) continue;
    } else {
      std::istringstream fields(line);
      std::string verb, id, count;
      fields >> verb >> id >> count;
      for (char& c : verb) c = static_cast<char>(std::toupper(
          static_cast<unsigned char>(c)));
      if (verb == "QUIT") {
        sent_quit = true;
        break;
      }
      if (verb == "BATCH") {
        // The response only comes after the n predicate lines.
        auto n = ParseCountToken(count);
        if (n.ok() && *n > 0) {
          pending_payload_lines = *n;
          continue;
        }
        // Malformed BATCH: the daemon answers it immediately.
      }
    }

    auto got = ReadSocketLine(conn->fd, &conn->buffer, &response);
    if (!got.ok()) return fail_closing(got.status());
    if (!*got) {
      return fail_closing(Status::IOError("daemon closed the connection"));
    }
    std::printf("%s\n", response.c_str());
    if (response.rfind("error:", 0) == 0) {
      ++errors;
    } else if (response.rfind("ok ", 0) == 0) {
      auto n = ParseCountToken(response.substr(3));
      if (!n.ok()) {
        return fail_closing(
            Status::IOError("malformed response header '" + response + "'"));
      }
      for (std::size_t i = 0; i < *n; ++i) {
        got = ReadSocketLine(conn->fd, &conn->buffer, &response);
        if (!got.ok()) return fail_closing(got.status());
        if (!*got) {
          return fail_closing(Status::IOError("daemon closed mid-response"));
        }
        std::printf("%s\n", response.c_str());
      }
    } else {
      return fail_closing(
          Status::IOError("malformed response header '" + response + "'"));
    }
    if (std::fflush(stdout) != 0) {
      return fail_closing(Status::IOError("writing responses failed"));
    }
  }
  if (sent_quit) {
    // QUIT closes every connection; wait for the daemon's close on the
    // one that carried it so QUIT is observable in scripts.
    for (ClientConn& c : conns) {
      if (&c != conn) (void)SendAll(c.fd, "QUIT\n");
    }
    auto got = ReadSocketLine(conn->fd, &conn->buffer, &response);
    if (got.ok() && *got) std::printf("%s\n", response.c_str());
  }
  close_all();
  return errors > 0 ? 3 : 0;
}

#else  // !defined(__linux__)

int RunClient(const Args&) {
  return Fail(Status::IOError("client requires Linux"));
}

#endif

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  auto args = ParseArgs(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());
  if (command == "help" || args->Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (command == "gen") return RunGen(*args);
  if (command == "plan") return RunPlan(*args);
  if (command == "publish") return RunPublish(*args);
  if (command == "inspect") return RunInspect(*args);
  if (command == "query") return RunQuery(*args);
  if (command == "serve") return RunServe(*args);
  if (command == "daemon") return RunDaemon(*args);
  if (command == "client") return RunClient(*args);
  std::fprintf(stderr, "privelet_cli: unknown command '%s'\n\n%s",
               command.c_str(), kUsage);
  return 1;
}

}  // namespace
}  // namespace privelet::cli

int main(int argc, char** argv) {
#if defined(SIGPIPE)
  // A peer (pipe reader, TCP client) vanishing mid-write must surface as
  // an EPIPE write error, never kill the process.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  return privelet::cli::Run(argc, argv);
}
