// Text schema specs for privelet_cli: a line-oriented format describing
// the attributes of a table, used when publishing from a CSV (the CSV
// itself only carries attribute names and dense indices). Written by
// `privelet_cli gen --schema-out` and consumed by `publish --schema`.
//
// One attribute per line, `#` starts a comment, blank lines ignored:
//
//   ordinal <name> <domain_size>
//   nominal <name> flat <num_leaves>          # root -> leaves (height 2)
//   nominal <name> groups <size> <size> ...   # root -> groups -> leaves
//   nominal <name> balanced <fanout> ...      # uniform fanout per level
//
// Attribute order in the file is the attribute order of the schema (and
// therefore the axis order of the frequency matrix).
#ifndef PRIVELET_TOOLS_CLI_SCHEMA_SPEC_H_
#define PRIVELET_TOOLS_CLI_SCHEMA_SPEC_H_

#include <string>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"

namespace privelet::cli {

/// Parses a schema spec from text. `context` names the source (e.g. the
/// file path) in error messages.
Result<data::Schema> ParseSchemaSpec(const std::string& text,
                                     const std::string& context);

/// Reads and parses a schema spec file.
Result<data::Schema> ReadSchemaSpecFile(const std::string& path);

/// Writes `schema` as a spec file. Hierarchies are emitted in the most
/// specific form that reproduces them (flat / groups / balanced); fails
/// for hierarchy shapes the format cannot express (height > 3 with
/// non-uniform fanouts).
Status WriteSchemaSpecFile(const std::string& path,
                           const data::Schema& schema);

}  // namespace privelet::cli

#endif  // PRIVELET_TOOLS_CLI_SCHEMA_SPEC_H_
