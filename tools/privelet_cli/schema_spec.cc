#include "privelet_cli/schema_spec.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"

namespace privelet::cli {

namespace {

Status SpecError(const std::string& context, std::size_t line_no,
                 const std::string& what) {
  return Status::InvalidArgument(context + ":" +
                                 std::to_string(line_no) + ": " + what);
}

// Strict digits only: std::stoull accepts "-1" and wraps it to a huge
// positive count; from_chars does not.
Result<std::size_t> ParseCount(const std::string& token) {
  std::size_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end || token.empty() || value == 0) {
    return Status::InvalidArgument("'" + token + "' is not a count");
  }
  return value;
}

}  // namespace

Result<data::Schema> ParseSchemaSpec(const std::string& text,
                                     const std::string& context) {
  std::vector<data::Attribute> attrs;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank / comment-only line

    std::string name;
    if (!(fields >> name)) {
      return SpecError(context, line_no, "missing attribute name");
    }
    std::vector<std::size_t> counts;
    std::string shape;
    if (kind == "ordinal") {
      shape = "domain";
    } else if (kind == "nominal") {
      if (!(fields >> shape)) {
        return SpecError(context, line_no, "missing hierarchy shape");
      }
    } else {
      return SpecError(context, line_no,
                       "unknown attribute kind '" + kind + "'");
    }
    std::string token;
    while (fields >> token) {
      auto count = ParseCount(token);
      if (!count.ok()) {
        return SpecError(context, line_no, count.status().message());
      }
      counts.push_back(*count);
    }
    if (counts.empty()) {
      return SpecError(context, line_no, "missing counts after '" + shape +
                                             "'");
    }

    if (kind == "ordinal") {
      if (counts.size() != 1) {
        return SpecError(context, line_no,
                         "ordinal takes exactly one domain size");
      }
      attrs.push_back(data::Attribute::Ordinal(name, counts[0]));
      continue;
    }
    Result<data::Hierarchy> hierarchy =
        Status::InvalidArgument("unknown hierarchy shape '" + shape + "'");
    if (shape == "flat") {
      if (counts.size() != 1) {
        return SpecError(context, line_no, "flat takes exactly one count");
      }
      hierarchy = data::Hierarchy::Flat(counts[0]);
    } else if (shape == "groups") {
      hierarchy = data::Hierarchy::FromGroupSizes(counts);
    } else if (shape == "balanced") {
      hierarchy = data::Hierarchy::Balanced(counts);
    }
    if (!hierarchy.ok()) {
      return SpecError(context, line_no, hierarchy.status().message());
    }
    attrs.push_back(data::Attribute::Nominal(name, std::move(*hierarchy)));
  }
  if (attrs.empty()) {
    return Status::InvalidArgument(context + ": spec defines no attributes");
  }
  return data::Schema(std::move(attrs));
}

Result<data::Schema> ReadSchemaSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseSchemaSpec(text.str(), path);
}

Status WriteSchemaSpecFile(const std::string& path,
                           const data::Schema& schema) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "# privelet schema spec (see tools/privelet_cli/schema_spec.h)\n";
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    if (attr.is_ordinal()) {
      out << "ordinal " << attr.name() << ' ' << attr.domain_size() << '\n';
      continue;
    }
    const data::Hierarchy& h = attr.hierarchy();
    if (h.height() == 2) {
      out << "nominal " << attr.name() << " flat " << h.num_leaves() << '\n';
      continue;
    }
    if (h.height() == 3) {
      out << "nominal " << attr.name() << " groups";
      for (std::size_t group : h.NodesAtLevel(2)) {
        out << ' ' << (h.node(group).leaf_end - h.node(group).leaf_begin);
      }
      out << '\n';
      continue;
    }
    // Taller hierarchies are expressible only when each level has one
    // uniform fanout.
    std::vector<std::size_t> fanouts;
    bool uniform = true;
    for (std::size_t level = 1; uniform && level < h.height(); ++level) {
      const std::vector<std::size_t> nodes = h.NodesAtLevel(level);
      const std::size_t fanout = h.fanout(nodes.front());
      for (std::size_t id : nodes) uniform = uniform && h.fanout(id) == fanout;
      fanouts.push_back(fanout);
    }
    if (!uniform) {
      return Status::InvalidArgument(
          "hierarchy of '" + attr.name() +
          "' (height > 3, non-uniform fanouts) has no spec representation");
    }
    out << "nominal " << attr.name() << " balanced";
    for (std::size_t f : fanouts) out << ' ' << f;
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace privelet::cli
