// Text workloads for privelet_cli: one range-count query per line,
// whitespace-separated predicates, `#` comments, blank lines ignored.
//
//   Age=0:30 Occupation@5    # interval on Age AND subtree of node 5
//   Income=100:200
//   *                        # no predicates (the full-table count)
//
// `name=lo:hi` is an inclusive interval over an attribute's dense domain
// (valid on any attribute — nominal intervals are ranges in the imposed
// leaf order); `name@node` selects the subtree of hierarchy node id
// `node` of a nominal attribute. The writer emits only the `=` form
// (subtree predicates resolve to leaf intervals), so written files
// re-parse to queries with identical bounds.
#ifndef PRIVELET_TOOLS_CLI_WORKLOAD_IO_H_
#define PRIVELET_TOOLS_CLI_WORKLOAD_IO_H_

#include <span>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"

namespace privelet::cli {

/// Reads a workload file, validating every predicate against `schema`.
Result<std::vector<query::RangeQuery>> ReadWorkloadFile(
    const std::string& path, const data::Schema& schema);

/// Writes `queries` in the text format above (resolved `=` intervals).
Status WriteWorkloadFile(const std::string& path, const data::Schema& schema,
                         std::span<const query::RangeQuery> queries);

}  // namespace privelet::cli

#endif  // PRIVELET_TOOLS_CLI_WORKLOAD_IO_H_
