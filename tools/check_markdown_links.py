#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve.

Scans every tracked *.md file for inline links/images `[text](target)`
and verifies that relative targets exist on disk (anchors are stripped;
external schemes are skipped). Exits non-zero listing the broken links.
Run from anywhere: paths are resolved against the repo root. CI runs
this in the docs job; locally: `python3 tools/check_markdown_links.py`.
"""

import os
import re
import subprocess
import sys

# Inline links and images. Deliberately simple: no reference-style links
# are used in this repo, and nested parentheses in URLs do not occur.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root: str) -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return [line for line in out.stdout.splitlines() if line]


def main() -> int:
    root = repo_root()
    broken = []
    checked = 0
    for md in tracked_markdown(root):
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            checked += 1
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {target}")
    for report in broken:
        print(report, file=sys.stderr)
    print(f"checked {checked} intra-repo links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
