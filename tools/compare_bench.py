#!/usr/bin/env python3
"""Diff fresh BENCH_*.json reports against committed baselines.

The perf-smoke benches drop machine-readable reports (bench/bench_util.h's
BenchReport) next to their working directory. This script compares a fresh
set of reports against the baselines committed under bench/baselines/ and
fails when a guarded metric regresses by more than the allowed tolerance,
so perf regressions break CI instead of silently shipping.

Only *scale-free* metrics are guarded (ratios such as rss_over_budget or
speedup_vs_naive, or ratios derived between two rows of one report).
Absolute wall-clock numbers vary with the host and would make the gate
flaky; the manifest deliberately has no way to guard them directly.

Usage:
    python3 tools/compare_bench.py \
        --fresh-dir build/bench [--baseline-dir bench/baselines] \
        [--manifest bench/baselines/manifest.json] [--tolerance 0.25]

Exit status: 0 when every guarded metric is within tolerance, 1 on any
regression or missing report/row/metric (a silently absent report must not
read as a pass).
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.25


def load_report(directory: Path, bench: str):
    """Returns (rows, meta, error).

    Accepts both report formats: the current {"meta": {...}, "rows": [...]}
    object (meta attributes the run: dispatch level, CPU features, git
    sha) and the legacy bare row array (meta comes back empty).
    """
    path = directory / f"BENCH_{bench}.json"
    if not path.is_file():
        return None, None, f"missing report {path}"
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        return None, None, f"unparseable report {path}: {err}"
    meta = {}
    rows = report
    if isinstance(report, dict):
        meta = report.get("meta", {})
        rows = report.get("rows")
    if not isinstance(rows, list):
        return None, None, f"report {path} has no row array"
    return rows, meta, None


def match_row(rows, select):
    """First row whose values equal every key in `select`."""
    for row in rows:
        if all(row.get(k) == v for k, v in select.items()):
            return row
    return None


def extract(rows, spec, bench):
    """Resolve one metric value from a report's rows.

    The metric is row[key] for the row matched by `select`; with
    `divide_by` present it becomes a ratio against another row of the
    same report, which keeps the guarded value scale-free even when the
    underlying columns are absolute.
    """
    key = spec["key"]
    row = match_row(rows, spec.get("select", {}))
    if row is None:
        return None, f"{bench}: no row matches select={spec.get('select', {})}"
    if key not in row:
        return None, f"{bench}: row has no metric '{key}'"
    value = float(row[key])
    divide_by = spec.get("divide_by")
    if divide_by is not None:
        denom_row = match_row(rows, divide_by.get("select", {}))
        if denom_row is None:
            return None, (f"{bench}: no denominator row matches "
                          f"select={divide_by.get('select', {})}")
        denom_key = divide_by.get("key", key)
        denom = float(denom_row.get(denom_key, 0.0))
        if denom == 0.0:
            return None, f"{bench}: denominator metric '{denom_key}' is zero"
        value /= denom
    return value, None


def check_metric(spec, fresh_value, baseline_value, tolerance):
    """Returns (ok, limit). direction 'lower' means lower is better."""
    direction = spec.get("direction", "lower")
    if direction == "lower":
        limit = baseline_value * (1.0 + tolerance)
        return fresh_value <= limit, limit
    limit = baseline_value * (1.0 - tolerance)
    return fresh_value >= limit, limit


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >tolerance regressions of guarded bench metrics")
    parser.add_argument("--fresh-dir", type=Path, required=True,
                        help="directory holding the just-produced BENCH_*.json")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path("bench/baselines"),
                        help="directory holding the committed baselines")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="manifest path (default <baseline-dir>/manifest.json)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the manifest's default tolerance")
    args = parser.parse_args()

    manifest_path = args.manifest or args.baseline_dir / "manifest.json"
    if not manifest_path.is_file():
        print(f"error: missing manifest {manifest_path}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text())
    default_tol = (args.tolerance if args.tolerance is not None else
                   manifest.get("default_tolerance", DEFAULT_TOLERANCE))

    failures = []
    checked = 0
    for guard in manifest.get("metrics", []):
        bench = guard["bench"]
        tolerance = (args.tolerance if args.tolerance is not None else
                     guard.get("tolerance", default_tol))
        fresh_rows, fresh_meta, err = load_report(args.fresh_dir, bench)
        if err:
            failures.append(err)
            continue
        baseline_rows, baseline_meta, err = load_report(args.baseline_dir,
                                                        bench)
        if err:
            failures.append(err)
            continue
        # A cross-ISA or cross-machine comparison is not a code regression;
        # surface the attribution so a failing gate can be triaged at a
        # glance (the gate itself still runs — guarded metrics are
        # within-run ratios, which are meaningful on any one host).
        for side, meta in (("fresh", fresh_meta), ("baseline", baseline_meta)):
            if meta:
                print(f"# {side} {bench}: isa={meta.get('isa_active', '?')} "
                      f"(best {meta.get('isa_best', '?')}) "
                      f"sha={meta.get('git_sha', '?')}")
        fresh, err = extract(fresh_rows, guard, bench)
        if err:
            failures.append(f"fresh {err}")
            continue
        baseline, err = extract(baseline_rows, guard, bench)
        if err:
            failures.append(f"baseline {err}")
            continue
        ok, limit = check_metric(guard, fresh, baseline, tolerance)
        label = guard.get("label") or f"{bench}:{guard['key']}"
        word = "ok  " if ok else "FAIL"
        print(f"{word} {label}: fresh {fresh:.4g} vs baseline {baseline:.4g} "
              f"(limit {limit:.4g}, tolerance {tolerance:.0%})")
        checked += 1
        if not ok:
            failures.append(
                f"{label} regressed: {fresh:.4g} vs baseline {baseline:.4g} "
                f"(allowed {limit:.4g})")

    if failures:
        print(f"\n{len(failures)} bench regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        print("error: manifest guards no metrics", file=sys.stderr)
        return 1
    print(f"\nall {checked} guarded metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
