// Tests for the data-cube operations (marginal projection and nominal
// roll-up) and a golden determinism regression pinning the full
// mechanism pipeline byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/matrix/data_cube.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::matrix {
namespace {

data::Schema CubeSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("X", 4));
  attrs.push_back(data::Attribute::Nominal(
      "G", data::Hierarchy::Balanced({2, 3}).value()));
  attrs.push_back(data::Attribute::Ordinal("Z", 2));
  return data::Schema(std::move(attrs));
}

FrequencyMatrix RandomCube(const data::Schema& schema, std::uint64_t seed) {
  FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 9));
  }
  return m;
}

TEST(ProjectMarginalTest, SingleAxisMatchesRangeQueries) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 1);
  auto marginal = ProjectMarginal(m, {1});
  ASSERT_TRUE(marginal.ok());
  ASSERT_EQ(marginal->dims(), (std::vector<std::size_t>{6}));

  query::QueryEvaluator eval(schema, m);
  for (std::size_t v = 0; v < 6; ++v) {
    query::RangeQuery q(3);
    ASSERT_TRUE(q.SetRange(schema, 1, v, v).ok());
    EXPECT_NEAR((*marginal)[v], eval.Answer(q), 1e-9);
  }
}

TEST(ProjectMarginalTest, TwoAxesPreserveTotalsAndOrder) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 2);
  auto marginal = ProjectMarginal(m, {0, 2});
  ASSERT_TRUE(marginal.ok());
  ASSERT_EQ(marginal->dims(), (std::vector<std::size_t>{4, 2}));
  EXPECT_NEAR(marginal->Total(), m.Total(), 1e-9);
  // Check one cell against brute force.
  double expected = 0.0;
  for (std::size_t g = 0; g < 6; ++g) {
    expected += m.At(std::array<std::size_t, 3>{2, g, 1});
  }
  EXPECT_NEAR(marginal->At(std::array<std::size_t, 2>{2, 1}), expected,
              1e-9);
}

TEST(ProjectMarginalTest, ProjectionsCommute) {
  // Projecting to {0,1} then {0} equals projecting straight to {0}.
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 3);
  auto two = ProjectMarginal(m, {0, 1});
  ASSERT_TRUE(two.ok());
  auto via_two = ProjectMarginal(*two, {0});
  auto direct = ProjectMarginal(m, {0});
  ASSERT_TRUE(via_two.ok() && direct.ok());
  for (std::size_t i = 0; i < direct->size(); ++i) {
    EXPECT_NEAR((*via_two)[i], (*direct)[i], 1e-9);
  }
}

TEST(ProjectMarginalTest, ValidatesAxes) {
  const FrequencyMatrix m({2, 3});
  EXPECT_FALSE(ProjectMarginal(m, {}).ok());
  EXPECT_FALSE(ProjectMarginal(m, {2}).ok());
  EXPECT_FALSE(ProjectMarginal(m, {1, 0}).ok());
  EXPECT_FALSE(ProjectMarginal(m, {0, 0}).ok());
}

TEST(RollUpTest, ToGroupLevelSumsSubtrees) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 4);
  auto rolled = RollUpNominalAxis(m, schema, 1, 2);
  ASSERT_TRUE(rolled.ok());
  ASSERT_EQ(rolled->dims(), (std::vector<std::size_t>{4, 2, 2}));
  // Group 0 covers leaves 0..2, group 1 covers 3..5.
  for (std::size_t x = 0; x < 4; ++x) {
    for (std::size_t z = 0; z < 2; ++z) {
      double g0 = 0.0, g1 = 0.0;
      for (std::size_t leaf = 0; leaf < 3; ++leaf) {
        g0 += m.At(std::array<std::size_t, 3>{x, leaf, z});
        g1 += m.At(std::array<std::size_t, 3>{x, leaf + 3, z});
      }
      EXPECT_NEAR(rolled->At(std::array<std::size_t, 3>{x, 0, z}), g0, 1e-9);
      EXPECT_NEAR(rolled->At(std::array<std::size_t, 3>{x, 1, z}), g1, 1e-9);
    }
  }
}

TEST(RollUpTest, RootLevelCollapsesAxis) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 5);
  auto rolled = RollUpNominalAxis(m, schema, 1, 1);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->dim(1), 1u);
  EXPECT_NEAR(rolled->Total(), m.Total(), 1e-9);
}

TEST(RollUpTest, LeafLevelIsIdentity) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 6);
  auto rolled = RollUpNominalAxis(m, schema, 1, 3);
  ASSERT_TRUE(rolled.ok());
  EXPECT_TRUE(matrix::ValuesEqual(rolled->values(), m.values()));
}

TEST(RollUpTest, Validates) {
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 7);
  EXPECT_FALSE(RollUpNominalAxis(m, schema, 0, 1).ok());  // ordinal axis
  EXPECT_FALSE(RollUpNominalAxis(m, schema, 9, 1).ok());  // bad axis
  EXPECT_FALSE(RollUpNominalAxis(m, schema, 1, 0).ok());  // bad level
  EXPECT_FALSE(RollUpNominalAxis(m, schema, 1, 4).ok());  // bad level
}

TEST(RollUpTest, CommutesWithPublishQueries) {
  // Rolling up the published matrix and querying a group equals the
  // subtree range query on the published matrix (both are linear in the
  // same noisy cells).
  const data::Schema schema = CubeSchema();
  const FrequencyMatrix m = RandomCube(schema, 8);
  mechanism::PriveletMechanism privelet;
  auto noisy = privelet.Publish(schema, m, 1.0, 3);
  ASSERT_TRUE(noisy.ok());
  auto rolled = RollUpNominalAxis(*noisy, schema, 1, 2);
  ASSERT_TRUE(rolled.ok());

  const data::Hierarchy& h = schema.attribute(1).hierarchy();
  query::QueryEvaluator eval(schema, *noisy);
  for (std::size_t g = 0; g < 2; ++g) {
    query::RangeQuery q(3);
    ASSERT_TRUE(q.SetHierarchyNode(schema, 1, h.NodesAtLevel(2)[g]).ok());
    double rolled_sum = 0.0;
    for (std::size_t x = 0; x < 4; ++x) {
      for (std::size_t z = 0; z < 2; ++z) {
        rolled_sum += rolled->At(std::array<std::size_t, 3>{x, g, z});
      }
    }
    EXPECT_NEAR(rolled_sum, eval.Answer(q), 1e-6);
  }
}

// Baseline recorded from the initial release build; re-record consciously
// if the pipeline's deterministic behaviour is intentionally changed.
double GoldenChecksum() { return 3672.2845714819623; }

TEST(GoldenRegressionTest, PublishIsStableAcrossRefactors) {
  // Pins the full deterministic pipeline (generator seeding, transform
  // order, noise stream consumption). If this test fails after a
  // refactor, published releases are no longer reproducible from seeds —
  // either fix the regression or consciously re-baseline.
  const data::Schema schema = CubeSchema();
  FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(i % 7);
  }
  mechanism::PriveletMechanism privelet;
  auto noisy = privelet.Publish(schema, m, 1.0, 2010);
  ASSERT_TRUE(noisy.ok());
  double checksum = 0.0;
  for (std::size_t i = 0; i < noisy->size(); ++i) {
    checksum += (*noisy)[i] * static_cast<double>(i + 1);
  }
  EXPECT_NEAR(checksum, GoldenChecksum(), 1e-6);
}

}  // namespace
}  // namespace privelet::matrix
