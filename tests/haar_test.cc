// Tests for the one-dimensional Haar wavelet transform (paper Sec. IV),
// anchored on the paper's worked example (Fig. 2) plus randomized
// round-trip and reconstruction-identity (Eq. 3) properties.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/haar.h"

namespace privelet::wavelet {
namespace {

TEST(HaarTest, PaperFigure2Coefficients) {
  // M = [9, 3, 6, 2, 8, 4, 5, 7]  ->  c0..c7 of Fig. 2.
  const std::vector<double> input = {9, 3, 6, 2, 8, 4, 5, 7};
  HaarTransform haar(8);
  ASSERT_EQ(haar.coefficient_count(), 8u);
  std::vector<double> coeffs(8);
  haar.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[0], 5.5);   // base
  EXPECT_DOUBLE_EQ(coeffs[1], -0.5);  // c1
  EXPECT_DOUBLE_EQ(coeffs[2], 1.0);   // c2
  EXPECT_DOUBLE_EQ(coeffs[3], 0.0);   // c3
  EXPECT_DOUBLE_EQ(coeffs[4], 3.0);   // c4
  EXPECT_DOUBLE_EQ(coeffs[5], 2.0);   // c5
  EXPECT_DOUBLE_EQ(coeffs[6], 2.0);   // c6
  EXPECT_DOUBLE_EQ(coeffs[7], -1.0);  // c7
}

TEST(HaarTest, PaperExample2Reconstruction) {
  // Example 2: v2 = c0 + c1 + c2 - c4 = 5.5 - 0.5 + 1 - 3 = 3.
  const std::vector<double> input = {9, 3, 6, 2, 8, 4, 5, 7};
  HaarTransform haar(8);
  std::vector<double> coeffs(8);
  haar.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[0] + coeffs[1] + coeffs[2] - coeffs[4], 3.0);
  std::vector<double> output(8);
  haar.Inverse(coeffs.data(), output.data());
  EXPECT_DOUBLE_EQ(output[1], 3.0);
}

TEST(HaarTest, WeightsMatchWHaar) {
  // Fig. 2 text: weights 8, 8, 4, 2 for c0, c1, c2, c4.
  HaarTransform haar(8);
  const auto& w = haar.weights();
  EXPECT_DOUBLE_EQ(w[0], 8.0);  // base: m
  EXPECT_DOUBLE_EQ(w[1], 8.0);  // level 1: 2^(3-1+1)
  EXPECT_DOUBLE_EQ(w[2], 4.0);  // level 2
  EXPECT_DOUBLE_EQ(w[3], 4.0);
  EXPECT_DOUBLE_EQ(w[4], 2.0);  // level 3
  EXPECT_DOUBLE_EQ(w[7], 2.0);
}

TEST(HaarTest, LevelOf) {
  EXPECT_EQ(HaarTransform::LevelOf(1), 1u);
  EXPECT_EQ(HaarTransform::LevelOf(2), 2u);
  EXPECT_EQ(HaarTransform::LevelOf(3), 2u);
  EXPECT_EQ(HaarTransform::LevelOf(4), 3u);
  EXPECT_EQ(HaarTransform::LevelOf(7), 3u);
  EXPECT_EQ(HaarTransform::LevelOf(8), 4u);
}

TEST(HaarTest, SizeOneInput) {
  HaarTransform haar(1);
  EXPECT_EQ(haar.coefficient_count(), 1u);
  EXPECT_DOUBLE_EQ(haar.p_factor(), 1.0);
  EXPECT_DOUBLE_EQ(haar.h_factor(), 1.0);
  const double in = 42.0;
  double coeff = 0.0, out = 0.0;
  haar.Forward(&in, &coeff);
  EXPECT_DOUBLE_EQ(coeff, 42.0);
  haar.Inverse(&coeff, &out);
  EXPECT_DOUBLE_EQ(out, 42.0);
}

TEST(HaarTest, NonPowerOfTwoPadsWithZeros) {
  // n = 5 pads to 8; the base coefficient is the padded mean.
  HaarTransform haar(5);
  EXPECT_EQ(haar.padded_size(), 8u);
  EXPECT_EQ(haar.coefficient_count(), 8u);
  const std::vector<double> input = {8, 8, 8, 8, 8};
  std::vector<double> coeffs(8);
  haar.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[0], 5.0);  // 40 / 8
  std::vector<double> output(5);
  haar.Inverse(coeffs.data(), output.data());
  for (double v : output) EXPECT_DOUBLE_EQ(v, 8.0);
}

TEST(HaarTest, PAndHFactors) {
  // P = 1 + log2(padded), H = (2 + log2(padded)) / 2.
  EXPECT_DOUBLE_EQ(HaarTransform(16).p_factor(), 5.0);
  EXPECT_DOUBLE_EQ(HaarTransform(16).h_factor(), 3.0);
  EXPECT_DOUBLE_EQ(HaarTransform(512).p_factor(), 10.0);
  EXPECT_DOUBLE_EQ(HaarTransform(512).h_factor(), 5.5);
  EXPECT_DOUBLE_EQ(HaarTransform(101).p_factor(), 8.0);  // pads to 128
}

TEST(HaarTest, LinearityOfForward) {
  // Haar is linear: T(a*x + y) = a*T(x) + T(y).
  rng::Xoshiro256pp gen(3);
  const std::size_t n = 16;
  HaarTransform haar(n);
  std::vector<double> x(n), y(n), combo(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(gen.NextUint64InRange(0, 20));
    y[i] = static_cast<double>(gen.NextUint64InRange(0, 20));
    combo[i] = 3.0 * x[i] + y[i];
  }
  std::vector<double> tx(n), ty(n), tcombo(n);
  haar.Forward(x.data(), tx.data());
  haar.Forward(y.data(), ty.data());
  haar.Forward(combo.data(), tcombo.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(tcombo[i], 3.0 * tx[i] + ty[i], 1e-9);
  }
}

// Round-trip property over a sweep of sizes (both powers of two and not).
class HaarRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarRoundTripTest, InverseRecoversInput) {
  const std::size_t n = GetParam();
  HaarTransform haar(n);
  rng::Xoshiro256pp gen(n * 2654435761u + 1);
  std::vector<double> input(n), coeffs(haar.coefficient_count()), output(n);
  for (auto& v : input) {
    v = static_cast<double>(gen.NextUint64InRange(0, 1000)) / 10.0;
  }
  haar.Forward(input.data(), coeffs.data());
  haar.Inverse(coeffs.data(), output.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(output[i], input[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HaarRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 31,
                                           32, 100, 101, 128, 255, 256, 777,
                                           1024));

// Eq. 3 identity: every entry equals c0 + sum(gi * ci) over its ancestors,
// with gi = +1 on the left subtree and -1 on the right.
class HaarEq3Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarEq3Test, EntryEqualsSignedAncestorSum) {
  const std::size_t n = GetParam();  // power of two
  HaarTransform haar(n);
  rng::Xoshiro256pp gen(n + 99);
  std::vector<double> input(n), coeffs(n);
  for (auto& v : input) {
    v = static_cast<double>(gen.NextUint64InRange(0, 50));
  }
  haar.Forward(input.data(), coeffs.data());

  const std::size_t levels = haar.levels();
  for (std::size_t v = 0; v < n; ++v) {
    double sum = coeffs[0];
    // The ancestor at level i (1-based) has index 2^(i-1) + (v >> (l-i+1))
    // ... equivalently walk down from the root.
    std::size_t node = 1;
    for (std::size_t level = 1; level <= levels; ++level) {
      const std::size_t subtree = n >> level;  // leaves per child subtree
      const std::size_t offset = v % (2 * subtree);
      const double g = (offset < subtree) ? 1.0 : -1.0;
      sum += g * coeffs[node];
      node = 2 * node + ((offset < subtree) ? 0 : 1);
    }
    EXPECT_NEAR(sum, input[v], 1e-9) << "entry " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, HaarEq3Test,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

}  // namespace
}  // namespace privelet::wavelet
