// Tests for the publishing mechanisms: Basic (Dwork et al.) and
// Privelet / Privelet+. Covers argument validation, determinism, noise
// calibration, near-exactness at huge ε, Privelet+ SA handling, and the
// paper's closed-form variance-bound examples.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "privelet/analysis/query_variance.h"
#include "privelet/common/math_util.h"
#include "privelet/data/census_generator.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {
namespace {

data::Schema OneDimensionalSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

data::Schema MixedSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 8));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({2, 3}).value()));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 50));
  }
  return m;
}

TEST(BasicMechanismTest, RejectsBadArguments) {
  BasicMechanism basic;
  const data::Schema schema = OneDimensionalSchema(8);
  const matrix::FrequencyMatrix m(schema.DomainSizes());
  EXPECT_FALSE(basic.Publish(schema, m, 0.0, 1).ok());
  EXPECT_FALSE(basic.Publish(schema, m, -1.0, 1).ok());
  matrix::FrequencyMatrix wrong({9});
  EXPECT_FALSE(basic.Publish(schema, wrong, 1.0, 1).ok());
}

TEST(BasicMechanismTest, PreservesShapeAndIsDeterministic) {
  BasicMechanism basic;
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 3);
  auto a = basic.Publish(schema, m, 1.0, 99);
  auto b = basic.Publish(schema, m, 1.0, 99);
  auto c = basic.Publish(schema, m, 1.0, 100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->dims(), m.dims());
  EXPECT_TRUE(matrix::ValuesEqual(a->values(), b->values()));
  EXPECT_FALSE(matrix::ValuesEqual(a->values(), c->values()));
}

TEST(BasicMechanismTest, PerCellNoiseVarianceMatchesCalibration) {
  // Laplace(2/ε) per cell: variance 8/ε². Estimate across seeds.
  BasicMechanism basic;
  const data::Schema schema = OneDimensionalSchema(64);
  matrix::FrequencyMatrix m(schema.DomainSizes());  // zeros
  const double epsilon = 1.0;
  std::vector<double> noise;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    auto noisy = basic.Publish(schema, m, epsilon, seed);
    ASSERT_TRUE(noisy.ok());
    for (std::size_t i = 0; i < noisy->size(); ++i) {
      noise.push_back((*noisy)[i]);
    }
  }
  EXPECT_NEAR(Mean(noise), 0.0, 0.1);
  EXPECT_NEAR(SampleVariance(noise) / 8.0, 1.0, 0.1);
}

TEST(BasicMechanismTest, VarianceBoundIs8MOverEps2) {
  BasicMechanism basic;
  const data::Schema schema = OneDimensionalSchema(16);
  auto bound = basic.NoiseVarianceBound(schema, 1.0);
  ASSERT_TRUE(bound.ok());
  // Sec. VI-D example: |A| = 16 -> 128/ε².
  EXPECT_DOUBLE_EQ(*bound, 128.0);
}

TEST(PriveletTest, HugeEpsilonReconstructsAlmostExactly) {
  PriveletMechanism privelet;
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 7);
  auto noisy = privelet.Publish(schema, m, 1e9, 1);
  ASSERT_TRUE(noisy.ok());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], m[i], 1e-4) << "entry " << i;
  }
}

TEST(PriveletTest, DeterministicInSeed) {
  PriveletMechanism privelet;
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 7);
  auto a = privelet.Publish(schema, m, 0.5, 11);
  auto b = privelet.Publish(schema, m, 0.5, 11);
  auto c = privelet.Publish(schema, m, 0.5, 12);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(matrix::ValuesEqual(a->values(), b->values()));
  EXPECT_FALSE(matrix::ValuesEqual(a->values(), c->values()));
}

TEST(PriveletTest, LaplaceMagnitudeIsTwoRhoOverEpsilon) {
  PriveletMechanism privelet;
  const data::Schema schema = MixedSchema();
  // rho = P(Ord8) * P(Nom h=3) = 4 * 3 = 12; λ = 2*12/ε.
  auto lambda = privelet.LaplaceMagnitude(schema, 0.5);
  ASSERT_TRUE(lambda.ok());
  EXPECT_DOUBLE_EQ(*lambda, 48.0);
}

TEST(PriveletTest, VarianceBoundMatchesPaperEq4) {
  // One-dimensional ordinal, |A| = 512: Eq. 4 gives 4400/ε².
  PriveletMechanism privelet;
  const data::Schema schema = OneDimensionalSchema(512);
  auto bound = privelet.NoiseVarianceBound(schema, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 4400.0);
}

TEST(PriveletTest, VarianceBoundMatchesPaperEq6) {
  // One nominal attribute with h = 3: Eq. 6 gives 32h²/ε² = 288/ε².
  PriveletMechanism privelet;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Nominal(
      "Occupation", data::Hierarchy::Balanced({16, 32}).value()));
  const data::Schema schema(std::move(attrs));
  auto bound = privelet.NoiseVarianceBound(schema, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 288.0);
}

TEST(PriveletTest, VarianceBoundMatchesPaperSmallDomainExample) {
  // Sec. VI-D: single ordinal |A| = 16 -> 600/ε² (vs Basic's 128/ε²).
  PriveletMechanism privelet;
  const data::Schema schema = OneDimensionalSchema(16);
  auto bound = privelet.NoiseVarianceBound(schema, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 600.0);
}

TEST(PriveletPlusTest, SaNamesResolveAndValidate) {
  PriveletPlusMechanism plus({"Nom"});
  const data::Schema schema = MixedSchema();
  auto sa = plus.ResolveSa(schema);
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(*sa, (std::vector<std::size_t>{1}));
  PriveletPlusMechanism bogus({"NoSuchAttr"});
  EXPECT_FALSE(bogus.ResolveSa(schema).ok());
  EXPECT_FALSE(bogus.Publish(schema, RandomMatrix(schema, 1), 1.0, 1).ok());
}

TEST(PriveletPlusTest, NamesDescribeConfiguration) {
  EXPECT_EQ(PriveletMechanism().name(), "Privelet");
  EXPECT_EQ(PriveletPlusMechanism({"Age", "Gender"}).name(),
            "Privelet+{Age,Gender}");
  EXPECT_EQ(BasicMechanism().name(), "Basic");
}

TEST(PriveletPlusTest, AllAttributesInSaMatchesBasicBound) {
  // SA = all attributes: Eq. 7 degenerates to 8m/ε² (Basic).
  PriveletPlusMechanism plus({"Ord", "Nom"});
  BasicMechanism basic;
  const data::Schema schema = MixedSchema();
  auto plus_bound = plus.NoiseVarianceBound(schema, 0.75);
  auto basic_bound = basic.NoiseVarianceBound(schema, 0.75);
  ASSERT_TRUE(plus_bound.ok() && basic_bound.ok());
  EXPECT_DOUBLE_EQ(*plus_bound, *basic_bound);
}

TEST(PriveletPlusTest, CensusSaChoiceBeatsBothExtremes) {
  // For the Brazil census schema, SA = {Age, Gender} (the paper's choice)
  // must beat both Privelet (SA = ∅) and Basic (SA = all) in Eq. 7.
  auto schema = data::MakeCensusSchema(data::CensusCountry::kBrazil, 0);
  ASSERT_TRUE(schema.ok());
  const double eps = 1.0;
  auto hybrid = PriveletPlusMechanism({"Age", "Gender"})
                    .NoiseVarianceBound(*schema, eps);
  auto pure = PriveletMechanism().NoiseVarianceBound(*schema, eps);
  auto basic = BasicMechanism().NoiseVarianceBound(*schema, eps);
  ASSERT_TRUE(hybrid.ok() && pure.ok() && basic.ok());
  EXPECT_LT(*hybrid, *pure);
  EXPECT_LT(*hybrid, *basic);
}

TEST(PriveletPlusTest, HugeEpsilonReconstructsWithSa) {
  PriveletPlusMechanism plus({"Ord"});
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 5);
  auto noisy = plus.Publish(schema, m, 1e9, 2);
  ASSERT_TRUE(noisy.ok());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], m[i], 1e-4);
  }
}

TEST(PriveletPlusTest, TotalCountNoiseMatchesExactVariance) {
  // The published total is the full-domain range count; across seeds its
  // noise must match the closed-form exact query variance — a calibrated
  // moment check instead of a "looks roughly preserved" band.
  PriveletMechanism privelet;
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 9);
  const double true_total = m.Total();
  const query::RangeQuery full(schema.num_attributes());
  const double exact_variance =
      analysis::PriveletPlusQueryVariance(schema, {}, 1.0, full).value();

  constexpr std::size_t kTrials = 400;
  std::vector<double> noise;
  noise.reserve(kTrials);
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    auto noisy = privelet.Publish(schema, m, 1.0, seed);
    ASSERT_TRUE(noisy.ok());
    noise.push_back(noisy->Total() - true_total);
  }
  EXPECT_NEAR(Mean(noise), 0.0,
              4.0 * std::sqrt(exact_variance / kTrials));
  // 4-sigma band on the sample variance (Laplace mixtures: Var(s²) ~
  // 5σ⁴/n).
  EXPECT_NEAR(SampleVariance(noise) / exact_variance, 1.0,
              4.0 * std::sqrt(5.0 / kTrials));
}

}  // namespace
}  // namespace privelet::mechanism
