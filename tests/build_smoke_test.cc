// Build-health smoke test (ctest label: smoke). Includes the public
// umbrella header and runs the whole pipeline — schema -> table ->
// frequency matrix -> Privelet publish -> query — so that any public
// header or link breakage fails fast, before the full suite runs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "privelet/privelet.h"

namespace privelet {
namespace {

TEST(BuildSmokeTest, UmbrellaHeaderPipelineEndToEnd) {
  // Schema: one ordinal and one nominal attribute.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 16));
  attrs.push_back(
      data::Attribute::Nominal("Flag", data::Hierarchy::Flat(2).value()));
  const data::Schema schema(std::move(attrs));

  data::Table table(schema);
  rng::Xoshiro256pp gen(7);
  for (int i = 0; i < 512; ++i) {
    const auto age =
        static_cast<std::uint32_t>(gen.NextUint64InRange(0, 15));
    const std::uint32_t flag = rng::SampleBernoulli(gen, 0.5) ? 1 : 0;
    ASSERT_TRUE(table.AppendRow({age, flag}).ok());
  }

  const auto m = matrix::FrequencyMatrix::FromTable(table);
  EXPECT_EQ(m.size(), 32u);
  EXPECT_DOUBLE_EQ(m.Total(), 512.0);

  const mechanism::PriveletMechanism mech;
  auto noisy = mech.Publish(schema, m, /*epsilon=*/1.0, /*seed=*/1);
  ASSERT_TRUE(noisy.ok()) << noisy.status().ToString();
  EXPECT_EQ(noisy->size(), m.size());

  // A range-count query answered from the noisy output must land within
  // the mechanism's (generous) worst-case noise envelope.
  query::RangeQuery q(schema.num_attributes());
  ASSERT_TRUE(q.SetRange(schema, 0, 0, 7).ok());
  const double truth = query::QueryEvaluator(schema, m).Answer(q);
  const double answer = query::QueryEvaluator(schema, *noisy).Answer(q);
  const double bound = mech.NoiseVarianceBound(schema, 1.0).value();
  EXPECT_NEAR(answer, truth, 20.0 * std::sqrt(bound));
}

}  // namespace
}  // namespace privelet
