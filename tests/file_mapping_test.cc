// Tests for common::MappedFile's three roles — read-only file mapping,
// file-backed writable scratch, anonymous writable mapping — with the
// error paths of each creation mode (missing/empty files, failed maps,
// unusable scratch directories) and the residency-release contract the
// out-of-core publish path depends on: dropping resident pages of a
// file-backed scratch mapping must never lose data.
#include "privelet/common/file_mapping.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

namespace privelet::common {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(MappedFileTest, OpenReadsWholeFile) {
  const std::string path = TempPath("mapped_open.bin");
  WriteFileBytes(path, "privelet mapping payload");
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(24u, mapped->size());
  EXPECT_FALSE(mapped->writable());
  EXPECT_EQ(0, std::memcmp(mapped->bytes().data(), "privelet mapping payload",
                           mapped->size()));
}

TEST(MappedFileTest, OpenMissingFileIsAnIOError) {
  auto mapped = MappedFile::Open(TempPath("mapped_missing.bin"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(StatusCode::kIOError, mapped.status().code());
}

TEST(MappedFileTest, OpenEmptyFileYieldsEmptyMapping) {
  const std::string path = TempPath("mapped_empty.bin");
  WriteFileBytes(path, "");
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(0u, mapped->size());
  EXPECT_TRUE(mapped->bytes().empty());
}

TEST(MappedFileTest, OpenDirectoryFailsAtTheMapStep) {
  // Directories open and stat fine but cannot be mmap'ed — the failed-map
  // error path, without needing to exhaust address space.
  auto mapped = MappedFile::Open(testing::TempDir());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(StatusCode::kIOError, mapped.status().code());
}

TEST(MappedFileTest, ScratchIsWritableZeroFilledAndSurvivesRelease) {
  auto scratch = MappedFile::CreateScratch(1 << 20);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  ASSERT_EQ(std::size_t{1} << 20, scratch->size());
  EXPECT_TRUE(scratch->writable());

  std::span<std::byte> bytes = scratch->mutable_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(std::byte{0}, bytes[i]) << "scratch not zero-filled at " << i;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i * 131u);
  }
  // The out-of-core contract: releasing residency evicts pages but the
  // data lives on (file-backed MAP_SHARED) and faults back in unchanged.
  scratch->ReleaseResidency();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(static_cast<std::byte>(i * 131u), bytes[i])
        << "data lost after ReleaseResidency at " << i;
  }
}

TEST(MappedFileTest, ScratchOfSizeZeroIsEmptyButWritable) {
  auto scratch = MappedFile::CreateScratch(0);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  EXPECT_EQ(0u, scratch->size());
  EXPECT_TRUE(scratch->writable());
  EXPECT_TRUE(scratch->mutable_bytes().empty());
}

TEST(MappedFileTest, ScratchInMissingDirectoryIsAnIOError) {
  auto scratch =
      MappedFile::CreateScratch(4096, TempPath("no_such_dir/nested"));
  ASSERT_FALSE(scratch.ok());
  EXPECT_EQ(StatusCode::kIOError, scratch.status().code());
}

TEST(MappedFileTest, ScratchUnderAFileIsAnIOError) {
  // A scratch dir that names a regular file fails mkstemp with ENOTDIR —
  // the unwritable-directory error path.
  const std::string blocker = TempPath("scratch_blocker");
  WriteFileBytes(blocker, "x");
  auto scratch = MappedFile::CreateScratch(4096, blocker);
  ASSERT_FALSE(scratch.ok());
  EXPECT_EQ(StatusCode::kIOError, scratch.status().code());
}

TEST(MappedFileTest, AnonymousMappingHoldsDataAcrossRelease) {
  auto anon = MappedFile::CreateAnonymous(1 << 16);
  ASSERT_TRUE(anon.ok()) << anon.status().ToString();
  EXPECT_TRUE(anon->writable());
  std::span<std::byte> bytes = anon->mutable_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i ^ 0x5a);
  }
  // Anonymous pages have no file backing, so ReleaseResidency must be a
  // no-op — MADV_DONTNEED would zero the contents.
  anon->ReleaseResidency();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(static_cast<std::byte>(i ^ 0x5a), bytes[i])
        << "anonymous data lost after ReleaseResidency at " << i;
  }
}

TEST(MappedFileTest, MoveTransfersTheMapping) {
  auto scratch = MappedFile::CreateScratch(4096);
  ASSERT_TRUE(scratch.ok());
  scratch->mutable_bytes()[7] = std::byte{42};

  MappedFile moved = std::move(*scratch);
  EXPECT_EQ(0u, scratch->size());
  EXPECT_FALSE(scratch->writable());
  ASSERT_EQ(4096u, moved.size());
  EXPECT_TRUE(moved.writable());
  EXPECT_EQ(std::byte{42}, moved.mutable_bytes()[7]);
}

TEST(MappedFileDeathTest, MutableBytesOnReadOnlyMappingChecks) {
  const std::string path = TempPath("mapped_readonly.bin");
  WriteFileBytes(path, "readonly");
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_DEATH((void)mapped->mutable_bytes(), "read-only mapping");
}

}  // namespace
}  // namespace privelet::common
