// Tests for DP-preserving post-processing and matrix serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/matrix_io.h"
#include "privelet/mechanism/postprocess.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet {
namespace {

TEST(PostprocessTest, ClampNonNegative) {
  matrix::FrequencyMatrix m({4});
  m[0] = -3.5;
  m[1] = 0.0;
  m[2] = 2.5;
  m[3] = -0.1;
  mechanism::ClampNonNegative(&m);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 2.5);
  EXPECT_DOUBLE_EQ(m[3], 0.0);
}

TEST(PostprocessTest, RoundToIntegers) {
  matrix::FrequencyMatrix m({5});
  m[0] = 1.4;
  m[1] = 1.5;
  m[2] = -1.5;
  m[3] = -0.4;
  m[4] = 7.0;
  mechanism::RoundToIntegers(&m);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 2.0);
  EXPECT_DOUBLE_EQ(m[2], -2.0);
  EXPECT_DOUBLE_EQ(m[3], -0.0);
  EXPECT_DOUBLE_EQ(m[4], 7.0);
}

TEST(PostprocessTest, ScaleToTotal) {
  matrix::FrequencyMatrix m({3});
  m[0] = 1.0;
  m[1] = 2.0;
  m[2] = 1.0;
  mechanism::ScaleToTotal(&m, 100.0);
  EXPECT_DOUBLE_EQ(m.Total(), 100.0);
  EXPECT_DOUBLE_EQ(m[1], 50.0);
}

TEST(PostprocessTest, ScaleToTotalNoOpOnNonPositive) {
  matrix::FrequencyMatrix m({2});
  m[0] = -1.0;
  m[1] = 1.0;
  mechanism::ScaleToTotal(&m, 10.0);  // total == 0: untouched
  EXPECT_DOUBLE_EQ(m[0], -1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(PostprocessTest, ClampingBiasesSparseRangeSumsUpward) {
  // Documents the warning on ClampNonNegative: on a zero matrix with
  // symmetric noise, clamping turns an unbiased full-range sum into one
  // that grows linearly with the number of covered cells.
  matrix::FrequencyMatrix m({1024});
  rng::Xoshiro256pp gen(3);
  double raw_sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng::SampleLaplace(gen, 2.0);
    raw_sum += m[i];
  }
  mechanism::ClampNonNegative(&m);
  // E[max(0, Laplace(2))] = 1, so the clamped total concentrates near
  // 1024 while the unbiased total is near 0.
  EXPECT_LT(std::abs(raw_sum), 300.0);
  EXPECT_GT(m.Total(), 700.0);
}

class MatrixIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("privelet_matrix_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(MatrixIoTest, RoundTrip) {
  matrix::FrequencyMatrix m({3, 4, 2});
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(i) * 0.5 - 3.0;
  }
  ASSERT_TRUE(matrix::WriteMatrix(path_, m).ok());
  auto loaded = matrix::ReadMatrix(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dims(), m.dims());
  EXPECT_TRUE(matrix::ValuesEqual(loaded->values(), m.values()));
}

TEST_F(MatrixIoTest, RejectsMissingFile) {
  EXPECT_EQ(matrix::ReadMatrix("/no/such/file.bin").status().code(),
            StatusCode::kIOError);
}

TEST_F(MatrixIoTest, RejectsGarbage) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a matrix", f);
    std::fclose(f);
  }
  EXPECT_EQ(matrix::ReadMatrix(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MatrixIoTest, RejectsTruncatedPayload) {
  matrix::FrequencyMatrix m({8, 8});
  ASSERT_TRUE(matrix::WriteMatrix(path_, m).ok());
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 16);
  EXPECT_FALSE(matrix::ReadMatrix(path_).ok());
}

}  // namespace
}  // namespace privelet
