// Tests for the Barak et al. Fourier marginal mechanism (related-work
// baseline, paper Sec. VIII): WHT correctness, exact marginal
// reconstruction at negligible noise, the mutual-consistency guarantee,
// calibration, and validation.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/fourier_marginals.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {
namespace {

matrix::FrequencyMatrix RandomBinaryMatrix(std::size_t d,
                                           std::uint64_t seed) {
  matrix::FrequencyMatrix m(std::vector<std::size_t>(d, 2));
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 40));
  }
  return m;
}

// Brute-force marginal of a binary matrix over `attributes`.
std::vector<double> TrueMarginal(const matrix::FrequencyMatrix& m,
                                 const std::vector<std::size_t>& attributes) {
  std::vector<double> counts(std::size_t{1} << attributes.size(), 0.0);
  const std::size_t d = m.num_dims();
  for (std::size_t flat = 0; flat < m.size(); ++flat) {
    const auto coords = m.Coords(flat);
    std::size_t y = 0;
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      if (coords[attributes[i]] == 1) y |= std::size_t{1} << i;
    }
    counts[y] += m[flat];
    (void)d;
  }
  return counts;
}

TEST(WalshHadamardTest, MatchesDirectCharacterSum) {
  std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  std::vector<double> transformed = v;
  WalshHadamardTransform(&transformed);
  for (std::size_t alpha = 0; alpha < v.size(); ++alpha) {
    double expected = 0.0;
    for (std::size_t x = 0; x < v.size(); ++x) {
      expected += (__builtin_parityll(alpha & x) ? -1.0 : 1.0) * v[x];
    }
    EXPECT_DOUBLE_EQ(transformed[alpha], expected) << "alpha " << alpha;
  }
}

TEST(WalshHadamardTest, InvolutionUpToScale) {
  std::vector<double> v = {1.0, -2.0, 0.5, 7.0};
  std::vector<double> twice = v;
  WalshHadamardTransform(&twice);
  WalshHadamardTransform(&twice);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(twice[i], 4.0 * v[i], 1e-12);
  }
}

TEST(FourierMarginalTest, HugeEpsilonRecoversTrueMarginals) {
  const auto m = RandomBinaryMatrix(5, 3);
  FourierMarginalMechanism mech({{0, 2}, {1, 3, 4}, {2}});
  auto marginals = mech.Publish(m, 1e12, 1);
  ASSERT_TRUE(marginals.ok()) << marginals.status().ToString();
  ASSERT_EQ(marginals->size(), 3u);
  for (const Marginal& marginal : *marginals) {
    const auto expected = TrueMarginal(m, marginal.attributes);
    ASSERT_EQ(marginal.counts.size(), expected.size());
    for (std::size_t y = 0; y < expected.size(); ++y) {
      EXPECT_NEAR(marginal.counts[y], expected[y], 1e-3)
          << "marginal arity " << marginal.attributes.size() << " cell " << y;
    }
  }
}

TEST(FourierMarginalTest, ClosureCountsSubsets) {
  // {{0,1}} closes to {∅, {0}, {1}, {0,1}} = 4 coefficients.
  EXPECT_EQ(FourierMarginalMechanism({{0, 1}}).NumReleasedCoefficients(), 4u);
  // Two overlapping 2-way marginals share subsets: {0,1} and {1,2} close
  // to {∅,{0},{1},{2},{0,1},{1,2}} = 6.
  EXPECT_EQ(
      FourierMarginalMechanism({{0, 1}, {1, 2}}).NumReleasedCoefficients(),
      6u);
}

TEST(FourierMarginalTest, MarginalsAreMutuallyConsistent) {
  // The headline property (Sec. VIII): marginals derived from shared noisy
  // coefficients agree exactly on common sub-marginals — at ANY noise
  // level, not just in expectation.
  const auto m = RandomBinaryMatrix(6, 7);
  FourierMarginalMechanism mech({{0, 1, 2}, {2, 3, 4}});
  auto marginals = mech.Publish(m, 0.5, 99);  // strong noise
  ASSERT_TRUE(marginals.ok());
  const Marginal& first = (*marginals)[0];   // attributes {0,1,2}
  const Marginal& second = (*marginals)[1];  // attributes {2,3,4}

  // Common sub-marginal: attribute 2. Sum out the others from each.
  double first_attr2[2] = {0.0, 0.0};
  for (std::size_t y = 0; y < first.counts.size(); ++y) {
    first_attr2[(y >> 2) & 1] += first.counts[y];  // attr 2 is bit 2
  }
  double second_attr2[2] = {0.0, 0.0};
  for (std::size_t y = 0; y < second.counts.size(); ++y) {
    second_attr2[y & 1] += second.counts[y];  // attr 2 is bit 0
  }
  EXPECT_NEAR(first_attr2[0], second_attr2[0], 1e-9);
  EXPECT_NEAR(first_attr2[1], second_attr2[1], 1e-9);

  // Totals agree too (both equal the shared noisy fhat_0).
  double total1 = 0.0, total2 = 0.0;
  for (double c : first.counts) total1 += c;
  for (double c : second.counts) total2 += c;
  EXPECT_NEAR(total1, total2, 1e-9);
}

TEST(FourierMarginalTest, DeterministicInSeed) {
  const auto m = RandomBinaryMatrix(4, 5);
  FourierMarginalMechanism mech({{0, 1}});
  auto a = mech.Publish(m, 1.0, 42);
  auto b = mech.Publish(m, 1.0, 42);
  auto c = mech.Publish(m, 1.0, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ((*a)[0].counts, (*b)[0].counts);
  EXPECT_NE((*a)[0].counts, (*c)[0].counts);
}

TEST(FourierMarginalTest, EntryNoiseVarianceMatchesBound) {
  // Zero matrix: entries are pure noise; measure against the bound.
  matrix::FrequencyMatrix m(std::vector<std::size_t>(4, 2));
  FourierMarginalMechanism mech({{0, 1}});
  const double epsilon = 1.0;
  const double bound =
      mech.MarginalEntryVarianceBound(4, 2, epsilon).value();
  std::vector<double> noise;
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    auto marginals = mech.Publish(m, epsilon, seed);
    ASSERT_TRUE(marginals.ok());
    for (double c : (*marginals)[0].counts) noise.push_back(c);
  }
  const double measured = SampleVariance(noise);
  EXPECT_LT(measured, bound * 1.2);
  EXPECT_GT(measured, bound * 0.2);  // noise is real, same order
}

TEST(FourierMarginalTest, ValidatesInput) {
  FourierMarginalMechanism mech({{0, 1}});
  matrix::FrequencyMatrix ternary({3, 2});
  EXPECT_FALSE(mech.Publish(ternary, 1.0, 1).ok());
  matrix::FrequencyMatrix binary({2, 2});
  EXPECT_FALSE(mech.Publish(binary, 0.0, 1).ok());
  FourierMarginalMechanism out_of_range({{0, 5}});
  EXPECT_FALSE(out_of_range.Publish(binary, 1.0, 1).ok());
  FourierMarginalMechanism unsorted({{1, 0}});
  EXPECT_FALSE(unsorted.Publish(binary, 1.0, 1).ok());
  FourierMarginalMechanism empty_subset(
      std::vector<std::vector<std::size_t>>{{}});
  EXPECT_FALSE(empty_subset.Publish(binary, 1.0, 1).ok());
}

}  // namespace
}  // namespace privelet::mechanism
