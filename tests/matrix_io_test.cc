// PVLM matrix files (matrix/matrix_io.h): round trip plus the defensive
// error paths — truncation, bad magic/version, corrupt headers, and
// dimension products that overflow or exceed what the file could hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/matrix_io.h"

namespace privelet {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

// A valid 2x3 matrix file to mutate from.
std::string ValidMatrixBytes() {
  matrix::FrequencyMatrix m(std::vector<std::size_t>{2, 3});
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(i) + 0.5;
  }
  const std::string path = TempPath("valid.pvlm");
  EXPECT_TRUE(matrix::WriteMatrix(path, m).ok());
  return ReadFileBytes(path);
}

std::string CraftHeader(std::uint32_t num_dims,
                        const std::vector<std::uint64_t>& dims) {
  std::string bytes = "PVLM";
  const std::uint32_t version = 1;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&num_dims), sizeof(num_dims));
  for (const std::uint64_t d : dims) {
    bytes.append(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  return bytes;
}

TEST(MatrixIoTest, RoundTrip) {
  matrix::FrequencyMatrix m(std::vector<std::size_t>{4, 2, 3});
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(i) * 0.25 - 2.0;
  }
  const std::string path = TempPath("roundtrip.pvlm");
  ASSERT_TRUE(matrix::WriteMatrix(path, m).ok());
  auto loaded = matrix::ReadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(m.dims(), loaded->dims());
  EXPECT_TRUE(matrix::ValuesEqual(m.values(), loaded->values()));
}

TEST(MatrixIoTest, MissingFileIsAnIOError) {
  auto m = matrix::ReadMatrix(TempPath("missing.pvlm"));
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(StatusCode::kIOError, m.status().code());
}

TEST(MatrixIoTest, BadMagicIsRejected) {
  std::string bytes = ValidMatrixBytes();
  bytes[0] = 'X';
  const std::string path = TempPath("magic.pvlm");
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(matrix::ReadMatrix(path).ok());
}

TEST(MatrixIoTest, UnsupportedVersionIsRejected) {
  std::string bytes = ValidMatrixBytes();
  bytes[4] = 99;  // version field
  const std::string path = TempPath("version.pvlm");
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(matrix::ReadMatrix(path).ok());
}

TEST(MatrixIoTest, EveryTruncationPrefixIsRejected) {
  const std::string bytes = ValidMatrixBytes();
  const std::string path = TempPath("trunc.pvlm");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{6}, std::size_t{10},
        std::size_t{20}, bytes.size() - 8, bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    EXPECT_FALSE(matrix::ReadMatrix(path).ok())
        << "prefix of " << keep << " bytes parsed";
  }
}

TEST(MatrixIoTest, ZeroAndExcessiveDimCountsAreRejected) {
  for (const std::uint32_t num_dims : {std::uint32_t{0}, std::uint32_t{65}}) {
    const std::string path = TempPath("dimcount.pvlm");
    WriteFileBytes(path, CraftHeader(num_dims, {}));
    EXPECT_FALSE(matrix::ReadMatrix(path).ok()) << num_dims << " dims";
  }
}

TEST(MatrixIoTest, ZeroDimensionIsRejected) {
  const std::string path = TempPath("zerodim.pvlm");
  WriteFileBytes(path, CraftHeader(2, {3, 0}));
  EXPECT_FALSE(matrix::ReadMatrix(path).ok());
}

TEST(MatrixIoTest, DimensionProductOverflowIsRejected) {
  // 2^32 * 2^32 wraps to 0 in 64 bits; a wrapped product must not turn
  // into a tiny allocation that "successfully" reads garbage.
  const std::string path = TempPath("overflow.pvlm");
  WriteFileBytes(path,
                 CraftHeader(2, {std::uint64_t{1} << 32,
                                 std::uint64_t{1} << 32}));
  auto m = matrix::ReadMatrix(path);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(std::string::npos, m.status().message().find("overflow"))
      << m.status().ToString();
}

TEST(MatrixIoTest, PayloadBeyondFileSizeIsRejected) {
  // A 2^40-cell claim in a 28-byte file must be rejected before any
  // allocation is attempted.
  const std::string path = TempPath("huge.pvlm");
  WriteFileBytes(path, CraftHeader(1, {std::uint64_t{1} << 40}));
  auto m = matrix::ReadMatrix(path);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(std::string::npos, m.status().message().find("exceeds"))
      << m.status().ToString();
}

}  // namespace
}  // namespace privelet
