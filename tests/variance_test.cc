// Statistical verification of the paper's utility guarantees: the noise
// variance of range-count answers published by each mechanism stays within
// its theoretical bound (Lemma 3 for Haar, Lemma 5 for nominal, Theorem 3
// for the HN composition, Corollary 1 for Privelet+), and the qualitative
// claims hold (Privelet beats Basic on wide queries; Basic beats Privelet
// on small domains).
#include <gtest/gtest.h>

#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/data/attribute.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::size_t kTrials = 300;

// Measures the empirical noise variance of `query` under `mechanism`
// across kTrials seeds.
double MeasureQueryNoiseVariance(const Mechanism& mechanism,
                                 const data::Schema& schema,
                                 const matrix::FrequencyMatrix& m,
                                 const query::RangeQuery& q) {
  const double truth =
      query::QueryEvaluator(schema, m).Answer(q);
  std::vector<double> noise;
  noise.reserve(kTrials);
  for (std::size_t seed = 0; seed < kTrials; ++seed) {
    auto noisy = mechanism.Publish(schema, m, kEpsilon, seed);
    EXPECT_TRUE(noisy.ok());
    noise.push_back(query::QueryEvaluator(schema, *noisy).Answer(q) - truth);
  }
  return SampleVariance(noise);
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 30));
  }
  return m;
}

// With 300 samples, the sample variance of (sums of) Laplace noise
// concentrates well within a factor of ~1.4 of its mean; the theoretical
// bounds additionally have slack, so bound * 1.5 is a safe ceiling that
// still catches calibration mistakes (which are off by >= 2x in practice).
constexpr double kStatSlack = 1.5;

TEST(VarianceBoundTest, HaarLemma3OnFullRange) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 64));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 1);
  PriveletMechanism privelet;
  const double bound = privelet.NoiseVarianceBound(schema, kEpsilon).value();

  query::RangeQuery full(1);
  ASSERT_TRUE(full.SetRange(schema, 0, 0, 63).ok());
  EXPECT_LT(MeasureQueryNoiseVariance(privelet, schema, m, full),
            bound * kStatSlack);

  query::RangeQuery half(1);
  ASSERT_TRUE(half.SetRange(schema, 0, 11, 45).ok());
  EXPECT_LT(MeasureQueryNoiseVariance(privelet, schema, m, half),
            bound * kStatSlack);
}

TEST(VarianceBoundTest, NominalLemma5OnSubtreeQueries) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced({4, 4}).value()));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 2);
  PriveletMechanism privelet;
  const double bound = privelet.NoiseVarianceBound(schema, kEpsilon).value();

  const data::Hierarchy& h = schema.attribute(0).hierarchy();
  // One query per hierarchy node (the paper's nominal query model).
  for (std::size_t node = 1; node < h.num_nodes(); node += 3) {
    query::RangeQuery q(1);
    ASSERT_TRUE(q.SetHierarchyNode(schema, 0, node).ok());
    EXPECT_LT(MeasureQueryNoiseVariance(privelet, schema, m, q),
              bound * kStatSlack)
        << "node " << node;
  }
}

TEST(VarianceBoundTest, HnTheorem3OnMixedSchema) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("O", 16));
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced({2, 3}).value()));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 3);
  PriveletMechanism privelet;
  const double bound = privelet.NoiseVarianceBound(schema, kEpsilon).value();

  query::RangeQuery q(2);
  ASSERT_TRUE(q.SetRange(schema, 0, 2, 13).ok());
  ASSERT_TRUE(q.SetHierarchyNode(schema, 1, 1).ok());
  EXPECT_LT(MeasureQueryNoiseVariance(privelet, schema, m, q),
            bound * kStatSlack);
}

TEST(VarianceBoundTest, PriveletPlusCorollary1) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Small", 4));   // in SA
  attrs.push_back(data::Attribute::Ordinal("Large", 32));  // wavelet
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 4);
  PriveletPlusMechanism plus({"Small"});
  const double bound = plus.NoiseVarianceBound(schema, kEpsilon).value();

  query::RangeQuery q(2);
  ASSERT_TRUE(q.SetRange(schema, 0, 0, 3).ok());
  ASSERT_TRUE(q.SetRange(schema, 1, 3, 28).ok());
  EXPECT_LT(MeasureQueryNoiseVariance(plus, schema, m, q),
            bound * kStatSlack);
}

TEST(VarianceBoundTest, BasicVarianceGrowsWithCoverage) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 128));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 5);
  BasicMechanism basic;

  query::RangeQuery narrow(1), wide(1);
  ASSERT_TRUE(narrow.SetRange(schema, 0, 0, 3).ok());     // 4 cells
  ASSERT_TRUE(wide.SetRange(schema, 0, 0, 127).ok());     // 128 cells
  const double narrow_var =
      MeasureQueryNoiseVariance(basic, schema, m, narrow);
  const double wide_var = MeasureQueryNoiseVariance(basic, schema, m, wide);
  // Theory: 8k/ε²: 32 vs 1024. Demand at least a 10x observed gap.
  EXPECT_GT(wide_var / narrow_var, 10.0);
  EXPECT_LT(wide_var, 8.0 * 128.0 * kStatSlack);
  EXPECT_LT(narrow_var, 8.0 * 4.0 * kStatSlack);
}

TEST(VarianceBoundTest, PriveletBeatsBasicOnWideQueries) {
  // The paper's headline: on large domains and wide ranges, Privelet's
  // polylog variance beats Basic's Θ(m).
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 1024));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 6);

  query::RangeQuery wide(1);
  ASSERT_TRUE(wide.SetRange(schema, 0, 0, 1023).ok());
  const double basic_var =
      MeasureQueryNoiseVariance(BasicMechanism(), schema, m, wide);
  const double privelet_var =
      MeasureQueryNoiseVariance(PriveletMechanism(), schema, m, wide);
  EXPECT_LT(privelet_var, basic_var / 2.0);
}

TEST(VarianceBoundTest, BasicBeatsPriveletOnTinyDomains) {
  // Sec. VI-D's motivation for the hybrid: on small domains Basic wins.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 8));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 7);

  query::RangeQuery q(1);
  ASSERT_TRUE(q.SetRange(schema, 0, 1, 5).ok());
  const double basic_var =
      MeasureQueryNoiseVariance(BasicMechanism(), schema, m, q);
  const double privelet_var =
      MeasureQueryNoiseVariance(PriveletMechanism(), schema, m, q);
  EXPECT_LT(basic_var, privelet_var);
}

}  // namespace
}  // namespace privelet::mechanism
