// Tests for the novel nominal wavelet transform (paper Sec. V), anchored on
// the paper's Fig. 3 worked example, plus round-trip, mean-subtraction and
// weight-function properties over random hierarchies.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "privelet/data/hierarchy.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::wavelet {
namespace {

std::shared_ptr<const data::Hierarchy> Fig3Hierarchy() {
  // Root with 2 children, each with 3 leaf children (h = 3).
  return std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Balanced({2, 3}).value());
}

TEST(NominalTest, PaperFigure3Coefficients) {
  // M = [9, 3, 6, 2, 8, 2]; expected coefficients (level order):
  //   c0 = 30 (base), c1 = 3, c2 = -3, c3..c8 = 3, -3, 0, -2, 4, -2.
  NominalTransform transform(Fig3Hierarchy());
  ASSERT_EQ(transform.input_size(), 6u);
  ASSERT_EQ(transform.coefficient_count(), 9u);
  const std::vector<double> input = {9, 3, 6, 2, 8, 2};
  std::vector<double> coeffs(9);
  transform.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[0], 30.0);
  EXPECT_DOUBLE_EQ(coeffs[1], 3.0);
  EXPECT_DOUBLE_EQ(coeffs[2], -3.0);
  EXPECT_DOUBLE_EQ(coeffs[3], 3.0);
  EXPECT_DOUBLE_EQ(coeffs[4], -3.0);
  EXPECT_DOUBLE_EQ(coeffs[5], 0.0);
  EXPECT_DOUBLE_EQ(coeffs[6], -2.0);
  EXPECT_DOUBLE_EQ(coeffs[7], 4.0);
  EXPECT_DOUBLE_EQ(coeffs[8], -2.0);
}

TEST(NominalTest, PaperExample3Reconstruction) {
  // Example 3: v1 = c3 + c0/2/3 + c1/3 = 3 + 5 + 1 = 9.
  NominalTransform transform(Fig3Hierarchy());
  const std::vector<double> input = {9, 3, 6, 2, 8, 2};
  std::vector<double> coeffs(9);
  transform.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[3] + coeffs[0] / 2.0 / 3.0 + coeffs[1] / 3.0, 9.0);
  std::vector<double> output(6);
  transform.Inverse(coeffs.data(), output.data());
  EXPECT_DOUBLE_EQ(output[0], 9.0);
}

TEST(NominalTest, OverCompleteness) {
  // m' - m = number of internal nodes of H (paper Sec. V-A).
  NominalTransform transform(Fig3Hierarchy());
  EXPECT_EQ(transform.coefficient_count() - transform.input_size(),
            transform.hierarchy().num_internal_nodes());
}

TEST(NominalTest, WeightsMatchWNom) {
  NominalTransform transform(Fig3Hierarchy());
  const auto& w = transform.weights();
  EXPECT_DOUBLE_EQ(w[0], 1.0);  // base
  // c1, c2: parent is the root, fanout 2 -> 2/(2*2-2) = 1.
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  // c3..c8: parents have fanout 3 -> 3/4.
  for (std::size_t i = 3; i < 9; ++i) EXPECT_DOUBLE_EQ(w[i], 0.75);
}

TEST(NominalTest, PAndHFactors) {
  NominalTransform transform(Fig3Hierarchy());
  EXPECT_DOUBLE_EQ(transform.p_factor(), 3.0);  // hierarchy height
  EXPECT_DOUBLE_EQ(transform.h_factor(), 4.0);
}

TEST(NominalTest, SiblingGroupsSumToZero) {
  // Exact coefficients already satisfy the zero-sum property the mean
  // subtraction enforces on noisy ones.
  NominalTransform transform(Fig3Hierarchy());
  const std::vector<double> input = {9, 3, 6, 2, 8, 2};
  std::vector<double> coeffs(9);
  transform.Forward(input.data(), coeffs.data());
  EXPECT_DOUBLE_EQ(coeffs[1] + coeffs[2], 0.0);
  EXPECT_DOUBLE_EQ(coeffs[3] + coeffs[4] + coeffs[5], 0.0);
  EXPECT_DOUBLE_EQ(coeffs[6] + coeffs[7] + coeffs[8], 0.0);
}

TEST(NominalTest, RefineIsNoOpOnExactCoefficients) {
  NominalTransform transform(Fig3Hierarchy());
  const std::vector<double> input = {9, 3, 6, 2, 8, 2};
  std::vector<double> coeffs(9);
  transform.Forward(input.data(), coeffs.data());
  std::vector<double> refined = coeffs;
  transform.Refine(refined.data());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    EXPECT_NEAR(refined[i], coeffs[i], 1e-12);
  }
}

TEST(NominalTest, RefineZeroesSiblingGroupMeans) {
  NominalTransform transform(Fig3Hierarchy());
  // Arbitrary "noisy" coefficients.
  std::vector<double> coeffs = {30.5, 4.2, -2.1, 3.3, -2.6, 0.4, -1.8, 4.4, -2.5};
  transform.Refine(coeffs.data());
  EXPECT_NEAR(coeffs[1] + coeffs[2], 0.0, 1e-12);
  EXPECT_NEAR(coeffs[3] + coeffs[4] + coeffs[5], 0.0, 1e-12);
  EXPECT_NEAR(coeffs[6] + coeffs[7] + coeffs[8], 0.0, 1e-12);
  // Base coefficient untouched.
  EXPECT_DOUBLE_EQ(coeffs[0], 30.5);
}

TEST(NominalTest, RefinePreservesSubtreeSumsUpToParentShare) {
  // After refinement, Inverse still maps coefficients to leaf values whose
  // total equals the base coefficient.
  NominalTransform transform(Fig3Hierarchy());
  std::vector<double> coeffs = {30.5, 4.2, -2.1, 3.3, -2.6, 0.4, -1.8, 4.4, -2.5};
  transform.Refine(coeffs.data());
  std::vector<double> leaves(6);
  transform.Inverse(coeffs.data(), leaves.data());
  double total = 0.0;
  for (double v : leaves) total += v;
  EXPECT_NEAR(total, 30.5, 1e-9);
}

TEST(NominalTest, LinearityOfForward) {
  NominalTransform transform(Fig3Hierarchy());
  rng::Xoshiro256pp gen(17);
  std::vector<double> x(6), y(6), combo(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x[i] = static_cast<double>(gen.NextUint64InRange(0, 30));
    y[i] = static_cast<double>(gen.NextUint64InRange(0, 30));
    combo[i] = 2.0 * x[i] - y[i];
  }
  std::vector<double> tx(9), ty(9), tcombo(9);
  transform.Forward(x.data(), tx.data());
  transform.Forward(y.data(), ty.data());
  transform.Forward(combo.data(), tcombo.data());
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(tcombo[i], 2.0 * tx[i] - ty[i], 1e-9);
  }
}

// Round-trip and invariants across random hierarchies.
class NominalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

data::HierarchySpec RandomSpec(rng::Xoshiro256pp& gen, std::size_t depth) {
  data::HierarchySpec spec;
  if (depth == 0) return spec;
  const std::size_t fanout = gen.NextUint64InRange(2, 5);
  for (std::size_t i = 0; i < fanout; ++i) {
    spec.children.push_back(RandomSpec(gen, depth - 1));
  }
  return spec;
}

TEST_P(NominalPropertyTest, RoundTripAndGroupSums) {
  rng::Xoshiro256pp gen(GetParam());
  const std::size_t depth = gen.NextUint64InRange(1, 3);
  auto hierarchy = data::Hierarchy::FromSpec(RandomSpec(gen, depth));
  ASSERT_TRUE(hierarchy.ok());
  auto shared =
      std::make_shared<const data::Hierarchy>(std::move(hierarchy).value());
  NominalTransform transform(shared);

  std::vector<double> input(transform.input_size());
  for (auto& v : input) {
    v = static_cast<double>(gen.NextUint64InRange(0, 100));
  }
  std::vector<double> coeffs(transform.coefficient_count());
  transform.Forward(input.data(), coeffs.data());

  // Every sibling group of exact coefficients sums to zero.
  for (std::size_t id = 0; id < shared->num_nodes(); ++id) {
    const auto& children = shared->node(id).children;
    if (children.empty()) continue;
    double sum = 0.0;
    for (std::size_t child : children) sum += coeffs[child];
    EXPECT_NEAR(sum, 0.0, 1e-9);
  }

  // Inverse recovers the input exactly.
  std::vector<double> output(transform.input_size());
  transform.Inverse(coeffs.data(), output.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(output[i], input[i], 1e-9);
  }

  // Base coefficient = total; weights positive with the WNom form.
  double total = 0.0;
  for (double v : input) total += v;
  EXPECT_NEAR(coeffs[0], total, 1e-9);
  for (double w : transform.weights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);  // f/(2f-2) <= 1 for f >= 2, base weight 1
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NominalPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace privelet::wavelet
