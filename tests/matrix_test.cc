// Tests for the dense frequency matrix and the d-dimensional prefix-sum
// tables, including randomized cross-checks against brute force.
#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <utility>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/data/table.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/prefix_sum.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::matrix {
namespace {

TEST(FrequencyMatrixTest, ConstructionZeroFills) {
  FrequencyMatrix m({3, 4});
  EXPECT_EQ(m.num_dims(), 2u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(FrequencyMatrixDeathTest, DimensionProductOverflowAborts) {
  // Regression: the total-cell computation must use checked
  // multiplication instead of wrapping and allocating a tiny buffer.
  const std::size_t big = std::numeric_limits<std::size_t>::max() / 2 + 1;
  EXPECT_DEATH(FrequencyMatrix({big, 2}), "dimension product overflow");
}

TEST(FrequencyMatrixTest, ScratchBackedMatrixRoundTrips) {
  auto scratch = FrequencyMatrix::CreateScratch({16, 8});
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  EXPECT_TRUE(scratch->is_scratch());
  ASSERT_EQ(scratch->size(), 128u);
  for (std::size_t i = 0; i < scratch->size(); ++i) {
    ASSERT_EQ((*scratch)[i], 0.0) << "scratch not zero-filled at " << i;
    (*scratch)[i] = 0.5 * static_cast<double>(i);
  }
  // Dropping resident pages must not lose data (file-backed scratch).
  scratch->ReleaseResidency();
  for (std::size_t i = 0; i < scratch->size(); ++i) {
    ASSERT_EQ((*scratch)[i], 0.5 * static_cast<double>(i));
  }
}

TEST(FrequencyMatrixTest, ScratchCopiesLandOwned) {
  auto scratch = FrequencyMatrix::CreateScratch({4, 4});
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  for (std::size_t i = 0; i < scratch->size(); ++i) {
    (*scratch)[i] = static_cast<double>(i);
  }
  const FrequencyMatrix copy(*scratch);
  EXPECT_FALSE(copy.is_scratch());
  EXPECT_TRUE(ValuesEqual(copy.values(), scratch->values()));
  // Moves transfer the scratch backing as-is.
  const FrequencyMatrix moved(std::move(*scratch));
  EXPECT_TRUE(moved.is_scratch());
  EXPECT_TRUE(ValuesEqual(copy.values(), moved.values()));
}

TEST(FrequencyMatrixTest, ScratchInMissingDirectoryFails) {
  auto scratch = FrequencyMatrix::CreateScratch(
      {4, 4}, testing::TempDir() + "/no_such_scratch_dir/deeper");
  ASSERT_FALSE(scratch.ok());
}

TEST(FrequencyMatrixTest, FlatIndexIsRowMajor) {
  FrequencyMatrix m({2, 3, 4});
  EXPECT_EQ(m.Stride(0), 12u);
  EXPECT_EQ(m.Stride(1), 4u);
  EXPECT_EQ(m.Stride(2), 1u);
  const std::array<std::size_t, 3> coords = {1, 2, 3};
  EXPECT_EQ(m.FlatIndex(coords), 1u * 12 + 2u * 4 + 3u);
}

TEST(FrequencyMatrixTest, CoordsInvertsFlatIndex) {
  FrequencyMatrix m({3, 5, 2});
  for (std::size_t flat = 0; flat < m.size(); ++flat) {
    EXPECT_EQ(m.FlatIndex(m.Coords(flat)), flat);
  }
}

TEST(FrequencyMatrixTest, GatherScatterRoundTrip) {
  FrequencyMatrix m({3, 4, 5});
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<double>(i);
  for (std::size_t axis = 0; axis < 3; ++axis) {
    FrequencyMatrix copy({3, 4, 5});
    std::vector<double> line(m.dim(axis));
    for (std::size_t l = 0; l < m.NumLines(axis); ++l) {
      m.GatherLine(axis, l, line.data());
      copy.ScatterLine(axis, l, line.data());
    }
    EXPECT_TRUE(matrix::ValuesEqual(copy.values(), m.values()))
        << "axis " << axis;
  }
}

TEST(FrequencyMatrixTest, LineNumberingStableAcrossAxisResize) {
  // Lines along axis 0 must correspond between a {2,3} and a {5,3} matrix
  // (the HN transform relies on this when an axis grows).
  FrequencyMatrix small({2, 3});
  FrequencyMatrix large({5, 3});
  for (std::size_t line = 0; line < small.NumLines(0); ++line) {
    // Base offsets share the same "other axis" coordinate.
    const auto small_coords = small.Coords(small.LineBase(0, line));
    const auto large_coords = large.Coords(large.LineBase(0, line));
    EXPECT_EQ(small_coords[1], large_coords[1]);
    EXPECT_EQ(small_coords[0], 0u);
    EXPECT_EQ(large_coords[0], 0u);
  }
}

TEST(FrequencyMatrixTest, FromTableCountsTuples) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 2));
  attrs.push_back(data::Attribute::Ordinal("B", 3));
  data::Table table((data::Schema(std::move(attrs))));
  ASSERT_TRUE(table.AppendRow({0, 1}).ok());
  ASSERT_TRUE(table.AppendRow({0, 1}).ok());
  ASSERT_TRUE(table.AppendRow({1, 2}).ok());
  const FrequencyMatrix m = FrequencyMatrix::FromTable(table);
  EXPECT_EQ(m.dims(), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(m.At(std::array<std::size_t, 2>{0, 1}), 2.0);
  EXPECT_EQ(m.At(std::array<std::size_t, 2>{1, 2}), 1.0);
  EXPECT_EQ(m.At(std::array<std::size_t, 2>{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(m.Total(), 3.0);
}

TEST(PrefixSumTest, OneDimensional) {
  FrequencyMatrix m({5});
  for (std::size_t i = 0; i < 5; ++i) m[i] = static_cast<double>(i + 1);
  PrefixSumTable<std::int64_t> table(m);
  const std::array<std::size_t, 1> lo0 = {0}, hi4 = {4}, lo2 = {2}, hi2 = {2};
  EXPECT_EQ(table.RangeSum(lo0, hi4), 15);
  EXPECT_EQ(table.RangeSum(lo2, hi2), 3);
  EXPECT_EQ(table.RangeSum(lo2, hi4), 12);
}

TEST(PrefixSumTest, TwoDimensionalCorners) {
  FrequencyMatrix m({2, 2});
  m.At(std::array<std::size_t, 2>{0, 0}) = 1.0;
  m.At(std::array<std::size_t, 2>{0, 1}) = 2.0;
  m.At(std::array<std::size_t, 2>{1, 0}) = 3.0;
  m.At(std::array<std::size_t, 2>{1, 1}) = 4.0;
  PrefixSumTable<std::int64_t> table(m);
  const std::array<std::size_t, 2> zz = {0, 0}, oo = {1, 1}, oz = {1, 0};
  EXPECT_EQ(table.RangeSum(zz, oo), 10);
  EXPECT_EQ(table.RangeSum(oz, oo), 7);   // bottom row
  EXPECT_EQ(table.RangeSum(zz, oz), 4);   // left column
  EXPECT_EQ(table.RangeSum(oz, oz), 3);   // single cell
}

// Property sweep: random matrices of random dimensionality; every random
// box's prefix-sum answer equals brute force, for both accumulators.
class PrefixSumPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PrefixSumPropertyTest, MatchesBruteForce) {
  rng::Xoshiro256pp gen(GetParam());
  const std::size_t d = gen.NextUint64InRange(1, 4);
  std::vector<std::size_t> dims(d);
  for (auto& dim : dims) dim = gen.NextUint64InRange(1, 6);
  FrequencyMatrix m(dims);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 9));
  }
  PrefixSumTable<std::int64_t> exact(m);
  PrefixSumTable<long double> real(m);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> lo(d), hi(d);
    for (std::size_t a = 0; a < d; ++a) {
      lo[a] = gen.NextUint64InRange(0, dims[a] - 1);
      hi[a] = gen.NextUint64InRange(lo[a], dims[a] - 1);
    }
    // Brute force.
    std::int64_t expected = 0;
    std::vector<std::size_t> coords = lo;
    while (true) {
      expected += static_cast<std::int64_t>(m.At(coords));
      std::size_t axis = d;
      bool done = false;
      while (axis-- > 0) {
        if (coords[axis] < hi[axis]) {
          ++coords[axis];
          break;
        }
        coords[axis] = lo[axis];
        if (axis == 0) done = true;
      }
      if (done) break;
    }
    EXPECT_EQ(exact.RangeSum(lo, hi), expected);
    EXPECT_NEAR(static_cast<double>(real.RangeSum(lo, hi)),
                static_cast<double>(expected), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSumPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace privelet::matrix
