// Tests isolating the mean-subtraction refinement's contribution to
// Lemma 5: refining noisy nominal coefficients strictly reduces the noise
// variance of reconstructed range sums, and never changes what exact
// coefficients reconstruct to.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/data/hierarchy.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::wavelet {
namespace {

std::shared_ptr<const data::Hierarchy> WideHierarchy() {
  return std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Balanced({4, 4}).value());
}

// Reconstruct leaves from coefficients with / without Refine and return
// the variance of a subtree sum's noise across many noise draws.
struct RefinementEffect {
  double with_refine;
  double without_refine;
};

RefinementEffect MeasureSubtreeSumVariance(std::size_t group_index) {
  auto hierarchy = WideHierarchy();
  NominalTransform transform(hierarchy);
  const std::size_t k = transform.coefficient_count();
  const std::size_t leaves = transform.input_size();

  // Exact coefficients of some data.
  std::vector<double> data(leaves, 10.0);
  std::vector<double> exact(k);
  transform.Forward(data.data(), exact.data());

  const auto& group =
      hierarchy->node(hierarchy->NodesAtLevel(2)[group_index]);
  auto subtree_sum = [&](const std::vector<double>& leaf_values) {
    double total = 0.0;
    for (std::size_t leaf = group.leaf_begin; leaf < group.leaf_end;
         ++leaf) {
      total += leaf_values[leaf];
    }
    return total;
  };

  rng::Xoshiro256pp gen(5);
  std::vector<double> noisy(k), reconstructed(leaves);
  std::vector<double> with_refine, without_refine;
  const double true_sum = 10.0 * static_cast<double>(group.leaf_end -
                                                     group.leaf_begin);
  const auto& w = transform.weights();
  for (int trial = 0; trial < 4000; ++trial) {
    for (std::size_t j = 0; j < k; ++j) {
      noisy[j] = exact[j] + rng::SampleLaplace(gen, 1.0 / w[j]);
    }
    std::vector<double> refined = noisy;
    transform.Refine(refined.data());
    transform.Inverse(refined.data(), reconstructed.data());
    with_refine.push_back(subtree_sum(reconstructed) - true_sum);
    transform.Inverse(noisy.data(), reconstructed.data());
    without_refine.push_back(subtree_sum(reconstructed) - true_sum);
  }
  return {SampleVariance(with_refine), SampleVariance(without_refine)};
}

TEST(RefinementTest, MeanSubtractionReducesSubtreeSumVariance) {
  for (std::size_t group = 0; group < 4; ++group) {
    const RefinementEffect effect = MeasureSubtreeSumVariance(group);
    // Lemma 5's proof relies on refined sibling groups summing to zero;
    // without it, each sibling's share of the group's noise leaks into
    // every subtree sum. Expect a strict, sizable reduction.
    EXPECT_LT(effect.with_refine, 0.8 * effect.without_refine)
        << "group " << group;
  }
}

TEST(RefinementTest, RefinedSubtreeVarianceRespectsLemma5) {
  // With per-coefficient noise variance (sigma/W)^2 where sigma^2 = 2
  // (Laplace magnitude 1/W), Lemma 5 bounds the refined subtree-sum
  // variance by 4*sigma^2 = 8.
  for (std::size_t group = 0; group < 4; ++group) {
    const RefinementEffect effect = MeasureSubtreeSumVariance(group);
    EXPECT_LT(effect.with_refine, 8.0 * 1.3) << "group " << group;
  }
}

TEST(RefinementTest, RefineCommutesWithExactReconstruction) {
  // On exact coefficients Refine is a no-op, so reconstruction must be
  // unchanged; on noisy coefficients Refine must not move the base
  // coefficient (the total).
  auto hierarchy = WideHierarchy();
  NominalTransform transform(hierarchy);
  rng::Xoshiro256pp gen(9);
  std::vector<double> data(transform.input_size());
  for (auto& v : data) {
    v = static_cast<double>(gen.NextUint64InRange(0, 50));
  }
  std::vector<double> coeffs(transform.coefficient_count());
  transform.Forward(data.data(), coeffs.data());
  std::vector<double> refined = coeffs;
  transform.Refine(refined.data());
  std::vector<double> a(transform.input_size()), b(transform.input_size());
  transform.Inverse(coeffs.data(), a.data());
  transform.Inverse(refined.data(), b.data());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

}  // namespace
}  // namespace privelet::wavelet
