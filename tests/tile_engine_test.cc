// The tiled/naive engine contract: both line engines perform identical
// floating-point work per line, so HN transforms, prefix-sum tables, and
// whole published releases must be bit-identical between the engines for
// every tile size — including degenerate shapes (axes of size 1,
// non-power-of-two ordinal domains, single-axis matrices) and a 4-D cube
// mixing Haar, identity, and nominal axes. Also pins the TileBuffer
// gather/scatter round trip and the NoiseStreamCursor's index-for-index
// equivalence with the sharded noise loops.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "privelet/common/aligned_buffer.h"
#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/prefix_sum.h"
#include "privelet/matrix/tile_buffer.h"
#include "privelet/mechanism/noise.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet {
namespace {

constexpr std::size_t kTileSizes[] = {1, 8, 64};

matrix::EngineOptions Tiled(std::size_t tile) {
  return matrix::MakeEngineOptions(matrix::LineEngine::kTiled, tile);
}

matrix::EngineOptions Naive() {
  return matrix::MakeEngineOptions(matrix::LineEngine::kNaive);
}

matrix::FrequencyMatrix RandomMatrix(std::vector<std::size_t> dims,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(std::move(dims));
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 97));
  }
  return m;
}

// The awkward-shape gallery: size-1 axes in every position, non-power-of-
// two ordinal domains, 1-D edge cases, and shapes with non-trivial strides
// on both sides of the transformed axis.
std::vector<data::Schema> AwkwardSchemas() {
  std::vector<data::Schema> schemas;
  auto ordinal = [](const char* name, std::size_t n) {
    return data::Attribute::Ordinal(name, n);
  };
  {
    std::vector<data::Attribute> a;
    a.push_back(ordinal("A", 1));
    schemas.emplace_back(std::move(a));
  }
  {
    std::vector<data::Attribute> a;
    a.push_back(ordinal("A", 37));
    schemas.emplace_back(std::move(a));
  }
  {
    std::vector<data::Attribute> a;
    a.push_back(ordinal("A", 1));
    a.push_back(ordinal("B", 13));
    a.push_back(ordinal("C", 1));
    schemas.emplace_back(std::move(a));
  }
  {
    std::vector<data::Attribute> a;
    a.push_back(ordinal("A", 5));
    a.push_back(ordinal("B", 1));
    a.push_back(ordinal("C", 9));
    schemas.emplace_back(std::move(a));
  }
  {
    std::vector<data::Attribute> a;
    a.push_back(ordinal("A", 21));
    a.push_back(data::Attribute::Nominal(
        "Nom", data::Hierarchy::Balanced({3, 2}).value()));
    schemas.emplace_back(std::move(a));
  }
  return schemas;
}

// 4-D cube mixing a Haar axis, an identity axis (via the SA set), a
// nominal axis, and a non-power-of-two Haar axis.
data::Schema MixedCubeSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 16));
  attrs.push_back(data::Attribute::Ordinal("Sa", 6));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({4, 4}).value()));
  attrs.push_back(data::Attribute::Ordinal("Odd", 11));
  return data::Schema(std::move(attrs));
}

void ExpectEnginesAgree(const data::Schema& schema,
                        const std::vector<std::size_t>& identity_axes,
                        std::uint64_t seed) {
  auto transform = wavelet::HnTransform::Create(schema, identity_axes);
  ASSERT_TRUE(transform.ok()) << transform.status().ToString();
  const matrix::FrequencyMatrix m = RandomMatrix(schema.DomainSizes(), seed);

  auto naive_fwd = transform->Forward(m, nullptr, Naive());
  ASSERT_TRUE(naive_fwd.ok());
  auto naive_inv = transform->Inverse(*naive_fwd, nullptr, Naive());
  ASSERT_TRUE(naive_inv.ok());

  for (const std::size_t tile : kTileSizes) {
    auto fwd = transform->Forward(m, nullptr, Tiled(tile));
    ASSERT_TRUE(fwd.ok());
    EXPECT_TRUE(
        matrix::ValuesEqual(naive_fwd->coeffs.values(), fwd->coeffs.values()))
        << "forward, tile " << tile;
    auto inv = transform->Inverse(*fwd, nullptr, Tiled(tile));
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(matrix::ValuesEqual(naive_inv->values(), inv->values()))
        << "inverse, tile " << tile;
  }

  // The round trip reconstructs the data (noise-free coefficients).
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m[i], (*naive_inv)[i], 1e-6) << "round trip at " << i;
  }
}

TEST(TileEngineTest, AwkwardShapesAgreeAcrossEnginesAndTiles) {
  std::uint64_t seed = 11;
  for (const data::Schema& schema : AwkwardSchemas()) {
    SCOPED_TRACE(schema.attribute(0).name() + std::string(" d=") +
                 std::to_string(schema.num_attributes()));
    ExpectEnginesAgree(schema, {}, seed++);
  }
}

TEST(TileEngineTest, MixedCubeAgreesAcrossEnginesAndTiles) {
  ExpectEnginesAgree(MixedCubeSchema(), /*identity_axes=*/{1}, 29);
}

void ExpectPublishBitIdenticalAcrossEngines(
    const data::Schema& schema, mechanism::PriveletPlusMechanism& mech,
    std::uint64_t data_seed) {
  const matrix::FrequencyMatrix m = RandomMatrix(schema.DomainSizes(),
                                                 data_seed);
  mech.set_engine_options(Naive());
  auto reference = mech.Publish(schema, m, /*epsilon=*/0.9, /*seed=*/41);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const std::size_t tile : kTileSizes) {
    mech.set_engine_options(Tiled(tile));
    auto release = mech.Publish(schema, m, 0.9, 41);
    ASSERT_TRUE(release.ok());
    EXPECT_TRUE(matrix::ValuesEqual(reference->values(), release->values()))
        << "tile " << tile;
  }
}

TEST(TileEngineTest, PublishIsBitIdenticalAcrossEnginesAndTiles) {
  mechanism::PriveletPlusMechanism mech({"Sa"});
  ExpectPublishBitIdenticalAcrossEngines(MixedCubeSchema(), mech, 3);
}

TEST(TileEngineTest, PublishWithNominalLastAxisExercisesStagedRefine) {
  // Last axis nominal (and no SA): the first inverse pass runs the staged
  // slab branch — copy panel, fused noise, per-line Refine — which must
  // still match the naive separate-sweep reference bit-for-bit.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 24));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({4, 4}).value()));
  const data::Schema schema(std::move(attrs));
  mechanism::PriveletPlusMechanism mech;
  ExpectPublishBitIdenticalAcrossEngines(schema, mech, 13);
}

TEST(TileEngineTest, PrefixSumsAgreeAcrossEnginesAndTiles) {
  for (const auto& dims : std::vector<std::vector<std::size_t>>{
           {1}, {37}, {1, 13, 1}, {5, 1, 9}, {16, 6, 21, 11}}) {
    const matrix::FrequencyMatrix m = RandomMatrix(dims, 7);
    const matrix::PrefixSumTable<long double> naive(m, nullptr, Naive());
    rng::Xoshiro256pp gen(17);
    std::vector<std::vector<std::size_t>> lows, highs;
    for (int probe = 0; probe < 64; ++probe) {
      std::vector<std::size_t> lo(m.num_dims()), hi(m.num_dims());
      for (std::size_t a = 0; a < m.num_dims(); ++a) {
        lo[a] = gen.NextUint64InRange(0, m.dim(a) - 1);
        hi[a] = gen.NextUint64InRange(lo[a], m.dim(a) - 1);
      }
      lows.push_back(std::move(lo));
      highs.push_back(std::move(hi));
    }
    for (const std::size_t tile : kTileSizes) {
      const matrix::PrefixSumTable<long double> tiled(m, nullptr, Tiled(tile));
      for (std::size_t p = 0; p < lows.size(); ++p) {
        ASSERT_EQ(naive.RangeSum(lows[p], highs[p]),
                  tiled.RangeSum(lows[p], highs[p]))
            << "tile " << tile << ", probe " << p;
      }
    }
  }
}

TEST(TileEngineTest, TileBufferRoundTripsEveryAxis) {
  const matrix::FrequencyMatrix m = RandomMatrix({5, 4, 6}, 23);
  for (std::size_t axis = 0; axis < m.num_dims(); ++axis) {
    for (const std::size_t tile : {1u, 3u, 7u, 64u}) {
      matrix::FrequencyMatrix copy(m.dims());
      matrix::TileBuffer buffer;
      const std::size_t lines = m.NumLines(axis);
      for (std::size_t first = 0; first < lines; first += tile) {
        const std::size_t count = std::min<std::size_t>(tile, lines - first);
        buffer.Gather(m, axis, first, count);
        // The panel is interleaved: element k of panel line b at
        // panel[k * count + b].
        for (std::size_t b = 0; b < count; ++b) {
          std::vector<double> line(m.dim(axis));
          m.GatherLine(axis, first + b, line.data());
          for (std::size_t k = 0; k < line.size(); ++k) {
            ASSERT_EQ(line[k], buffer.panel()[k * count + b])
                << "axis " << axis << " line " << first + b << " k " << k;
          }
        }
        buffer.Scatter(copy, axis, first, count);
      }
      EXPECT_TRUE(matrix::ValuesEqual(m.values(), copy.values()))
          << "axis " << axis;
    }
  }
}

TEST(TileEngineTest, PanelsScratchAndMatrixStorageAre64ByteAligned) {
  // The vector kernels are written with unaligned loads, but the storage
  // contract (common/aligned_buffer.h) promises panels, pooled scratch,
  // and vector-backed matrix values on 64-byte boundaries — one cache
  // line, and the widest register the dispatcher selects — so panel rows
  // never split a line they don't have to. Growth must re-establish the
  // alignment, not just the first allocation.
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
  };
  matrix::TileBuffer buffer;
  for (const std::size_t line_len : {1u, 7u, 64u, 1000u}) {
    EXPECT_TRUE(aligned(buffer.Prepare(line_len, 3))) << line_len;
  }
  const matrix::FrequencyMatrix m = RandomMatrix({5, 4, 6}, 23);
  buffer.Gather(m, /*axis=*/1, /*first=*/0, /*count=*/2);
  EXPECT_TRUE(aligned(buffer.panel()));

  common::AlignedBuffer<double> scratch;
  for (const std::size_t n : {3u, 100u, 4097u}) {
    EXPECT_TRUE(aligned(scratch.Grow(n))) << n;
  }

  EXPECT_TRUE(aligned(m.values().data()));
  EXPECT_TRUE(aligned(
      matrix::FrequencyMatrix::Uninitialized({9, 3}).values().data()));
}

TEST(TileEngineTest, NoiseCursorMatchesShardedLoops) {
  // Three shards and change; scattered monotone ranges must reproduce the
  // AddLaplaceNoise draws index-for-index, whatever the chunk boundaries.
  const std::size_t n = mechanism::kNoiseShardSize * 3 + 123;
  std::vector<double> reference(n, 0.0);
  mechanism::AddLaplaceNoise(reference, 1.5, /*noise_seed=*/99, nullptr);

  const std::vector<rng::Xoshiro256pp> streams =
      rng::MakeJumpStreams(99, mechanism::NumNoiseShards(n));
  // Ranges deliberately straddle shard boundaries and leave gaps (gaps
  // within a cursor's shard trigger the skip path).
  const std::size_t starts[] = {0, 500, mechanism::kNoiseShardSize - 3,
                                2 * mechanism::kNoiseShardSize + 77, n - 10};
  for (std::size_t chunk = 0; chunk + 1 < 5; ++chunk) {
    mechanism::NoiseStreamCursor cursor(streams);
    for (std::size_t i = starts[chunk]; i < starts[chunk + 1]; i += 2) {
      EXPECT_EQ(reference[i], cursor.LaplaceAt(i, 1.5)) << "index " << i;
    }
  }
}

TEST(TileEngineTest, TiledPublishDeterministicUnderThreads) {
  const data::Schema schema = MixedCubeSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema.DomainSizes(), 5);
  mechanism::PriveletPlusMechanism mech;
  mech.set_engine_options(Tiled(8));
  auto serial = mech.Publish(schema, m, 1.1, 77);
  ASSERT_TRUE(serial.ok());
  for (const std::size_t threads : {2u, 8u}) {
    common::ThreadPool pool(threads);
    mech.set_thread_pool(&pool);
    auto parallel = mech.Publish(schema, m, 1.1, 77);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(matrix::ValuesEqual(serial->values(), parallel->values()))
        << threads << " threads";
    mech.set_thread_pool(nullptr);
  }
}

}  // namespace
}  // namespace privelet
