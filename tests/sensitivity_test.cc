// Property tests for the paper's sensitivity lemmas using the empirical
// probe: Lemma 2 (Haar: 1 + log2 m), Lemma 4 (nominal: h), Theorem 2
// (HN: product of P factors), and the identity transform's factor of 1.
// For these transforms the per-entry coefficient change is
// data-independent, so the probe must match theory to rounding error.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/analysis/sensitivity.h"
#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::analysis {
namespace {

data::Schema OrdinalSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

data::Schema NominalSchema(std::vector<std::size_t> fanouts) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced(fanouts).value()));
  return data::Schema(std::move(attrs));
}

double Probe(const data::Schema& schema,
             const std::vector<std::size_t>& identity_axes = {}) {
  auto transform = wavelet::HnTransform::Create(schema, identity_axes);
  EXPECT_TRUE(transform.ok());
  auto probe = ProbeGeneralizedSensitivity(*transform, {});
  EXPECT_TRUE(probe.ok());
  return probe.value();
}

// Lemma 2: Haar's generalized sensitivity is exactly 1 + log2(m).
class HaarSensitivityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarSensitivityTest, MatchesLemma2) {
  const std::size_t m = GetParam();  // power of two
  const data::Schema schema = OrdinalSchema(m);
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const double theory = transform->GeneralizedSensitivity();
  EXPECT_NEAR(Probe(schema), theory, 1e-9 * theory);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwo, HaarSensitivityTest,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

// Lemma 4: the nominal transform's generalized sensitivity is exactly h.
TEST(NominalSensitivityTest, MatchesLemma4Height2) {
  EXPECT_NEAR(Probe(NominalSchema({5})), 2.0, 1e-9);
}

TEST(NominalSensitivityTest, MatchesLemma4Height3) {
  EXPECT_NEAR(Probe(NominalSchema({2, 3})), 3.0, 1e-9);
}

TEST(NominalSensitivityTest, MatchesLemma4Height4) {
  EXPECT_NEAR(Probe(NominalSchema({2, 2, 4})), 4.0, 1e-9);
}

TEST(NominalSensitivityTest, MatchesLemma4UnevenGroups) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::FromGroupSizes({2, 7, 3}).value()));
  const data::Schema schema(std::move(attrs));
  EXPECT_NEAR(Probe(schema), 3.0, 1e-9);
}

TEST(IdentitySensitivityTest, IsOne) {
  const data::Schema schema = OrdinalSchema(17);
  EXPECT_NEAR(Probe(schema, {0}), 1.0, 1e-12);
}

// Theorem 2: the HN transform's generalized sensitivity is the product of
// the per-axis P factors.
TEST(HnSensitivityTest, ProductOverMixedAxes) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("O", 8));             // P = 4
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced({2, 3}).value()));          // P = 3
  const data::Schema schema(std::move(attrs));
  EXPECT_NEAR(Probe(schema), 12.0, 1e-8);
}

TEST(HnSensitivityTest, ProductWithIdentityAxis) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("O", 8));             // identity: P = 1
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced({2, 2}).value()));          // P = 3
  const data::Schema schema(std::move(attrs));
  EXPECT_NEAR(Probe(schema, {0}), 3.0, 1e-8);
}

TEST(HnSensitivityTest, ThreeAxes) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("O1", 4));            // P = 3
  attrs.push_back(data::Attribute::Ordinal("O2", 2));            // P = 2
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Flat(5).value()));                   // P = 2
  const data::Schema schema(std::move(attrs));
  EXPECT_NEAR(Probe(schema), 12.0, 1e-8);
}

// Padding caveat: for non-power-of-two ordinal domains the probe can only
// reach entries inside the real domain; the theoretical bound (computed on
// the padded tree) still dominates.
TEST(HaarSensitivityTest, PaddedDomainIsUpperBound) {
  const data::Schema schema = OrdinalSchema(100);  // pads to 128, P = 8
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const double probed = Probe(schema);
  EXPECT_LE(probed, transform->GeneralizedSensitivity() + 1e-9);
  // Every real entry still touches the base + all 7 tree levels.
  EXPECT_NEAR(probed, 8.0, 1e-9);
}

TEST(ProbeTest, RejectsNonPositiveDelta) {
  const data::Schema schema = OrdinalSchema(4);
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  SensitivityProbeOptions options;
  options.delta = 0.0;
  EXPECT_FALSE(ProbeGeneralizedSensitivity(*transform, options).ok());
}

}  // namespace
}  // namespace privelet::analysis
