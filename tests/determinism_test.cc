// The threading determinism contract: for a fixed seed, every publishing
// mechanism and both directions of the HN transform produce bit-identical
// output whatever the thread pool — none (serial), 1, 2, or 8 workers.
// The schemas are sized so the coefficient/cell spaces span several noise
// shards (kNoiseShardSize = 8192), exercising the multi-stream paths, not
// just the single-shard degenerate case.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "privelet/analysis/mechanism_planner.h"
#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/prefix_sum.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/hay.h"
#include "privelet/mechanism/noise.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/mechanism/mechanism.h"
#include "privelet/query/plan_record.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/workload.h"
#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/simd/dispatch.h"
#include "privelet/storage/session_io.h"
#include "privelet/storage/snapshot.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet {
namespace {

constexpr std::size_t kPoolSizes[] = {1, 2, 8};

// Ordinal 1024 x nominal {4,4}: 16384 cells, 1024 * 21 = 21504 HN
// coefficients — both above one noise shard.
data::Schema MultiShardSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 1024));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({4, 4}).value()));
  return data::Schema(std::move(attrs));
}

data::Schema WideOrdinalSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 20'000));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 40));
  }
  return m;
}

// Publishes with no pool and with each pool size; asserts every release
// is bitwise identical to the serial one.
void ExpectPublishInvariantUnderThreads(mechanism::Mechanism& mech,
                                        const data::Schema& schema,
                                        const matrix::FrequencyMatrix& m) {
  mech.set_thread_pool(nullptr);
  auto serial = mech.Publish(schema, m, /*epsilon=*/0.8, /*seed=*/31);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (const std::size_t threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    mech.set_thread_pool(&pool);
    auto parallel = mech.Publish(schema, m, 0.8, 31);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(matrix::ValuesEqual(serial->values(), parallel->values()))
        << mech.name() << " with " << threads << " threads";
    mech.set_thread_pool(nullptr);
  }
  // Different seed still yields a different release (the pools did not
  // somehow pin the stream).
  auto other = mech.Publish(schema, m, 0.8, 32);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(matrix::ValuesEqual(serial->values(), other->values()));
}

TEST(PublishDeterminismTest, BasicAcrossThreadCounts) {
  mechanism::BasicMechanism basic;
  const data::Schema schema = MultiShardSchema();
  ExpectPublishInvariantUnderThreads(basic, schema, RandomMatrix(schema, 1));
}

TEST(PublishDeterminismTest, PriveletAcrossThreadCounts) {
  mechanism::PriveletMechanism privelet;
  const data::Schema schema = MultiShardSchema();
  ExpectPublishInvariantUnderThreads(privelet, schema,
                                     RandomMatrix(schema, 2));
}

TEST(PublishDeterminismTest, PriveletPlusAcrossThreadCounts) {
  mechanism::PriveletPlusMechanism plus({"Nom"});
  const data::Schema schema = MultiShardSchema();
  ExpectPublishInvariantUnderThreads(plus, schema, RandomMatrix(schema, 3));
}

TEST(PublishDeterminismTest, HayAcrossThreadCounts) {
  mechanism::HayHierarchicalMechanism hay;
  const data::Schema schema = WideOrdinalSchema();
  ExpectPublishInvariantUnderThreads(hay, schema, RandomMatrix(schema, 4));
}

// Tile sweep: the naive serial release is the reference; the tiled engine
// must reproduce it bit-for-bit for every (tile size, thread count)
// combination — the engine, its panel width, and the pool are all pure
// performance knobs.
TEST(PublishDeterminismTest, TileSweepMatchesNaiveSerialRelease) {
  constexpr std::size_t kTileSizes[] = {1, 8, 64};
  mechanism::PriveletPlusMechanism mech({"Nom"});
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 9);

  mech.set_engine_options(
      matrix::MakeEngineOptions(matrix::LineEngine::kNaive));
  auto reference = mech.Publish(schema, m, /*epsilon=*/0.8, /*seed=*/57);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const std::size_t tile : kTileSizes) {
    mech.set_engine_options(
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, tile));
    auto serial = mech.Publish(schema, m, 0.8, 57);
    ASSERT_TRUE(serial.ok());
    EXPECT_TRUE(matrix::ValuesEqual(reference->values(), serial->values()))
        << "tile " << tile << ", serial";
    for (const std::size_t threads : kPoolSizes) {
      common::ThreadPool pool(threads);
      mech.set_thread_pool(&pool);
      auto parallel = mech.Publish(schema, m, 0.8, 57);
      ASSERT_TRUE(parallel.ok());
      EXPECT_TRUE(matrix::ValuesEqual(reference->values(), parallel->values()))
          << "tile " << tile << ", " << threads << " threads";
      mech.set_thread_pool(nullptr);
    }
  }
}

TEST(HnTransformDeterminismTest, ForwardAndInverseAcrossThreadCounts) {
  const data::Schema schema = MultiShardSchema();
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 5);

  auto serial_fwd = transform->Forward(m);
  ASSERT_TRUE(serial_fwd.ok());
  auto serial_inv = transform->Inverse(*serial_fwd);
  ASSERT_TRUE(serial_inv.ok());

  for (const std::size_t threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    auto fwd = transform->Forward(m, &pool);
    ASSERT_TRUE(fwd.ok());
    EXPECT_TRUE(
        matrix::ValuesEqual(serial_fwd->coeffs.values(), fwd->coeffs.values()))
        << "forward, " << threads << " threads";
    auto inv = transform->Inverse(*fwd, &pool);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(matrix::ValuesEqual(serial_inv->values(), inv->values()))
        << "inverse, " << threads << " threads";
  }
}

TEST(PrefixSumDeterminismTest, PooledBuildMatchesSerial) {
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 6);
  const matrix::PrefixSumTable<long double> serial(m);
  // Compare via range sums over a deterministic probe set (the table's
  // internals are private; identical sums at mixed corners pin down the
  // entries).
  rng::Xoshiro256pp gen(13);
  std::vector<std::vector<std::size_t>> lows, highs;
  for (int probe = 0; probe < 200; ++probe) {
    std::vector<std::size_t> lo(m.num_dims()), hi(m.num_dims());
    for (std::size_t a = 0; a < m.num_dims(); ++a) {
      lo[a] = gen.NextUint64InRange(0, m.dim(a) - 1);
      hi[a] = gen.NextUint64InRange(lo[a], m.dim(a) - 1);
    }
    lows.push_back(std::move(lo));
    highs.push_back(std::move(hi));
  }
  for (const std::size_t threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    const matrix::PrefixSumTable<long double> pooled(m, &pool);
    for (std::size_t p = 0; p < lows.size(); ++p) {
      ASSERT_EQ(serial.RangeSum(lows[p], highs[p]),
                pooled.RangeSum(lows[p], highs[p]))
          << threads << " threads, probe " << p;
    }
  }
}

// Extends the sweep across the process boundary: a release published
// under any thread count serializes to the byte-identical snapshot file
// (same engine options => same bytes, CRC included), and releases
// published under different engines/tile sizes — whose snapshots differ
// only in the recorded engine options — load back into sessions that
// answer bit-identically.
TEST(PublishDeterminismTest, SnapshotFilesInvariantAcrossThreadsAndEngines) {
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 11);
  mechanism::PriveletPlusMechanism mech({"Nom"});

  const auto save = [&](common::ThreadPool* pool,
                        const matrix::EngineOptions& options,
                        const std::string& name) {
    mech.set_thread_pool(pool);
    mech.set_engine_options(options);
    auto session = query::PublishingSession::Publish(
        schema, mech, m, /*epsilon=*/0.8, /*seed=*/57, pool, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    const std::string path = testing::TempDir() + "/" + name;
    EXPECT_TRUE(storage::SaveSession(path, *session).ok());
    mech.set_thread_pool(nullptr);
    return path;
  };
  const auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };

  const matrix::EngineOptions tiled =
      matrix::MakeEngineOptions(matrix::LineEngine::kTiled);
  const std::string ref_path = save(nullptr, tiled, "det_ref.pvls");
  const std::string ref_bytes = file_bytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());

  // Same engine options, any pool size: byte-identical snapshot files.
  for (const std::size_t threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    const std::string path = save(&pool, tiled, "det_threads.pvls");
    EXPECT_EQ(ref_bytes, file_bytes(path)) << threads << " threads";
  }

  // Different engines/tile sizes: the recorded options differ, but the
  // loaded sessions must answer a workload bit-identically.
  query::WorkloadOptions wopts;
  wopts.num_queries = 300;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());
  auto reference = storage::LoadSession(ref_path);
  ASSERT_TRUE(reference.ok());
  const std::vector<double> expected = reference->AnswerAll(*workload);
  for (const matrix::EngineOptions& options :
       {matrix::MakeEngineOptions(matrix::LineEngine::kNaive),
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 1),
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 8)}) {
    common::ThreadPool pool(2);
    const std::string path = save(&pool, options, "det_engine.pvls");
    auto loaded = storage::LoadSession(path, &pool);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(matrix::ValuesEqual(reference->published().values(),
                                    loaded->published().values()));
    EXPECT_EQ(expected, loaded->AnswerAll(*workload));
  }
}

// The out-of-core contract: a streamed publish (panels staged through
// mmap scratch files under a memory budget far below the release size)
// must produce the byte-identical PVLS file of the in-core publish with
// the same engine options — across engines, tile sizes, and thread
// counts — and the returned session must answer the same workload
// bit-identically. The budget is a pure operational knob, like the pool.
TEST(PublishDeterminismTest, StreamedPublishMatchesInCoreByteForByte) {
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 21);
  mechanism::PriveletPlusMechanism mech({"Nom"});

  query::WorkloadOptions wopts;
  wopts.num_queries = 200;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  const auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };

  // 16384 cells = 128 KiB of doubles (plus a 256 KiB table): a 64 KiB
  // budget forces genuine out-of-core staging in every stage.
  constexpr std::size_t kBudget = std::size_t{1} << 16;
  constexpr std::size_t kThreadCounts[] = {0, 2, 8};  // 0 = serial

  for (const matrix::EngineOptions& base :
       {matrix::MakeEngineOptions(matrix::LineEngine::kTiled),
        matrix::MakeEngineOptions(matrix::LineEngine::kNaive),
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 8)}) {
    for (const std::size_t threads : kThreadCounts) {
      std::unique_ptr<common::ThreadPool> pool;
      if (threads > 0) pool = std::make_unique<common::ThreadPool>(threads);
      const std::string tag =
          (base.engine == matrix::LineEngine::kTiled ? "tiled" : "naive") +
          std::string("/tile ") + std::to_string(base.tile_lines) + "/" +
          std::to_string(threads) + " threads";

      mech.set_thread_pool(pool.get());
      mech.set_engine_options(base);
      auto in_core = query::PublishingSession::Publish(
          schema, mech, m, /*epsilon=*/0.8, /*seed=*/57, pool.get(), base);
      ASSERT_TRUE(in_core.ok()) << in_core.status().ToString();
      EXPECT_EQ(query::PublishMode::kInCore,
                in_core->metadata().publish_mode);
      const std::string in_path = testing::TempDir() + "/det_incore.pvls";
      ASSERT_TRUE(storage::SaveSession(in_path, *in_core).ok());

      matrix::EngineOptions streamed_options = base;
      streamed_options.max_memory_bytes = kBudget;
      mech.set_engine_options(streamed_options);
      const std::string out_path = testing::TempDir() + "/det_streamed.pvls";
      auto streamed = storage::PublishToFile(out_path, schema, mech, m, 0.8,
                                             57, pool.get(), streamed_options);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString() << " " << tag;
      EXPECT_EQ(query::PublishMode::kStreamed,
                streamed->metadata().publish_mode);
      mech.set_thread_pool(nullptr);

      EXPECT_EQ(file_bytes(in_path), file_bytes(out_path)) << tag;
      EXPECT_TRUE(matrix::ValuesEqual(in_core->published().values(),
                                      streamed->published().values()))
          << tag;
      EXPECT_EQ(in_core->AnswerAll(*workload), streamed->AnswerAll(*workload))
          << tag;
    }
  }
}

// Extends the serving sweep across the mmap boundary: for releases
// published under every engine/tile combination, the zero-copy mapped
// session must answer bit-identically to the legacy copy-loaded session,
// under every pool size — the storage mode of the prefix table (owned
// copy vs. span view into the file) is a pure operational knob.
TEST(PublishDeterminismTest, MappedServingMatchesCopyLoadAcrossEnginesAndThreads) {
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 12);
  mechanism::PriveletPlusMechanism mech({"Nom"});

  query::WorkloadOptions wopts;
  wopts.num_queries = 300;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  std::vector<double> expected;  // pinned by the first configuration
  for (const matrix::EngineOptions& options :
       {matrix::MakeEngineOptions(matrix::LineEngine::kTiled),
        matrix::MakeEngineOptions(matrix::LineEngine::kNaive),
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 8)}) {
    mech.set_engine_options(options);
    auto session = query::PublishingSession::Publish(
        schema, mech, m, /*epsilon=*/0.8, /*seed=*/57, nullptr, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    const std::string path = testing::TempDir() + "/det_mapped.pvls";
    ASSERT_TRUE(storage::SaveSession(path, *session).ok());
    if (expected.empty()) expected = session->AnswerAll(*workload);

    auto copied = storage::LoadSession(path);
    ASSERT_TRUE(copied.ok());
    EXPECT_EQ(expected, copied->AnswerAll(*workload));
    auto mapped_serial = storage::MapSession(path);
    ASSERT_TRUE(mapped_serial.ok()) << mapped_serial.status().ToString();
    EXPECT_EQ(expected, mapped_serial->AnswerAll(*workload));
    for (const std::size_t threads : kPoolSizes) {
      common::ThreadPool pool(threads);
      auto mapped = storage::MapSession(path, &pool);
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
      EXPECT_EQ(expected, mapped->AnswerAll(*workload))
          << threads << " threads";
    }
  }
}

// The ISA determinism sweep (docs/DETERMINISM.md, "ISA levels"): with
// PRIVELET_ISA forced to every kernel level the host supports, publishes
// must produce byte-identical PVLS snapshot files and bit-identical
// workload answers across engines, tile sizes, and thread counts. The
// dispatch level — like the engine and the pool — is purely a
// performance knob; a single differing bit here means a vector kernel
// reordered someone's float operations.
TEST(PublishDeterminismTest, IsaSweepSnapshotsAndAnswersAreInvariant) {
  constexpr std::size_t kTileSizes[] = {1, 8, 64};
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 17);
  mechanism::PriveletPlusMechanism mech({"Nom"});

  query::WorkloadOptions wopts;
  wopts.num_queries = 200;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  const auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto publish_bytes = [&](const matrix::EngineOptions& options,
                                 common::ThreadPool* pool,
                                 std::vector<double>* answers) {
    mech.set_thread_pool(pool);
    mech.set_engine_options(options);
    auto session = query::PublishingSession::Publish(
        schema, mech, m, /*epsilon=*/0.8, /*seed=*/57, pool, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    mech.set_thread_pool(nullptr);
    const std::string path = testing::TempDir() + "/det_isa.pvls";
    EXPECT_TRUE(storage::SaveSession(path, *session).ok());
    if (answers != nullptr) *answers = session->AnswerAll(*workload);
    return file_bytes(path);
  };

  // The engine configurations under sweep. Snapshot files embed the
  // engine options, so byte comparisons only hold within one
  // configuration; answers and published values must agree globally.
  std::vector<matrix::EngineOptions> configs = {
      matrix::MakeEngineOptions(matrix::LineEngine::kNaive)};
  for (const std::size_t tile : kTileSizes) {
    configs.push_back(
        matrix::MakeEngineOptions(matrix::LineEngine::kTiled, tile));
  }

  // Per-config reference: forced-scalar serial publish.
  ASSERT_EQ(0, setenv("PRIVELET_ISA", "scalar", 1));
  std::vector<double> expected;
  std::vector<std::string> references;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<double> answers;
    references.push_back(publish_bytes(configs[c], nullptr, &answers));
    ASSERT_FALSE(references.back().empty());
    if (c == 0) {
      expected = answers;
    } else {
      EXPECT_EQ(expected, answers) << "scalar serial, config " << c;
    }
  }

  for (int lvl = 0; lvl <= static_cast<int>(simd::DetectBestIsa()); ++lvl) {
    const std::string name(
        simd::IsaLevelName(static_cast<simd::IsaLevel>(lvl)));
    ASSERT_EQ(0, setenv("PRIVELET_ISA", name.c_str(), 1));
    for (std::size_t c = 0; c < configs.size(); ++c) {
      std::vector<double> answers;
      EXPECT_EQ(references[c], publish_bytes(configs[c], nullptr, &answers))
          << "config " << c << " serial, isa " << name;
      EXPECT_EQ(expected, answers) << "config " << c << ", isa " << name;
      for (const std::size_t threads : kPoolSizes) {
        common::ThreadPool pool(threads);
        EXPECT_EQ(references[c], publish_bytes(configs[c], &pool, nullptr))
            << "config " << c << ", " << threads << " threads, isa " << name;
      }
    }
  }
  ASSERT_EQ(0, unsetenv("PRIVELET_ISA"));

  // EngineOptions::isa overrides the environment the same way (the isa
  // request is not part of the snapshot's recorded options, so bytes stay
  // comparable within the tile-64 configuration).
  matrix::EngineOptions forced =
      matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 64);
  forced.isa = simd::IsaChoice::kScalar;
  EXPECT_EQ(references[3], publish_bytes(forced, nullptr, nullptr))
      << "options-forced scalar";
  forced.isa = simd::IsaChoice::kAvx512;  // clamps to the host's best
  EXPECT_EQ(references[3], publish_bytes(forced, nullptr, nullptr))
      << "options-forced best";
}

// The planner sweep: the mechanism decision is a pure function of
// (schema, workload, ε) — replanning reproduces the ranking, ids, and
// variances exactly — and an auto-planned release (plan attached, so the
// snapshot is PVLS v3) stays byte-identical across engines, thread
// counts, and forced ISA levels, exactly like plan-less releases. The
// plan section is provenance, never noise input.
TEST(PublishDeterminismTest, AutoPlannedReleasesInvariantAcrossEnginesThreadsAndIsa) {
  const data::Schema schema = MultiShardSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 23);
  query::WorkloadOptions wopts;
  wopts.num_queries = 64;
  wopts.seed = 5;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  auto plan =
      analysis::PlanMechanismForWorkload(schema, *workload, /*epsilon=*/0.8);
  ASSERT_TRUE(plan.ok());
  auto replay =
      analysis::PlanMechanismForWorkload(schema, *workload, /*epsilon=*/0.8);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(plan->ranked.size(), replay->ranked.size());
  for (std::size_t i = 0; i < plan->ranked.size(); ++i) {
    EXPECT_EQ(plan->ranked[i].id, replay->ranked[i].id) << "rank " << i;
    // Exact equality: the scoring must be a deterministic float
    // computation, not merely a stable ordering.
    EXPECT_EQ(plan->ranked[i].expected_variance,
              replay->ranked[i].expected_variance)
        << "rank " << i;
  }
  EXPECT_EQ(plan->ToRecord(), replay->ToRecord());

  const query::PlanRecord record = plan->ToRecord();
  const auto make_mechanism = [&]() -> std::unique_ptr<mechanism::Mechanism> {
    if (plan->chosen.id == "basic") {
      return std::make_unique<mechanism::BasicMechanism>();
    }
    if (plan->chosen.id == "hay") {
      return std::make_unique<mechanism::HayHierarchicalMechanism>();
    }
    return std::make_unique<mechanism::PriveletPlusMechanism>(
        plan->chosen.sa_names);
  };
  const auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto publish_bytes = [&](const matrix::EngineOptions& options,
                                 common::ThreadPool* pool) {
    const auto mech = make_mechanism();
    mech->set_thread_pool(pool);
    mech->set_engine_options(options);
    auto session = query::PublishingSession::Publish(
        schema, *mech, m, /*epsilon=*/0.8, /*seed=*/57, pool, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    session->set_plan(record);
    const std::string path = testing::TempDir() + "/det_autoplan.pvls";
    EXPECT_TRUE(storage::SaveSession(path, *session).ok());
    return file_bytes(path);
  };

  const std::vector<matrix::EngineOptions> configs = {
      matrix::MakeEngineOptions(matrix::LineEngine::kNaive),
      matrix::MakeEngineOptions(matrix::LineEngine::kTiled, 64)};

  // Per-config reference: forced-scalar serial publish. The plan must be
  // in the reference file (v3) for the byte comparisons to cover it.
  ASSERT_EQ(0, setenv("PRIVELET_ISA", "scalar", 1));
  std::vector<std::string> references;
  for (const matrix::EngineOptions& options : configs) {
    references.push_back(publish_bytes(options, nullptr));
    ASSERT_FALSE(references.back().empty());
  }
  {
    auto info =
        storage::InspectSnapshot(testing::TempDir() + "/det_autoplan.pvls");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->version, 3u);
    ASSERT_TRUE(info->plan.has_value());
    EXPECT_EQ(*info->plan, record);
  }

  for (int lvl = 0; lvl <= static_cast<int>(simd::DetectBestIsa()); ++lvl) {
    const std::string name(
        simd::IsaLevelName(static_cast<simd::IsaLevel>(lvl)));
    ASSERT_EQ(0, setenv("PRIVELET_ISA", name.c_str(), 1));
    for (std::size_t c = 0; c < configs.size(); ++c) {
      EXPECT_EQ(references[c], publish_bytes(configs[c], nullptr))
          << "config " << c << " serial, isa " << name;
      for (const std::size_t threads : kPoolSizes) {
        common::ThreadPool pool(threads);
        EXPECT_EQ(references[c], publish_bytes(configs[c], &pool))
            << "config " << c << ", " << threads << " threads, isa " << name;
      }
    }
  }
  ASSERT_EQ(0, unsetenv("PRIVELET_ISA"));
}

TEST(NoiseShardDeterminismTest, ShardedDrawsDependOnlyOnIndex) {
  // Three shard widths of values, processed with and without pools: the
  // noise vector must be identical, and the first shard must reproduce
  // the plain Xoshiro sequence (legacy single-shard compatibility).
  const std::size_t n = mechanism::kNoiseShardSize * 3 + 123;
  std::vector<double> serial(n, 0.0);
  mechanism::AddLaplaceNoise(serial, 2.0, /*noise_seed=*/77, nullptr);

  for (const std::size_t threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    std::vector<double> parallel(n, 0.0);
    mechanism::AddLaplaceNoise(parallel, 2.0, 77, &pool);
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }

  std::vector<double> single(100, 0.0);
  mechanism::AddLaplaceNoise(single, 2.0, 77, nullptr);
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], serial[i]) << "prefix mismatch at " << i;
  }
}

}  // namespace
}  // namespace privelet
