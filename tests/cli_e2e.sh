#!/bin/sh
# End-to-end exercise of privelet_cli (also run by the CI docs job):
#   gen -> publish (CSV path) -> inspect -> query twice -> identical answers,
#   publish from the generator path on a pool -> byte-identical snapshot,
#   truncated / corrupted snapshots -> rejected.
# Usage: cli_e2e.sh /path/to/privelet_cli
set -eu

CLI="$1"
TMP="${TMPDIR:-/tmp}/privelet_cli_e2e.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "== gen"
"$CLI" gen --synthetic 4096 --tuples 20000 --data-seed 5 \
       --csv-out "$TMP/table.csv" --schema-out "$TMP/schema.txt"

echo "== publish (csv)"
"$CLI" publish --csv "$TMP/table.csv" --schema "$TMP/schema.txt" \
       --mechanism privelet --epsilon 0.5 --seed 11 --threads 0 \
       --output "$TMP/release.pvls"

echo "== inspect"
"$CLI" inspect "$TMP/release.pvls" | tee "$TMP/inspect.txt"
grep -q "mechanism:    Privelet" "$TMP/inspect.txt"
grep -q "prefix table: yes" "$TMP/inspect.txt"
grep -q "CRC OK" "$TMP/inspect.txt"
# A plan-less publish stays PVLS v2 with no plan section (backward
# compatibility with pre-planner snapshots by construction).
grep -q "PVLS v2" "$TMP/inspect.txt"
grep -q "^plan:         none" "$TMP/inspect.txt"
# Payload section geometry and the publish-mode note (the file cannot
# record the mode: streamed and in-core snapshots are byte-identical).
grep -q "^values:       offset " "$TMP/inspect.txt"
grep -q "^table:        offset " "$TMP/inspect.txt"
grep -q "publish mode: not recorded" "$TMP/inspect.txt"

echo "== query (random workload, dumped, then replayed from file)"
"$CLI" query "$TMP/release.pvls" --random 500 --workload-seed 3 \
       --dump-workload "$TMP/workload.txt" --output "$TMP/answers1.txt"
"$CLI" query "$TMP/release.pvls" --workload "$TMP/workload.txt" \
       --threads 0 --output "$TMP/answers2.txt"
cmp "$TMP/answers1.txt" "$TMP/answers2.txt"
[ "$(wc -l < "$TMP/answers1.txt")" -eq 500 ]

echo "== publish (generator path, 4 threads) must produce identical bytes"
"$CLI" publish --synthetic 4096 --tuples 20000 --data-seed 5 \
       --mechanism privelet --epsilon 0.5 --seed 11 --threads 4 \
       --output "$TMP/release2.pvls"
cmp "$TMP/release.pvls" "$TMP/release2.pvls"

echo "== publish (streamed, 64K budget) must produce identical bytes"
"$CLI" publish --synthetic 4096 --tuples 20000 --data-seed 5 \
       --mechanism privelet --epsilon 0.5 --seed 11 --threads 2 \
       --max-memory 64K --scratch-dir "$TMP" \
       --output "$TMP/release3.pvls" | tee "$TMP/publish3.txt"
grep -q "publish mode: streamed" "$TMP/publish3.txt"
cmp "$TMP/release.pvls" "$TMP/release3.pvls"
# --scratch-dir without a memory budget makes no sense; rejected.
if "$CLI" publish --synthetic 4096 --tuples 100 --scratch-dir "$TMP" \
       --output "$TMP/bad.pvls" 2>/dev/null; then
  echo "FAIL: --scratch-dir without --max-memory accepted" >&2
  exit 1
fi

echo "== serve (multi-release batch front end over the ReleaseStore)"
cat > "$TMP/requests.txt" <<EOF
# one request per line: <release-id> <workload-file>
main $TMP/workload.txt
main $TMP/workload.txt
ghost $TMP/workload.txt
EOF
"$CLI" serve "main=$TMP/release.pvls" --max-resident 1 \
       --requests "$TMP/requests.txt" --output "$TMP/served.txt"
# Two successful batches, bit-identical to the query subcommand's
# answers (the serve path memory-maps the snapshot; answers must not
# depend on the serving mode), and the unknown id reported inline.
[ "$(grep -c '^ok 500$' "$TMP/served.txt")" -eq 2 ]
grep -q "^error: NotFound" "$TMP/served.txt"
sed -n '2,501p' "$TMP/served.txt" > "$TMP/served_first.txt"
cmp "$TMP/served_first.txt" "$TMP/answers1.txt"

echo "== CRLF CSV parses and publishes byte-identically"
awk '{printf "%s\r\n", $0}' "$TMP/table.csv" > "$TMP/table_crlf.csv"
"$CLI" publish --csv "$TMP/table_crlf.csv" --schema "$TMP/schema.txt" \
       --mechanism privelet --epsilon 0.5 --seed 11 --threads 0 \
       --output "$TMP/release_crlf.pvls"
cmp "$TMP/release.pvls" "$TMP/release_crlf.pvls"

echo "== plan + publish --auto-plan (workload-adaptive planner, PVLS v3)"
# plan is pure analysis: schema + workload in, ranked candidates out.
"$CLI" plan --schema "$TMP/schema.txt" --workload "$TMP/workload.txt" \
       --epsilon 0.5 | tee "$TMP/plan.txt"
grep -q '^rank 1: ' "$TMP/plan.txt"
grep -q '^chosen: ' "$TMP/plan.txt"
# publish --auto-plan runs the same planner and must reach the same
# decision (the plan is a pure function of schema/workload/epsilon).
"$CLI" publish --csv "$TMP/table.csv" --schema "$TMP/schema.txt" \
       --auto-plan --workload "$TMP/workload.txt" \
       --epsilon 0.5 --seed 11 --threads 0 \
       --output "$TMP/planned.pvls" | tee "$TMP/publish_plan.txt"
grep '^chosen: ' "$TMP/plan.txt" > "$TMP/chosen_plan.txt"
grep '^chosen: ' "$TMP/publish_plan.txt" > "$TMP/chosen_publish.txt"
cmp "$TMP/chosen_plan.txt" "$TMP/chosen_publish.txt"
# The decision rides in the snapshot (v3) and survives the round trip.
"$CLI" inspect "$TMP/planned.pvls" | tee "$TMP/inspect_plan.txt"
grep -q "PVLS v3" "$TMP/inspect_plan.txt"
grep -q "CRC OK" "$TMP/inspect_plan.txt"
grep -q "^plan chosen:  " "$TMP/inspect_plan.txt"
grep -q "^plan queries: 500" "$TMP/inspect_plan.txt"
# The planned release serves queries like any other; replay is stable.
"$CLI" query "$TMP/planned.pvls" --workload "$TMP/workload.txt" \
       --output "$TMP/planned_answers1.txt"
"$CLI" query "$TMP/planned.pvls" --workload "$TMP/workload.txt" \
       --output "$TMP/planned_answers2.txt"
cmp "$TMP/planned_answers1.txt" "$TMP/planned_answers2.txt"
# Planning flags are validated: --auto-plan owns the mechanism choice,
# and the planning-workload flags require --auto-plan.
if "$CLI" publish --synthetic 4096 --tuples 100 --auto-plan --random 5 \
       --mechanism basic --output "$TMP/bad.pvls" 2>/dev/null; then
  echo "FAIL: --auto-plan with --mechanism accepted" >&2
  exit 1
fi
if "$CLI" publish --synthetic 4096 --tuples 100 --workload "$TMP/workload.txt" \
       --output "$TMP/bad.pvls" 2>/dev/null; then
  echo "FAIL: --workload without --auto-plan accepted" >&2
  exit 1
fi
if "$CLI" publish --synthetic 4096 --tuples 100 --auto-plan \
       --output "$TMP/bad.pvls" 2>/dev/null; then
  echo "FAIL: --auto-plan without a planning workload accepted" >&2
  exit 1
fi

echo "== daemon + client (text protocol over TCP; same answers as query)"
rm -f "$TMP/port.txt"
"$CLI" daemon "main=$TMP/release.pvls" "planned=$TMP/planned.pvls" --port 0 \
       --port-file "$TMP/port.txt" \
       > "$TMP/daemon.log" 2> "$TMP/daemon.err" &
DAEMON_PID=$!
tries=0
while [ ! -s "$TMP/port.txt" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done
[ -s "$TMP/port.txt" ]
DPORT=$(cat "$TMP/port.txt")

# One session: liveness, a 500-query batch (bit-identical to the query
# subcommand), a hot RELOAD registering a second id, an intentional
# unknown-id error (the client exits 3 when any request failed), STATS.
grep -v '^#' "$TMP/workload.txt" > "$TMP/predicates.txt"
{
  echo "PING"
  echo "BATCH main 500"
  cat "$TMP/predicates.txt"
  echo "RELOAD spare $TMP/release2.pvls"
  echo "QUERY spare *"
  echo "QUERY planned *"
  echo "QUERY ghost *"
  echo "STATS"
  echo "QUIT"
} > "$TMP/daemon_requests.txt"
client_rc=0
"$CLI" client --port "$DPORT" --requests "$TMP/daemon_requests.txt" \
       > "$TMP/daemon_out.txt" 2>&1 || client_rc=$?
[ "$client_rc" -eq 3 ]
grep -q '^pong$' "$TMP/daemon_out.txt"
grep -q '^ok 500$' "$TMP/daemon_out.txt"
grep -q '^reloaded spare$' "$TMP/daemon_out.txt"
grep -q '^error: ' "$TMP/daemon_out.txt"
grep -q '^uptime_s' "$TMP/daemon_out.txt"
# STATS reports the resident planned release's recorded decision; the
# plan-less release contributes no plan line.
grep -q '^plan planned chosen=' "$TMP/daemon_out.txt"
if grep -q '^plan main ' "$TMP/daemon_out.txt"; then
  echo "FAIL: plan-less release reported a plan in STATS" >&2
  exit 1
fi
awk '/^ok 500$/ { grab = 1; next } grab && n < 500 { print; n += 1 }' \
    "$TMP/daemon_out.txt" > "$TMP/daemon_answers.txt"
cmp "$TMP/daemon_answers.txt" "$TMP/answers1.txt"

# SIGTERM is a clean shutdown: exit 0 plus a stderr summary line.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
grep -q '^daemon: ' "$TMP/daemon.err"

echo "== sharded daemon (--loops/--backlog) + multi-connection client"
# Rebinding the SAME port immediately after the shutdown above: the
# previous daemon's closed connections leave TIME_WAIT entries on this
# port, so a missing SO_REUSEADDR turns this into an EADDRINUSE flake.
"$CLI" daemon "main=$TMP/release.pvls" --port "$DPORT" --loops 2 \
       --backlog 16 --port-file "$TMP/port2.txt" \
       > "$TMP/daemon2.log" 2> "$TMP/daemon2.err" &
DAEMON_PID=$!
tries=0
while [ ! -s "$TMP/port2.txt" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done
[ -s "$TMP/port2.txt" ]
[ "$(cat "$TMP/port2.txt")" = "$DPORT" ]
grep -q '(2 loops)' "$TMP/daemon2.log"

# The same request stream through 1 and 3 client connections (requests
# rotate over the sockets, so they land on different event loops) must
# print byte-identical output — sharding is invisible to answers.
{
  echo "PING"
  echo "BATCH main 500"
  cat "$TMP/predicates.txt"
  echo "QUERY main *"
  echo "BATCH main 500"
  cat "$TMP/predicates.txt"
  echo "STATS"
} > "$TMP/sharded_requests.txt"
"$CLI" client --port "$DPORT" --requests "$TMP/sharded_requests.txt" \
       --connections 1 > "$TMP/sharded_out1.txt"
"$CLI" client --port "$DPORT" --requests "$TMP/sharded_requests.txt" \
       --connections 3 > "$TMP/sharded_out3.txt"
# STATS output varies between runs (uptime, counters): compare only the
# answer payloads above it.
sed -n '/^uptime_s/q;p' "$TMP/sharded_out1.txt" > "$TMP/sharded_answers1.txt"
sed -n '/^uptime_s/q;p' "$TMP/sharded_out3.txt" > "$TMP/sharded_answers3.txt"
cmp "$TMP/sharded_answers1.txt" "$TMP/sharded_answers3.txt"
grep -q '^ok 500$' "$TMP/sharded_answers1.txt"
grep -q '^loops 2$' "$TMP/sharded_out3.txt"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
grep -q '^daemon: ' "$TMP/daemon2.err"

echo "== bad privacy parameters are rejected before publishing"
for bad_epsilon in 0 -1 nan inf abc; do
  if "$CLI" publish --synthetic 4096 --tuples 100 --epsilon "$bad_epsilon" \
         --output "$TMP/bad.pvls" 2>/dev/null; then
    echo "FAIL: --epsilon $bad_epsilon accepted" >&2
    exit 1
  fi
done
if "$CLI" publish --synthetic 4096 --tuples 100 --seed=-3 \
       --output "$TMP/bad.pvls" 2>/dev/null; then
  echo "FAIL: --seed -3 accepted" >&2
  exit 1
fi

echo "== corrupt snapshots are rejected"
head -c 200 "$TMP/release.pvls" > "$TMP/truncated.pvls"
if "$CLI" inspect "$TMP/truncated.pvls" 2>/dev/null; then
  echo "FAIL: truncated snapshot accepted" >&2
  exit 1
fi
# Flip a header byte (the seed field: magic 4 + version 4 + mech_len 2 +
# "Privelet" 8 + epsilon 8 = offset 26); the parse survives but the CRC
# must not.
cp "$TMP/release.pvls" "$TMP/flipped.pvls"
printf '\377' | dd of="$TMP/flipped.pvls" bs=1 seek=26 conv=notrunc 2>/dev/null
if "$CLI" query "$TMP/flipped.pvls" --random 5 2>/dev/null; then
  echo "FAIL: corrupted snapshot accepted" >&2
  exit 1
fi

echo "cli_e2e: OK"
