// Serving-layer units: the log-linear latency histogram's bucket math,
// quantiles, and merge exactness (single-loop vs per-loop-then-merged
// recording must agree bucket for bucket), the lock-free
// ConcurrentHistogram the sharded daemon records into, the per-release
// answer cache, and the wire protocol's encode/decode round-trips plus
// its rejection of malformed frames (the daemon feeds it raw network
// bytes).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"
#include "privelet/serving/answer_cache.h"
#include "privelet/serving/concurrent_histogram.h"
#include "privelet/serving/latency_histogram.h"
#include "privelet/serving/protocol.h"

namespace privelet::serving {
namespace {

data::Schema TestSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 16));
  attrs.push_back(data::Attribute::Nominal(
      "Region", data::Hierarchy::Balanced({2, 4}).value()));
  return data::Schema(std::move(attrs));
}

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundsCoverAndOrder) {
  // Every value maps to a bucket whose upper bound is >= the value, and
  // bucket indices are monotone in the value.
  std::uint64_t prev_index = 0;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 2 + 3) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(LatencyHistogram::BucketUpperBound(index), v) << "value " << v;
    EXPECT_GE(index, prev_index) << "value " << v;
    prev_index = index;
  }
  EXPECT_LT(LatencyHistogram::BucketIndex(
                std::numeric_limits<std::uint64_t>::max()),
            LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v * 1000);  // 1ms..1s
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1'000'000u);
  // Log-linear buckets with 16 sub-buckets: <= ~6.25% relative error.
  const double p50 = static_cast<double>(h.Quantile(0.50));
  const double p99 = static_cast<double>(h.Quantile(0.99));
  EXPECT_NEAR(p50, 500'000.0, 500'000.0 * 0.07);
  EXPECT_NEAR(p99, 990'000.0, 990'000.0 * 0.07);
  EXPECT_EQ(h.Quantile(1.0), 1'000'000u);  // clamped to the observed max
}

TEST(LatencyHistogramTest, EmptyAndMerge) {
  LatencyHistogram a;
  EXPECT_EQ(a.Quantile(0.5), 0u);
  a.Record(100);
  LatencyHistogram b;
  b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1'000'000u);
  EXPECT_GE(a.Quantile(0.99), 900'000u);
}

TEST(LatencyHistogramTest, MergeIsBucketExact) {
  // Recording a value stream split across histograms and merging must
  // reproduce the single-histogram result exactly: same count, sum, max,
  // and the same quantile at every probe — including values that land in
  // the top (overflow-side) buckets near 2^64.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v != 0 && values.size() < 4000; v = v * 3 + 7) {
    values.push_back(v);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  values.push_back(std::numeric_limits<std::uint64_t>::max() - 1);
  values.push_back(0);

  LatencyHistogram single;
  LatencyHistogram parts[3];
  for (std::size_t i = 0; i < values.size(); ++i) {
    single.Record(values[i]);
    parts[i % 3].Record(values[i]);
  }
  LatencyHistogram merged;
  for (LatencyHistogram& part : parts) merged.Merge(part);

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.max(), single.max());
  EXPECT_EQ(merged.SummaryMicros(), single.SummaryMicros());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(merged.Quantile(q), single.Quantile(q)) << "quantile " << q;
  }
}

// --- ConcurrentHistogram ---------------------------------------------------

TEST(ConcurrentHistogramTest, SnapshotMatchesDirectRecording) {
  ConcurrentHistogram concurrent;
  LatencyHistogram direct;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 50); v = v * 5 + 11) {
    concurrent.Record(v);
    direct.Record(v);
  }
  concurrent.Record(std::numeric_limits<std::uint64_t>::max());
  direct.Record(std::numeric_limits<std::uint64_t>::max());

  const LatencyHistogram snapshot = concurrent.Snapshot();
  EXPECT_EQ(snapshot.count(), direct.count());
  EXPECT_EQ(snapshot.max(), direct.max());
  EXPECT_EQ(snapshot.SummaryMicros(), direct.SummaryMicros());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_EQ(snapshot.Quantile(q), direct.Quantile(q));
  }
}

TEST(ConcurrentHistogramTest, SnapshotIntoAccumulatesLikeMerge) {
  // SnapshotInto on top of existing contents behaves like Merge: the
  // daemon's STATS render folds every loop's histogram into one.
  ConcurrentHistogram loops[3];
  LatencyHistogram expected;
  std::uint64_t v = 1;
  for (std::size_t i = 0; i < 300; ++i, v = v * 7 + 3) {
    loops[i % 3].Record(v);
    expected.Record(v);
  }
  LatencyHistogram combined;
  for (ConcurrentHistogram& loop : loops) loop.SnapshotInto(&combined);
  EXPECT_EQ(combined.count(), expected.count());
  EXPECT_EQ(combined.SummaryMicros(), expected.SummaryMicros());
}

TEST(ConcurrentHistogramTest, ParallelRecordersLoseNothing) {
  ConcurrentHistogram h;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencyHistogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);
  EXPECT_EQ(snapshot.max(), kThreads * kPerThread);
}

// --- AnswerCache -----------------------------------------------------------

TEST(AnswerCacheTest, CanonicalKeysDistinguishPredicates) {
  const data::Schema schema = TestSchema();
  query::RangeQuery a(2);
  ASSERT_TRUE(a.SetRange(schema, 0, 2, 5).ok());
  query::RangeQuery a_again(2);
  ASSERT_TRUE(a_again.SetRange(schema, 0, 2, 5).ok());
  query::RangeQuery b(2);
  ASSERT_TRUE(b.SetRange(schema, 0, 2, 6).ok());
  query::RangeQuery other_attr(2);
  ASSERT_TRUE(other_attr.SetRange(schema, 1, 2, 5).ok());
  query::RangeQuery unconstrained(2);

  std::string ka, ka2, kb, kattr, kall;
  AppendQueryKey(a, &ka);
  AppendQueryKey(a_again, &ka2);
  AppendQueryKey(b, &kb);
  AppendQueryKey(other_attr, &kattr);
  AppendQueryKey(unconstrained, &kall);
  EXPECT_EQ(ka, ka2);
  EXPECT_NE(ka, kb);
  EXPECT_NE(ka, kattr);
  EXPECT_NE(ka, kall);
  EXPECT_NE(kb, kattr);
}

TEST(AnswerCacheTest, LruBoundAndRefresh) {
  AnswerCache cache(2);
  cache.Insert("k1", 1.0);
  cache.Insert("k2", 2.0);
  double answer = 0;
  ASSERT_TRUE(cache.Lookup("k1", &answer));  // refreshes k1: k2 is now LRU
  EXPECT_EQ(answer, 1.0);
  cache.Insert("k3", 3.0);  // evicts k2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("k2", &answer));
  EXPECT_TRUE(cache.Lookup("k1", &answer));
  EXPECT_TRUE(cache.Lookup("k3", &answer));
  EXPECT_EQ(answer, 3.0);

  cache.Insert("k1", 10.0);  // duplicate key refreshes the value
  ASSERT_TRUE(cache.Lookup("k1", &answer));
  EXPECT_EQ(answer, 10.0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AnswerCacheTest, GenerationBumpDropsEverything) {
  AnswerCache cache(16);
  cache.SetGeneration(1);
  cache.Insert("k", 42.0);
  double answer = 0;
  ASSERT_TRUE(cache.Lookup("k", &answer));
  cache.SetGeneration(1);  // same generation: nothing happens
  EXPECT_TRUE(cache.Lookup("k", &answer));
  cache.SetGeneration(2);  // RELOAD
  EXPECT_FALSE(cache.Lookup("k", &answer));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCacheTest, ZeroCapacityDisables) {
  AnswerCache cache(0);
  cache.Insert("k", 1.0);
  double answer = 0;
  EXPECT_FALSE(cache.Lookup("k", &answer));
  EXPECT_EQ(cache.size(), 0u);
}

// --- predicate grammar -----------------------------------------------------

TEST(ProtocolTest, ParseQueryLineGrammar) {
  const data::Schema schema = TestSchema();
  EXPECT_TRUE(ParseQueryLine(schema, "*").ok());
  EXPECT_TRUE(ParseQueryLine(schema, "Age=2:5").ok());
  EXPECT_TRUE(ParseQueryLine(schema, "Age=2:5 Region@1").ok());
  EXPECT_FALSE(ParseQueryLine(schema, "").ok());
  EXPECT_FALSE(ParseQueryLine(schema, "* Age=2:5").ok());
  EXPECT_FALSE(ParseQueryLine(schema, "Age=2").ok());
  EXPECT_FALSE(ParseQueryLine(schema, "Nope=0:1").ok());
  // Strict indices: "-1" must not wrap to a huge bound.
  EXPECT_FALSE(ParseQueryLine(schema, "Age=-1:5").ok());
  EXPECT_FALSE(ParseQueryLine(schema, "Age=0:99").ok());  // out of domain
}

// --- binary framing --------------------------------------------------------

TEST(ProtocolTest, QueryRequestRoundTrip) {
  QuerySpec q1;
  q1.predicates.push_back({/*kind=*/0, /*attr=*/0, /*lo=*/2, /*hi=*/5});
  q1.predicates.push_back({/*kind=*/1, /*attr=*/1, /*lo=*/3, /*hi=*/0});
  QuerySpec q2;  // no predicates: the all-cells query
  std::string wire;
  EncodeQueryRequest(&wire, "rel-7", std::vector<QuerySpec>{q1, q2});

  auto frame = PeekFrame(wire);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(*frame, wire.size());
  auto request = DecodeRequest(std::string_view(wire).substr(4));
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->verb, Verb::kQuery);
  EXPECT_EQ(request->id, "rel-7");
  ASSERT_EQ(request->queries.size(), 2u);
  ASSERT_EQ(request->queries[0].predicates.size(), 2u);
  EXPECT_EQ(request->queries[0].predicates[0].kind, 0);
  EXPECT_EQ(request->queries[0].predicates[0].attr, 0);
  EXPECT_EQ(request->queries[0].predicates[0].lo, 2u);
  EXPECT_EQ(request->queries[0].predicates[0].hi, 5u);
  EXPECT_EQ(request->queries[0].predicates[1].kind, 1);
  EXPECT_EQ(request->queries[1].predicates.size(), 0u);
}

TEST(ProtocolTest, ReloadAndVerbRequestsRoundTrip) {
  std::string wire;
  EncodeReloadRequest(&wire, "id", "/tmp/x.pvls");
  EncodeVerbRequest(&wire, Verb::kStats);

  auto frame = PeekFrame(wire);
  ASSERT_TRUE(frame.ok());
  auto reload = DecodeRequest(std::string_view(wire).substr(4, *frame - 4));
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->verb, Verb::kReload);
  EXPECT_EQ(reload->id, "id");
  EXPECT_EQ(reload->path, "/tmp/x.pvls");

  const std::string_view rest = std::string_view(wire).substr(*frame);
  auto frame2 = PeekFrame(rest);
  ASSERT_TRUE(frame2.ok());
  ASSERT_EQ(*frame2, rest.size());
  auto stats = DecodeRequest(rest.substr(4));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, Verb::kStats);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  const std::vector<double> answers = {1.5, -0.0, 1e300, 42.0};
  std::string wire;
  EncodeOkAnswers(&wire, answers);
  auto frame = PeekFrame(wire);
  ASSERT_TRUE(frame.ok());
  auto response = DecodeResponse(std::string_view(wire).substr(4));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->answers, answers);  // bit-exact doubles

  wire.clear();
  EncodeOkText(&wire, "pong");
  response = DecodeResponse(std::string_view(wire).substr(4));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->text, "pong");

  wire.clear();
  EncodeErrorResponse(&wire, Status::NotFound("no such release"));
  response = DecodeResponse(std::string_view(wire).substr(4));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("no such release"), std::string::npos);
}

TEST(ProtocolTest, PeekFrameHandlesPartialAndPoisonedInput) {
  std::string wire;
  EncodeVerbRequest(&wire, Verb::kPing);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto partial = PeekFrame(std::string_view(wire).substr(0, len));
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(*partial, 0u) << "prefix length " << len;
  }
  // A corrupt length field above the cap poisons the stream.
  std::string huge = {'\xff', '\xff', '\xff', '\xff'};
  EXPECT_FALSE(PeekFrame(huge).ok());
}

TEST(ProtocolTest, DecodeRejectsTruncatedAndTrailingBytes) {
  QuerySpec q;
  q.predicates.push_back({0, 0, 1, 2});
  std::string wire;
  EncodeQueryRequest(&wire, "r", std::vector<QuerySpec>{q});
  const std::string_view payload = std::string_view(wire).substr(4);
  // Every strict prefix of the payload must be rejected, not crash.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.substr(0, len)).ok())
        << "prefix length " << len;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeRequest(std::string(payload) + "x").ok());
  // A declared query count that cannot fit the remaining bytes must not
  // drive a pathological allocation.
  std::string lying = std::string(payload);
  // verb(1) + idlen(2) + "r"(1), then the u32 query count.
  lying[4] = '\xff';
  lying[5] = '\xff';
  lying[6] = '\xff';
  lying[7] = '\x0f';
  EXPECT_FALSE(DecodeRequest(lying).ok());
}

TEST(ProtocolTest, BuildQueryValidatesSpecs) {
  const data::Schema schema = TestSchema();
  QuerySpec ok_spec;
  ok_spec.predicates.push_back({0, 0, 2, 5});
  EXPECT_TRUE(BuildQuery(schema, ok_spec).ok());
  QuerySpec bad_attr;
  bad_attr.predicates.push_back({0, 9, 0, 1});
  EXPECT_FALSE(BuildQuery(schema, bad_attr).ok());
  QuerySpec bad_kind;
  bad_kind.predicates.push_back({7, 0, 0, 1});
  EXPECT_FALSE(BuildQuery(schema, bad_kind).ok());
  QuerySpec bad_range;
  bad_range.predicates.push_back({0, 0, 5, 99});
  EXPECT_FALSE(BuildQuery(schema, bad_range).ok());
}

}  // namespace
}  // namespace privelet::serving
