// Tests for the exact per-query noise-variance calculator and the
// workload-aware SA planner. The calculator is validated three ways:
// (i) against hand-computed values on tiny transforms, (ii) against tight
// statistical measurements of the actual mechanism, and (iii) against the
// Theorem 3 worst-case bound it must never exceed.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/analysis/query_variance.h"
#include "privelet/analysis/workload_planner.h"
#include "privelet/common/math_util.h"
#include "privelet/data/attribute.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/workload.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/haar.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::analysis {
namespace {

data::Schema OrdinalSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

TEST(RangeContributionTest, HaarFullRangeIsBaseOnly) {
  // Sum over the full (power-of-two) domain = m * c0; every detail
  // coefficient has equal left/right overlap.
  wavelet::HaarTransform haar(8);
  std::vector<double> a(8);
  haar.RangeContribution(0, 7, a.data());
  EXPECT_DOUBLE_EQ(a[0], 8.0);
  for (std::size_t j = 1; j < 8; ++j) EXPECT_DOUBLE_EQ(a[j], 0.0);
}

TEST(RangeContributionTest, HaarReconstructsRangeSums) {
  // a^T coeffs must equal the range sum for random data and all ranges.
  const std::size_t n = 16;
  wavelet::HaarTransform haar(n);
  rng::Xoshiro256pp gen(3);
  std::vector<double> data(n), coeffs(n), a(n);
  for (auto& v : data) v = static_cast<double>(gen.NextUint64InRange(0, 9));
  haar.Forward(data.data(), coeffs.data());
  for (std::size_t lo = 0; lo < n; ++lo) {
    for (std::size_t hi = lo; hi < n; ++hi) {
      haar.RangeContribution(lo, hi, a.data());
      double weighted = 0.0, direct = 0.0;
      for (std::size_t j = 0; j < n; ++j) weighted += a[j] * coeffs[j];
      for (std::size_t v = lo; v <= hi; ++v) direct += data[v];
      EXPECT_NEAR(weighted, direct, 1e-9) << lo << ".." << hi;
    }
  }
}

TEST(RangeContributionTest, HaarPaddedDomain) {
  // Non-power-of-two domain: contributions computed on the padded tree
  // must still reconstruct sums over the real domain.
  const std::size_t n = 11;
  wavelet::HaarTransform haar(n);
  rng::Xoshiro256pp gen(5);
  std::vector<double> data(n), coeffs(haar.coefficient_count()),
      a(haar.coefficient_count());
  for (auto& v : data) v = static_cast<double>(gen.NextUint64InRange(0, 9));
  haar.Forward(data.data(), coeffs.data());
  haar.RangeContribution(2, 9, a.data());
  double weighted = 0.0, direct = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) weighted += a[j] * coeffs[j];
  for (std::size_t v = 2; v <= 9; ++v) direct += data[v];
  EXPECT_NEAR(weighted, direct, 1e-9);
}

TEST(RangeContributionTest, NominalReconstructsRangeSums) {
  auto hierarchy = std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Balanced({2, 3}).value());
  wavelet::NominalTransform transform(hierarchy);
  const std::vector<double> data = {9, 3, 6, 2, 8, 2};
  std::vector<double> coeffs(9), a(9);
  transform.Forward(data.data(), coeffs.data());
  for (std::size_t lo = 0; lo < 6; ++lo) {
    for (std::size_t hi = lo; hi < 6; ++hi) {
      transform.RangeContribution(lo, hi, a.data());
      double weighted = 0.0, direct = 0.0;
      for (std::size_t j = 0; j < 9; ++j) weighted += a[j] * coeffs[j];
      for (std::size_t v = lo; v <= hi; ++v) direct += data[v];
      EXPECT_NEAR(weighted, direct, 1e-9) << lo << ".." << hi;
    }
  }
}

TEST(RangeContributionTest, NominalSingleLeafMatchesEq5) {
  // Leaf v1 of the Fig. 3 hierarchy: v1 = c3 + c1/3 + c0/6.
  auto hierarchy = std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Balanced({2, 3}).value());
  wavelet::NominalTransform transform(hierarchy);
  std::vector<double> a(9);
  transform.RangeContribution(0, 0, a.data());
  EXPECT_NEAR(a[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(a[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  EXPECT_DOUBLE_EQ(a[3], 1.0);
  for (std::size_t j = 4; j < 9; ++j) EXPECT_DOUBLE_EQ(a[j], 0.0);
}

// Brute-force validation of RefinedQuadraticForm: build the refinement's
// linear map P column by column (apply Refine to basis vectors), then
// compare a^T P D P^T a computed explicitly against the closed form.
class RefinedQuadraticFormTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefinedQuadraticFormTest, MatchesExplicitCovariance) {
  rng::Xoshiro256pp gen(GetParam());
  const std::size_t f1 = gen.NextUint64InRange(2, 4);
  const std::size_t f2 = gen.NextUint64InRange(2, 4);
  auto hierarchy = std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Balanced({f1, f2}).value());
  wavelet::NominalTransform transform(hierarchy);
  const std::size_t k = transform.coefficient_count();

  // Columns of P: Refine applied to each basis vector.
  std::vector<std::vector<double>> p(k, std::vector<double>(k, 0.0));
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> basis(k, 0.0);
    basis[j] = 1.0;
    transform.Refine(basis.data());
    for (std::size_t i = 0; i < k; ++i) p[i][j] = basis[i];
  }

  // Random contribution vector.
  std::vector<double> a(k);
  for (auto& v : a) {
    v = static_cast<double>(gen.NextUint64InRange(0, 20)) / 4.0 - 2.0;
  }

  // Explicit a^T P D P^T a = sum_j D_jj * (sum_i a_i P_ij)^2.
  const auto& w = transform.weights();
  double expected = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < k; ++i) dot += a[i] * p[i][j];
    expected += dot * dot / (w[j] * w[j]);
  }
  EXPECT_NEAR(transform.RefinedQuadraticForm(a.data()), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinedQuadraticFormTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(ExactVarianceTest, IdentityAxisMatchesBasicFormula) {
  // All-identity transform = Basic: a k-cell query has variance
  // 2*lambda^2*k.
  const data::Schema schema = OrdinalSchema(16);
  auto transform = wavelet::HnTransform::Create(schema, {0});
  ASSERT_TRUE(transform.ok());
  query::RangeQuery q(1);
  ASSERT_TRUE(q.SetRange(schema, 0, 3, 9).ok());  // 7 cells
  auto variance = ExactQueryNoiseVariance(*transform, schema, 2.0, q);
  ASSERT_TRUE(variance.ok());
  EXPECT_DOUBLE_EQ(*variance, 2.0 * 4.0 * 7.0);
}

TEST(ExactVarianceTest, NeverExceedsTheorem3Bound) {
  // Mixed 2-D schema: the exact variance of every query in a random
  // workload stays below sigma^2 * prod H (Theorem 3).
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("O", 16));
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced({2, 3}).value()));
  const data::Schema schema(std::move(attrs));
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const double lambda = 5.0;
  const double bound =
      2.0 * lambda * lambda * transform->VarianceBoundFactor();

  query::WorkloadOptions wopts;
  wopts.num_queries = 300;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : *workload) {
    auto variance = ExactQueryNoiseVariance(*transform, schema, lambda, q);
    ASSERT_TRUE(variance.ok());
    EXPECT_LE(*variance, bound * (1.0 + 1e-9));
    EXPECT_GE(*variance, 0.0);
  }
}

// The decisive test: the calculator must match the measured noise variance
// of the real mechanism (tight tolerance, many trials).
class ExactVarianceMeasurementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVarianceMeasurementTest, MatchesMeasuredVariance) {
  rng::Xoshiro256pp gen(GetParam());
  // Random small mixed schema.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal(
      "O", gen.NextUint64InRange(2, 10)));
  attrs.push_back(data::Attribute::Nominal(
      "N", data::Hierarchy::Balanced(
               {gen.NextUint64InRange(2, 3), gen.NextUint64InRange(2, 3)})
               .value()));
  const data::Schema schema(std::move(attrs));

  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 20));
  }

  // Random query.
  query::WorkloadOptions wopts;
  wopts.num_queries = 1;
  wopts.seed = GetParam() + 100;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());
  const query::RangeQuery& q = workload->front();

  const mechanism::PriveletMechanism privelet;
  const double epsilon = 1.0;
  auto transform = wavelet::HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const double lambda = 2.0 * transform->GeneralizedSensitivity() / epsilon;
  auto predicted = ExactQueryNoiseVariance(*transform, schema, lambda, q);
  ASSERT_TRUE(predicted.ok());

  const double truth = query::QueryEvaluator(schema, m).Answer(q);
  std::vector<double> noise;
  constexpr std::size_t kTrials = 1200;
  for (std::size_t seed = 0; seed < kTrials; ++seed) {
    auto noisy = privelet.Publish(schema, m, epsilon, seed);
    ASSERT_TRUE(noisy.ok());
    noise.push_back(query::QueryEvaluator(schema, *noisy).Answer(q) - truth);
  }
  const double measured = SampleVariance(noise);
  // 1200 samples of (sums of) Laplace noise: sample variance concentrates
  // within ~15% of the truth with overwhelming probability.
  EXPECT_NEAR(measured / *predicted, 1.0, 0.25)
      << "predicted " << *predicted << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVarianceMeasurementTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(ExactVarianceTest, WrapperUsesMechanismCalibration) {
  const data::Schema schema = OrdinalSchema(64);
  query::RangeQuery q(1);
  ASSERT_TRUE(q.SetRange(schema, 0, 0, 63).ok());
  // Full range on a Haar axis touches only the base coefficient:
  // a0 = 64, w0 = 64 -> factor 1 -> variance = 2*lambda^2, lambda = 2*7.
  auto variance = PriveletPlusQueryVariance(schema, {}, 1.0, q);
  ASSERT_TRUE(variance.ok());
  EXPECT_DOUBLE_EQ(*variance, 2.0 * 14.0 * 14.0);
}

TEST(ExactVarianceTest, RejectsBadArguments) {
  const data::Schema schema = OrdinalSchema(8);
  query::RangeQuery q(1);
  EXPECT_FALSE(PriveletPlusQueryVariance(schema, {}, 0.0, q).ok());
  EXPECT_FALSE(PriveletPlusQueryVariance(schema, {"Nope"}, 1.0, q).ok());
}

TEST(WorkloadPlannerTest, OrdersSubsetsConsistentlyWithBounds) {
  // Small domain + large domain: the planner must put the small attribute
  // in SA and keep the large one under the wavelet for a generic workload.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Small", 4));
  attrs.push_back(data::Attribute::Ordinal("Large", 256));
  const data::Schema schema(std::move(attrs));

  query::WorkloadOptions wopts;
  wopts.num_queries = 200;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  auto plan = PlanSaForWorkload(schema, *workload, 1.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->sa_names, (std::vector<std::string>{"Small"}));

  auto all = EvaluateAllSaSubsets(schema, *workload, 1.0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  // Sorted ascending.
  for (std::size_t i = 1; i < all->size(); ++i) {
    EXPECT_LE((*all)[i - 1].expected_variance, (*all)[i].expected_variance);
  }
}

TEST(WorkloadPlannerTest, PlanBeatsOrMatchesHeuristicOnItsWorkload) {
  // By construction the planner's best subset minimizes expected variance,
  // so it is at least as good as the paper's per-attribute rule.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 32));
  attrs.push_back(data::Attribute::Nominal(
      "B", data::Hierarchy::Balanced({2, 4}).value()));
  const data::Schema schema(std::move(attrs));
  query::WorkloadOptions wopts;
  wopts.num_queries = 150;
  auto workload = query::GenerateWorkload(schema, wopts);
  ASSERT_TRUE(workload.ok());

  auto all = EvaluateAllSaSubsets(schema, *workload, 1.0);
  ASSERT_TRUE(all.ok());
  const double best = all->front().expected_variance;
  for (const auto& plan : *all) {
    EXPECT_GE(plan.expected_variance, best);
  }
}

TEST(WorkloadPlannerTest, RejectsBadInput) {
  const data::Schema schema = OrdinalSchema(8);
  EXPECT_FALSE(PlanSaForWorkload(schema, {}, 1.0).ok());
  query::RangeQuery q(1);
  EXPECT_FALSE(PlanSaForWorkload(schema, {q}, -1.0).ok());
}

}  // namespace
}  // namespace privelet::analysis
