// Unit tests for privelet/common: Status, Result, math helpers.
#include <gtest/gtest.h>

#include <limits>

#include "privelet/common/math_util.h"
#include "privelet/common/result.h"
#include "privelet/common/status.h"

namespace privelet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  PRIVELET_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> DoublePositive(int x) {
  PRIVELET_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(DoublePositive(21).ok());
  EXPECT_EQ(DoublePositive(21).value(), 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(101), 128u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(MathUtilTest, FloorAndCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(MathUtilTest, CheckedProduct) {
  EXPECT_EQ(CheckedProduct({}), 1u);
  EXPECT_EQ(CheckedProduct({3, 4, 5}), 60u);
  EXPECT_EQ(CheckedProduct({7}), 7u);
}

TEST(MathUtilDeathTest, CheckedProductOverflowAborts) {
  // Regression for the total-cell computations: a dimension list whose
  // product wraps size_t must die, not silently truncate.
  const std::size_t big = std::numeric_limits<std::size_t>::max() / 2 + 1;
  EXPECT_DEATH((void)CheckedProduct({big, 2}), "dimension product overflow");
}

TEST(MathUtilTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(SampleVariance({5.0}), 0.0);
  // Var of {1,2,3,4} with n-1 denominator: 5/3.
  EXPECT_NEAR(SampleVariance({1.0, 2.0, 3.0, 4.0}), 5.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace privelet
