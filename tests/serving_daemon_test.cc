// End-to-end tests for the serving daemon (serving::Server) over real
// loopback sockets: text and binary protocols answer bit-identically to a
// directly loaded session, errors leave the connection usable, RELOAD
// hot-swaps a release under live traffic without failing one in-flight
// request, oversized requests are rejected, and Shutdown() from another
// thread drains cleanly. Runs with the concurrency label: TSan watches
// the event loop, the store, and client threads together.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/release_store.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/serving/latency_histogram.h"
#include "privelet/serving/protocol.h"
#include "privelet/serving/server.h"
#include "privelet/storage/session_io.h"

namespace privelet::serving {
namespace {

#if !defined(__linux__)

TEST(DaemonTest, RequiresLinux) {
  GTEST_SKIP() << "the epoll server only builds on Linux";
}

#else  // defined(__linux__)

data::Schema TestSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 64));
  attrs.push_back(data::Attribute::Ordinal("B", 32));
  return data::Schema(std::move(attrs));
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> SaveReleases(const data::Schema& schema,
                                      std::span<const std::uint64_t> seeds,
                                      const std::string& stem) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 25));
  }
  mechanism::PriveletMechanism mech;
  std::vector<std::string> paths;
  for (const std::uint64_t seed : seeds) {
    auto session = query::PublishingSession::Publish(schema, mech, m,
                                                     /*epsilon=*/0.9, seed);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    const std::string path =
        TempPath(stem + "_" + std::to_string(seed) + ".pvls");
    EXPECT_TRUE(storage::SaveSession(path, *session).ok());
    paths.push_back(path);
  }
  return paths;
}

/// The daemon's answer rendering (AppendTextAnswers uses %.17g); direct
/// sessions are formatted the same way so comparisons are string-exact.
std::string FormatAnswer(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Blocking loopback client with a line/frame reader. A receive timeout
/// turns a hung server into a test failure instead of a stuck run.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    const timeval timeout{/*tv_sec=*/30, /*tv_usec=*/0};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    // Like the real CLI client: without it, request/response turnarounds
    // serialize behind Nagle + delayed-ACK (~40ms each) and the latency
    // assertions below would measure the kernel, not the daemon.
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    while (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) != 0) {
      if (errno == EINTR) continue;
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Reads one '\n'-terminated line (CR stripped); false on EOF/error.
  bool ReadLine(std::string* line) {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (!FillBuffer()) return false;
    }
  }

  /// Reads one `ok <n>` or `error: ...` response: header + n payload lines.
  bool ReadResponse(std::string* header, std::vector<std::string>* lines) {
    lines->clear();
    if (!ReadLine(header)) return false;
    if (header->rfind("ok ", 0) != 0) return true;  // error: no payload
    const std::size_t n = std::stoul(header->substr(3));
    for (std::size_t i = 0; i < n; ++i) {
      std::string line;
      if (!ReadLine(&line)) return false;
      lines->push_back(std::move(line));
    }
    return true;
  }

  /// Reads one complete binary frame and returns its payload.
  bool ReadFrame(std::string* payload) {
    while (true) {
      auto total = PeekFrame(buffer_);
      if (!total.ok()) return false;
      if (*total > 0) {
        *payload = buffer_.substr(4, *total - 4);
        buffer_.erase(0, *total);
        return true;
      }
      if (!FillBuffer()) return false;
    }
  }

  /// True when the server closed the connection (EOF with no stray bytes).
  bool AtEof() {
    return !FillBuffer() && buffer_.empty();
  }

 private:
  bool FillBuffer() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = TestSchema();
    const std::uint64_t seeds[] = {91, 92};
    paths_ = SaveReleases(schema_, seeds, "daemon");
    query::ReleaseStore::Options store_options;
    store_options.pool = &pool_;
    store_ = std::make_unique<query::ReleaseStore>(store_options);
    ASSERT_TRUE(store_->Register("r0", paths_[0]).ok());
    ASSERT_TRUE(store_->Register("r1", paths_[1]).ok());
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(store_.get(), options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    server_thread_ = std::thread([this] { run_status_ = server_->Run(); });
  }

  void StopServer() {
    if (server_thread_.joinable()) {
      server_->Shutdown();
      server_thread_.join();
      EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
    }
  }

  void TearDown() override { StopServer(); }

  /// Direct (in-process) answers for text predicate lines against `path`,
  /// formatted exactly as the daemon renders them.
  std::vector<std::string> DirectAnswers(
      const std::string& path, std::span<const std::string> lines) {
    auto session = storage::LoadSession(path);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    std::vector<query::RangeQuery> queries;
    for (const std::string& line : lines) {
      auto query = ParseQueryLine(schema_, line);
      EXPECT_TRUE(query.ok()) << query.status().ToString();
      queries.push_back(*std::move(query));
    }
    std::vector<std::string> out;
    for (const double a : session->AnswerAll(queries)) {
      out.push_back(FormatAnswer(a));
    }
    return out;
  }

  data::Schema schema_;
  std::vector<std::string> paths_;
  common::ThreadPool pool_{2};
  std::unique_ptr<query::ReleaseStore> store_;
  std::unique_ptr<Server> server_;
  std::thread server_thread_;
  Status run_status_;
};

TEST_F(DaemonTest, TextProtocolMatchesDirectAnswers) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  const std::vector<std::string> predicate_lines = {"*", "A=0:31",
                                                    "A=3:9 B=1:30"};
  std::string header;
  std::vector<std::string> payload;

  // Single QUERYs, one per release: answers are string-identical to the
  // directly loaded sessions and the releases are not cross-wired.
  for (const char* id : {"r0", "r1"}) {
    const std::string path = std::string(id) == "r0" ? paths_[0] : paths_[1];
    for (const std::string& line : predicate_lines) {
      ASSERT_TRUE(client.Send("QUERY " + std::string(id) + " " + line + "\n"));
      ASSERT_TRUE(client.ReadResponse(&header, &payload));
      EXPECT_EQ(header, "ok 1");
      const auto expected =
          DirectAnswers(path, std::span(&line, 1));
      ASSERT_EQ(payload.size(), 1u);
      EXPECT_EQ(payload[0], expected[0]) << id << " " << line;
    }
  }

  // BATCH answers all lines in order in one response.
  std::string batch = "BATCH r0 " + std::to_string(predicate_lines.size());
  batch += "\r\n";  // CRLF clients must work
  for (const std::string& line : predicate_lines) batch += line + "\r\n";
  ASSERT_TRUE(client.Send(batch));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header, "ok " + std::to_string(predicate_lines.size()));
  EXPECT_EQ(payload, DirectAnswers(paths_[0], predicate_lines));
}

TEST_F(DaemonTest, BinaryProtocolIsBitIdentical) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  ASSERT_TRUE(client.Send(std::string_view(kBinaryMagic, 4)));

  QuerySpec all;  // no predicates
  QuerySpec range;
  range.predicates.push_back({/*kind=*/0, /*attr=*/0, /*lo=*/2, /*hi=*/40});
  const std::vector<QuerySpec> specs = {all, range};

  std::string wire;
  EncodeQueryRequest(&wire, "r1", specs);
  EncodeVerbRequest(&wire, Verb::kPing);
  ASSERT_TRUE(client.Send(wire));  // two pipelined frames

  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&payload));
  auto response = DecodeResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error;

  auto session = storage::LoadSession(paths_[1]);
  ASSERT_TRUE(session.ok());
  std::vector<query::RangeQuery> queries;
  for (const QuerySpec& spec : specs) {
    auto query = BuildQuery(schema_, spec);
    ASSERT_TRUE(query.ok());
    queries.push_back(*std::move(query));
  }
  EXPECT_EQ(response->answers, session->AnswerAll(queries));  // bit-exact

  ASSERT_TRUE(client.ReadFrame(&payload));
  response = DecodeResponse(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->text, "pong");
}

TEST_F(DaemonTest, ControlVerbsAndErrorsKeepTheConnectionAlive) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  std::string header;
  std::vector<std::string> payload;

  ASSERT_TRUE(client.Send("PING\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header, "ok 1");
  ASSERT_EQ(payload.size(), 1u);
  EXPECT_EQ(payload[0], "pong");

  ASSERT_TRUE(client.Send("IDS\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header, "ok 2");
  EXPECT_EQ(payload, (std::vector<std::string>{"r0", "r1"}));

  // Request-level failures are error responses, not disconnects.
  ASSERT_TRUE(client.Send("QUERY nope *\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header.rfind("error:", 0), 0u) << header;
  EXPECT_NE(header.find("nope"), std::string::npos);

  ASSERT_TRUE(client.Send("QUERY r0 A=bogus\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header.rfind("error:", 0), 0u) << header;

  ASSERT_TRUE(client.Send("FROBNICATE\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header.rfind("error:", 0), 0u) << header;

  // STATS reflects the traffic above and stays parseable.
  ASSERT_TRUE(client.Send("STATS\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  ASSERT_EQ(header.rfind("ok ", 0), 0u) << header;
  std::string joined;
  for (const std::string& line : payload) joined += line + "\n";
  EXPECT_NE(joined.find("uptime_s"), std::string::npos);
  EXPECT_NE(joined.find("requests"), std::string::npos);
  EXPECT_NE(joined.find("latency _all"), std::string::npos);

  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GE(stats.requests, 6u);
  EXPECT_EQ(stats.failures, 3u);

  // QUIT drains and closes from the server side.
  ASSERT_TRUE(client.Send("QUIT\n"));
  EXPECT_TRUE(client.AtEof());
}

TEST_F(DaemonTest, ReloadHotSwapsUnderLiveTraffic) {
  StartServer();
  const std::string star = "*";
  const std::vector<std::string> expected0 =
      DirectAnswers(paths_[0], std::span(&star, 1));
  const std::vector<std::string> expected1 =
      DirectAnswers(paths_[1], std::span(&star, 1));
  ASSERT_NE(expected0[0], expected1[0]);  // distinct seeds, distinct noise

  // Register the swapped id up front so no client can race ahead of it
  // and see a not-found error: the hot-swap guarantee under test is
  // "zero failed in-flight requests", not "reload wins the registration
  // race".
  TestClient admin;
  ASSERT_TRUE(admin.Connect(server_->port()));
  std::string header;
  std::vector<std::string> payload;
  ASSERT_TRUE(admin.Send("RELOAD swap " + paths_[0] + "\n"));
  ASSERT_TRUE(admin.ReadResponse(&header, &payload));
  ASSERT_EQ(header, "ok 1") << header;

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRequestsPerClient = 60;
  std::atomic<std::size_t> transport_errors{0};
  std::atomic<std::size_t> failed_requests{0};
  std::atomic<std::size_t> wrong_answers{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      TestClient client;
      if (!client.Connect(server_->port())) {
        transport_errors.fetch_add(1);
        return;
      }
      std::string header;
      std::vector<std::string> payload;
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        if (!client.Send("QUERY swap *\n") ||
            !client.ReadResponse(&header, &payload)) {
          transport_errors.fetch_add(1);
          return;
        }
        if (header != "ok 1" || payload.size() != 1) {
          failed_requests.fetch_add(1);
          continue;
        }
        if (payload[0] != expected0[0] && payload[0] != expected1[0]) {
          wrong_answers.fetch_add(1);
        }
      }
    });
  }

  // Flip the release back and forth while the clients hammer it.
  for (std::size_t flip = 0; flip < 20; ++flip) {
    ASSERT_TRUE(
        admin.Send("RELOAD swap " + paths_[1 - flip % 2] + "\n"));
    ASSERT_TRUE(admin.ReadResponse(&header, &payload));
    EXPECT_EQ(header, "ok 1");
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], "reloaded swap");
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  // The id is registered before any client sends; every in-flight request
  // during the 20 hot swaps must still succeed.
  EXPECT_EQ(failed_requests.load(), 0u);
  EXPECT_GE(server_->stats().reloads, 21u);
}

TEST_F(DaemonTest, ConcurrentMixedModeClientsGetExactAnswers) {
  StartServer();
  const std::vector<std::string> lines = {"*", "A=0:31", "B=0:15"};
  const std::vector<std::string> expected[2] = {
      DirectAnswers(paths_[0], lines), DirectAnswers(paths_[1], lines)};

  constexpr std::size_t kClients = 6;  // half text, half binary
  constexpr std::size_t kRounds = 30;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> transport_errors{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const std::string id = "r" + std::to_string(c % 2);
      TestClient client;
      if (!client.Connect(server_->port())) {
        transport_errors.fetch_add(1);
        return;
      }
      if (c % 2 == 1) {  // binary mode
        if (!client.Send(std::string_view(kBinaryMagic, 4))) {
          transport_errors.fetch_add(1);
          return;
        }
        QuerySpec range;
        range.predicates.push_back({0, 0, 0, 31});
        std::string wire;
        EncodeQueryRequest(&wire, id, std::span(&range, 1));
        auto session = storage::LoadSession(paths_[c % 2]);
        if (!session.ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        auto built = BuildQuery(schema_, range);
        if (!built.ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        const std::vector<double> direct =
            session->AnswerAll(std::vector<query::RangeQuery>{*built});
        for (std::size_t i = 0; i < kRounds; ++i) {
          std::string payload;
          if (!client.Send(wire) || !client.ReadFrame(&payload)) {
            transport_errors.fetch_add(1);
            return;
          }
          auto response = DecodeResponse(payload);
          if (!response.ok() || !response->ok ||
              response->answers != direct) {
            mismatches.fetch_add(1);
          }
        }
      } else {  // text mode, pipelined batch per round
        std::string request = "BATCH " + id + " 3\n";
        for (const std::string& line : lines) request += line + "\n";
        std::string header;
        std::vector<std::string> payload;
        for (std::size_t i = 0; i < kRounds; ++i) {
          if (!client.Send(request) ||
              !client.ReadResponse(&header, &payload)) {
            transport_errors.fetch_add(1);
            return;
          }
          if (header != "ok 3" || payload != expected[c % 2]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server_->stats().failures, 0u);
}

TEST_F(DaemonTest, OversizedRequestLineDropsTheConnection) {
  ServerOptions options;
  options.max_request_bytes = 1024;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  // 4 KiB with no newline: there is no request boundary within the 1 KiB
  // input cap, so the stream cannot resynchronize — the server answers
  // with one error and closes.
  std::string giant = "QUERY r0 ";
  giant.append(4096, 'x');
  ASSERT_TRUE(client.Send(giant));
  std::string header;
  std::vector<std::string> payload;
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header.rfind("error:", 0), 0u) << header;
  EXPECT_TRUE(client.AtEof());

  // A fresh, polite connection still works afterwards.
  TestClient after;
  ASSERT_TRUE(after.Connect(server_->port()));
  ASSERT_TRUE(after.Send("PING\n"));
  ASSERT_TRUE(after.ReadResponse(&header, &payload));
  EXPECT_EQ(header, "ok 1");
  EXPECT_EQ(server_->stats().connections_dropped, 1u);
}

TEST_F(DaemonTest, ResponsesAreByteIdenticalAcrossLoopCounts) {
  // The sharding contract: num_loops is a pure throughput knob. The same
  // request stream must produce byte-identical responses at 1, 2, and 8
  // loops, in both framings, with the answer cache on and the compiled
  // path forced (threshold 1). Answers also pin to the directly loaded
  // session, so "identical" can't mean "identically wrong".
  const std::vector<std::string> lines = {"*", "A=0:31", "A=3:9 B=1:30",
                                          "A=0:63 B=0:31"};
  const std::vector<std::string> expected = DirectAnswers(paths_[0], lines);

  QuerySpec range;
  range.predicates.push_back({/*kind=*/0, /*attr=*/0, /*lo=*/2, /*hi=*/40});
  std::string binary_request;
  EncodeQueryRequest(&binary_request, "r0", std::span(&range, 1));

  std::string first_binary_payload;
  for (const std::size_t loops : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    ServerOptions options;
    options.num_loops = loops;
    options.compile_batch_threshold = 1;
    StartServer(options);
    EXPECT_EQ(server_->num_loops(), loops);

    // Text: every predicate twice (the second answer comes from the
    // answer cache and must not differ), then once more as a batch.
    TestClient text;
    ASSERT_TRUE(text.Connect(server_->port()));
    std::string header;
    std::vector<std::string> payload;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        ASSERT_TRUE(text.Send("QUERY r0 " + lines[i] + "\n"));
        ASSERT_TRUE(text.ReadResponse(&header, &payload));
        ASSERT_EQ(header, "ok 1") << header;
        EXPECT_EQ(payload[0], expected[i])
            << "loops=" << loops << " round=" << round << " " << lines[i];
      }
    }
    std::string batch = "BATCH r0 " + std::to_string(lines.size()) + "\n";
    for (const std::string& line : lines) batch += line + "\n";
    ASSERT_TRUE(text.Send(batch));
    ASSERT_TRUE(text.ReadResponse(&header, &payload));
    EXPECT_EQ(payload, expected) << "loops=" << loops;

    // Binary: the raw response frame must match the 1-loop run's bytes.
    TestClient binary;
    ASSERT_TRUE(binary.Connect(server_->port()));
    ASSERT_TRUE(binary.Send(std::string_view(kBinaryMagic, 4)));
    ASSERT_TRUE(binary.Send(binary_request));
    std::string frame;
    ASSERT_TRUE(binary.ReadFrame(&frame));
    if (first_binary_payload.empty()) {
      first_binary_payload = frame;
      auto response = DecodeResponse(frame);
      ASSERT_TRUE(response.ok() && response->ok);
    } else {
      EXPECT_EQ(frame, first_binary_payload) << "loops=" << loops;
    }

    if (loops > 1) {
      EXPECT_GT(server_->stats().answer_cache_hits, 0u);
    }
    StopServer();
  }
}

TEST_F(DaemonTest, HandoffAcceptModeServesAllConnections) {
  // Force the single-acceptor eventfd handoff (the non-REUSEPORT
  // fallback): connections land round-robin on both loops and every one
  // must be fully served.
  ServerOptions options;
  options.num_loops = 2;
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  StartServer(options);

  const std::string line = "A=1:20";
  const std::vector<std::string> expected =
      DirectAnswers(paths_[0], std::span(&line, 1));
  constexpr std::size_t kClients = 8;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(clients.back()->Connect(server_->port())) << i;
  }
  std::string header;
  std::vector<std::string> payload;
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i]->Send("QUERY r0 " + line + "\n")) << i;
    ASSERT_TRUE(clients[i]->ReadResponse(&header, &payload)) << i;
    EXPECT_EQ(header, "ok 1") << i;
    EXPECT_EQ(payload[0], expected[0]) << i;
  }
  EXPECT_EQ(server_->stats().connections_accepted, kClients);
}

TEST_F(DaemonTest, ReloadInvalidatesTheAnswerCache) {
  // A cached answer must die with the release that produced it: QUERY,
  // RELOAD to a different snapshot, QUERY again on the same connection
  // (same loop, same cache) must return the new release's answer.
  StartServer();
  const std::string star = "*";
  const std::vector<std::string> expected0 =
      DirectAnswers(paths_[0], std::span(&star, 1));
  const std::vector<std::string> expected1 =
      DirectAnswers(paths_[1], std::span(&star, 1));
  ASSERT_NE(expected0[0], expected1[0]);

  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  std::string header;
  std::vector<std::string> payload;
  ASSERT_TRUE(client.Send("RELOAD swap " + paths_[0] + "\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  ASSERT_EQ(header, "ok 1");

  for (int round = 0; round < 2; ++round) {  // second hit is cached
    ASSERT_TRUE(client.Send("QUERY swap *\n"));
    ASSERT_TRUE(client.ReadResponse(&header, &payload));
    ASSERT_EQ(header, "ok 1");
    EXPECT_EQ(payload[0], expected0[0]) << "round " << round;
  }
  ASSERT_TRUE(client.Send("RELOAD swap " + paths_[1] + "\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  ASSERT_EQ(header, "ok 1");
  ASSERT_TRUE(client.Send("QUERY swap *\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  ASSERT_EQ(header, "ok 1");
  EXPECT_EQ(payload[0], expected1[0]) << "stale cached answer after RELOAD";
}

TEST_F(DaemonTest, SequentialQueryLatencyStaysInteractive) {
  // 200 sequential request/response turnarounds on one connection. With
  // TCP_NODELAY on both ends each is well under a millisecond on
  // loopback; a Nagle/delayed-ACK regression turns them into ~40ms
  // stalls, which no amount of CI noise hides behind this bound.
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  std::string header;
  std::vector<std::string> payload;

  LatencyHistogram latency;
  constexpr std::size_t kRequests = 200;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(client.Send("QUERY r0 A=2:40\n"));
    ASSERT_TRUE(client.ReadResponse(&header, &payload));
    ASSERT_EQ(header, "ok 1");
    latency.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  EXPECT_EQ(latency.count(), kRequests);
  // p99 under 25ms: generous for a sanitized debug build, impossible to
  // meet if even a handful of turnarounds hit a 40ms Nagle stall.
  EXPECT_LT(latency.Quantile(0.99), std::uint64_t{25} * 1000 * 1000)
      << latency.SummaryMicros();
}

TEST_F(DaemonTest, ShutdownFromAnotherThreadClosesClients) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  std::string header;
  std::vector<std::string> payload;
  ASSERT_TRUE(client.Send("PING\n"));
  ASSERT_TRUE(client.ReadResponse(&header, &payload));
  EXPECT_EQ(header, "ok 1");

  server_->Shutdown();
  server_thread_.join();
  EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  EXPECT_TRUE(client.AtEof());
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace privelet::serving
