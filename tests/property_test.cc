// Seeded randomized property tests: random schemas, matrices, and query
// batches, cross-checked against BruteForceAnswer (the O(m) oracle) —
// QueryEvaluator, ExactEvaluator, and PublishingSession::AnswerAll must
// all agree with it — plus HN forward/inverse round-trips, serial vs
// pooled, on every generated schema.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet {
namespace {

data::Schema RandomSchema(rng::Xoshiro256pp& gen) {
  const std::size_t num_attrs = gen.NextUint64InRange(1, 3);
  std::vector<data::Attribute> attrs;
  for (std::size_t a = 0; a < num_attrs; ++a) {
    const std::string name = "A" + std::to_string(a);
    if (gen.NextDouble() < 0.5) {
      attrs.push_back(data::Attribute::Ordinal(
          name, gen.NextUint64InRange(1, 12)));
    } else {
      const std::size_t f1 = gen.NextUint64InRange(2, 4);
      const std::size_t f2 = gen.NextUint64InRange(2, 4);
      attrs.push_back(data::Attribute::Nominal(
          name, data::Hierarchy::Balanced({f1, f2}).value()));
    }
  }
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     rng::Xoshiro256pp& gen) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 20));
  }
  return m;
}

query::RangeQuery RandomQuery(const data::Schema& schema,
                              rng::Xoshiro256pp& gen) {
  query::RangeQuery q(schema.num_attributes());
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    const double kind = gen.NextDouble();
    if (kind < 0.3) continue;  // unconstrained
    if (attr.is_nominal() && kind < 0.6) {
      // Subtree predicate through the hierarchy (roll-up form).
      const std::size_t node =
          gen.NextUint64InRange(0, attr.hierarchy().num_nodes() - 1);
      EXPECT_TRUE(q.SetHierarchyNode(schema, a, node).ok());
      continue;
    }
    std::size_t lo = gen.NextUint64InRange(0, attr.domain_size() - 1);
    std::size_t hi = gen.NextUint64InRange(0, attr.domain_size() - 1);
    if (lo > hi) std::swap(lo, hi);
    EXPECT_TRUE(q.SetRange(schema, a, lo, hi).ok());
  }
  return q;
}

TEST(PropertyTest, EvaluatorsAgreeWithBruteForceOracle) {
  rng::Xoshiro256pp gen(20260729);
  common::ThreadPool pool(2);
  for (int iter = 0; iter < 40; ++iter) {
    const data::Schema schema = RandomSchema(gen);
    const matrix::FrequencyMatrix m = RandomMatrix(schema, gen);
    const query::QueryEvaluator noisy_eval(schema, m);
    const query::ExactEvaluator exact_eval(schema, m);
    auto session = query::PublishingSession::FromMatrix(schema, m, &pool);
    ASSERT_TRUE(session.ok());

    std::vector<query::RangeQuery> queries;
    for (int k = 0; k < 15; ++k) queries.push_back(RandomQuery(schema, gen));
    const std::vector<double> batch = session->AnswerAll(queries);

    for (std::size_t k = 0; k < queries.size(); ++k) {
      const double oracle = query::BruteForceAnswer(schema, m, queries[k]);
      ASSERT_NEAR(noisy_eval.Answer(queries[k]), oracle, 1e-9)
          << "iter " << iter << " query " << k;
      // Entries are small integers, so the exact evaluator must agree
      // with the oracle to the last bit.
      ASSERT_EQ(static_cast<double>(exact_eval.Answer(queries[k])), oracle)
          << "iter " << iter << " query " << k;
      ASSERT_NEAR(batch[k], oracle, 1e-9)
          << "iter " << iter << " query " << k;
    }
  }
}

TEST(PropertyTest, HnRoundTripRecoversDataSerialAndPooled) {
  rng::Xoshiro256pp gen(777);
  common::ThreadPool pool(3);
  for (int iter = 0; iter < 25; ++iter) {
    const data::Schema schema = RandomSchema(gen);
    const matrix::FrequencyMatrix m = RandomMatrix(schema, gen);
    auto transform = wavelet::HnTransform::Create(schema);
    ASSERT_TRUE(transform.ok());

    auto coeffs = transform->Forward(m);
    ASSERT_TRUE(coeffs.ok());
    auto back = transform->Inverse(*coeffs);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->dims(), m.dims());
    for (std::size_t i = 0; i < m.size(); ++i) {
      ASSERT_NEAR((*back)[i], m[i], 1e-8) << "iter " << iter << " cell " << i;
    }

    // The pooled pass must agree with the serial pass bit for bit.
    auto pooled_coeffs = transform->Forward(m, &pool);
    ASSERT_TRUE(pooled_coeffs.ok());
    ASSERT_TRUE(matrix::ValuesEqual(pooled_coeffs->coeffs.values(),
                                    coeffs->coeffs.values()))
        << "iter " << iter;
    auto pooled_back = transform->Inverse(*pooled_coeffs, &pool);
    ASSERT_TRUE(pooled_back.ok());
    ASSERT_TRUE(matrix::ValuesEqual(pooled_back->values(), back->values()))
        << "iter " << iter;
  }
}

TEST(PropertyTest, WeightIterationMatchesPointLookups) {
  // ForEachCoefficientInRange's running products must equal the O(d)
  // WeightAt lookup at every flat index, for arbitrary split points.
  rng::Xoshiro256pp gen(31337);
  for (int iter = 0; iter < 15; ++iter) {
    const data::Schema schema = RandomSchema(gen);
    auto transform = wavelet::HnTransform::Create(schema);
    ASSERT_TRUE(transform.ok());
    matrix::FrequencyMatrix m(schema.DomainSizes());
    auto coeffs = transform->Forward(m);
    ASSERT_TRUE(coeffs.ok());

    const std::size_t total = coeffs->coeffs.size();
    const std::size_t split = gen.NextUint64InRange(0, total);
    std::size_t visited = 0;
    auto check = [&](std::size_t flat, double weight) {
      ASSERT_DOUBLE_EQ(weight, coeffs->WeightAt(flat)) << "flat " << flat;
      ++visited;
    };
    coeffs->ForEachCoefficientInRange(0, split, check);
    coeffs->ForEachCoefficientInRange(split, total, check);
    EXPECT_EQ(visited, total) << "iter " << iter;
  }
}

}  // namespace
}  // namespace privelet
