// Tests for the census surrogate and scalability generators: the schemas
// must reproduce paper Table III exactly; generation must be deterministic
// and land inside the declared domains.
#include <gtest/gtest.h>

#include "privelet/data/census_generator.h"
#include "privelet/data/synthetic_generator.h"

namespace privelet::data {
namespace {

TEST(CensusSchemaTest, BrazilMatchesTableIII) {
  auto schema = MakeCensusSchema(CensusCountry::kBrazil, 0);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->num_attributes(), 4u);
  EXPECT_EQ(schema->attribute(0).name(), "Age");
  EXPECT_EQ(schema->attribute(0).domain_size(), 101u);
  EXPECT_TRUE(schema->attribute(0).is_ordinal());
  EXPECT_EQ(schema->attribute(1).name(), "Gender");
  EXPECT_EQ(schema->attribute(1).domain_size(), 2u);
  EXPECT_EQ(schema->attribute(1).hierarchy().height(), 2u);
  EXPECT_EQ(schema->attribute(2).name(), "Occupation");
  EXPECT_EQ(schema->attribute(2).domain_size(), 512u);
  EXPECT_EQ(schema->attribute(2).hierarchy().height(), 3u);
  EXPECT_EQ(schema->attribute(3).name(), "Income");
  EXPECT_EQ(schema->attribute(3).domain_size(), 1001u);
  EXPECT_TRUE(schema->attribute(3).is_ordinal());
}

TEST(CensusSchemaTest, UsMatchesTableIII) {
  auto schema = MakeCensusSchema(CensusCountry::kUS, 0);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute(0).domain_size(), 96u);
  EXPECT_EQ(schema->attribute(1).domain_size(), 2u);
  EXPECT_EQ(schema->attribute(2).domain_size(), 511u);
  EXPECT_EQ(schema->attribute(2).hierarchy().height(), 3u);
  EXPECT_EQ(schema->attribute(3).domain_size(), 1020u);
}

TEST(CensusSchemaTest, IncomeDomainOverride) {
  auto schema = MakeCensusSchema(CensusCountry::kBrazil, 126);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute(3).domain_size(), 126u);
}

TEST(CensusGeneratorTest, ProducesRequestedTupleCount) {
  CensusConfig config = DefaultCensusConfig(CensusCountry::kBrazil);
  config.num_tuples = 5000;
  auto table = GenerateCensus(config);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 5000u);
}

TEST(CensusGeneratorTest, DeterministicInSeed) {
  CensusConfig config = DefaultCensusConfig(CensusCountry::kUS);
  config.num_tuples = 1000;
  config.seed = 42;
  auto a = GenerateCensus(config);
  auto b = GenerateCensus(config);
  config.seed = 43;
  auto c = GenerateCensus(config);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool differs_from_c = false;
  for (std::size_t r = 0; r < 1000; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      EXPECT_EQ(a->value(r, col), b->value(r, col));
      if (a->value(r, col) != c->value(r, col)) differs_from_c = true;
    }
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(CensusGeneratorTest, MarginalsAreNonDegenerate) {
  CensusConfig config = DefaultCensusConfig(CensusCountry::kBrazil);
  config.num_tuples = 20000;
  auto table = GenerateCensus(config);
  ASSERT_TRUE(table.ok());
  // Both genders occur; ages span a broad range; occupation is skewed
  // toward low leaf indices (Zipf).
  std::size_t gender1 = 0;
  std::uint32_t max_age = 0;
  std::size_t occ_low = 0;
  for (std::size_t r = 0; r < table->num_rows(); ++r) {
    gender1 += table->value(r, 1);
    max_age = std::max(max_age, table->value(r, 0));
    if (table->value(r, 2) < 64) ++occ_low;
  }
  EXPECT_GT(gender1, 8000u);
  EXPECT_LT(gender1, 12000u);
  EXPECT_GT(max_age, 80u);
  // Zipf(1.07): the first 64 of 512 leaves carry well over a third of mass.
  EXPECT_GT(occ_low, table->num_rows() / 3);
}

TEST(PaperScaleConfigTest, MatchesPaperParameters) {
  const CensusConfig brazil = PaperScaleCensusConfig(CensusCountry::kBrazil);
  EXPECT_EQ(brazil.num_tuples, 10'000'000u);
  EXPECT_EQ(brazil.income_domain, 1001u);
  const CensusConfig us = PaperScaleCensusConfig(CensusCountry::kUS);
  EXPECT_EQ(us.num_tuples, 8'000'000u);
  EXPECT_EQ(us.income_domain, 1020u);
}

TEST(ScalabilitySchemaTest, FourAttributesOfEqualDomain) {
  auto schema = MakeScalabilitySchema(1 << 16);  // per-attribute 16
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->num_attributes(), 4u);
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(schema->attribute(a).domain_size(), 16u);
  }
  EXPECT_TRUE(schema->attribute(0).is_ordinal());
  EXPECT_TRUE(schema->attribute(1).is_ordinal());
  EXPECT_TRUE(schema->attribute(2).is_nominal());
  EXPECT_TRUE(schema->attribute(3).is_nominal());
  // 3-level hierarchy with sqrt(16) = 4 level-2 nodes.
  EXPECT_EQ(schema->attribute(2).hierarchy().height(), 3u);
  EXPECT_EQ(schema->attribute(2).hierarchy().NodesAtLevel(2).size(), 4u);
}

TEST(ScalabilitySchemaTest, RejectsTinyDomain) {
  EXPECT_FALSE(MakeScalabilitySchema(16).ok());  // per-attribute domain 2
}

TEST(SqrtGroupHierarchyTest, CoversAllLeavesWithMinFanout) {
  for (std::size_t leaves : {4u, 5u, 7u, 23u, 64u, 100u}) {
    auto h = MakeSqrtGroupHierarchy(leaves);
    ASSERT_TRUE(h.ok()) << "leaves=" << leaves;
    EXPECT_EQ(h->num_leaves(), leaves);
    EXPECT_EQ(h->height(), 3u);
    EXPECT_TRUE(h->Validate().ok());
  }
}

TEST(UniformTableTest, ValuesInDomainAndDeterministic) {
  auto schema = MakeScalabilitySchema(1 << 16);
  ASSERT_TRUE(schema.ok());
  auto a = GenerateUniformTable(*schema, 2000, 5);
  auto b = GenerateUniformTable(*schema, 2000, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_rows(), 2000u);
  for (std::size_t r = 0; r < a->num_rows(); ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LT(a->value(r, c), schema->attribute(c).domain_size());
      EXPECT_EQ(a->value(r, c), b->value(r, c));
    }
  }
}

}  // namespace
}  // namespace privelet::data
