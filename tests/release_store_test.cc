// query::ReleaseStore: the multi-release serving catalog must load
// lazily, share one load among concurrent acquirers, evict LRU-first
// without yanking releases from in-flight borrowers, and answer every
// release bit-identically to a directly loaded session — including under
// concurrent load/evict/answer pressure (this suite carries the
// concurrency label and runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/release_store.h"
#include "privelet/query/workload.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/storage/session_io.h"

namespace privelet {
namespace {

data::Schema TestSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 64));
  attrs.push_back(data::Attribute::Ordinal("B", 32));
  return data::Schema(std::move(attrs));
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Publishes one release per seed and saves it; returns the paths.
std::vector<std::string> SaveReleases(const data::Schema& schema,
                                      std::span<const std::uint64_t> seeds,
                                      const std::string& stem) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 25));
  }
  mechanism::PriveletMechanism mech;
  std::vector<std::string> paths;
  for (const std::uint64_t seed : seeds) {
    auto session = query::PublishingSession::Publish(schema, mech, m,
                                                     /*epsilon=*/0.9, seed);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    const std::string path =
        TempPath(stem + "_" + std::to_string(seed) + ".pvls");
    EXPECT_TRUE(storage::SaveSession(path, *session).ok());
    paths.push_back(path);
  }
  return paths;
}

std::vector<query::RangeQuery> TestWorkload(const data::Schema& schema,
                                            std::size_t num_queries) {
  query::WorkloadOptions options;
  options.num_queries = num_queries;
  options.seed = 17;
  auto workload = query::GenerateWorkload(schema, options);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return *std::move(workload);
}

TEST(ReleaseStoreTest, AcquireUnknownIdIsNotFound) {
  query::ReleaseStore store;
  auto session = store.Acquire("nope");
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(StatusCode::kNotFound, session.status().code());
}

TEST(ReleaseStoreTest, RegisterRejectsDuplicatesAndEmptyIds) {
  query::ReleaseStore store;
  EXPECT_FALSE(store.Register("", "whatever.pvls").ok());
  EXPECT_TRUE(store.Register("r", "a.pvls").ok());
  EXPECT_FALSE(store.Register("r", "b.pvls").ok());
  EXPECT_EQ(std::vector<std::string>{"r"}, store.ids());
}

TEST(ReleaseStoreTest, AcquireLoadsLazilyAndCachesTheSession) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {11};
  const auto paths = SaveReleases(schema, seeds, "lazy");
  query::ReleaseStore store;
  ASSERT_TRUE(store.Register("r", paths[0]).ok());
  EXPECT_EQ(0u, store.stats().loads);  // registration touches no file
  EXPECT_EQ(0u, store.resident_count());

  auto first = store.Acquire("r");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = store.Acquire("r");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // one shared session
  const query::ReleaseStore::Stats stats = store.stats();
  EXPECT_EQ(1u, stats.loads);
  EXPECT_EQ(1u, stats.hits);
  EXPECT_EQ(1u, store.resident_count());
}

TEST(ReleaseStoreTest, AnswersMatchDirectlyLoadedSessions) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {21, 22, 23};
  const auto paths = SaveReleases(schema, seeds, "answers");
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 200);

  common::ThreadPool pool(2);
  query::ReleaseStore::Options options;
  options.pool = &pool;
  query::ReleaseStore store(options);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(store.Register("r" + std::to_string(i), paths[i]).ok());
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto direct = storage::LoadSession(paths[i]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto answers = store.AnswerAll("r" + std::to_string(i), workload);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    EXPECT_EQ(direct->AnswerAll(workload), *answers) << "release " << i;
  }
  // Distinct seeds produced distinct releases; the store must not have
  // crossed any wires.
  auto a0 = store.AnswerAll("r0", workload);
  auto a1 = store.AnswerAll("r1", workload);
  ASSERT_TRUE(a0.ok() && a1.ok());
  EXPECT_NE(*a0, *a1);
}

TEST(ReleaseStoreTest, LruBoundEvictsLeastRecentlyUsed) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {31, 32, 33};
  const auto paths = SaveReleases(schema, seeds, "lru");
  query::ReleaseStore::Options options;
  options.max_resident = 2;
  query::ReleaseStore store(options);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(store.Register("r" + std::to_string(i), paths[i]).ok());
  }
  ASSERT_TRUE(store.Acquire("r0").ok());
  ASSERT_TRUE(store.Acquire("r1").ok());
  EXPECT_EQ(2u, store.resident_count());
  ASSERT_TRUE(store.Acquire("r2").ok());  // evicts r0 (least recent)
  EXPECT_EQ(2u, store.resident_count());
  EXPECT_EQ(1u, store.stats().evictions);

  // r1 and r2 are hits; r0 needs a reload.
  ASSERT_TRUE(store.Acquire("r1").ok());
  ASSERT_TRUE(store.Acquire("r2").ok());
  EXPECT_EQ(3u, store.stats().loads);
  ASSERT_TRUE(store.Acquire("r0").ok());
  EXPECT_EQ(4u, store.stats().loads);
}

TEST(ReleaseStoreTest, EvictionKeepsBorrowedSessionsAlive) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {41};
  const auto paths = SaveReleases(schema, seeds, "borrow");
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 100);
  query::ReleaseStore store;
  ASSERT_TRUE(store.Register("r", paths[0]).ok());

  auto borrowed = store.Acquire("r");
  ASSERT_TRUE(borrowed.ok());
  const std::vector<double> before = (*borrowed)->AnswerAll(workload);
  EXPECT_TRUE(store.Evict("r"));
  EXPECT_EQ(0u, store.resident_count());
  // The mapped snapshot behind the session must still be alive: same
  // answers from the borrowed pointer after the store dropped it.
  EXPECT_EQ(before, (*borrowed)->AnswerAll(workload));
  EXPECT_FALSE(store.Evict("r"));  // nothing resident anymore
}

TEST(ReleaseStoreTest, LoadFailuresAreReportedAndNotCached) {
  const data::Schema schema = TestSchema();
  query::ReleaseStore store;
  const std::string path = TempPath("late_file.pvls");
  std::remove(path.c_str());  // TempDir persists across runs
  ASSERT_TRUE(store.Register("r", path).ok());
  EXPECT_FALSE(store.Acquire("r").ok());  // file does not exist yet
  EXPECT_EQ(0u, store.stats().loads);

  const std::uint64_t seeds[] = {51};
  const auto paths = SaveReleases(schema, seeds, "late");
  auto direct = storage::LoadSession(paths[0]);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(storage::SaveSession(path, *direct).ok());
  EXPECT_TRUE(store.Acquire("r").ok()) << "retry after the file appeared";
}

TEST(ReleaseStoreTest, ConcurrentAcquiresShareOneLoad) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {61};
  const auto paths = SaveReleases(schema, seeds, "shared");
  query::ReleaseStore store;
  ASSERT_TRUE(store.Register("r", paths[0]).ok());

  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start roughly together
      auto session = store.Acquire("r");
      if (!session.ok() || *session == nullptr) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0u, failures.load());
  EXPECT_EQ(1u, store.stats().loads);
}

TEST(ReleaseStoreTest, RebindSwapsTheServedRelease) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {81, 82};
  const auto paths = SaveReleases(schema, seeds, "rebind");
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 80);
  query::ReleaseStore store;
  ASSERT_TRUE(store.Register("r", paths[0]).ok());

  auto borrowed = store.Acquire("r");
  ASSERT_TRUE(borrowed.ok());
  const std::vector<double> old_answers = (*borrowed)->AnswerAll(workload);

  ASSERT_TRUE(store.Rebind("r", paths[1]).ok());
  // The borrowed session keeps serving the old release...
  EXPECT_EQ(old_answers, (*borrowed)->AnswerAll(workload));
  // ...while new acquirers get the new file.
  auto swapped = store.Acquire("r");
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  auto direct = storage::LoadSession(paths[1]);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->AnswerAll(workload), (*swapped)->AnswerAll(workload));
  EXPECT_NE(old_answers, (*swapped)->AnswerAll(workload));
  EXPECT_EQ(1u, store.stats().evictions);  // the resident session dropped
}

TEST(ReleaseStoreTest, RebindRegistersUnknownIds) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {91};
  const auto paths = SaveReleases(schema, seeds, "rebind_new");
  query::ReleaseStore store;
  EXPECT_FALSE(store.Rebind("", paths[0]).ok());
  ASSERT_TRUE(store.Rebind("fresh", paths[0]).ok());
  EXPECT_EQ(std::vector<std::string>{"fresh"}, store.ids());
  EXPECT_TRUE(store.Acquire("fresh").ok());
}

// Rebind racing concurrent Acquires (the daemon's RELOAD-mid-traffic
// path): every Acquire must return a valid session whose answers match
// either the old or the new release — never an error, never a torn mix.
TEST(ReleaseStoreTest, RebindUnderConcurrentAcquires) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {95, 96};
  const auto paths = SaveReleases(schema, seeds, "rebind_race");
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 40);
  std::vector<std::vector<double>> expected;
  for (const std::string& path : paths) {
    auto direct = storage::LoadSession(path);
    ASSERT_TRUE(direct.ok());
    expected.push_back(direct->AnswerAll(workload));
  }

  query::ReleaseStore store;
  ASSERT_TRUE(store.Register("r", paths[0]).ok());
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIterations = 20;
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        if (t == 0) {  // one thread flips the binding back and forth
          if (!store.Rebind("r", paths[i % 2]).ok()) errors.fetch_add(1);
          continue;
        }
        auto session = store.Acquire("r");
        if (!session.ok()) {
          errors.fetch_add(1);
          continue;
        }
        const std::vector<double> answers = (*session)->AnswerAll(workload);
        if (answers != expected[0] && answers != expected[1]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0u, errors.load());
  EXPECT_EQ(0u, mismatches.load());
}

// The TSan target: concurrent Acquire / AnswerAll / Evict over several
// releases with a tight LRU bound, all answers checked against the
// per-release expectation computed up front.
TEST(ReleaseStoreTest, ConcurrentLoadEvictAnswerHammer) {
  const data::Schema schema = TestSchema();
  const std::uint64_t seeds[] = {71, 72, 73};
  const auto paths = SaveReleases(schema, seeds, "hammer");
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 60);

  std::vector<std::vector<double>> expected;
  for (const std::string& path : paths) {
    auto direct = storage::LoadSession(path);
    ASSERT_TRUE(direct.ok());
    expected.push_back(direct->AnswerAll(workload));
  }

  common::ThreadPool pool(2);
  query::ReleaseStore::Options options;
  options.max_resident = 2;  // force evictions while answers are in flight
  options.pool = &pool;
  query::ReleaseStore store(options);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(store.Register("r" + std::to_string(i), paths[i]).ok());
  }

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 25;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rng::Xoshiro256pp gen(1000 + t);
      for (std::size_t i = 0; i < kIterations; ++i) {
        const std::size_t release = gen.NextUint64InRange(0, 2);
        const std::string id = "r" + std::to_string(release);
        switch (gen.NextUint64InRange(0, 3)) {
          case 0:
            store.Evict(id);
            break;
          case 1: {
            auto session = store.Acquire(id);
            if (!session.ok()) {
              errors.fetch_add(1);
              break;
            }
            // Answer via the borrowed pointer while other threads evict.
            if ((*session)->AnswerAll(workload) != expected[release]) {
              mismatches.fetch_add(1);
            }
            break;
          }
          default: {
            auto answers = store.AnswerAll(id, workload);
            if (!answers.ok()) {
              errors.fetch_add(1);
            } else if (*answers != expected[release]) {
              mismatches.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0u, errors.load());
  EXPECT_EQ(0u, mismatches.load());
  const query::ReleaseStore::Stats stats = store.stats();
  EXPECT_GE(stats.loads, 3u);  // every release was resident at least once
  EXPECT_LE(store.resident_count(), 2u);
}

}  // namespace
}  // namespace privelet
