// Rejected-input tests for the always-on PRIVELET_CHECK guards on public
// API boundaries. These used to be PRIVELET_DCHECKs, which compile out of
// release builds and silently let out-of-range queries read out of bounds;
// the checks must now fire in every build type.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "privelet/data/hierarchy.h"
#include "privelet/wavelet/haar.h"
#include "privelet/wavelet/identity.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::wavelet {
namespace {

TEST(ApiGuardDeathTest, HaarRangeContributionRejectsInvertedRange) {
  HaarTransform haar(8);
  std::vector<double> out(haar.coefficient_count());
  EXPECT_DEATH(haar.RangeContribution(5, 2, out.data()), "bad range");
}

TEST(ApiGuardDeathTest, HaarRangeContributionRejectsOutOfBoundsHi) {
  // n = 6 pads to 8; hi in [6, 8) is inside the padded domain but outside
  // the input domain and must still be rejected.
  HaarTransform haar(6);
  std::vector<double> out(haar.coefficient_count());
  EXPECT_DEATH(haar.RangeContribution(0, 6, out.data()), "bad range");
}

TEST(ApiGuardDeathTest, HaarLevelOfRejectsBaseCoefficient) {
  EXPECT_DEATH(HaarTransform::LevelOf(0), "base coefficient has no level");
}

TEST(ApiGuardDeathTest, IdentityRangeContributionRejectsBadRanges) {
  IdentityTransform identity(4);
  std::vector<double> out(identity.coefficient_count());
  EXPECT_DEATH(identity.RangeContribution(3, 1, out.data()), "bad range");
  EXPECT_DEATH(identity.RangeContribution(0, 4, out.data()), "bad range");
}

TEST(ApiGuardDeathTest, NominalRangeContributionRejectsBadRanges) {
  auto hierarchy = std::make_shared<const data::Hierarchy>(
      data::Hierarchy::Flat(5).value());
  NominalTransform nominal(hierarchy);
  std::vector<double> out(nominal.coefficient_count());
  EXPECT_DEATH(nominal.RangeContribution(4, 2, out.data()), "bad range");
  EXPECT_DEATH(nominal.RangeContribution(0, 5, out.data()), "bad range");
}

TEST(ApiGuardDeathTest, ValidBoundaryRangesAreAccepted) {
  // The full-domain and single-point ranges sit exactly on the guard's
  // boundary and must pass.
  HaarTransform haar(6);
  std::vector<double> out(haar.coefficient_count());
  haar.RangeContribution(0, 5, out.data());
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  haar.RangeContribution(5, 5, out.data());
  EXPECT_DOUBLE_EQ(out[0], 1.0);
}

}  // namespace
}  // namespace privelet::wavelet
