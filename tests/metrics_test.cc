// Tests for the evaluation metrics (Sec. VII-A): square error, relative
// error with sanity bound, and equal-count (quintile) bucketing.
#include <gtest/gtest.h>

#include "privelet/query/metrics.h"

namespace privelet::query {
namespace {

TEST(SquareErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(SquareError(5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(SquareError(7.0, 5.0), 4.0);
  EXPECT_DOUBLE_EQ(SquareError(3.0, 5.0), 4.0);
}

TEST(RelativeErrorTest, UsesActualWhenAboveSanityBound) {
  // |x - act| / act when act > s.
  EXPECT_DOUBLE_EQ(RelativeError(120.0, 100.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(RelativeError(80.0, 100.0, 10.0), 0.2);
}

TEST(RelativeErrorTest, SanityBoundCapsSmallSelectivities) {
  // act = 1 but s = 50: denominator is 50.
  EXPECT_DOUBLE_EQ(RelativeError(11.0, 1.0, 50.0), 0.2);
  // act = 0 (empty query) with noise 5 and s = 50.
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0, 50.0), 0.1);
}

TEST(RelativeErrorTest, ExactAnswerIsZero) {
  EXPECT_DOUBLE_EQ(RelativeError(42.0, 42.0, 1.0), 0.0);
}

TEST(EqualCountBucketsTest, SplitsEvenlyAndAverages) {
  // keys 1..10, values = 10 * key; quintiles of 2 elements each.
  std::vector<double> keys, values;
  for (int i = 1; i <= 10; ++i) {
    keys.push_back(static_cast<double>(i));
    values.push_back(10.0 * i);
  }
  const auto buckets = EqualCountBuckets(keys, values, 5);
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].avg_key, 1.5);
  EXPECT_DOUBLE_EQ(buckets[0].avg_value, 15.0);
  EXPECT_DOUBLE_EQ(buckets[4].avg_key, 9.5);
  EXPECT_DOUBLE_EQ(buckets[4].avg_value, 95.0);
}

TEST(EqualCountBucketsTest, SortsByKeyNotInputOrder) {
  const std::vector<double> keys = {5.0, 1.0, 3.0, 2.0, 4.0, 6.0};
  const std::vector<double> values = {50.0, 10.0, 30.0, 20.0, 40.0, 60.0};
  const auto buckets = EqualCountBuckets(keys, values, 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].avg_key, 1.5);   // keys 1, 2
  EXPECT_DOUBLE_EQ(buckets[0].avg_value, 15.0);
  EXPECT_DOUBLE_EQ(buckets[2].avg_key, 5.5);   // keys 5, 6
  EXPECT_DOUBLE_EQ(buckets[2].avg_value, 55.0);
}

TEST(EqualCountBucketsTest, UnevenSizesDifferByAtMostOne) {
  std::vector<double> keys(13), values(13, 1.0);
  for (int i = 0; i < 13; ++i) keys[i] = static_cast<double>(i);
  const auto buckets = EqualCountBuckets(keys, values, 5);
  std::size_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_GE(b.count, 2u);
    EXPECT_LE(b.count, 3u);
    total += b.count;
  }
  EXPECT_EQ(total, 13u);
}

TEST(EqualCountBucketsTest, SingleBucketIsGlobalMean) {
  const auto buckets =
      EqualCountBuckets({1.0, 2.0, 3.0}, {10.0, 20.0, 60.0}, 1);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(buckets[0].avg_key, 2.0);
  EXPECT_DOUBLE_EQ(buckets[0].avg_value, 30.0);
}

}  // namespace
}  // namespace privelet::query
