// PublishingSession: batched answering matches single-query answering and
// the brute-force oracle, error paths surface as Status, and a shared
// session stays consistent under concurrent AnswerAll callers (the tsan
// job runs this suite).
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/publishing_session.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::query {
namespace {

data::Schema MixedSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 32));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({3, 3}).value()));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 25));
  }
  return m;
}

std::vector<RangeQuery> MakeQueries(const data::Schema& schema,
                                    std::size_t count, std::uint64_t seed) {
  rng::Xoshiro256pp gen(seed);
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RangeQuery q(schema.num_attributes());
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (gen.NextDouble() < 0.3) continue;  // unconstrained axis
      const std::size_t domain = schema.attribute(a).domain_size();
      std::size_t lo = gen.NextUint64InRange(0, domain - 1);
      std::size_t hi = gen.NextUint64InRange(0, domain - 1);
      if (lo > hi) std::swap(lo, hi);
      EXPECT_TRUE(q.SetRange(schema, a, lo, hi).ok());
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(PublishingSessionTest, FromMatrixAnswersMatchOracle) {
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 3);
  auto session = PublishingSession::FromMatrix(schema, m);
  ASSERT_TRUE(session.ok());
  const auto queries = MakeQueries(schema, 40, 11);
  const std::vector<double> batch = session->AnswerAll(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double oracle = BruteForceAnswer(schema, m, queries[i]);
    EXPECT_NEAR(batch[i], oracle, 1e-9) << "query " << i;
    EXPECT_NEAR(session->Answer(queries[i]), oracle, 1e-9) << "query " << i;
  }
}

TEST(PublishingSessionTest, FromMatrixRejectsDimMismatch) {
  const data::Schema schema = MixedSchema();
  matrix::FrequencyMatrix wrong({5, 5});
  EXPECT_FALSE(PublishingSession::FromMatrix(schema, std::move(wrong)).ok());
}

TEST(PublishingSessionTest, PublishWrapsAMechanismRelease) {
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 4);
  mechanism::PriveletMechanism privelet;
  auto session =
      PublishingSession::Publish(schema, privelet, m, /*epsilon=*/1.0,
                                 /*seed=*/17);
  ASSERT_TRUE(session.ok());
  // The wrapped release is exactly what the mechanism publishes for the
  // same seed, and answers come from it.
  auto direct = privelet.Publish(schema, m, 1.0, 17);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(
      matrix::ValuesEqual(session->published().values(), direct->values()));
  const auto queries = MakeQueries(schema, 10, 5);
  const auto answers = session->AnswerAll(queries);
  QueryEvaluator reference(schema, *direct);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(answers[i], reference.Answer(queries[i]), 1e-9);
  }
  EXPECT_FALSE(
      PublishingSession::Publish(schema, privelet, m, -1.0, 17).ok());
}

TEST(PublishingSessionTest, PooledAnswerAllMatchesSerial) {
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 6);
  common::ThreadPool pool(4);
  auto serial_session = PublishingSession::FromMatrix(schema, m);
  auto pooled_session = PublishingSession::FromMatrix(schema, m, &pool);
  ASSERT_TRUE(serial_session.ok() && pooled_session.ok());
  const auto queries = MakeQueries(schema, 200, 23);
  EXPECT_EQ(serial_session->AnswerAll(queries),
            pooled_session->AnswerAll(queries));
}

TEST(PublishingSessionTest, ConcurrentAnswerAllCallersAgree) {
  // The stress the tsan preset watches: one shared session, its own worker
  // pool, and several external caller threads hammering AnswerAll and
  // Answer simultaneously.
  const data::Schema schema = MixedSchema();
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 8);
  common::ThreadPool pool(4);
  auto session = PublishingSession::FromMatrix(schema, m, &pool);
  ASSERT_TRUE(session.ok());

  const auto queries = MakeQueries(schema, 100, 42);
  const std::vector<double> expected = session->AnswerAll(queries);

  constexpr std::size_t kCallers = 4;
  constexpr int kRounds = 20;
  std::vector<int> mismatches(kCallers, 0);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        if (session->AnswerAll(queries) != expected) ++mismatches[c];
        const std::size_t pick = (c * kRounds + round) % queries.size();
        if (session->Answer(queries[pick]) != expected[pick]) {
          ++mismatches[c];
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "caller " << c;
  }
}

}  // namespace
}  // namespace privelet::query
