// CompiledWorkload's contract is bit-identity: for any workload and any
// ISA level, AnswerAll must return exactly the doubles the per-query
// scalar path (QueryEvaluator::Answer) produces — compiling and SIMD
// gathering are pure layout/performance moves. These tests sweep random
// workloads over 1-3 dimensional tables, every compiled-in ISA level, the
// empty-corner edge cases (predicates touching the domain edge drop
// corners), and split AnswerInto ranges.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/query/compiled_workload.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/simd/dispatch.h"

namespace privelet::query {
namespace {

data::Schema MakeSchema(const std::vector<std::size_t>& sizes) {
  std::vector<data::Attribute> attrs;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    attrs.push_back(
        data::Attribute::Ordinal("a" + std::to_string(i), sizes[i]));
  }
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix NoisyMatrix(const data::Schema& schema,
                                    std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    // Irregular magnitudes so a wrong corner order or dropped sign would
    // actually change the x87 rounding, not vanish in symmetry.
    m[i] = gen.NextDouble() * 1000.0 - 500.0 + 1.0 / (1.0 + i);
  }
  return m;
}

std::vector<RangeQuery> RandomQueries(const data::Schema& schema,
                                      std::size_t count, std::uint64_t seed) {
  rng::Xoshiro256pp gen(seed);
  const std::vector<std::size_t> sizes = schema.DomainSizes();
  std::vector<RangeQuery> queries;
  for (std::size_t q = 0; q < count; ++q) {
    RangeQuery query(sizes.size());
    for (std::size_t attr = 0; attr < sizes.size(); ++attr) {
      switch (gen.NextUint64InRange(0, 3)) {
        case 0:  // unconstrained
          break;
        case 1: {  // pinned to the low edge: drops a corner at compile
          const std::size_t hi = gen.NextUint64InRange(0, sizes[attr] - 1);
          EXPECT_TRUE(query.SetRange(schema, attr, 0, hi).ok());
          break;
        }
        default: {
          const std::size_t lo = gen.NextUint64InRange(0, sizes[attr] - 1);
          const std::size_t hi = gen.NextUint64InRange(lo, sizes[attr] - 1);
          EXPECT_TRUE(query.SetRange(schema, attr, lo, hi).ok());
          break;
        }
      }
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<simd::IsaLevel> AllLevels() {
  std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
  if (simd::DetectBestIsa() >= simd::IsaLevel::kAvx2) {
    levels.push_back(simd::IsaLevel::kAvx2);
  }
  if (simd::DetectBestIsa() >= simd::IsaLevel::kAvx512) {
    levels.push_back(simd::IsaLevel::kAvx512);
  }
  return levels;
}

TEST(CompiledWorkloadTest, BitIdenticalToPerQueryAnswersAcrossIsaLevels) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {257}, {64, 33}, {16, 9, 11}};
  for (const auto& shape : shapes) {
    const data::Schema schema = MakeSchema(shape);
    const matrix::FrequencyMatrix m = NoisyMatrix(schema, 7 + shape.size());
    const QueryEvaluator evaluator(schema, m);
    const std::vector<RangeQuery> queries =
        RandomQueries(schema, 100, 11 * shape.size());

    std::vector<double> direct;
    for (const RangeQuery& query : queries) {
      direct.push_back(evaluator.Answer(query));
    }

    const CompiledWorkload workload =
        CompiledWorkload::Compile(queries, evaluator.table().dims());
    EXPECT_EQ(workload.num_queries(), queries.size());
    for (const simd::IsaLevel level : AllLevels()) {
      const std::vector<double> compiled =
          workload.AnswerAll(evaluator.table(), level);
      ASSERT_EQ(compiled.size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(compiled[i], direct[i])
            << "dims=" << shape.size() << " query " << i << " level "
            << simd::IsaLevelName(level);
      }
    }
  }
}

TEST(CompiledWorkloadTest, EdgePredicatesDropCorners) {
  // In 2-d, a query pinned to both low edges keeps only 1 of 4 corners;
  // the all-cells query keeps 1; a general query keeps all 4.
  const data::Schema schema = MakeSchema({8, 8});
  const matrix::FrequencyMatrix m = NoisyMatrix(schema, 3);
  const QueryEvaluator evaluator(schema, m);

  RangeQuery both_edges(2);
  ASSERT_TRUE(both_edges.SetRange(schema, 0, 0, 3).ok());
  ASSERT_TRUE(both_edges.SetRange(schema, 1, 0, 5).ok());
  RangeQuery all_cells(2);  // unconstrained = full domain = both low edges
  RangeQuery interior(2);
  ASSERT_TRUE(interior.SetRange(schema, 0, 2, 5).ok());
  ASSERT_TRUE(interior.SetRange(schema, 1, 1, 6).ok());

  const std::vector<RangeQuery> queries = {both_edges, all_cells, interior};
  const CompiledWorkload workload =
      CompiledWorkload::Compile(queries, evaluator.table().dims());
  EXPECT_EQ(workload.num_corners(), 1u + 1u + 4u);

  const std::vector<double> answers =
      workload.AnswerAll(evaluator.table(), simd::IsaLevel::kScalar);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(answers[i], evaluator.Answer(queries[i])) << "query " << i;
  }
}

TEST(CompiledWorkloadTest, EmptyWorkloadAndZeroCornerTail) {
  const data::Schema schema = MakeSchema({16, 16});
  const matrix::FrequencyMatrix m = NoisyMatrix(schema, 5);
  const QueryEvaluator evaluator(schema, m);

  const CompiledWorkload empty =
      CompiledWorkload::Compile({}, evaluator.table().dims());
  EXPECT_EQ(empty.num_queries(), 0u);
  EXPECT_TRUE(empty.AnswerAll(evaluator.table(), simd::IsaLevel::kScalar)
                  .empty());

  // A workload ending in single-corner queries exercises the post-gather
  // tail (queries whose corners all fit the final chunk's remainder).
  std::vector<RangeQuery> queries;
  RangeQuery interior(2);
  ASSERT_TRUE(interior.SetRange(schema, 0, 3, 9).ok());
  queries.push_back(interior);
  queries.push_back(RangeQuery(2));  // all-cells
  queries.push_back(RangeQuery(2));
  const CompiledWorkload workload =
      CompiledWorkload::Compile(queries, evaluator.table().dims());
  const std::vector<double> answers =
      workload.AnswerAll(evaluator.table(), simd::IsaLevel::kScalar);
  ASSERT_EQ(answers.size(), 3u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(answers[i], evaluator.Answer(queries[i]));
  }
}

TEST(CompiledWorkloadTest, SplitAnswerIntoRangesMatchFullEvaluation) {
  // AnswerInto over disjoint subranges (how PublishingSession fans a
  // batch across the pool) must equal one full AnswerAll.
  const data::Schema schema = MakeSchema({32, 24});
  const matrix::FrequencyMatrix m = NoisyMatrix(schema, 9);
  const QueryEvaluator evaluator(schema, m);
  const std::vector<RangeQuery> queries = RandomQueries(schema, 77, 13);
  const CompiledWorkload workload =
      CompiledWorkload::Compile(queries, evaluator.table().dims());

  for (const simd::IsaLevel level : AllLevels()) {
    const std::vector<double> whole =
        workload.AnswerAll(evaluator.table(), level);
    std::vector<double> pieces(queries.size());
    for (std::size_t begin = 0; begin < queries.size(); begin += 10) {
      const std::size_t end = std::min(begin + 10, queries.size());
      workload.AnswerInto(evaluator.table(), begin, end, level,
                          pieces.data() + begin);
    }
    EXPECT_EQ(pieces, whole) << simd::IsaLevelName(level);
  }
}

TEST(CompiledWorkloadTest, LargeWorkloadCrossesStagingChunks) {
  // >1024 corners forces multiple gather chunks; a query whose corners
  // straddle a chunk boundary must still fold exactly.
  const data::Schema schema = MakeSchema({40, 40, 5});
  const matrix::FrequencyMatrix m = NoisyMatrix(schema, 21);
  const QueryEvaluator evaluator(schema, m);
  const std::vector<RangeQuery> queries = RandomQueries(schema, 900, 17);
  const CompiledWorkload workload =
      CompiledWorkload::Compile(queries, evaluator.table().dims());
  ASSERT_GT(workload.num_corners(), 2048u);

  for (const simd::IsaLevel level : AllLevels()) {
    const std::vector<double> compiled =
        workload.AnswerAll(evaluator.table(), level);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(compiled[i], evaluator.Answer(queries[i]))
          << "query " << i << " level " << simd::IsaLevelName(level);
    }
  }
}

}  // namespace
}  // namespace privelet::query
