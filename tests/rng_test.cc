// Tests for the hand-rolled generators and distributions, including
// statistical checks on the Laplace sampler (the privacy noise primitive).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::rng {
namespace {

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation (Steele/Lea/Flood).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.Next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.Next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.Next(), 9817491932198370423ULL);
}

TEST(SplitMix64Test, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t first_a = a.Next();
  EXPECT_EQ(first_a, b.Next());
  EXPECT_NE(first_a, c.Next());
}

TEST(DeriveSeedTest, DistinctIndicesGiveDistinctSeeds) {
  const std::uint64_t root = 99;
  EXPECT_NE(DeriveSeed(root, 0), DeriveSeed(root, 1));
  EXPECT_NE(DeriveSeed(root, 1), DeriveSeed(root, 2));
  EXPECT_EQ(DeriveSeed(root, 5), DeriveSeed(root, 5));
  EXPECT_NE(DeriveSeed(root, 0), DeriveSeed(root + 1, 0));
}

TEST(Xoshiro256ppTest, DeterministicPerSeed) {
  Xoshiro256pp a(7), b(7), c(8);
  const std::uint64_t first_a = a.Next();
  EXPECT_EQ(first_a, b.Next());
  EXPECT_NE(first_a, c.Next());
}

TEST(Xoshiro256ppTest, NextDoubleInUnitInterval) {
  Xoshiro256pp gen(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256ppTest, NextDoubleOpenZeroNeverZero) {
  Xoshiro256pp gen(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.NextDoubleOpenZero();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256ppTest, RangeIsInclusiveAndCovered) {
  Xoshiro256pp gen(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = gen.NextUint64InRange(10, 14);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 14u);
    ++counts[v - 10];
  }
  // All five values should appear with roughly equal frequency (10k each).
  for (int c : counts) EXPECT_GT(c, 9000);
}

TEST(Xoshiro256ppTest, DegenerateRange) {
  Xoshiro256pp gen(11);
  EXPECT_EQ(gen.NextUint64InRange(3, 3), 3u);
}

TEST(Xoshiro256ppTest, UniformMeanIsHalf) {
  Xoshiro256pp gen(21);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += gen.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(LaplaceTest, ZeroMagnitudeIsZero) {
  Xoshiro256pp gen(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleLaplace(gen, 0.0), 0.0);
}

// Statistical property sweep: for several magnitudes, the sample mean is
// ~0 and the sample variance is ~2b^2 (Sec. II-B: Laplace(b) has variance
// 2b^2 — the DP calibration depends on this).
class LaplaceMagnitudeTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceMagnitudeTest, MeanAndVarianceMatchTheory) {
  const double b = GetParam();
  Xoshiro256pp gen(31337);
  const int n = 400000;
  std::vector<double> samples(n);
  for (int i = 0; i < n; ++i) samples[i] = SampleLaplace(gen, b);
  const double mean = Mean(samples);
  const double var = SampleVariance(samples);
  const double expected_var = 2.0 * b * b;
  EXPECT_NEAR(mean, 0.0, 0.02 * b + 1e-12);
  EXPECT_NEAR(var / expected_var, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, LaplaceMagnitudeTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 8.0, 40.0));

TEST(LaplaceTest, MedianIsZeroAndSymmetric) {
  Xoshiro256pp gen(99);
  int positive = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (SampleLaplace(gen, 1.0) > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.01);
}

TEST(LaplaceTest, TailProbabilityMatchesExponential) {
  // P(|X| > t) = exp(-t/b) for Laplace(b).
  Xoshiro256pp gen(123);
  const double b = 2.0, t = 3.0;
  int exceed = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(SampleLaplace(gen, b)) > t) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, std::exp(-t / b), 0.01);
}

TEST(BernoulliTest, FrequencyMatchesP) {
  Xoshiro256pp gen(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (SampleBernoulli(gen, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(BernoulliTest, ClampsProbability) {
  Xoshiro256pp gen(5);
  EXPECT_FALSE(SampleBernoulli(gen, -1.0));
  EXPECT_TRUE(SampleBernoulli(gen, 2.0));
}

TEST(NormalTest, MomentsMatchStandardNormal) {
  Xoshiro256pp gen(77);
  const int n = 400000;
  std::vector<double> samples(n);
  for (int i = 0; i < n; ++i) samples[i] = SampleStandardNormal(gen);
  EXPECT_NEAR(Mean(samples), 0.0, 0.01);
  EXPECT_NEAR(SampleVariance(samples), 1.0, 0.02);
}

TEST(ZipfTest, RankFrequenciesDecrease) {
  Xoshiro256pp gen(13);
  ZipfSampler zipf(64, 1.1);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(gen)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[4], counts[32]);
}

TEST(ZipfTest, RatioOfTopRanksMatchesExponent) {
  Xoshiro256pp gen(13);
  const double s = 1.0;
  ZipfSampler zipf(1024, s);
  std::vector<int> counts(1024, 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(gen)];
  // P(0)/P(1) = 2^s.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.15);
}

TEST(ZipfTest, SamplesWithinDomain) {
  Xoshiro256pp gen(17);
  ZipfSampler zipf(10, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(gen), 10u);
}

TEST(DiscretizedLogNormalTest, SamplesWithinDomain) {
  Xoshiro256pp gen(19);
  DiscretizedLogNormal income(1001, std::log(50.0), 0.8);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(income.Sample(gen), 1001u);
}

TEST(DiscretizedLogNormalTest, MedianNearExpMu) {
  Xoshiro256pp gen(19);
  const double mu = std::log(100.0);
  DiscretizedLogNormal dist(100000, mu, 0.5);
  std::vector<double> samples;
  const int n = 100001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(static_cast<double>(dist.Sample(gen)));
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 100.0, 5.0);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Xoshiro256pp gen(23);
  DiscreteSampler sampler({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(gen)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.6, 0.01);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  Xoshiro256pp gen(29);
  DiscreteSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(gen), 1u);
}

TEST(JumpTest, JumpAdvancesPast2To64SequentialDraws) {
  // Spot-checkable property of the 2^128 jump: the jumped generator's
  // output differs from any near-term continuation of the base stream.
  Xoshiro256pp base(99);
  Xoshiro256pp jumped = base;
  jumped.Jump();
  bool found = false;
  const std::uint64_t target = jumped.Next();
  for (int i = 0; i < 10'000 && !found; ++i) found = base.Next() == target;
  EXPECT_FALSE(found);
}

TEST(JumpTest, JumpIsDeterministic) {
  Xoshiro256pp a(7), b(7);
  a.Jump();
  b.Jump();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(JumpStreamsTest, StreamZeroIsThePlainGenerator) {
  // Sharded noise with one shard must reproduce the unsharded sequence.
  auto streams = MakeJumpStreams(12345, 3);
  Xoshiro256pp plain(12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(streams[0].Next(), plain.Next());
}

TEST(JumpStreamsTest, StreamsAreDistinctAndDeterministic) {
  auto a = MakeJumpStreams(5, 4);
  auto b = MakeJumpStreams(5, 4);
  std::vector<std::uint64_t> firsts;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t draw = a[i].Next();
    EXPECT_EQ(draw, b[i].Next()) << "stream " << i;
    firsts.push_back(draw);
  }
  for (std::size_t i = 0; i < firsts.size(); ++i) {
    for (std::size_t j = i + 1; j < firsts.size(); ++j) {
      EXPECT_NE(firsts[i], firsts[j]) << i << " vs " << j;
    }
  }
}

TEST(JumpStreamsTest, LaplaceMomentsHoldAcrossStreams) {
  // Per-shard streams drive the mechanisms' noise: each stream must be a
  // sound Laplace source on its own. Pool 20k draws from 8 streams.
  auto streams = MakeJumpStreams(2026, 8);
  std::vector<double> draws;
  for (auto& gen : streams) {
    for (int i = 0; i < 2500; ++i) draws.push_back(SampleLaplace(gen, 1.5));
  }
  EXPECT_NEAR(Mean(draws), 0.0, 0.05);
  // Var = 2b² = 4.5.
  EXPECT_NEAR(SampleVariance(draws) / 4.5, 1.0, 0.1);
}

}  // namespace
}  // namespace privelet::rng
