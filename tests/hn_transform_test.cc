// Tests for the multi-dimensional Haar-nominal transform (paper Sec. VI):
// the Fig. 4 worked example, round-trips over random mixed schemas,
// linearity (Proposition 1), weight tensor products, and the P/H factor
// bookkeeping.
//
// Note on Fig. 4 / Example 5: the paper's Example 5 misstates the axis
// kinds ("both dimensions ... are nominal") and quotes a base weight of
// 1/2, which contradicts the formal definition WHaar(base) = m of
// Sec. IV-B (and Lemma 2, which the privacy proof relies on). We test
// against the formal definitions: for Fig. 4, WHN(c11) = 2 * 2 = 4.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::wavelet {
namespace {

data::Schema Fig4Schema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A1", 2));
  attrs.push_back(data::Attribute::Ordinal("A2", 2));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix Fig4Matrix() {
  matrix::FrequencyMatrix m({2, 2});
  m.At(std::array<std::size_t, 2>{0, 0}) = 8.0;  // v11
  m.At(std::array<std::size_t, 2>{0, 1}) = 4.0;  // v12
  m.At(std::array<std::size_t, 2>{1, 0}) = 1.0;  // v21
  m.At(std::array<std::size_t, 2>{1, 1}) = 5.0;  // v22
  return m;
}

TEST(HnTransformTest, PaperFigure4FinalCoefficients) {
  const data::Schema schema = Fig4Schema();
  auto transform = HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  auto coeffs = transform->Forward(Fig4Matrix());
  ASSERT_TRUE(coeffs.ok());
  const auto& c = coeffs->coeffs;
  // C2 of Fig. 4: [[4.5, 0], [1.5, 2]]. (Standard decomposition commutes,
  // so the axis order does not change the final matrix.)
  EXPECT_DOUBLE_EQ(c.At(std::array<std::size_t, 2>{0, 0}), 4.5);
  EXPECT_DOUBLE_EQ(c.At(std::array<std::size_t, 2>{0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(c.At(std::array<std::size_t, 2>{1, 0}), 1.5);
  EXPECT_DOUBLE_EQ(c.At(std::array<std::size_t, 2>{1, 1}), 2.0);
}

TEST(HnTransformTest, Fig4WeightsAreTensorProducts) {
  const data::Schema schema = Fig4Schema();
  auto transform = HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  auto coeffs = transform->Forward(Fig4Matrix());
  ASSERT_TRUE(coeffs.ok());
  // Per the formal WHaar (base weight = m = 2; level-1 weight = 2):
  // every coefficient of the 2x2 transform has WHN = 2 * 2 = 4.
  for (std::size_t flat = 0; flat < 4; ++flat) {
    EXPECT_DOUBLE_EQ(coeffs->WeightAt(flat), 4.0);
  }
}

TEST(HnTransformTest, Fig4RoundTrip) {
  const data::Schema schema = Fig4Schema();
  auto transform = HnTransform::Create(schema);
  ASSERT_TRUE(transform.ok());
  const matrix::FrequencyMatrix m = Fig4Matrix();
  auto coeffs = transform->Forward(m);
  ASSERT_TRUE(coeffs.ok());
  auto back = transform->Inverse(*coeffs);
  ASSERT_TRUE(back.ok());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*back)[i], m[i], 1e-9);
  }
}

data::Schema MixedSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord5", 5));
  attrs.push_back(data::Attribute::Nominal(
      "Nom6", data::Hierarchy::Balanced({2, 3}).value()));
  attrs.push_back(data::Attribute::Ordinal("Ord4", 4));
  return data::Schema(std::move(attrs));
}

TEST(HnTransformTest, OutputDimsReflectCoefficientCounts) {
  auto transform = HnTransform::Create(MixedSchema());
  ASSERT_TRUE(transform.ok());
  // Ord5 pads to 8; Nom6 over-completes to 9 nodes; Ord4 stays 4.
  EXPECT_EQ(transform->output_dims(),
            (std::vector<std::size_t>{8, 9, 4}));
  EXPECT_EQ(transform->input_dims(), (std::vector<std::size_t>{5, 6, 4}));
}

TEST(HnTransformTest, RejectsMismatchedDims) {
  auto transform = HnTransform::Create(MixedSchema());
  ASSERT_TRUE(transform.ok());
  matrix::FrequencyMatrix wrong({5, 6, 5});
  EXPECT_FALSE(transform->Forward(wrong).ok());
}

TEST(HnTransformTest, IdentityAxesSkipTransforms) {
  auto transform = HnTransform::Create(MixedSchema(), {0, 2});
  ASSERT_TRUE(transform.ok());
  EXPECT_EQ(transform->axis_transform(0).name(), "identity");
  EXPECT_EQ(transform->axis_transform(1).name(), "nominal");
  EXPECT_EQ(transform->axis_transform(2).name(), "identity");
  EXPECT_EQ(transform->output_dims(), (std::vector<std::size_t>{5, 9, 4}));
  // rho = P(Nom6) = h = 3; identity axes contribute 1.
  EXPECT_DOUBLE_EQ(transform->GeneralizedSensitivity(), 3.0);
  // Variance factor = 5 * 4 * 4 (identity |A| * nominal 4 * identity |A|).
  EXPECT_DOUBLE_EQ(transform->VarianceBoundFactor(), 80.0);
}

TEST(HnTransformTest, AllIdentityDegeneratesToCopy) {
  auto transform = HnTransform::Create(MixedSchema(), {0, 1, 2});
  ASSERT_TRUE(transform.ok());
  matrix::FrequencyMatrix m({5, 6, 4});
  rng::Xoshiro256pp gen(4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 9));
  }
  auto coeffs = transform->Forward(m);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_TRUE(matrix::ValuesEqual(coeffs->coeffs.values(), m.values()));
  EXPECT_DOUBLE_EQ(coeffs->WeightAt(0), 1.0);
  EXPECT_DOUBLE_EQ(transform->GeneralizedSensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(transform->VarianceBoundFactor(),
                   static_cast<double>(m.size()));
}

TEST(HnTransformTest, GeneralizedSensitivityIsProductOfPFactors) {
  auto transform = HnTransform::Create(MixedSchema());
  ASSERT_TRUE(transform.ok());
  // P(Ord5 padded to 8) = 4; P(Nom6) = 3; P(Ord4) = 3.
  EXPECT_DOUBLE_EQ(transform->GeneralizedSensitivity(), 4.0 * 3.0 * 3.0);
  // H: (2+3)/2 = 2.5; 4; (2+2)/2 = 2.
  EXPECT_DOUBLE_EQ(transform->VarianceBoundFactor(), 2.5 * 4.0 * 2.0);
}

TEST(HnTransformTest, ForEachCoefficientMatchesWeightAt) {
  auto transform = HnTransform::Create(MixedSchema());
  ASSERT_TRUE(transform.ok());
  matrix::FrequencyMatrix m({5, 6, 4});
  auto coeffs = transform->Forward(m);
  ASSERT_TRUE(coeffs.ok());
  std::size_t visited = 0;
  coeffs->ForEachCoefficient([&](std::size_t flat, double weight) {
    EXPECT_DOUBLE_EQ(weight, coeffs->WeightAt(flat));
    EXPECT_EQ(flat, visited);
    ++visited;
  });
  EXPECT_EQ(visited, coeffs->coeffs.size());
}

TEST(HnTransformTest, LinearityProposition1) {
  // Proposition 1: M + M' = M'' implies Md + M'd = M''d.
  auto transform = HnTransform::Create(MixedSchema());
  ASSERT_TRUE(transform.ok());
  rng::Xoshiro256pp gen(8);
  matrix::FrequencyMatrix a({5, 6, 4}), b({5, 6, 4}), sum({5, 6, 4});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(gen.NextUint64InRange(0, 9));
    b[i] = static_cast<double>(gen.NextUint64InRange(0, 9));
    sum[i] = a[i] + b[i];
  }
  auto ta = transform->Forward(a);
  auto tb = transform->Forward(b);
  auto tsum = transform->Forward(sum);
  ASSERT_TRUE(ta.ok() && tb.ok() && tsum.ok());
  for (std::size_t i = 0; i < tsum->coeffs.size(); ++i) {
    EXPECT_NEAR(tsum->coeffs[i], ta->coeffs[i] + tb->coeffs[i], 1e-9);
  }
}

// Round-trip property over random schemas mixing ordinal, nominal, and
// identity axes.
class HnRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HnRoundTripTest, InverseRecoversInput) {
  rng::Xoshiro256pp gen(GetParam());
  const std::size_t d = gen.NextUint64InRange(1, 4);
  std::vector<data::Attribute> attrs;
  std::vector<std::size_t> identity_axes;
  for (std::size_t a = 0; a < d; ++a) {
    const std::uint64_t kind = gen.NextUint64InRange(0, 2);
    // Built via += : `"A" + std::to_string(a)` trips GCC 12's -Wrestrict
    // false positive (PR 105651) under -O2.
    std::string name = "A";
    name += std::to_string(a);
    if (kind == 0) {
      attrs.push_back(
          data::Attribute::Ordinal(name, gen.NextUint64InRange(1, 9)));
    } else {
      const std::size_t f1 = gen.NextUint64InRange(2, 3);
      const std::size_t f2 = gen.NextUint64InRange(2, 3);
      attrs.push_back(data::Attribute::Nominal(
          name, data::Hierarchy::Balanced({f1, f2}).value()));
    }
    if (gen.NextUint64InRange(0, 3) == 0) identity_axes.push_back(a);
  }
  const data::Schema schema(std::move(attrs));
  auto transform = HnTransform::Create(schema, identity_axes);
  ASSERT_TRUE(transform.ok());

  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 20));
  }
  auto coeffs = transform->Forward(m);
  ASSERT_TRUE(coeffs.ok());
  auto back = transform->Inverse(*coeffs);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->dims(), m.dims());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*back)[i], m[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HnRoundTripTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace privelet::wavelet
