// Statistical checks on the evaluation protocol itself (paper Sec. VII-A):
// the workload generator's predicate-count distribution, attribute
// selection uniformity, interval-endpoint distribution, and the coverage /
// selectivity definitions the figures are bucketed by.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/data/census_generator.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/workload.h"

namespace privelet::query {
namespace {

data::Schema FourAttributeSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 10));
  attrs.push_back(data::Attribute::Ordinal("B", 10));
  attrs.push_back(data::Attribute::Ordinal("C", 10));
  attrs.push_back(data::Attribute::Ordinal("D", 10));
  return data::Schema(std::move(attrs));
}

TEST(WorkloadStatsTest, PredicateCountIsUniformOneToFour) {
  const data::Schema schema = FourAttributeSchema();
  WorkloadOptions options;
  options.num_queries = 20'000;
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  std::vector<std::size_t> histogram(5, 0);
  for (const RangeQuery& q : *workload) ++histogram[q.NumPredicates()];
  EXPECT_EQ(histogram[0], 0u);
  for (std::size_t k = 1; k <= 4; ++k) {
    // Uniform in [1, 4]: expect 5000 each, within ~5 sigma.
    EXPECT_NEAR(static_cast<double>(histogram[k]), 5000.0, 350.0)
        << "k = " << k;
  }
}

TEST(WorkloadStatsTest, AttributesChosenUniformly) {
  const data::Schema schema = FourAttributeSchema();
  WorkloadOptions options;
  options.num_queries = 20'000;
  options.min_predicates = 1;
  options.max_predicates = 1;  // isolate the attribute choice
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  std::vector<std::size_t> hits(4, 0);
  for (const RangeQuery& q : *workload) {
    for (std::size_t a = 0; a < 4; ++a) {
      if (q.range(a).has_value()) ++hits[a];
    }
  }
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(static_cast<double>(hits[a]), 5000.0, 350.0) << "attr " << a;
  }
}

TEST(WorkloadStatsTest, IntervalWidthsSpanTheDomain) {
  // Two independent uniform endpoints: mean width of [min,max] on a
  // domain of size D is about D/3.
  const data::Schema schema = FourAttributeSchema();
  WorkloadOptions options;
  options.num_queries = 20'000;
  options.min_predicates = 1;
  options.max_predicates = 1;
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  double total_width = 0.0;
  std::size_t count = 0;
  bool saw_point = false, saw_full = false;
  for (const RangeQuery& q : *workload) {
    for (std::size_t a = 0; a < 4; ++a) {
      if (!q.range(a).has_value()) continue;
      const std::size_t width = q.range(a)->width();
      total_width += static_cast<double>(width);
      ++count;
      if (width == 1) saw_point = true;
      if (width == 10) saw_full = true;
    }
  }
  EXPECT_TRUE(saw_point);
  EXPECT_TRUE(saw_full);
  // E[width] = D/3 + 2/3 - ... for discrete uniform endpoints on 10
  // values: E[max-min]+1 = 99/30 + 1 = 4.3.
  EXPECT_NEAR(total_width / static_cast<double>(count), 4.3, 0.15);
}

TEST(WorkloadStatsTest, CoverageAndSelectivityAgreeOnUniformData) {
  // On perfectly uniform data, selectivity == coverage for every query.
  const data::Schema schema = FourAttributeSchema();
  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = 3.0;
  const double n = m.Total();

  WorkloadOptions options;
  options.num_queries = 500;
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  QueryEvaluator eval(schema, m);
  for (const RangeQuery& q : *workload) {
    const double selectivity = eval.Answer(q) / n;
    EXPECT_NEAR(selectivity, q.Coverage(schema), 1e-9);
  }
}

TEST(WorkloadStatsTest, CensusWorkloadCoverageSpansQuintiles) {
  // The figure harnesses bucket by coverage quintiles; the generated
  // distribution must actually span several orders of magnitude, or the
  // plots would be degenerate.
  auto schema = data::MakeCensusSchema(data::CensusCountry::kBrazil, 126);
  ASSERT_TRUE(schema.ok());
  WorkloadOptions options;
  options.num_queries = 4'000;
  auto workload = GenerateWorkload(*schema, options);
  ASSERT_TRUE(workload.ok());
  double min_cov = 1.0, max_cov = 0.0;
  for (const RangeQuery& q : *workload) {
    const double cov = q.Coverage(*schema);
    min_cov = std::min(min_cov, cov);
    max_cov = std::max(max_cov, cov);
  }
  EXPECT_LT(min_cov, 1e-5);
  EXPECT_GT(max_cov, 0.5);
}

}  // namespace
}  // namespace privelet::query
