// Tests for attributes, schemas, tables, and the CSV round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "privelet/data/attribute.h"
#include "privelet/data/csv.h"
#include "privelet/data/schema.h"
#include "privelet/data/table.h"

namespace privelet::data {
namespace {

Schema TwoAttributeSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Ordinal("Age", 8));
  attrs.push_back(Attribute::Nominal("Country",
                                     Hierarchy::Balanced({2, 2}).value()));
  return Schema(std::move(attrs));
}

TEST(AttributeTest, OrdinalBasics) {
  const Attribute a = Attribute::Ordinal("Age", 101);
  EXPECT_EQ(a.name(), "Age");
  EXPECT_TRUE(a.is_ordinal());
  EXPECT_FALSE(a.is_nominal());
  EXPECT_EQ(a.domain_size(), 101u);
}

TEST(AttributeTest, NominalCarriesHierarchy) {
  const Attribute a =
      Attribute::Nominal("Occ", Hierarchy::Balanced({4, 8}).value());
  EXPECT_TRUE(a.is_nominal());
  EXPECT_EQ(a.domain_size(), 32u);
  EXPECT_EQ(a.hierarchy().height(), 3u);
}

TEST(SchemaTest, DomainSizesAndTotal) {
  const Schema schema = TwoAttributeSchema();
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(schema.DomainSizes(), (std::vector<std::size_t>{8, 4}));
  EXPECT_EQ(schema.TotalDomainSize(), 32u);
}

TEST(SchemaDeathTest, TotalDomainSizeOverflowAborts) {
  // Regression: the total-cell computation must use checked
  // multiplication rather than wrapping size_t.
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Ordinal(
      "Huge", std::numeric_limits<std::size_t>::max() / 2 + 1));
  attrs.push_back(Attribute::Ordinal("Small", 4));
  const Schema schema(std::move(attrs));
  EXPECT_DEATH((void)schema.TotalDomainSize(), "dimension product overflow");
}

TEST(SchemaTest, FindAttribute) {
  const Schema schema = TwoAttributeSchema();
  ASSERT_TRUE(schema.FindAttribute("Country").ok());
  EXPECT_EQ(schema.FindAttribute("Country").value(), 1u);
  EXPECT_EQ(schema.FindAttribute("Salary").status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, AppendAndRead) {
  Table table(TwoAttributeSchema());
  ASSERT_TRUE(table.AppendRow({3, 1}).ok());
  ASSERT_TRUE(table.AppendRow({7, 0}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.value(0, 0), 3u);
  EXPECT_EQ(table.value(0, 1), 1u);
  EXPECT_EQ(table.value(1, 0), 7u);
}

TEST(TableTest, RejectsWrongArity) {
  Table table(TwoAttributeSchema());
  EXPECT_EQ(table.AppendRow({1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.AppendRow({1, 2, 3}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, RejectsOutOfDomainValue) {
  Table table(TwoAttributeSchema());
  EXPECT_EQ(table.AppendRow({8, 0}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.AppendRow({0, 4}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.num_rows(), 0u);
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("privelet_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTrip) {
  Table table(TwoAttributeSchema());
  ASSERT_TRUE(table.AppendRow({0, 0}).ok());
  ASSERT_TRUE(table.AppendRow({5, 3}).ok());
  ASSERT_TRUE(table.AppendRow({7, 2}).ok());
  ASSERT_TRUE(WriteCsv(path_.string(), table).ok());

  auto loaded = ReadCsv(path_.string(), TwoAttributeSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(loaded->value(r, c), table.value(r, c));
    }
  }
}

TEST_F(CsvTest, RejectsHeaderMismatch) {
  Table table(TwoAttributeSchema());
  ASSERT_TRUE(WriteCsv(path_.string(), table).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Ordinal("Wrong", 8));
  attrs.push_back(Attribute::Ordinal("Names", 4));
  EXPECT_FALSE(ReadCsv(path_.string(), Schema(std::move(attrs))).ok());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadCsv("/nonexistent/path.csv", TwoAttributeSchema())
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, RejectsNegativeValueNamingIt) {
  // Regression: strtoul-based parsing accepted "-1" and wrapped it to
  // 4294967295 — a silently corrupted cell index.
  std::ofstream out(path_);
  out << "Age,Country\n-1,0\n";
  out.close();
  const auto loaded = ReadCsv(path_.string(), TwoAttributeSchema());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("'-1'"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CsvTest, RejectsValueAboveUint32NamingIt) {
  // Regression: a 64-bit strtoul let 4294967296 through and the uint32
  // cast silently truncated it to 0.
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Ordinal("Huge", std::size_t{1} << 33));
  const Schema schema(std::move(attrs));
  std::ofstream out(path_);
  out << "Huge\n4294967296\n";
  out.close();
  const auto loaded = ReadCsv(path_.string(), schema);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("'4294967296'"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("UINT32_MAX"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CsvTest, AcceptsExactlyUint32Max) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Ordinal("Huge", std::size_t{1} << 33));
  const Schema schema(std::move(attrs));
  std::ofstream out(path_);
  out << "Huge\n4294967295\n";
  out.close();
  const auto loaded = ReadCsv(path_.string(), schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ(loaded->value(0, 0), 4294967295u);
}

TEST_F(CsvTest, CrlfFileParsesIdenticallyToLf) {
  // Windows tools terminate lines with \r\n; getline leaves the \r on
  // the last field, which the old parser rejected as non-integer.
  std::ofstream out(path_, std::ios::binary);
  out << "Age,Country\r\n5,3\r\n7,2\r\n";
  out.close();
  const auto loaded = ReadCsv(path_.string(), TwoAttributeSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->value(0, 0), 5u);
  EXPECT_EQ(loaded->value(0, 1), 3u);
  EXPECT_EQ(loaded->value(1, 0), 7u);
  EXPECT_EQ(loaded->value(1, 1), 2u);
}

}  // namespace
}  // namespace privelet::data
