// Tests for the work-sharded ThreadPool: exact coverage of the index
// space, fixed-grain chunk boundaries (the determinism contract sharded
// RNG consumers rely on), serial fallback equivalence, nested and
// concurrent ParallelFor calls, and pool reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "privelet/common/thread_pool.h"

namespace privelet::common {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, /*grain=*/64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, FixedGrainProducesExactChunkBoundaries) {
  // grain > 0 pins chunks to [i*grain, min((i+1)*grain, n)) — sharded RNG
  // streams derive their shard index from `begin / grain`.
  ThreadPool pool(3);
  const std::size_t n = 1000, grain = 300;
  std::mutex mu;
  std::set<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelFor(n, grain, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert({begin, end});
  });
  const std::set<std::pair<std::size_t, std::size_t>> expected = {
      {0, 300}, {300, 600}, {600, 900}, {900, 1000}};
  EXPECT_EQ(chunks, expected);
}

TEST(ThreadPoolTest, SerialFallbackRunsSameChunksInOrder) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  ParallelFor(nullptr, 1000, 300, [&](std::size_t begin, std::size_t end) {
    chunks.push_back({begin, end});
  });
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 300}, {300, 600}, {600, 900}, {900, 1000}};
  EXPECT_EQ(chunks, expected);
}

TEST(ThreadPoolTest, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 10, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(nullptr, 0, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // n smaller than one grain: a single chunk, run inline.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelFor(5, 100, [&](std::size_t begin, std::size_t end) {
    chunks.push_back({begin, end});
  });
  EXPECT_EQ(chunks,
            (std::vector<std::pair<std::size_t, std::size_t>>{{0, 5}}));
}

TEST(ThreadPoolTest, AutoGrainStillCoversEverything) {
  ThreadPool pool(4);
  const std::size_t n = 12'345;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The calling thread participates in chunk execution, so an inner loop
  // issued from inside a body completes even on a single-worker pool
  // whose only worker is the one blocked in the outer call.
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(8, 1, [&](std::size_t, std::size_t) {
    pool.ParallelFor(16, 2, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsFromManyThreads) {
  ThreadPool pool(2);
  constexpr std::size_t kCallers = 4, kN = 2'000;
  std::vector<std::size_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::atomic<std::size_t> sum{0};
      pool.ParallelFor(kN, 37, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
      });
      sums[c] = sum.load();
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], kN * (kN - 1) / 2) << "caller " << c;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(100, 7, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace privelet::common
