// Fuzz-style property tests for the workload-spec/predicate grammar —
// the one parser shared by the daemon's text protocol
// (serving::ParseQueryLine) and the CLI's workload files
// (cli::ReadWorkloadFile / WriteWorkloadFile). Three properties:
//
//   1. Valid specs round-trip: parse -> write -> re-read reproduces the
//      same resolved bounds, and the writer's output is itself valid
//      input.
//   2. A corpus of malformed lines (truncated tokens, duplicate
//      attributes, out-of-range bounds, signed/garbage numbers) is
//      rejected with a Status error — never a CHECK failure or crash.
//   3. Systematic mutation: every prefix and every single-character
//      deletion of a valid line either parses or returns an error;
//      nothing in the grammar's input space aborts the process.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "privelet_cli/workload_io.h"

#include "privelet/common/result.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"
#include "privelet/serving/protocol.h"

namespace privelet {
namespace {

data::Schema MixedSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 32));
  attrs.push_back(data::Attribute::Nominal(
      "Occ", data::Hierarchy::Balanced({2, 3}).value()));
  return data::Schema(std::move(attrs));
}

std::vector<std::pair<std::size_t, query::ValueRange>> ResolvedRanges(
    const query::RangeQuery& query) {
  std::vector<std::pair<std::size_t, query::ValueRange>> out;
  for (std::size_t a = 0; a < query.num_attributes(); ++a) {
    if (query.range(a).has_value()) out.emplace_back(a, *query.range(a));
  }
  return out;
}

TEST(WorkloadParserTest, ValidLinesParse) {
  const data::Schema schema = MixedSchema();
  const std::vector<std::string> lines = {
      "*",
      "Age=0:31",
      "Age=5:5",
      "Occ=0:5",
      "Occ@0",
      "Occ@1",
      "Age=3:17 Occ@2",
      "  Age=1:2\tOcc=4:4  ",
      "Age=0:0\r",
  };
  for (const std::string& line : lines) {
    auto query = serving::ParseQueryLine(schema, line);
    EXPECT_TRUE(query.ok()) << "'" << line
                            << "': " << query.status().ToString();
  }
}

TEST(WorkloadParserTest, MalformedLinesReturnStatusErrors) {
  const data::Schema schema = MixedSchema();
  const std::vector<std::string> lines = {
      "",                      // no tokens
      "   \t ",                // whitespace only
      "* Age=0:1",             // '*' with predicates
      "Age=0:1 *",             // predicates with '*'
      "Age",                   // bare name
      "Age=",                  // truncated: no bounds
      "Age=0",                 // truncated: no colon
      "Age=0:",                // truncated: no hi
      "Age=:5",                // truncated: no lo
      "=0:5",                  // empty attribute name
      "@3",                    // empty attribute name
      "Age=5:2",               // inverted range
      "Age=0:32",              // hi out of range (domain 32)
      "Age=99:99",             // lo out of range
      "Age=-1:5",              // signed index
      "Age=0x1:5",             // non-decimal number
      "Age=1:2:3",             // extra colon
      "Age=a:b",               // garbage bounds
      "Age=0:1 Age=2:3",       // duplicate attribute (= form)
      "Occ@1 Occ@2",           // duplicate attribute (@ form)
      "Occ=0:1 Occ@1",         // duplicate attribute (mixed forms)
      "Age@1",                 // subtree on an ordinal attribute
      "Occ@99",                // node id out of range
      "Occ@x",                 // garbage node id
      "Height=0:1",            // unknown attribute
      "Age=18446744073709551616:0",  // u64 overflow
  };
  for (const std::string& line : lines) {
    auto query = serving::ParseQueryLine(schema, line);
    EXPECT_FALSE(query.ok()) << "'" << line << "' parsed unexpectedly";
    if (!query.ok()) {
      EXPECT_FALSE(query.status().message().empty()) << "'" << line << "'";
    }
  }
}

TEST(WorkloadParserTest, MutatedLinesNeverCrash) {
  // Deterministic fuzz: every prefix and every single-character deletion
  // of valid lines must produce either a query or a Status error. The
  // assertions are on the error path staying an error path — reaching the
  // end of the loop without aborting is the property.
  const data::Schema schema = MixedSchema();
  const std::vector<std::string> seeds = {
      "Age=10:20 Occ@3",
      "Age=0:31 Occ=2:4",
      "*",
  };
  std::size_t parsed = 0, rejected = 0;
  for (const std::string& seed : seeds) {
    for (std::size_t cut = 0; cut <= seed.size(); ++cut) {
      auto prefix = serving::ParseQueryLine(schema, seed.substr(0, cut));
      prefix.ok() ? ++parsed : ++rejected;
      if (cut < seed.size()) {
        std::string deleted = seed;
        deleted.erase(cut, 1);
        auto mutated = serving::ParseQueryLine(schema, deleted);
        mutated.ok() ? ++parsed : ++rejected;
      }
    }
  }
  // Both paths must actually be exercised for the sweep to mean anything.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(WorkloadParserTest, WorkloadFilesRoundTrip) {
  const data::Schema schema = MixedSchema();
  const std::string original = testing::TempDir() + "/parser_original.txt";
  const std::string rewritten = testing::TempDir() + "/parser_rewritten.txt";
  {
    std::FILE* out = std::fopen(original.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs(
        "# comment-only lines and blanks are skipped\n"
        "\n"
        "Age=0:31 # trailing comment\n"
        "Age=3:17 Occ@2\n"
        "Occ=1:4\n"
        "*\n",
        out);
    ASSERT_EQ(std::fclose(out), 0);
  }

  auto queries = cli::ReadWorkloadFile(original, schema);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 4u);

  // Subtree predicates resolve to leaf intervals, so the writer's `=`
  // form must re-parse to identical resolved bounds.
  ASSERT_TRUE(cli::WriteWorkloadFile(rewritten, schema, *queries).ok());
  auto reread = cli::ReadWorkloadFile(rewritten, schema);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->size(), queries->size());
  for (std::size_t q = 0; q < queries->size(); ++q) {
    EXPECT_EQ(ResolvedRanges((*queries)[q]), ResolvedRanges((*reread)[q]))
        << "query " << q;
  }

  std::remove(original.c_str());
  std::remove(rewritten.c_str());
}

TEST(WorkloadParserTest, BadFileLinesReportLineNumbers) {
  const data::Schema schema = MixedSchema();
  const std::string path = testing::TempDir() + "/parser_bad.txt";
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs("Age=0:31\nAge=0:1 Age=2:3\n", out);
    ASSERT_EQ(std::fclose(out), 0);
  }
  auto queries = cli::ReadWorkloadFile(path, schema);
  ASSERT_FALSE(queries.ok());
  // The error names the file, the line, and the offending attribute.
  EXPECT_NE(queries.status().message().find(":2:"), std::string::npos)
      << queries.status().ToString();
  EXPECT_NE(queries.status().message().find("duplicate"), std::string::npos)
      << queries.status().ToString();
  std::remove(path.c_str());

  auto missing = cli::ReadWorkloadFile(testing::TempDir() + "/no_such.txt",
                                       schema);
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace privelet
