// The vector kernel layer's contract: every kernel at every compiled ISA
// level reproduces the scalar kernel bit-for-bit, on every count
// (including the scalar tails past the last full vector), and the
// dispatcher resolves requests by the documented rules — env var
// vocabulary, clamping to host capability, options override. Also pins
// the strided-panel Haar paths (which feed matrix storage straight to the
// kernels) against the per-line reference, and the batched Laplace front
// half against the draw-at-a-time scalar sampler.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "privelet/rng/distributions.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/simd/dispatch.h"
#include "privelet/simd/kernels.h"
#include "privelet/wavelet/haar.h"

namespace privelet {
namespace {

using simd::IsaLevel;
using simd::KernelTable;

// Counts straddling every vector width the table dispatches to (scalar,
// 4-wide AVX2, 8-wide AVX-512) plus their remainder tails.
constexpr std::size_t kCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 100};

std::vector<IsaLevel> HostLevels() {
  std::vector<IsaLevel> levels;
  for (int l = 0; l <= static_cast<int>(simd::DetectBestIsa()); ++l) {
    levels.push_back(static_cast<IsaLevel>(l));
  }
  return levels;
}

std::vector<double> RandomDoubles(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256pp gen(seed);
  std::vector<double> v(n);
  for (double& x : v) x = gen.NextDouble() * 100.0 - 50.0;
  return v;
}

TEST(SimdKernelTest, TablesReportTheirLevel) {
  for (const IsaLevel level : HostLevels()) {
    EXPECT_EQ(level, simd::Kernels(level).level);
  }
  // Levels beyond what the binary compiled fall back, never crash.
  EXPECT_LE(static_cast<int>(simd::Kernels(IsaLevel::kAvx512).level),
            static_cast<int>(IsaLevel::kAvx512));
}

TEST(SimdKernelTest, HaarStepKernelsMatchScalar) {
  const KernelTable& scalar = simd::Kernels(IsaLevel::kScalar);
  for (const IsaLevel level : HostLevels()) {
    const KernelTable& k = simd::Kernels(level);
    for (const std::size_t n : kCounts) {
      const std::vector<double> left = RandomDoubles(n, 1);
      const std::vector<double> right = RandomDoubles(n, 2);
      std::vector<double> d0(n), a0(n), d1(n), a1(n);
      scalar.haar_forward_step(left.data(), right.data(), d0.data(),
                               a0.data(), n);
      k.haar_forward_step(left.data(), right.data(), d1.data(), a1.data(), n);
      EXPECT_EQ(d0, d1) << "forward detail, count " << n;
      EXPECT_EQ(a0, a1) << "forward avg, count " << n;

      std::vector<double> l0(n), r0(n), l1(n), r1(n);
      scalar.haar_inverse_step(a0.data(), d0.data(), l0.data(), r0.data(), n);
      k.haar_inverse_step(a0.data(), d0.data(), l1.data(), r1.data(), n);
      EXPECT_EQ(l0, l1) << "inverse left, count " << n;
      EXPECT_EQ(r0, r1) << "inverse right, count " << n;
      // Round trip recovers the inputs exactly only up to rounding; the
      // cross-level contract is identical bits, which EXPECT_EQ pinned.
    }
  }
}

TEST(SimdKernelTest, HaarLevelKernelsMatchScalar) {
  const KernelTable& scalar = simd::Kernels(IsaLevel::kScalar);
  for (const IsaLevel level : HostLevels()) {
    const KernelTable& k = simd::Kernels(level);
    for (const std::size_t half : kCounts) {
      const std::vector<double> src = RandomDoubles(2 * half, 3);
      std::vector<double> line0 = src, line1 = src;
      std::vector<double> det0(half), det1(half);
      scalar.haar_forward_level(line0.data(), det0.data(), half);
      k.haar_forward_level(line1.data(), det1.data(), half);
      EXPECT_EQ(line0, line1) << "in-place avg, half " << half;
      EXPECT_EQ(det0, det1) << "in-place detail, half " << half;

      std::vector<double> avg0(half), avg1(half), split_d0(half),
          split_d1(half);
      scalar.haar_forward_level_split(src.data(), avg0.data(),
                                      split_d0.data(), half);
      k.haar_forward_level_split(src.data(), avg1.data(), split_d1.data(),
                                 half);
      EXPECT_EQ(avg0, avg1) << "split avg, half " << half;
      EXPECT_EQ(split_d0, split_d1) << "split detail, half " << half;
      // The out-of-place split performs the same arithmetic as the
      // in-place level.
      EXPECT_EQ(det0, split_d0) << "split vs in-place, half " << half;

      std::vector<double> inv0 = avg0, inv1 = avg0;
      inv0.resize(2 * half);
      inv1.resize(2 * half);
      scalar.haar_inverse_level(inv0.data(), det0.data(), half);
      k.haar_inverse_level(inv1.data(), det0.data(), half);
      EXPECT_EQ(inv0, inv1) << "in-place expand, half " << half;

      std::vector<double> exp0(2 * half), exp1(2 * half);
      scalar.haar_inverse_level_expand(avg0.data(), det0.data(), exp0.data(),
                                       half);
      k.haar_inverse_level_expand(avg0.data(), det0.data(), exp1.data(),
                                  half);
      EXPECT_EQ(exp0, exp1) << "out-of-place expand, half " << half;
      EXPECT_EQ(inv0, exp0) << "expand vs in-place, half " << half;
    }
  }
}

TEST(SimdKernelTest, RowCombineKernelsMatchScalar) {
  const KernelTable& scalar = simd::Kernels(IsaLevel::kScalar);
  for (const IsaLevel level : HostLevels()) {
    const KernelTable& k = simd::Kernels(level);
    for (const std::size_t n : kCounts) {
      const std::vector<double> a = RandomDoubles(n, 4);
      const std::vector<double> b = RandomDoubles(n, 5);
      const double divisor = 3.7;
      const double scale = -1.0 / 3.0;

      std::vector<double> x0 = a, x1 = a;
      scalar.row_add(x0.data(), b.data(), n);
      k.row_add(x1.data(), b.data(), n);
      EXPECT_EQ(x0, x1) << "row_add, count " << n;

      x0 = a, x1 = a;
      scalar.row_sub(x0.data(), b.data(), n);
      k.row_sub(x1.data(), b.data(), n);
      EXPECT_EQ(x0, x1) << "row_sub, count " << n;

      x0 = a, x1 = a;
      scalar.row_div(x0.data(), divisor, n);
      k.row_div(x1.data(), divisor, n);
      EXPECT_EQ(x0, x1) << "row_div, count " << n;

      std::vector<double> y0(n), y1(n);
      scalar.row_add_div(y0.data(), a.data(), b.data(), divisor, n);
      k.row_add_div(y1.data(), a.data(), b.data(), divisor, n);
      EXPECT_EQ(y0, y1) << "row_add_div, count " << n;

      scalar.row_sub_div(y0.data(), a.data(), b.data(), divisor, n);
      k.row_sub_div(y1.data(), a.data(), b.data(), divisor, n);
      EXPECT_EQ(y0, y1) << "row_sub_div, count " << n;

      x0 = a, x1 = a;
      scalar.row_add_scaled(x0.data(), b.data(), scale, n);
      k.row_add_scaled(x1.data(), b.data(), scale, n);
      EXPECT_EQ(x0, x1) << "row_add_scaled, count " << n;
    }
  }
}

TEST(SimdKernelTest, PrefixKernelsMatchScalar) {
  const KernelTable& scalar = simd::Kernels(IsaLevel::kScalar);
  rng::Xoshiro256pp gen(6);
  for (const IsaLevel level : HostLevels()) {
    const KernelTable& k = simd::Kernels(level);
    for (const std::size_t n : kCounts) {
      std::vector<std::int64_t> prev(n), base(n);
      for (std::size_t i = 0; i < n; ++i) {
        prev[i] = static_cast<std::int64_t>(gen.Next() >> 20) - (1 << 22);
        base[i] = static_cast<std::int64_t>(gen.Next() >> 20) - (1 << 22);
      }
      std::vector<std::int64_t> c0 = base, c1 = base;
      scalar.prefix_rows_add_i64(c0.data(), prev.data(), n);
      k.prefix_rows_add_i64(c1.data(), prev.data(), n);
      EXPECT_EQ(c0, c1) << "prefix_rows_add_i64, count " << n;

      c0 = base, c1 = base;
      scalar.prefix_scan_i64(c0.data(), n);
      k.prefix_scan_i64(c1.data(), n);
      EXPECT_EQ(c0, c1) << "prefix_scan_i64, count " << n;
    }
  }
}

TEST(SimdKernelTest, LaplaceTailMatchesScalarKernelAndSampler) {
  const KernelTable& scalar = simd::Kernels(IsaLevel::kScalar);
  for (const IsaLevel level : HostLevels()) {
    const KernelTable& k = simd::Kernels(level);
    for (const std::size_t n : kCounts) {
      rng::Xoshiro256pp gen(7);
      std::vector<std::uint64_t> raw(n);
      gen.FillRaw(raw.data(), n);
      std::vector<double> t0(n), s0(n), t1(n), s1(n);
      scalar.laplace_tail(raw.data(), t0.data(), s0.data(), n);
      k.laplace_tail(raw.data(), t1.data(), s1.data(), n);
      EXPECT_EQ(t0, t1) << "tail, count " << n;
      EXPECT_EQ(s0, s1) << "neg_sign, count " << n;
    }

    // End to end through the batch front half: magnitude * unit draw must
    // be the exact double the scalar one-at-a-time sampler returns.
    const std::size_t n = 1000;
    const double magnitude = 2.25;
    rng::Xoshiro256pp batch_gen(11), draw_gen(11);
    std::vector<double> unit(n);
    rng::SampleLaplaceUnitBatch(batch_gen, unit.data(), n, k);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(rng::SampleLaplace(draw_gen, magnitude), magnitude * unit[i])
          << "draw " << i << ", level " << static_cast<int>(level);
    }
  }
}

TEST(SimdDispatchTest, NamesRoundTripAndUnknownsAreRejected) {
  for (const IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    IsaLevel parsed = IsaLevel::kScalar;
    EXPECT_TRUE(simd::ParseIsaLevel(simd::IsaLevelName(level), &parsed));
    EXPECT_EQ(level, parsed);
  }
  IsaLevel untouched = IsaLevel::kAvx2;
  EXPECT_FALSE(simd::ParseIsaLevel("sse9", &untouched));
  EXPECT_FALSE(simd::ParseIsaLevel("", &untouched));
  EXPECT_EQ(IsaLevel::kAvx2, untouched);
}

TEST(SimdDispatchTest, ResolveClampsToHostAndHonorsOverrides) {
  const IsaLevel best = simd::DetectBestIsa();
  // A concrete request never resolves above the host's capability and
  // never rejects: over-asking clamps down to the best the host runs.
  EXPECT_EQ(best, simd::ResolveIsa(simd::IsaChoice::kAvx512));
  EXPECT_LE(static_cast<int>(simd::ResolveIsa(simd::IsaChoice::kAvx2)),
            static_cast<int>(best));
  EXPECT_EQ(IsaLevel::kScalar, simd::ResolveIsa(simd::IsaChoice::kScalar));

  // kAuto re-reads PRIVELET_ISA per call; unknown values are ignored.
  ASSERT_EQ(0, setenv("PRIVELET_ISA", "scalar", 1));
  EXPECT_EQ(IsaLevel::kScalar, simd::ResolveIsa());
  ASSERT_EQ(0, setenv("PRIVELET_ISA", "not-an-isa", 1));
  EXPECT_EQ(best, simd::ResolveIsa());
  ASSERT_EQ(0, unsetenv("PRIVELET_ISA"));
  EXPECT_EQ(best, simd::ResolveIsa());

  // An explicit choice beats the environment.
  ASSERT_EQ(0, setenv("PRIVELET_ISA", simd::IsaLevelName(best).data(), 1));
  EXPECT_EQ(IsaLevel::kScalar, simd::ResolveIsa(simd::IsaChoice::kScalar));
  ASSERT_EQ(0, unsetenv("PRIVELET_ISA"));
}

// The strided-panel entry points read lines laid out directly in matrix
// storage (element k of line b at data[b + k * stride]). Their contract:
// available exactly when no padding is needed, and bit-identical, line
// for line, to the single-line transform at the same level — for every
// level, lane count, and stride >= count.
TEST(SimdStridedPanelTest, StridedLinesMatchPerLineTransform) {
  for (const std::size_t n : {2ul, 4ul, 8ul, 64ul, 128ul}) {
    const wavelet::HaarTransform t(n);
    ASSERT_TRUE(t.SupportsStridedLines());
    for (const std::size_t count : {1ul, 3ul, 8ul, 17ul}) {
      for (const std::size_t stride : {count, count + 5}) {
        const std::vector<double> data = RandomDoubles(stride * n, 31);
        for (const IsaLevel level : HostLevels()) {
          std::vector<double> out(stride * n, 0.0);
          std::vector<double> scratch(t.lines_scratch_size(count));
          t.ForwardLinesStrided(count, data.data(), out.data(), stride,
                                scratch.data(), level);

          std::vector<double> line(n), want(n), got(n),
              line_scratch(t.scratch_size());
          for (std::size_t b = 0; b < count; ++b) {
            for (std::size_t k = 0; k < n; ++k) line[k] = data[b + k * stride];
            t.Forward(line.data(), want.data(), line_scratch.data(), level);
            for (std::size_t k = 0; k < n; ++k) got[k] = out[b + k * stride];
            ASSERT_EQ(want, got)
                << "forward line " << b << ", n " << n << ", count " << count
                << ", stride " << stride << ", level "
                << static_cast<int>(level);
          }

          // Inverse: feed the forward coefficients back through the
          // strided path and compare with the per-line inverse.
          std::vector<double> back(stride * n, 0.0);
          t.InverseLinesStrided(count, out.data(), back.data(), stride,
                                scratch.data(), level);
          for (std::size_t b = 0; b < count; ++b) {
            for (std::size_t k = 0; k < n; ++k) line[k] = out[b + k * stride];
            t.Inverse(line.data(), want.data(), line_scratch.data(), level);
            for (std::size_t k = 0; k < n; ++k) got[k] = back[b + k * stride];
            ASSERT_EQ(want, got)
                << "inverse line " << b << ", n " << n << ", count " << count
                << ", stride " << stride << ", level "
                << static_cast<int>(level);
          }
        }
      }
    }
  }
  // Padded sizes have no strided path: the padding rows would have no
  // matrix storage to read.
  EXPECT_FALSE(wavelet::HaarTransform(37).SupportsStridedLines());
  EXPECT_FALSE(wavelet::HaarTransform(3).SupportsStridedLines());
}

}  // namespace
}  // namespace privelet
