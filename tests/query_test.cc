// Tests for range-count queries, the workload generator (paper Sec. VII-A
// protocol), and the prefix-sum evaluators against the brute-force oracle.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/data/census_generator.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"
#include "privelet/query/workload.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::query {
namespace {

data::Schema SmallSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("X", 6));
  attrs.push_back(data::Attribute::Nominal(
      "Y", data::Hierarchy::Balanced({2, 3}).value()));
  return data::Schema(std::move(attrs));
}

TEST(RangeQueryTest, SetRangeValidation) {
  const data::Schema schema = SmallSchema();
  RangeQuery q(2);
  EXPECT_TRUE(q.SetRange(schema, 0, 1, 4).ok());
  EXPECT_FALSE(q.SetRange(schema, 0, 4, 1).ok());   // inverted
  EXPECT_FALSE(q.SetRange(schema, 0, 0, 6).ok());   // out of domain
  EXPECT_FALSE(q.SetRange(schema, 5, 0, 1).ok());   // bad attribute
}

TEST(RangeQueryTest, HierarchyNodePredicates) {
  const data::Schema schema = SmallSchema();
  const data::Hierarchy& h = schema.attribute(1).hierarchy();
  RangeQuery q(2);
  // The second level-2 node covers leaves [3, 6).
  const auto level2 = h.NodesAtLevel(2);
  ASSERT_TRUE(q.SetHierarchyNode(schema, 1, level2[1]).ok());
  ASSERT_TRUE(q.range(1).has_value());
  EXPECT_EQ(q.range(1)->lo, 3u);
  EXPECT_EQ(q.range(1)->hi, 5u);
  // A leaf node covers a single value.
  ASSERT_TRUE(q.SetHierarchyNode(schema, 1, h.leaf_node(2)).ok());
  EXPECT_EQ(q.range(1)->lo, 2u);
  EXPECT_EQ(q.range(1)->hi, 2u);
}

TEST(RangeQueryTest, HierarchyNodeRejectsOrdinalAttr) {
  const data::Schema schema = SmallSchema();
  RangeQuery q(2);
  EXPECT_FALSE(q.SetHierarchyNode(schema, 0, 1).ok());
}

TEST(RangeQueryTest, CoverageMultipliesAxisFractions) {
  const data::Schema schema = SmallSchema();
  RangeQuery q(2);
  EXPECT_DOUBLE_EQ(q.Coverage(schema), 1.0);  // no predicates
  ASSERT_TRUE(q.SetRange(schema, 0, 0, 2).ok());  // 3/6
  EXPECT_DOUBLE_EQ(q.Coverage(schema), 0.5);
  ASSERT_TRUE(q.SetRange(schema, 1, 0, 0).ok());  // 1/6
  EXPECT_DOUBLE_EQ(q.Coverage(schema), 0.5 / 6.0);
  EXPECT_EQ(q.NumPredicates(), 2u);
}

TEST(RangeQueryTest, ResolveBoundsFillsUnconstrainedAxes) {
  const data::Schema schema = SmallSchema();
  RangeQuery q(2);
  ASSERT_TRUE(q.SetRange(schema, 0, 2, 3).ok());
  std::vector<std::size_t> lo, hi;
  q.ResolveBounds(schema, &lo, &hi);
  EXPECT_EQ(lo, (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(hi, (std::vector<std::size_t>{3, 5}));
}

TEST(WorkloadTest, RespectsPredicateCountRange) {
  auto schema = data::MakeCensusSchema(data::CensusCountry::kBrazil, 30);
  ASSERT_TRUE(schema.ok());
  WorkloadOptions options;
  options.num_queries = 500;
  auto workload = GenerateWorkload(*schema, options);
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->size(), 500u);
  bool saw_one = false, saw_four = false;
  for (const RangeQuery& q : *workload) {
    const std::size_t preds = q.NumPredicates();
    EXPECT_GE(preds, 1u);
    EXPECT_LE(preds, 4u);
    if (preds == 1) saw_one = true;
    if (preds == 4) saw_four = true;
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_four);
}

TEST(WorkloadTest, NominalPredicatesAreSubtreeRanges) {
  auto schema = data::MakeCensusSchema(data::CensusCountry::kBrazil, 30);
  ASSERT_TRUE(schema.ok());
  const data::Hierarchy& occ = schema->attribute(2).hierarchy();
  WorkloadOptions options;
  options.num_queries = 2000;
  auto workload = GenerateWorkload(*schema, options);
  ASSERT_TRUE(workload.ok());
  for (const RangeQuery& q : *workload) {
    const auto& range = q.range(2);
    if (!range.has_value()) continue;
    // The range must be the leaf span of some non-root hierarchy node.
    bool found = false;
    for (std::size_t id = 1; id < occ.num_nodes() && !found; ++id) {
      found = occ.node(id).leaf_begin == range->lo &&
              occ.node(id).leaf_end == range->hi + 1;
    }
    EXPECT_TRUE(found) << "range [" << range->lo << "," << range->hi << "]";
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const data::Schema schema = SmallSchema();
  WorkloadOptions options;
  options.num_queries = 50;
  auto a = GenerateWorkload(schema, options);
  auto b = GenerateWorkload(schema, options);
  options.seed = 8;
  auto c = GenerateWorkload(schema, options);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool differs = false;
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t attr = 0; attr < 2; ++attr) {
      EXPECT_EQ((*a)[i].range(attr), (*b)[i].range(attr));
      if ((*a)[i].range(attr) != (*c)[i].range(attr)) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, PredicateCapAtAttributeCount) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Solo", 10));
  const data::Schema schema(std::move(attrs));
  WorkloadOptions options;
  options.num_queries = 20;
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  for (const RangeQuery& q : *workload) EXPECT_EQ(q.NumPredicates(), 1u);
}

// Evaluator correctness: prefix-sum answers equal brute force on random
// matrices and workloads.
class EvaluatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EvaluatorPropertyTest, MatchesBruteForce) {
  rng::Xoshiro256pp gen(GetParam());
  const data::Schema schema = SmallSchema();
  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 7));
  }
  WorkloadOptions options;
  options.num_queries = 100;
  options.seed = GetParam();
  auto workload = GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());

  QueryEvaluator real(schema, m);
  ExactEvaluator exact(schema, m);
  for (const RangeQuery& q : *workload) {
    const double oracle = BruteForceAnswer(schema, m, q);
    EXPECT_NEAR(real.Answer(q), oracle, 1e-9);
    EXPECT_EQ(exact.Answer(q), static_cast<std::int64_t>(oracle));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace privelet::query
