// Tests for the nominal-attribute hierarchy (paper Fig. 1 / Sec. V-A):
// builders, invariant validation, leaf ordering, and randomized property
// checks on subtree leaf ranges.
#include <gtest/gtest.h>

#include <numeric>

#include "privelet/data/hierarchy.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::data {
namespace {

TEST(HierarchyTest, FlatHierarchy) {
  auto result = Hierarchy::Flat(4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Hierarchy& h = result.value();
  EXPECT_EQ(h.height(), 2u);
  EXPECT_EQ(h.num_leaves(), 4u);
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_internal_nodes(), 1u);
  EXPECT_EQ(h.fanout(Hierarchy::kRoot), 4u);
  EXPECT_TRUE(h.Validate().ok());
}

TEST(HierarchyTest, FlatRejectsTrivial) {
  EXPECT_FALSE(Hierarchy::Flat(0).ok());
  EXPECT_FALSE(Hierarchy::Flat(1).ok());
}

TEST(HierarchyTest, BalancedShape) {
  // The Fig. 3 hierarchy: root with 2 children, each with 3 leaves.
  auto result = Hierarchy::Balanced({2, 3});
  ASSERT_TRUE(result.ok());
  const Hierarchy& h = result.value();
  EXPECT_EQ(h.height(), 3u);
  EXPECT_EQ(h.num_leaves(), 6u);
  EXPECT_EQ(h.num_nodes(), 9u);  // 1 root + 2 internal + 6 leaves
  EXPECT_EQ(h.NodesAtLevel(1).size(), 1u);
  EXPECT_EQ(h.NodesAtLevel(2).size(), 2u);
  EXPECT_EQ(h.NodesAtLevel(3).size(), 6u);
}

TEST(HierarchyTest, BalancedRejectsFanoutOne) {
  EXPECT_FALSE(Hierarchy::Balanced({1, 3}).ok());
  EXPECT_FALSE(Hierarchy::Balanced({}).ok());
}

TEST(HierarchyTest, BfsOrderParentsPrecedeChildren) {
  const Hierarchy h = Hierarchy::Balanced({2, 2, 2}).value();
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    EXPECT_LT(h.node(id).parent, id);
  }
}

TEST(HierarchyTest, LeafOrderIsContiguousPerSubtree) {
  const Hierarchy h = Hierarchy::Balanced({2, 3}).value();
  // Level-2 nodes split the 6 leaves into [0,3) and [3,6).
  const auto level2 = h.NodesAtLevel(2);
  ASSERT_EQ(level2.size(), 2u);
  EXPECT_EQ(h.node(level2[0]).leaf_begin, 0u);
  EXPECT_EQ(h.node(level2[0]).leaf_end, 3u);
  EXPECT_EQ(h.node(level2[1]).leaf_begin, 3u);
  EXPECT_EQ(h.node(level2[1]).leaf_end, 6u);
}

TEST(HierarchyTest, LeafNodeRoundTrip) {
  const Hierarchy h = Hierarchy::Balanced({3, 2}).value();
  for (std::size_t i = 0; i < h.num_leaves(); ++i) {
    const std::size_t node = h.leaf_node(i);
    EXPECT_TRUE(h.is_leaf(node));
    EXPECT_EQ(h.node(node).leaf_begin, i);
  }
}

TEST(HierarchyTest, FromGroupSizesUneven) {
  auto result = Hierarchy::FromGroupSizes({2, 5, 3});
  ASSERT_TRUE(result.ok());
  const Hierarchy& h = result.value();
  EXPECT_EQ(h.height(), 3u);
  EXPECT_EQ(h.num_leaves(), 10u);
  const auto groups = h.NodesAtLevel(2);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(h.fanout(groups[0]), 2u);
  EXPECT_EQ(h.fanout(groups[1]), 5u);
  EXPECT_EQ(h.fanout(groups[2]), 3u);
  EXPECT_EQ(h.node(groups[1]).leaf_begin, 2u);
  EXPECT_EQ(h.node(groups[1]).leaf_end, 7u);
}

TEST(HierarchyTest, FromGroupSizesRejectsSmallGroups) {
  EXPECT_FALSE(Hierarchy::FromGroupSizes({2, 1}).ok());
  EXPECT_FALSE(Hierarchy::FromGroupSizes({5}).ok());
}

TEST(HierarchyTest, FromSpecRejectsUnevenLeafDepth) {
  // Root with one leaf child and one internal child -> leaves at depths
  // 2 and 3.
  HierarchySpec spec;
  spec.children.resize(2);
  spec.children[1].children.resize(2);
  EXPECT_FALSE(Hierarchy::FromSpec(spec).ok());
}

TEST(HierarchyTest, FromSpecRejectsSingleNode) {
  EXPECT_FALSE(Hierarchy::FromSpec(HierarchySpec{}).ok());
}

TEST(HierarchyTest, FromSpecAcceptsMixedFanouts) {
  // Root: {group of 2, group of 4}; all leaves at depth 3.
  HierarchySpec spec;
  spec.children.resize(2);
  spec.children[0].children.resize(2);
  spec.children[1].children.resize(4);
  auto result = Hierarchy::FromSpec(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_leaves(), 6u);
  EXPECT_TRUE(result.value().Validate().ok());
}

// Property sweep: random hierarchies satisfy all invariants, every node's
// leaf range matches the union of its children's ranges, and leaf ranges
// at each level partition [0, num_leaves).
class RandomHierarchyTest : public ::testing::TestWithParam<std::uint64_t> {};

HierarchySpec RandomSpec(rng::Xoshiro256pp& gen, std::size_t depth) {
  HierarchySpec spec;
  if (depth == 0) return spec;
  const std::size_t fanout = gen.NextUint64InRange(2, 4);
  for (std::size_t i = 0; i < fanout; ++i) {
    spec.children.push_back(RandomSpec(gen, depth - 1));
  }
  return spec;
}

TEST_P(RandomHierarchyTest, InvariantsHold) {
  rng::Xoshiro256pp gen(GetParam());
  const std::size_t depth = gen.NextUint64InRange(1, 4);
  auto result = Hierarchy::FromSpec(RandomSpec(gen, depth));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Hierarchy& h = result.value();
  EXPECT_TRUE(h.Validate().ok());
  EXPECT_EQ(h.height(), depth + 1);

  // Each level's leaf ranges partition the leaf set.
  for (std::size_t level = 1; level <= h.height(); ++level) {
    std::size_t expected_begin = 0;
    for (std::size_t id : h.NodesAtLevel(level)) {
      EXPECT_EQ(h.node(id).leaf_begin, expected_begin);
      expected_begin = h.node(id).leaf_end;
    }
    EXPECT_EQ(expected_begin, h.num_leaves());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHierarchyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace privelet::data
