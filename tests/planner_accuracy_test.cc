// Statistical validation of the workload-adaptive mechanism planner
// (analysis/mechanism_planner.h): every closed-form per-query variance
// model — Basic, Privelet/Privelet+, Hay, Fourier — is checked against
// the empirical squared error of the mechanism it models, publishing the
// zero table with fixed seeds so every answer is pure noise. Workload
// shapes mirror the paper's fig. 6-9 sweeps (short ranges, long ranges,
// point queries, the full count, mixed random workloads). Tolerances come
// from statistical_test_util.h (4-sigma bands on the sample variance), so
// the suite is deterministic and CI-safe.
//
// Beyond per-model accuracy, the planner's *decision* is validated: the
// chosen mechanism's empirical error is never worse than the best
// alternative's by more than the statistical margin, and the recorded
// PlanRecord round-trips through the PVLS v3 snapshot (save, load, map,
// inspect).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "statistical_test_util.h"

#include "privelet/analysis/mechanism_planner.h"
#include "privelet/analysis/query_variance.h"
#include "privelet/common/math_util.h"
#include "privelet/data/attribute.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/fourier_marginals.h"
#include "privelet/mechanism/hay.h"
#include "privelet/mechanism/mechanism.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/plan_record.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/range_query.h"
#include "privelet/query/workload.h"
#include "privelet/storage/session_io.h"
#include "privelet/storage/snapshot.h"

namespace privelet {
namespace {

using testutil::ExpectCenteredNoiseWithVariance;
using testutil::VarianceTolerance;

data::Schema OneDimSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

query::RangeQuery MakeRange1D(const data::Schema& schema, std::size_t lo,
                              std::size_t hi) {
  query::RangeQuery q(1);
  EXPECT_TRUE(q.SetRange(schema, 0, lo, hi).ok());
  return q;
}

// Fig. 6-9-style 1-D workload over [0, domain): the full count plus
// short, long, and point ranges across the domain.
std::vector<query::RangeQuery> OneDimShapes(const data::Schema& schema,
                                            std::size_t domain) {
  std::vector<query::RangeQuery> queries;
  queries.emplace_back(1);  // full count
  queries.push_back(MakeRange1D(schema, 0, domain / 8));          // short, left
  queries.push_back(MakeRange1D(schema, domain / 2,
                                domain / 2 + domain / 16));       // short, mid
  queries.push_back(MakeRange1D(schema, 1, domain - 2));          // long
  queries.push_back(MakeRange1D(schema, domain / 4,
                                (3 * domain) / 4));               // half
  queries.push_back(MakeRange1D(schema, domain / 3, domain / 3)); // point
  return queries;
}

// Publishes the zero table `trials` times and collects each query's
// answers — pure noise, one sample vector per query.
std::vector<std::vector<double>> EmpiricalNoise(
    const data::Schema& schema, const mechanism::Mechanism& mech,
    const std::vector<query::RangeQuery>& queries, double epsilon,
    std::size_t trials) {
  const matrix::FrequencyMatrix zeros(schema.DomainSizes());
  std::vector<std::vector<double>> noise(queries.size());
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    auto published = mech.Publish(schema, zeros, epsilon, seed);
    EXPECT_TRUE(published.ok()) << published.status().ToString();
    if (!published.ok()) return noise;
    const query::QueryEvaluator evaluator(schema, *published);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      noise[q].push_back(evaluator.Answer(queries[q]));
    }
  }
  return noise;
}

// Mean empirical squared error over the whole workload (the quantity the
// planner's expected_variance predicts; answers are centered).
double MeanSquaredError(const std::vector<std::vector<double>>& noise) {
  double total = 0.0;
  std::size_t count = 0;
  for (const std::vector<double>& samples : noise) {
    for (const double x : samples) total += x * x;
    count += samples.size();
  }
  return total / static_cast<double>(count);
}

// The mechanism behind a publishable planner candidate (mirrors the CLI's
// --auto-plan dispatch).
std::unique_ptr<mechanism::Mechanism> MechanismFor(
    const analysis::MechanismCandidate& candidate) {
  if (candidate.id == "basic") {
    return std::make_unique<mechanism::BasicMechanism>();
  }
  if (candidate.id == "hay") {
    return std::make_unique<mechanism::HayHierarchicalMechanism>();
  }
  return std::make_unique<mechanism::PriveletPlusMechanism>(
      candidate.sa_names);
}

TEST(PlannerAccuracyTest, BasicPredictionMatchesEmpiricalError) {
  // 2-D 16x8: per-query variance must be exactly 8/ε² per covered cell.
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kTrials = 400;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 16));
  attrs.push_back(data::Attribute::Ordinal("B", 8));
  const data::Schema schema(std::move(attrs));

  std::vector<query::RangeQuery> queries;
  queries.emplace_back(2);  // full count
  query::RangeQuery box(2);
  ASSERT_TRUE(box.SetRange(schema, 0, 2, 9).ok());
  ASSERT_TRUE(box.SetRange(schema, 1, 1, 4).ok());
  queries.push_back(box);
  query::RangeQuery point(2);
  ASSERT_TRUE(point.SetRange(schema, 0, 5, 5).ok());
  ASSERT_TRUE(point.SetRange(schema, 1, 7, 7).ok());
  queries.push_back(point);

  const mechanism::BasicMechanism basic;
  const auto noise = EmpiricalNoise(schema, basic, queries, kEpsilon, kTrials);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto predicted = analysis::BasicQueryVariance(schema, kEpsilon, queries[q]);
    ASSERT_TRUE(predicted.ok());
    SCOPED_TRACE("query " + std::to_string(q));
    ExpectCenteredNoiseWithVariance(noise[q], *predicted);
  }
}

TEST(PlannerAccuracyTest, HayPredictionMatchesEmpiricalError) {
  // Domain 100 pads to 128, so the adjoint model must track the padded
  // tree (8 levels) and the consistency averaging exactly.
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kDomain = 100;
  constexpr std::size_t kTrials = 400;
  const data::Schema schema = OneDimSchema(kDomain);
  const std::vector<query::RangeQuery> queries =
      OneDimShapes(schema, kDomain);

  const mechanism::HayHierarchicalMechanism hay;
  const auto noise = EmpiricalNoise(schema, hay, queries, kEpsilon, kTrials);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto predicted = analysis::HayQueryVariance(schema, kEpsilon, queries[q]);
    ASSERT_TRUE(predicted.ok());
    SCOPED_TRACE("query " + std::to_string(q));
    ExpectCenteredNoiseWithVariance(noise[q], *predicted);
  }
}

TEST(PlannerAccuracyTest, FourierPredictionMatchesEmpiricalError) {
  // 3-attribute binary cube: a point constraint on attribute subset T is
  // one entry of marginal T, and the model predicts 2λ²/2^|T| with
  // λ = 2k/ε over the k-coefficient downward closure.
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kTrials = 600;
  std::vector<data::Attribute> attrs;
  for (const char* name : {"X", "Y", "Z"}) {
    attrs.push_back(data::Attribute::Ordinal(name, 2));
  }
  const data::Schema schema(std::move(attrs));

  // (constrained attrs, constrained values) per query.
  const std::vector<std::pair<std::vector<std::size_t>,
                              std::vector<std::size_t>>> specs = {
      {{0}, {1}}, {{1}, {0}}, {{0, 1}, {1, 0}}, {{0, 1, 2}, {1, 1, 0}}};
  std::vector<query::RangeQuery> queries;
  for (const auto& [attrs_in_query, values] : specs) {
    query::RangeQuery q(3);
    for (std::size_t i = 0; i < attrs_in_query.size(); ++i) {
      ASSERT_TRUE(
          q.SetRange(schema, attrs_in_query[i], values[i], values[i]).ok());
    }
    queries.push_back(std::move(q));
  }

  auto closure = analysis::FourierClosureSize(schema, queries);
  ASSERT_TRUE(closure.ok());
  std::vector<std::vector<std::size_t>> marginal_sets;
  for (const auto& [attrs_in_query, values] : specs) {
    marginal_sets.push_back(attrs_in_query);
  }
  const mechanism::FourierMarginalMechanism fourier(marginal_sets);
  // The model's closure (over the workload's constrained sets, plus the
  // always-released total) must agree with the mechanism's own downward
  // closure of the same sets.
  EXPECT_EQ(*closure, fourier.NumReleasedCoefficients());

  const matrix::FrequencyMatrix zeros(schema.DomainSizes());
  std::vector<std::vector<double>> noise(queries.size());
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    auto marginals = fourier.Publish(zeros, kEpsilon, seed);
    ASSERT_TRUE(marginals.ok());
    for (std::size_t q = 0; q < specs.size(); ++q) {
      const auto& [attrs_in_query, values] = specs[q];
      const mechanism::Marginal* marginal = nullptr;
      for (const mechanism::Marginal& candidate : *marginals) {
        if (candidate.attributes == attrs_in_query) marginal = &candidate;
      }
      ASSERT_NE(marginal, nullptr);
      std::size_t entry = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        entry |= values[i] << i;  // attributes[0] is the LSB
      }
      noise[q].push_back(marginal->counts[entry]);
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto predicted = analysis::FourierQueryVariance(schema, kEpsilon,
                                                    *closure, queries[q]);
    ASSERT_TRUE(predicted.ok());
    SCOPED_TRACE("query " + std::to_string(q));
    ExpectCenteredNoiseWithVariance(noise[q], *predicted);
  }
}

TEST(PlannerAccuracyTest, PriveletFamilyPredictionMatchesEmpiricalError) {
  // The planner's Privelet-family scores come from the exact HN-transform
  // analysis; validate the per-query model end to end for both the pure
  // release (SA = ∅) and SA = all (which degenerates to per-cell noise).
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kTrials = 400;
  constexpr std::size_t kDomain = 64;
  const data::Schema schema = OneDimSchema(kDomain);
  const std::vector<query::RangeQuery> queries =
      OneDimShapes(schema, kDomain);

  for (const std::vector<std::string>& sa :
       {std::vector<std::string>{}, std::vector<std::string>{"A"}}) {
    const mechanism::PriveletPlusMechanism mech(sa);
    const auto noise =
        EmpiricalNoise(schema, mech, queries, kEpsilon, kTrials);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto predicted =
          analysis::PriveletPlusQueryVariance(schema, sa, kEpsilon,
                                              queries[q]);
      ASSERT_TRUE(predicted.ok());
      SCOPED_TRACE("sa_count " + std::to_string(sa.size()) + " query " +
                   std::to_string(q));
      ExpectCenteredNoiseWithVariance(noise[q], *predicted);
    }
  }
}

TEST(PlannerAccuracyTest, ChosenMechanismNeverEmpiricallyWorse) {
  // For every workload shape, publish under every publishable candidate
  // and check (i) each candidate's expected_variance predicts its
  // empirical mean squared error, (ii) the chosen mechanism's empirical
  // error is never worse than any alternative's beyond the statistical
  // margin. A planner that mispredicted either would pick wrong releases.
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kDomain = 100;
  constexpr std::size_t kTrials = 300;
  const data::Schema schema = OneDimSchema(kDomain);

  std::map<std::string, std::vector<query::RangeQuery>> shapes;
  shapes["shapes_mixed"] = OneDimShapes(schema, kDomain);
  {
    std::vector<query::RangeQuery> shorts;
    for (std::size_t lo = 0; lo + 4 < kDomain; lo += 13) {
      shorts.push_back(MakeRange1D(schema, lo, lo + 4));
    }
    shapes["shapes_short"] = std::move(shorts);
  }
  {
    std::vector<query::RangeQuery> longs;
    for (std::size_t lo = 0; lo < 8; ++lo) {
      longs.push_back(MakeRange1D(schema, lo, kDomain - 1 - lo));
    }
    shapes["shapes_long"] = std::move(longs);
  }
  {
    query::WorkloadOptions options;
    options.num_queries = 24;
    options.seed = 11;
    auto random = query::GenerateWorkload(schema, options);
    ASSERT_TRUE(random.ok());
    shapes["shapes_random"] = std::move(*random);
  }

  for (const auto& [shape, workload] : shapes) {
    SCOPED_TRACE(shape);
    auto plan = analysis::PlanMechanismForWorkload(schema, workload, kEpsilon);
    ASSERT_TRUE(plan.ok());
    ASSERT_FALSE(plan->ranked.empty());

    std::map<std::string, double> empirical;
    for (const analysis::MechanismCandidate& candidate : plan->ranked) {
      if (!candidate.publishable) continue;
      const auto mech = MechanismFor(candidate);
      const double mse = MeanSquaredError(
          EmpiricalNoise(schema, *mech, workload, kEpsilon, kTrials));
      empirical[candidate.id] = mse;
      // (i) the prediction is accurate for every candidate, not just the
      // winner.
      EXPECT_NEAR(mse / candidate.expected_variance, 1.0,
                  VarianceTolerance(kTrials))
          << candidate.id;
    }

    // (ii) the pick is empirically sound: no alternative beats it by more
    // than the sampling margin.
    const double chosen_mse = empirical.at(plan->chosen.id);
    for (const auto& [id, mse] : empirical) {
      EXPECT_LE(chosen_mse, mse * (1.0 + VarianceTolerance(kTrials)))
          << "alternative " << id << " empirically beats the chosen "
          << plan->chosen.id;
    }
  }
}

TEST(PlannerAccuracyTest, FourierRankedOnBinarySchemasButNeverChosen) {
  // On an all-binary schema the planner ranks "fourier" alongside the
  // publishable mechanisms, scored by the mean closed-form variance over
  // the workload — but never chooses it (it releases marginals, not a
  // matrix the publish pipeline can snapshot).
  constexpr double kEpsilon = 1.0;
  std::vector<data::Attribute> attrs;
  for (const char* name : {"X", "Y", "Z"}) {
    attrs.push_back(data::Attribute::Ordinal(name, 2));
  }
  const data::Schema schema(std::move(attrs));

  std::vector<query::RangeQuery> workload;
  query::RangeQuery one(3);
  ASSERT_TRUE(one.SetRange(schema, 0, 1, 1).ok());
  workload.push_back(one);
  query::RangeQuery two(3);
  ASSERT_TRUE(two.SetRange(schema, 1, 0, 0).ok());
  ASSERT_TRUE(two.SetRange(schema, 2, 1, 1).ok());
  workload.push_back(two);

  auto plan = analysis::PlanMechanismForWorkload(schema, workload, kEpsilon);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const analysis::MechanismCandidate* fourier = nullptr;
  for (const analysis::MechanismCandidate& candidate : plan->ranked) {
    if (candidate.id == "fourier") fourier = &candidate;
  }
  ASSERT_NE(fourier, nullptr) << "binary schema must rank the Fourier model";
  EXPECT_FALSE(fourier->publishable);
  EXPECT_NE(plan->chosen.id, "fourier");

  // The candidate's score is the mean of the per-query model.
  auto closure = analysis::FourierClosureSize(schema, workload);
  ASSERT_TRUE(closure.ok());
  double expected = 0.0;
  for (const query::RangeQuery& q : workload) {
    auto v = analysis::FourierQueryVariance(schema, kEpsilon, *closure, q);
    ASSERT_TRUE(v.ok());
    expected += *v;
  }
  expected /= static_cast<double>(workload.size());
  EXPECT_DOUBLE_EQ(fourier->expected_variance, expected);

  // A rank-only candidate must never surface as the recorded runner-up.
  const query::PlanRecord record = plan->ToRecord();
  EXPECT_NE(record.runner_up, "fourier");
}

TEST(PlannerAccuracyTest, PlannerRejectsBadInputsWithStatusErrors) {
  // The planner's argument checks must come back as Status errors (the
  // CLI prints them), not crashes: non-positive or non-finite epsilon,
  // an empty planning workload, and a query whose arity does not match
  // the schema.
  const data::Schema schema = OneDimSchema(16);
  std::vector<query::RangeQuery> workload;
  workload.push_back(MakeRange1D(schema, 2, 5));

  for (const double bad_epsilon : {0.0, -1.0}) {
    auto plan =
        analysis::PlanMechanismForWorkload(schema, workload, bad_epsilon);
    EXPECT_FALSE(plan.ok()) << "epsilon " << bad_epsilon;
  }

  auto empty = analysis::PlanMechanismForWorkload(schema, {}, 1.0);
  EXPECT_FALSE(empty.ok());
  EXPECT_FALSE(empty.status().message().empty());

  std::vector<query::RangeQuery> mismatched;
  mismatched.emplace_back(3);  // 3 attributes against a 1-attribute schema
  EXPECT_FALSE(
      analysis::PlanMechanismForWorkload(schema, mismatched, 1.0).ok());
  EXPECT_FALSE(analysis::BasicQueryVariance(schema, 1.0, mismatched[0]).ok());
  EXPECT_FALSE(analysis::HayQueryVariance(schema, 1.0, mismatched[0]).ok());

  // The Hay model is single-ordinal-attribute only.
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 8));
  attrs.push_back(data::Attribute::Ordinal("B", 8));
  const data::Schema two_d(std::move(attrs));
  query::RangeQuery q(2);
  ASSERT_TRUE(q.SetRange(two_d, 0, 0, 3).ok());
  EXPECT_FALSE(analysis::HayQueryVariance(two_d, 1.0, q).ok());

  // The Fourier model requires an all-binary schema and a positive
  // released-coefficient count.
  EXPECT_FALSE(analysis::FourierClosureSize(schema, workload).ok());
  EXPECT_FALSE(
      analysis::FourierQueryVariance(schema, 1.0, 4, workload[0]).ok());
  std::vector<data::Attribute> bits;
  bits.push_back(data::Attribute::Ordinal("X", 2));
  const data::Schema binary(std::move(bits));
  query::RangeQuery point(1);
  ASSERT_TRUE(point.SetRange(binary, 0, 1, 1).ok());
  EXPECT_FALSE(analysis::FourierQueryVariance(binary, 1.0, 0, point).ok());
}

TEST(PlannerAccuracyTest, PlanRecordRoundTripsThroughSnapshot) {
  // The decision must survive as provenance: session metadata -> PVLS v3
  // -> copy load, mapped open, and inspect all reproduce the record, and
  // a plan-less publish still writes (and loads from) a v2 file.
  constexpr double kEpsilon = 1.0;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 8));
  attrs.push_back(data::Attribute::Ordinal("B", 4));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix zeros(schema.DomainSizes());

  query::WorkloadOptions options;
  options.num_queries = 12;
  options.seed = 3;
  auto workload = query::GenerateWorkload(schema, options);
  ASSERT_TRUE(workload.ok());
  auto plan = analysis::PlanMechanismForWorkload(schema, *workload, kEpsilon);
  ASSERT_TRUE(plan.ok());
  const query::PlanRecord record = plan->ToRecord();
  EXPECT_FALSE(record.chosen.empty());
  EXPECT_EQ(record.workload_queries, 12u);

  const auto mech = MechanismFor(plan->chosen);
  auto session = query::PublishingSession::Publish(schema, *mech, zeros,
                                                   kEpsilon, /*seed=*/5);
  ASSERT_TRUE(session.ok());
  session->set_plan(record);
  ASSERT_TRUE(session->metadata().plan.has_value());

  const std::string planned = testing::TempDir() + "/planner_roundtrip.pvls";
  const std::string planless = testing::TempDir() + "/planner_planless.pvls";
  ASSERT_TRUE(storage::SaveSession(planned, *session).ok());

  auto loaded = storage::LoadSession(planned);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->metadata().plan.has_value());
  EXPECT_EQ(*loaded->metadata().plan, record);

  auto served = storage::OpenServingSession(planned);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(served->metadata().plan.has_value());
  EXPECT_EQ(*served->metadata().plan, record);

  auto info = storage::InspectSnapshot(planned);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 3u);
  ASSERT_TRUE(info->plan.has_value());
  EXPECT_EQ(*info->plan, record);

  // Plan-less control: same release without set_plan stays v2 and loads
  // with no plan.
  auto bare = query::PublishingSession::Publish(schema, *mech, zeros,
                                                kEpsilon, /*seed=*/5);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(storage::SaveSession(planless, *bare).ok());
  auto bare_info = storage::InspectSnapshot(planless);
  ASSERT_TRUE(bare_info.ok());
  EXPECT_EQ(bare_info->version, 2u);
  EXPECT_FALSE(bare_info->plan.has_value());
  auto bare_loaded = storage::LoadSession(planless);
  ASSERT_TRUE(bare_loaded.ok());
  EXPECT_FALSE(bare_loaded->metadata().plan.has_value());

  std::remove(planned.c_str());
  std::remove(planless.c_str());
}

}  // namespace
}  // namespace privelet
