// Tests for the closed-form P/H bookkeeping and the paper's worked
// variance-bound numbers (Secs. V-D and VI-C/D), plus the SA advisor rule.
#include <gtest/gtest.h>

#include "privelet/analysis/bounds.h"
#include "privelet/analysis/sa_advisor.h"
#include "privelet/data/census_generator.h"

namespace privelet::analysis {
namespace {

TEST(PFactorTest, OrdinalUsesPaddedLog) {
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Ordinal("A", 16)), 5.0);
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Ordinal("A", 512)), 10.0);
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Ordinal("A", 101)), 8.0);
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Ordinal("A", 1)), 1.0);
}

TEST(PFactorTest, NominalUsesHierarchyHeight) {
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Nominal(
                       "N", data::Hierarchy::Flat(2).value())),
                   2.0);
  EXPECT_DOUBLE_EQ(PFactor(data::Attribute::Nominal(
                       "N", data::Hierarchy::Balanced({16, 32}).value())),
                   3.0);
}

TEST(HFactorTest, Values) {
  EXPECT_DOUBLE_EQ(HFactor(data::Attribute::Ordinal("A", 16)), 3.0);
  EXPECT_DOUBLE_EQ(HFactor(data::Attribute::Ordinal("A", 512)), 5.5);
  EXPECT_DOUBLE_EQ(HFactor(data::Attribute::Nominal(
                       "N", data::Hierarchy::Balanced({4, 4}).value())),
                   4.0);
}

TEST(BoundsTest, PaperSectionVDExample) {
  // Occupation: m = 512 leaves, hierarchy height 3.
  // HWT-with-imposed-order: 4400/ε²; nominal transform: 288/ε² — the
  // 15-fold reduction highlighted in Sec. V-D.
  EXPECT_DOUBLE_EQ(HaarOrdinalVarianceBound(512, 1.0), 4400.0);
  EXPECT_DOUBLE_EQ(NominalVarianceBound(3, 1.0), 288.0);
  EXPECT_GT(HaarOrdinalVarianceBound(512, 1.0) / NominalVarianceBound(3, 1.0),
            15.0);
}

TEST(BoundsTest, PaperSectionVIDExample) {
  // Single ordinal attribute |A| = 16: Privelet 600/ε², Basic 128/ε².
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 16));
  const data::Schema schema(std::move(attrs));
  auto privelet = PriveletPlusVarianceBound(schema, {}, 1.0);
  ASSERT_TRUE(privelet.ok());
  EXPECT_DOUBLE_EQ(*privelet, 600.0);
  EXPECT_DOUBLE_EQ(BasicVarianceBound(schema, 1.0), 128.0);
}

TEST(BoundsTest, EpsilonScalesInverseSquare) {
  EXPECT_DOUBLE_EQ(NominalVarianceBound(3, 0.5), 4.0 * 288.0);
  EXPECT_DOUBLE_EQ(HaarOrdinalVarianceBound(512, 2.0), 1100.0);
}

TEST(BoundsTest, SaAllAttributesEqualsBasic) {
  auto schema = data::MakeCensusSchema(data::CensusCountry::kUS, 0);
  ASSERT_TRUE(schema.ok());
  auto bound = PriveletPlusVarianceBound(
      *schema, {"Age", "Gender", "Occupation", "Income"}, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, BasicVarianceBound(*schema, 1.0));
}

TEST(BoundsTest, UnknownSaNameFails) {
  auto schema = data::MakeCensusSchema(data::CensusCountry::kUS, 0);
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(PriveletPlusVarianceBound(*schema, {"Nope"}, 1.0).ok());
  EXPECT_FALSE(PriveletPlusVarianceBound(*schema, {}, 0.0).ok());
}

TEST(SaAdvisorTest, PaperRuleOnCensusSchema) {
  // Sec. VII-A: SA = {Age, Gender} because those domains satisfy
  // |A| <= P(A)²·H(A) while Occupation and Income do not.
  auto schema = data::MakeCensusSchema(data::CensusCountry::kBrazil, 0);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(AdviseSa(*schema),
            (std::vector<std::string>{"Age", "Gender"}));
}

TEST(SaAdvisorTest, PerAttributeRule) {
  // |A| = 16 ordinal: P²H = 75 >= 16 -> in SA.
  EXPECT_TRUE(BelongsInSa(data::Attribute::Ordinal("A", 16)));
  // |A| = 1024 ordinal: P²H = 11²·6.5... -> 121*6 = 726 < 1024 -> out.
  EXPECT_FALSE(BelongsInSa(data::Attribute::Ordinal("A", 1024)));
  // Gender-style flat nominal: |A| = 2 <= h²·4 = 16 -> in SA.
  EXPECT_TRUE(BelongsInSa(
      data::Attribute::Nominal("G", data::Hierarchy::Flat(2).value())));
  // Occupation-style 512-leaf h=3 nominal: 512 > 9*4 = 36 -> out.
  EXPECT_FALSE(BelongsInSa(data::Attribute::Nominal(
      "O", data::Hierarchy::Balanced({16, 32}).value())));
}

TEST(SaAdvisorTest, UsSchemaMatchesPaperChoice) {
  auto schema = data::MakeCensusSchema(data::CensusCountry::kUS, 0);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(AdviseSa(*schema),
            (std::vector<std::string>{"Age", "Gender"}));
}

}  // namespace
}  // namespace privelet::analysis
