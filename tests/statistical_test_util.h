// Shared statistical acceptance helpers for fixed-seed noise tests
// (noise_statistics_test, planner_accuracy_test): tolerance bands derived
// from the variance of the sample variance, so suites assert "matches the
// calibrated distribution" instead of "looks noisy". For Laplace noise
// Var(s²) ≈ 5σ⁴/n (excess kurtosis 3), giving a 4-sigma relative band of
// 4·sqrt(5/n) on s²/σ².
#ifndef PRIVELET_TESTS_STATISTICAL_TEST_UTIL_H_
#define PRIVELET_TESTS_STATISTICAL_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "privelet/common/math_util.h"

namespace privelet::testutil {

/// 4-sigma relative tolerance band for a Laplace sample variance over n
/// samples, floored at 5% for very large n (where FP and model error
/// dominate sampling error).
inline double VarianceTolerance(std::size_t n) {
  return std::max(0.05, 4.0 * std::sqrt(5.0 / static_cast<double>(n)));
}

/// Moment check: `samples` must look like centered Laplace noise of the
/// given variance — sample variance within VarianceTolerance of the
/// target (relative) and sample mean within 4 standard errors of 0.
/// Callers add context via SCOPED_TRACE.
inline void ExpectCenteredNoiseWithVariance(const std::vector<double>& samples,
                                            double target_variance) {
  ASSERT_GT(samples.size(), 1u);
  ASSERT_GT(target_variance, 0.0);
  EXPECT_NEAR(SampleVariance(samples) / target_variance, 1.0,
              VarianceTolerance(samples.size()));
  EXPECT_NEAR(Mean(samples), 0.0,
              4.0 * std::sqrt(target_variance /
                              static_cast<double>(samples.size())));
}

}  // namespace privelet::testutil

#endif  // PRIVELET_TESTS_STATISTICAL_TEST_UTIL_H_
