// End-to-end integration tests: census surrogate -> frequency matrix ->
// mechanisms -> workload evaluation, reproducing the qualitative shape of
// the paper's Figs. 6-9 at reduced scale, plus a direct check of the
// ε-differential-privacy guarantee via the Laplace likelihood ratio on
// neighboring tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "privelet/analysis/sa_advisor.h"
#include "privelet/common/math_util.h"
#include "privelet/data/census_generator.h"
#include "privelet/data/csv.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/metrics.h"
#include "privelet/query/workload.h"

namespace privelet {
namespace {

struct CensusFixture {
  data::Schema schema;
  matrix::FrequencyMatrix m;
  std::size_t n;
};

CensusFixture MakeSmallCensus() {
  data::CensusConfig config =
      data::DefaultCensusConfig(data::CensusCountry::kBrazil);
  config.num_tuples = 60'000;
  config.income_domain = 16;  // keep m small for the integration test
  auto table = data::GenerateCensus(config);
  EXPECT_TRUE(table.ok());
  auto schema = data::MakeCensusSchema(config.country, config.income_domain);
  EXPECT_TRUE(schema.ok());
  matrix::FrequencyMatrix m = matrix::FrequencyMatrix::FromTable(*table);
  return {std::move(schema).value(), std::move(m), config.num_tuples};
}

TEST(IntegrationTest, FrequencyMatrixTotalEqualsTupleCount) {
  const CensusFixture fixture = MakeSmallCensus();
  EXPECT_DOUBLE_EQ(fixture.m.Total(), static_cast<double>(fixture.n));
}

TEST(IntegrationTest, EndToEndErrorShapesMatchPaper) {
  const CensusFixture fixture = MakeSmallCensus();
  const double epsilon = 1.0;

  query::WorkloadOptions wopts;
  wopts.num_queries = 800;
  auto workload = query::GenerateWorkload(fixture.schema, wopts);
  ASSERT_TRUE(workload.ok());

  mechanism::BasicMechanism basic;
  mechanism::PriveletPlusMechanism plus(analysis::AdviseSa(fixture.schema));
  auto basic_noisy = basic.Publish(fixture.schema, fixture.m, epsilon, 1);
  auto plus_noisy = plus.Publish(fixture.schema, fixture.m, epsilon, 1);
  ASSERT_TRUE(basic_noisy.ok() && plus_noisy.ok());

  query::QueryEvaluator truth(fixture.schema, fixture.m);
  query::QueryEvaluator basic_eval(fixture.schema, *basic_noisy);
  query::QueryEvaluator plus_eval(fixture.schema, *plus_noisy);

  std::vector<double> coverages, basic_sq, plus_sq;
  for (const auto& q : *workload) {
    const double act = truth.Answer(q);
    coverages.push_back(q.Coverage(fixture.schema));
    basic_sq.push_back(query::SquareError(basic_eval.Answer(q), act));
    plus_sq.push_back(query::SquareError(plus_eval.Answer(q), act));
  }

  const auto basic_buckets = query::EqualCountBuckets(coverages, basic_sq, 5);
  const auto plus_buckets = query::EqualCountBuckets(coverages, plus_sq, 5);

  // Fig. 6 shape: Basic's square error grows strongly with coverage;
  // Privelet+ stays flat and wins decisively on the widest quintile.
  EXPECT_GT(basic_buckets[4].avg_value, 20.0 * basic_buckets[0].avg_value);
  EXPECT_GT(basic_buckets[4].avg_value, 10.0 * plus_buckets[4].avg_value);
  // Privelet+ insensitivity: widest vs narrowest quintile within ~30x
  // (Basic's is in the 1000s).
  EXPECT_LT(plus_buckets[4].avg_value,
            30.0 * plus_buckets[0].avg_value + 1e3);
}

TEST(IntegrationTest, RelativeErrorStaysModestOnSelectiveQueries) {
  // Fig. 8 claim: Privelet+'s relative error is small once the query
  // selectivity is non-negligible (the paper reports <= 25% everywhere at
  // n = 10M). At our reduced n the noise-to-signal ratio of the *lowest*
  // selectivity quintiles is much larger (the regime the paper's sanity
  // bound exists for), so the assertion targets the top quintile, where
  // the claim is scale-robust.
  const CensusFixture fixture = MakeSmallCensus();
  const double epsilon = 1.25;
  const double sanity = 0.001 * static_cast<double>(fixture.n);

  query::WorkloadOptions wopts;
  wopts.num_queries = 600;
  wopts.seed = 3;
  auto workload = query::GenerateWorkload(fixture.schema, wopts);
  ASSERT_TRUE(workload.ok());

  mechanism::PriveletPlusMechanism plus(analysis::AdviseSa(fixture.schema));
  auto noisy = plus.Publish(fixture.schema, fixture.m, epsilon, 5);
  ASSERT_TRUE(noisy.ok());

  query::QueryEvaluator truth(fixture.schema, fixture.m);
  query::QueryEvaluator eval(fixture.schema, *noisy);
  std::vector<double> selectivities, rel_errors;
  for (const auto& q : *workload) {
    const double act = truth.Answer(q);
    selectivities.push_back(act / static_cast<double>(fixture.n));
    rel_errors.push_back(query::RelativeError(eval.Answer(q), act, sanity));
  }
  const auto buckets = query::EqualCountBuckets(selectivities, rel_errors, 5);
  EXPECT_LT(buckets[4].avg_value, 0.25);
  EXPECT_LT(buckets[3].avg_value, 0.6);
}

// Direct ε-DP check on Basic via its exact output density: for neighboring
// matrices (one tuple moved between two cells) the log-likelihood ratio of
// any output is bounded by ε.
TEST(IntegrationTest, BasicSatisfiesEpsilonDpLikelihoodRatio) {
  const double epsilon = 0.8;
  const double lambda = 2.0 / epsilon;
  // Neighboring frequency matrices differ by +-1 in two cells; the output
  // density ratio is exp(sum |Δcell| / λ) <= exp(2/λ) = e^ε.
  const double max_log_ratio = 2.0 / lambda;
  EXPECT_NEAR(max_log_ratio, epsilon, 1e-12);
}

// Empirical DP smoke test for Privelet: publish two neighboring tables many
// times and compare the empirical distributions of a range query's answer.
// This cannot prove DP but catches gross calibration errors (e.g. noise
// scaled by W instead of 1/W).
TEST(IntegrationTest, PriveletNeighborDistributionsOverlap) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 16));
  const data::Schema schema(std::move(attrs));

  matrix::FrequencyMatrix m1(schema.DomainSizes());
  for (std::size_t i = 0; i < m1.size(); ++i) m1[i] = 10.0;
  matrix::FrequencyMatrix m2 = m1;
  m2[3] += 1.0;  // neighboring: one tuple changed value
  m2[9] -= 1.0;

  mechanism::PriveletMechanism privelet;
  const double epsilon = 1.0;
  query::RangeQuery q(1);
  ASSERT_TRUE(q.SetRange(schema, 0, 0, 7).ok());

  std::vector<double> answers1, answers2;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    auto noisy1 = privelet.Publish(schema, m1, epsilon, seed);
    auto noisy2 = privelet.Publish(schema, m2, epsilon, seed + 100000);
    ASSERT_TRUE(noisy1.ok() && noisy2.ok());
    answers1.push_back(query::QueryEvaluator(schema, *noisy1).Answer(q));
    answers2.push_back(query::QueryEvaluator(schema, *noisy2).Answer(q));
  }
  // Means differ by at most the true gap (1) plus noise; spreads are wide
  // and of similar magnitude.
  const double mean1 = Mean(answers1), mean2 = Mean(answers2);
  EXPECT_NEAR(mean1, 80.0, 8.0);
  EXPECT_NEAR(mean2, 81.0, 8.0);
  const double sd1 = std::sqrt(SampleVariance(answers1));
  const double sd2 = std::sqrt(SampleVariance(answers2));
  EXPECT_GT(sd1, 1.0);  // real noise present
  EXPECT_LT(std::abs(sd1 - sd2) / sd1, 0.5);
}

TEST(IntegrationTest, CsvRoundTripFeedsPipeline) {
  // Publishing from a CSV-loaded table matches publishing from the
  // original table (same frequency matrix, same seed).
  data::CensusConfig config =
      data::DefaultCensusConfig(data::CensusCountry::kUS);
  config.num_tuples = 2000;
  config.income_domain = 8;
  auto table = data::GenerateCensus(config);
  ASSERT_TRUE(table.ok());

  const std::string path = "/tmp/privelet_integration_test.csv";
  ASSERT_TRUE(data::WriteCsv(path, *table).ok());
  auto reloaded = data::ReadCsv(path, table->schema());
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());

  const auto m1 = matrix::FrequencyMatrix::FromTable(*table);
  const auto m2 = matrix::FrequencyMatrix::FromTable(*reloaded);
  EXPECT_TRUE(matrix::ValuesEqual(m1.values(), m2.values()));
}

}  // namespace
}  // namespace privelet
