// Tests for the Hay et al. hierarchical mechanism (extension baseline from
// the paper's related work, Sec. VIII).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/hay.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {
namespace {

data::Schema OneDimensionalSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 50));
  }
  return m;
}

TEST(HayTest, RejectsMultiDimensionalAndNominal) {
  HayHierarchicalMechanism hay;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 4));
  attrs.push_back(data::Attribute::Ordinal("B", 4));
  const data::Schema two(std::move(attrs));
  EXPECT_FALSE(hay.Publish(two, matrix::FrequencyMatrix({4, 4}), 1.0, 1).ok());

  std::vector<data::Attribute> nominal;
  nominal.push_back(
      data::Attribute::Nominal("N", data::Hierarchy::Flat(4).value()));
  const data::Schema nom(std::move(nominal));
  EXPECT_FALSE(hay.Publish(nom, matrix::FrequencyMatrix({4}), 1.0, 1).ok());
}

TEST(HayTest, HugeEpsilonReconstructsAlmostExactly) {
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(16);
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 3);
  auto noisy = hay.Publish(schema, m, 1e9, 1);
  ASSERT_TRUE(noisy.ok());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], m[i], 1e-4);
  }
}

TEST(HayTest, HandlesNonPowerOfTwoDomains) {
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(13);
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 5);
  auto noisy = hay.Publish(schema, m, 1e9, 1);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 13u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], m[i], 1e-4);
  }
}

TEST(HayTest, DeterministicInSeed) {
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(32);
  const matrix::FrequencyMatrix m = RandomMatrix(schema, 7);
  auto a = hay.Publish(schema, m, 0.5, 21);
  auto b = hay.Publish(schema, m, 0.5, 21);
  auto c = hay.Publish(schema, m, 0.5, 22);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(matrix::ValuesEqual(a->values(), b->values()));
  EXPECT_FALSE(matrix::ValuesEqual(a->values(), c->values()));
}

TEST(HayTest, NoiseIsUnbiasedAcrossSeeds) {
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(16);
  matrix::FrequencyMatrix m(schema.DomainSizes());
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = 100.0;
  std::vector<double> noise;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    auto noisy = hay.Publish(schema, m, 1.0, seed);
    ASSERT_TRUE(noisy.ok());
    for (std::size_t i = 0; i < noisy->size(); ++i) {
      noise.push_back((*noisy)[i] - 100.0);
    }
  }
  EXPECT_NEAR(Mean(noise), 0.0, 0.6);
}

TEST(HayTest, ConsistencyReducesLeafVarianceBelowNaive) {
  // The naive estimate would publish leaf counts with Laplace(h/ε):
  // variance 2h²/ε². Consistency must not increase it (it provably
  // decreases it for h >= 2).
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(32);  // h = 6 levels
  matrix::FrequencyMatrix m(schema.DomainSizes());
  const double epsilon = 1.0;
  std::vector<double> noise;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    auto noisy = hay.Publish(schema, m, epsilon, seed);
    ASSERT_TRUE(noisy.ok());
    for (std::size_t i = 0; i < noisy->size(); ++i) {
      noise.push_back((*noisy)[i]);
    }
  }
  const double naive_var = 2.0 * 6.0 * 6.0;  // 72
  EXPECT_LT(SampleVariance(noise), naive_var);
}

TEST(HayTest, VarianceBoundFormula) {
  HayHierarchicalMechanism hay;
  const data::Schema schema = OneDimensionalSchema(16);  // h = 5 levels
  auto bound = hay.NoiseVarianceBound(schema, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 4.0 * 125.0);
}

}  // namespace
}  // namespace privelet::mechanism
