// Release snapshots (storage/snapshot.h): the PVLS round trip must be
// lossless — a session restored from a snapshot answers a 1k-query
// workload bit-identically to the session that produced it, with or
// without the stored prefix table — and corrupt, truncated, or absurd
// files must come back as Status errors, never crashes or pathological
// allocations.
#include <gtest/gtest.h>

#include <cfloat>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/workload.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/storage/crc32.h"
#include "privelet/storage/session_io.h"
#include "privelet/storage/snapshot.h"

namespace privelet {
namespace {

data::Schema TestSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 64));
  attrs.push_back(data::Attribute::Nominal(
      "Occ", data::Hierarchy::FromGroupSizes({2, 3, 4}).value()));
  attrs.push_back(data::Attribute::Ordinal("Income", 32));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 25));
  }
  return m;
}

query::PublishingSession PublishTestSession(const data::Schema& schema,
                                            common::ThreadPool* pool) {
  mechanism::PriveletPlusMechanism mech({"Occ"});
  auto session = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), /*epsilon=*/0.9, /*seed=*/41,
      pool);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *std::move(session);
}

std::vector<query::RangeQuery> TestWorkload(const data::Schema& schema,
                                            std::size_t num_queries) {
  query::WorkloadOptions options;
  options.num_queries = num_queries;
  options.seed = 17;
  auto workload = query::GenerateWorkload(schema, options);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return *std::move(workload);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(SnapshotTest, InMemoryRoundTripAnswers1kWorkloadBitIdentically) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  auto restored =
      query::PublishingSession::FromSnapshot(original.ToSnapshot());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(expected, restored->AnswerAll(workload));
  EXPECT_EQ(original.metadata().mechanism, restored->metadata().mechanism);
  EXPECT_EQ(original.metadata().epsilon, restored->metadata().epsilon);
  EXPECT_EQ(original.metadata().seed, restored->metadata().seed);
}

TEST(SnapshotTest, FileRoundTripAnswers1kWorkloadBitIdentically) {
  const data::Schema schema = TestSchema();
  common::ThreadPool pool(4);
  const query::PublishingSession original = PublishTestSession(schema, &pool);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  const std::string path = TempPath("roundtrip.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());
  auto loaded = storage::LoadSession(path, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(expected, loaded->AnswerAll(workload));
  EXPECT_TRUE(matrix::ValuesEqual(original.published().values(),
                                  loaded->published().values()));
  EXPECT_EQ("Privelet+{Occ}", loaded->metadata().mechanism);
  EXPECT_EQ(0.9, loaded->metadata().epsilon);
  EXPECT_EQ(std::uint64_t{41}, loaded->metadata().seed);
}

TEST(SnapshotTest, StoredPrefixTableIsAdoptedVerbatim) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::string path = TempPath("table.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->prefix.has_value());
  const auto original_sums = original.prefix_table().raw_sums();
  const auto loaded_sums = snapshot->prefix->raw_sums();
  ASSERT_EQ(original_sums.size(), loaded_sums.size());
  for (std::size_t i = 0; i < original_sums.size(); ++i) {
    ASSERT_EQ(original_sums[i], loaded_sums[i]) << "entry " << i;
  }
}

TEST(SnapshotTest, SnapshotWithoutTableRebuildsBitIdentically) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  storage::ReleaseSnapshot snapshot = original.ToSnapshot();
  snapshot.prefix.reset();
  const std::string path = TempPath("notable.pvls");
  ASSERT_TRUE(storage::WriteSnapshot(path, snapshot).ok());

  auto info = storage::InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->has_prefix_table);

  common::ThreadPool pool(2);
  auto loaded = storage::LoadSession(path, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(expected, loaded->AnswerAll(workload));
}

TEST(SnapshotTest, ReadSnapshotPreservesSchemaAndEngineOptions) {
  const data::Schema schema = TestSchema();
  mechanism::PriveletPlusMechanism mech({"Occ"});
  const matrix::EngineOptions options =
      matrix::MakeEngineOptions(matrix::LineEngine::kNaive, 17);
  auto session = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), 0.9, 41, nullptr, options);
  ASSERT_TRUE(session.ok());
  const std::string path = TempPath("schema.pvls");
  ASSERT_TRUE(storage::SaveSession(path, *session).ok());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(matrix::LineEngine::kNaive, snapshot->engine_options.engine);
  EXPECT_EQ(std::size_t{17}, snapshot->engine_options.tile_lines);
  ASSERT_EQ(schema.num_attributes(), snapshot->schema.num_attributes());
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& want = schema.attribute(a);
    const data::Attribute& got = snapshot->schema.attribute(a);
    EXPECT_EQ(want.name(), got.name());
    EXPECT_EQ(want.kind(), got.kind());
    EXPECT_EQ(want.domain_size(), got.domain_size());
  }
  // The grouped hierarchy must survive structurally: same node count,
  // same per-node fanout and leaf ranges, and it must re-validate.
  const data::Hierarchy& want = schema.attribute(1).hierarchy();
  const data::Hierarchy& got = snapshot->schema.attribute(1).hierarchy();
  ASSERT_EQ(want.num_nodes(), got.num_nodes());
  EXPECT_EQ(want.height(), got.height());
  for (std::size_t id = 0; id < want.num_nodes(); ++id) {
    EXPECT_EQ(want.fanout(id), got.fanout(id)) << "node " << id;
    EXPECT_EQ(want.node(id).leaf_begin, got.node(id).leaf_begin);
    EXPECT_EQ(want.node(id).leaf_end, got.node(id).leaf_end);
  }
  EXPECT_TRUE(got.Validate().ok());
}

// ---------------------------------------------------------------------------
// Corruption and truncation.

TEST(SnapshotTest, EveryTruncationPrefixIsRejectedWithoutCrashing) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("full.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 100u);

  const std::string cut = TempPath("cut.pvls");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{40},
        bytes.size() / 2, bytes.size() - 5, bytes.size() - 1}) {
    WriteFileBytes(cut, bytes.substr(0, keep));
    auto snapshot = storage::ReadSnapshot(cut);
    EXPECT_FALSE(snapshot.ok()) << "prefix of " << keep << " bytes parsed";
    auto info = storage::InspectSnapshot(cut);
    EXPECT_FALSE(info.ok()) << "prefix of " << keep << " bytes inspected";
  }
}

TEST(SnapshotTest, FlippedBytesAreRejected) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("flip_src.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string bytes = ReadFileBytes(path);

  const std::string flip = TempPath("flip.pvls");
  // Offsets spread over magic, header, matrix payload, table payload, and
  // the trailing CRC itself.
  for (const std::size_t offset :
       {std::size_t{0}, std::size_t{9}, std::size_t{60}, bytes.size() / 3,
        2 * bytes.size() / 3, bytes.size() - 2}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
    WriteFileBytes(flip, corrupted);
    auto snapshot = storage::ReadSnapshot(flip);
    EXPECT_FALSE(snapshot.ok()) << "flip at " << offset << " parsed";
  }
}

TEST(SnapshotTest, TrailingBytesAreRejected) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("trail_src.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string padded = TempPath("trail.pvls");
  WriteFileBytes(padded, ReadFileBytes(path) + std::string(6, '\0'));
  EXPECT_FALSE(storage::ReadSnapshot(padded).ok());
}

TEST(SnapshotTest, MissingFileIsAnIOError) {
  auto snapshot = storage::ReadSnapshot(TempPath("does_not_exist.pvls"));
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(StatusCode::kIOError, snapshot.status().code());
}

// ---------------------------------------------------------------------------
// Handcrafted files: lock the byte format and exercise the defensive
// checks that a writer can never produce (overflowing dims, payloads
// larger than the file).

class ByteBuilder {
 public:
  template <typename T>
  ByteBuilder& Pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* p = reinterpret_cast<const char*>(&value);
    bytes_.append(p, sizeof(value));
    return *this;
  }
  ByteBuilder& Str(const std::string& s) {
    Pod(static_cast<std::uint16_t>(s.size()));
    bytes_ += s;
    return *this;
  }
  ByteBuilder& Raw(const void* p, std::size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
    return *this;
  }
  /// Zero-fills to the next 64-byte offset (a v2 section boundary).
  ByteBuilder& PadTo64() {
    bytes_.append((64 - bytes_.size() % 64) % 64, '\0');
    return *this;
  }
  /// Appends the CRC-32 of everything so far (a well-formed footer).
  ByteBuilder& Crc() {
    return Pod(storage::Crc32(bytes_.data(), bytes_.size()));
  }
  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

// Common prefix: header + a 1-attribute ordinal schema with the given
// domain, up to (excluding) the dims section. `version` locks either the
// legacy v1 layout or the current v2 one (they differ only in the payload
// alignment and table encoding after this prefix).
ByteBuilder MinimalPrefix(std::uint64_t domain, std::uint32_t version = 1) {
  ByteBuilder b;
  b.Pod('P').Pod('V').Pod('L').Pod('S');
  b.Pod(version);
  b.Str("Test");                               // mechanism
  b.Pod(double{0.5});                          // epsilon
  b.Pod(std::uint64_t{7});                     // seed
  b.Pod(std::uint8_t{0}).Pod(std::uint64_t{64});  // engine options
  b.Pod(std::uint32_t{1});                     // num_attributes
  b.Str("A").Pod(std::uint8_t{0}).Pod(domain);  // ordinal attribute
  return b;
}

TEST(SnapshotTest, HandcraftedMinimalSnapshotParses) {
  ByteBuilder b = MinimalPrefix(4);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{4});  // dims
  for (const double v : {1.0, 2.0, 3.0, 4.0}) b.Pod(v);
  b.Pod(std::uint8_t{0});  // no table
  b.Crc();
  const std::string path = TempPath("minimal.pvls");
  WriteFileBytes(path, b.bytes());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ("Test", snapshot->mechanism);
  EXPECT_EQ(0.5, snapshot->epsilon);
  EXPECT_EQ(std::uint64_t{7}, snapshot->seed);
  EXPECT_EQ(std::vector<std::size_t>{4}, snapshot->published.dims());
  EXPECT_TRUE(matrix::ValuesEqual(std::vector<double>{1.0, 2.0, 3.0, 4.0},
                                  snapshot->published.values()));
  EXPECT_FALSE(snapshot->prefix.has_value());
}

TEST(SnapshotTest, DimensionProductOverflowIsRejected) {
  // 2^32 * 2^32 wraps a 64-bit product; must fail overflow-checked, not
  // allocate a wrapped-to-tiny matrix.
  ByteBuilder b = MinimalPrefix(4);
  b.Pod(std::uint32_t{2})
      .Pod(std::uint64_t{1} << 32)
      .Pod(std::uint64_t{1} << 32);
  b.Crc();
  const std::string path = TempPath("overflow.pvls");
  WriteFileBytes(path, b.bytes());
  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(std::string::npos,
            snapshot.status().message().find("overflow"))
      << snapshot.status().ToString();
}

TEST(SnapshotTest, MatrixPayloadBeyondFileSizeIsRejected) {
  // A 2^40-cell claim in a few-hundred-byte file must be rejected before
  // any allocation happens.
  ByteBuilder b = MinimalPrefix(std::uint64_t{1} << 40);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{1} << 40);
  b.Crc();
  const std::string path = TempPath("huge.pvls");
  WriteFileBytes(path, b.bytes());
  EXPECT_FALSE(storage::ReadSnapshot(path).ok());
}

// The current write format: the same minimal release, version 2 —
// payload sections aligned to 64-byte offsets, raw-accumulator table
// encoding. Locks the v2 byte layout independently of the writer.
TEST(SnapshotTest, HandcraftedV2SnapshotParsesAndMaps) {
  ByteBuilder b = MinimalPrefix(4, /*version=*/2);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{4});  // dims
  b.PadTo64();
  for (const double v : {1.0, 2.0, 3.0, 4.0}) b.Pod(v);
  b.Pod(std::uint8_t{1});  // table follows
  b.Pod(static_cast<std::uint16_t>(LDBL_MANT_DIG));
  b.Pod(static_cast<std::uint16_t>(sizeof(long double)));
  b.PadTo64();
  for (const long double v : {1.0L, 3.0L, 6.0L, 10.0L}) {
    char slot[sizeof(long double)] = {};
    // Value bytes first, trailing slot bytes zero — what the writer
    // produces for x87's padded 80-bit extended type (IEEE-quad and
    // double-sized long doubles have no padding to zero).
    std::memcpy(slot, &v, LDBL_MANT_DIG == 64 ? 10 : sizeof(v));
    b.Raw(slot, sizeof(slot));
  }
  b.Crc();
  const std::string path = TempPath("minimal_v2.pvls");
  WriteFileBytes(path, b.bytes());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ("Test", snapshot->mechanism);
  EXPECT_TRUE(matrix::ValuesEqual(std::vector<double>{1.0, 2.0, 3.0, 4.0},
                                  snapshot->published.values()));
  ASSERT_TRUE(snapshot->prefix.has_value());
  EXPECT_EQ((std::vector<long double>{1.0L, 3.0L, 6.0L, 10.0L}),
            std::vector<long double>(snapshot->prefix->raw_sums().begin(),
                                     snapshot->prefix->raw_sums().end()));

  auto mapped = storage::MappedSnapshot::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((std::vector<std::size_t>{4}), mapped->dims());
  ASSERT_TRUE(mapped->has_prefix_table());
  EXPECT_EQ(10.0L, mapped->prefix_table()[3]);
  EXPECT_EQ(3.0, mapped->matrix_values()[2]);
}

TEST(SnapshotTest, V2NonzeroSectionPaddingIsRejected) {
  ByteBuilder b = MinimalPrefix(4, /*version=*/2);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{4});
  std::string bytes = b.bytes();
  bytes.append((64 - bytes.size() % 64) % 64, '\0');
  bytes[bytes.size() - 1] = '\x01';  // corrupt the padding, then re-CRC
  ByteBuilder rest;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) rest.Pod(v);
  rest.Pod(std::uint8_t{0});
  bytes += rest.bytes();
  ByteBuilder footer;
  footer.Pod(storage::Crc32(bytes.data(), bytes.size()));
  bytes += footer.bytes();
  const std::string path = TempPath("bad_padding.pvls");
  WriteFileBytes(path, bytes);

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(std::string::npos, snapshot.status().message().find("padding"))
      << snapshot.status().ToString();
  EXPECT_FALSE(storage::MappedSnapshot::Open(path).ok());
}

TEST(SnapshotTest, HierarchyWithFanoutOneIsRejected) {
  ByteBuilder b;
  b.Pod('P').Pod('V').Pod('L').Pod('S');
  b.Pod(std::uint32_t{1});
  b.Str("");
  b.Pod(double{0.5}).Pod(std::uint64_t{7});
  b.Pod(std::uint8_t{0}).Pod(std::uint64_t{64});
  b.Pod(std::uint32_t{1});
  // Nominal attribute whose "hierarchy" is a unary chain — must be
  // rejected during parsing (it would otherwise recurse once per node).
  b.Str("N").Pod(std::uint8_t{1});
  b.Pod(std::uint64_t{3});
  b.Pod(std::uint32_t{1}).Pod(std::uint32_t{1}).Pod(std::uint32_t{0});
  b.Crc();
  const std::string path = TempPath("chain.pvls");
  WriteFileBytes(path, b.bytes());
  EXPECT_FALSE(storage::ReadSnapshot(path).ok());
}

// A complete v1 file (dims + matrix + double-double table, no alignment
// padding): the legacy format must stay readable byte-for-byte, its
// stored table must still be adopted by the copy loader, and the serving
// entry point must transparently fall back from the mmap path.
TEST(SnapshotTest, LegacyV1SnapshotStillLoadsAndServes) {
  ByteBuilder b = MinimalPrefix(4, /*version=*/1);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{4});  // dims, no padding in v1
  for (const double v : {1.0, 2.0, 3.0, 4.0}) b.Pod(v);
  b.Pod(std::uint8_t{1});  // table follows
  b.Pod(static_cast<std::uint16_t>(LDBL_MANT_DIG));
  b.Pod(std::uint8_t{1});  // exact
  for (const double hi : {1.0, 3.0, 6.0, 10.0}) {
    b.Pod(hi).Pod(0.0);  // (hi, lo) double-double pairs
  }
  b.Crc();
  const std::string path = TempPath("legacy_v1.pvls");
  WriteFileBytes(path, b.bytes());

  auto info = storage::InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(1u, info->version);
  EXPECT_TRUE(info->has_prefix_table);

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->prefix.has_value());
  EXPECT_EQ(6.0L, snapshot->prefix->raw_sums()[2]);

  // v1 sections are not mappable in place; the serving entry point falls
  // back to the copy loader and answers identically.
  auto mapped = storage::MapSession(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, mapped.status().code());
  auto served = storage::OpenServingSession(path);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served->has_published());  // copy path materializes

  query::RangeQuery q(1);
  ASSERT_TRUE(q.SetRange(snapshot->schema, 0, 1, 2).ok());
  auto direct = storage::LoadSession(path);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->Answer(q), served->Answer(q));
  EXPECT_EQ(5.0, served->Answer(q));  // 2 + 3
}

// ---------------------------------------------------------------------------
// The zero-copy serving chain: MappedSnapshot -> view table -> session.

TEST(SnapshotTest, MappedSessionAnswers1kWorkloadIdenticallyToCopyLoad) {
  const data::Schema schema = TestSchema();
  common::ThreadPool pool(4);
  const query::PublishingSession original = PublishTestSession(schema, &pool);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  const std::string path = TempPath("mapped.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());

  auto copied = storage::LoadSession(path, &pool);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  auto mapped = storage::MapSession(path, &pool);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  EXPECT_EQ(expected, copied->AnswerAll(workload));
  EXPECT_EQ(expected, mapped->AnswerAll(workload));
  EXPECT_EQ(original.metadata().mechanism, mapped->metadata().mechanism);
  EXPECT_EQ(original.metadata().epsilon, mapped->metadata().epsilon);
  EXPECT_EQ(original.metadata().seed, mapped->metadata().seed);
}

TEST(SnapshotTest, MappedSessionServesFromAViewWithoutMaterializing) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::string path = TempPath("view.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());

  auto mapped = storage::MapSession(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // Zero-copy contract: the table is a span view into the mapping, no
  // matrix object exists, and re-saving (which would need one) is
  // rejected rather than crashing.
  EXPECT_TRUE(mapped->prefix_table().is_view());
  EXPECT_FALSE(mapped->has_published());
  EXPECT_FALSE(storage::SaveSession(TempPath("resave.pvls"), *mapped).ok());

  // The view must equal the original entries bit-for-bit.
  const auto want = original.prefix_table().raw_sums();
  const auto got = mapped->prefix_table().raw_sums();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "entry " << i;
  }
}

TEST(SnapshotTest, MappedSnapshotSectionsAreAligned) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::string path = TempPath("aligned.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());

  auto mapped = storage::MappedSnapshot::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped->has_prefix_table());
  // Sections sit on 64-byte file offsets and the mapping is page-aligned,
  // so the in-memory spans are 64-byte aligned — the precondition for
  // reading `long double` (16-byte alignment) in place.
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(
                    mapped->matrix_values().data()) % 64);
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(
                    mapped->prefix_table().data()) % 64);
  EXPECT_EQ(mapped->num_cells(), mapped->prefix_table().size());
}

TEST(SnapshotTest, RewritingASnapshotDoesNotDisturbLiveMappings) {
  const data::Schema schema = TestSchema();
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 200);
  mechanism::PriveletPlusMechanism mech({"Occ"});
  const std::string path = TempPath("republish.pvls");

  auto first = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), /*epsilon=*/0.9, /*seed=*/41);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(storage::SaveSession(path, *first).ok());
  auto mapped = storage::MapSession(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const std::vector<double> old_answers = mapped->AnswerAll(workload);

  // Republish to the same path while the mapping is live. The writer
  // renames a temp file into place, so the mapped session keeps serving
  // the old inode's pages (no SIGBUS, no torn reads) while new opens see
  // the new release.
  auto second = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), /*epsilon=*/0.9, /*seed=*/42);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(storage::SaveSession(path, *second).ok());

  EXPECT_EQ(old_answers, mapped->AnswerAll(workload));
  auto remapped = storage::MapSession(path);
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(second->AnswerAll(workload), remapped->AnswerAll(workload));
  EXPECT_NE(old_answers, remapped->AnswerAll(workload));
}

TEST(SnapshotTest, MappedOpenRejectsFlippedBytesViaTheSingleCrcCheck) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("mflip_src.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string bytes = ReadFileBytes(path);

  const std::string flip = TempPath("mflip.pvls");
  for (const std::size_t offset :
       {std::size_t{9}, std::size_t{60}, bytes.size() / 3,
        2 * bytes.size() / 3, bytes.size() - 2}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
    WriteFileBytes(flip, corrupted);
    EXPECT_FALSE(storage::MappedSnapshot::Open(flip).ok())
        << "flip at " << offset << " mapped";
  }
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, std::size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    WriteFileBytes(flip, bytes.substr(0, keep));
    EXPECT_FALSE(storage::MappedSnapshot::Open(flip).ok())
        << "prefix of " << keep << " bytes mapped";
  }
}

// ---------------------------------------------------------------------------
// API-level validation.

TEST(SnapshotTest, FromSnapshotRejectsMismatchedDims) {
  storage::ReleaseSnapshot snapshot;
  snapshot.schema = TestSchema();
  snapshot.published =
      matrix::FrequencyMatrix(std::vector<std::size_t>{2, 2});
  auto session = query::PublishingSession::FromSnapshot(std::move(snapshot));
  EXPECT_FALSE(session.ok());
}

TEST(SnapshotTest, WriteSnapshotRejectsMismatchedDims) {
  storage::ReleaseSnapshot snapshot;
  snapshot.schema = TestSchema();
  snapshot.published =
      matrix::FrequencyMatrix(std::vector<std::size_t>{2, 2});
  EXPECT_FALSE(
      storage::WriteSnapshot(TempPath("bad_dims.pvls"), snapshot).ok());
}

}  // namespace
}  // namespace privelet
