// Release snapshots (storage/snapshot.h): the PVLS round trip must be
// lossless — a session restored from a snapshot answers a 1k-query
// workload bit-identically to the session that produced it, with or
// without the stored prefix table — and corrupt, truncated, or absurd
// files must come back as Status errors, never crashes or pathological
// allocations.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "privelet/common/thread_pool.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/workload.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/storage/crc32.h"
#include "privelet/storage/session_io.h"
#include "privelet/storage/snapshot.h"

namespace privelet {
namespace {

data::Schema TestSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 64));
  attrs.push_back(data::Attribute::Nominal(
      "Occ", data::Hierarchy::FromGroupSizes({2, 3, 4}).value()));
  attrs.push_back(data::Attribute::Ordinal("Income", 32));
  return data::Schema(std::move(attrs));
}

matrix::FrequencyMatrix RandomMatrix(const data::Schema& schema,
                                     std::uint64_t seed) {
  matrix::FrequencyMatrix m(schema.DomainSizes());
  rng::Xoshiro256pp gen(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(gen.NextUint64InRange(0, 25));
  }
  return m;
}

query::PublishingSession PublishTestSession(const data::Schema& schema,
                                            common::ThreadPool* pool) {
  mechanism::PriveletPlusMechanism mech({"Occ"});
  auto session = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), /*epsilon=*/0.9, /*seed=*/41,
      pool);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *std::move(session);
}

std::vector<query::RangeQuery> TestWorkload(const data::Schema& schema,
                                            std::size_t num_queries) {
  query::WorkloadOptions options;
  options.num_queries = num_queries;
  options.seed = 17;
  auto workload = query::GenerateWorkload(schema, options);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return *std::move(workload);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(SnapshotTest, InMemoryRoundTripAnswers1kWorkloadBitIdentically) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  auto restored =
      query::PublishingSession::FromSnapshot(original.ToSnapshot());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(expected, restored->AnswerAll(workload));
  EXPECT_EQ(original.metadata().mechanism, restored->metadata().mechanism);
  EXPECT_EQ(original.metadata().epsilon, restored->metadata().epsilon);
  EXPECT_EQ(original.metadata().seed, restored->metadata().seed);
}

TEST(SnapshotTest, FileRoundTripAnswers1kWorkloadBitIdentically) {
  const data::Schema schema = TestSchema();
  common::ThreadPool pool(4);
  const query::PublishingSession original = PublishTestSession(schema, &pool);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  const std::string path = TempPath("roundtrip.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());
  auto loaded = storage::LoadSession(path, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(expected, loaded->AnswerAll(workload));
  EXPECT_EQ(original.published().values(), loaded->published().values());
  EXPECT_EQ("Privelet+{Occ}", loaded->metadata().mechanism);
  EXPECT_EQ(0.9, loaded->metadata().epsilon);
  EXPECT_EQ(std::uint64_t{41}, loaded->metadata().seed);
}

TEST(SnapshotTest, StoredPrefixTableIsAdoptedVerbatim) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::string path = TempPath("table.pvls");
  ASSERT_TRUE(storage::SaveSession(path, original).ok());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->prefix.has_value());
  const auto original_sums = original.prefix_table().raw_sums();
  const auto loaded_sums = snapshot->prefix->raw_sums();
  ASSERT_EQ(original_sums.size(), loaded_sums.size());
  for (std::size_t i = 0; i < original_sums.size(); ++i) {
    ASSERT_EQ(original_sums[i], loaded_sums[i]) << "entry " << i;
  }
}

TEST(SnapshotTest, SnapshotWithoutTableRebuildsBitIdentically) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession original =
      PublishTestSession(schema, nullptr);
  const std::vector<query::RangeQuery> workload = TestWorkload(schema, 1000);
  const std::vector<double> expected = original.AnswerAll(workload);

  storage::ReleaseSnapshot snapshot = original.ToSnapshot();
  snapshot.prefix.reset();
  const std::string path = TempPath("notable.pvls");
  ASSERT_TRUE(storage::WriteSnapshot(path, snapshot).ok());

  auto info = storage::InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->has_prefix_table);

  common::ThreadPool pool(2);
  auto loaded = storage::LoadSession(path, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(expected, loaded->AnswerAll(workload));
}

TEST(SnapshotTest, ReadSnapshotPreservesSchemaAndEngineOptions) {
  const data::Schema schema = TestSchema();
  mechanism::PriveletPlusMechanism mech({"Occ"});
  matrix::EngineOptions options{matrix::LineEngine::kNaive, 17};
  auto session = query::PublishingSession::Publish(
      schema, mech, RandomMatrix(schema, 3), 0.9, 41, nullptr, options);
  ASSERT_TRUE(session.ok());
  const std::string path = TempPath("schema.pvls");
  ASSERT_TRUE(storage::SaveSession(path, *session).ok());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(matrix::LineEngine::kNaive, snapshot->engine_options.engine);
  EXPECT_EQ(std::size_t{17}, snapshot->engine_options.tile_lines);
  ASSERT_EQ(schema.num_attributes(), snapshot->schema.num_attributes());
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& want = schema.attribute(a);
    const data::Attribute& got = snapshot->schema.attribute(a);
    EXPECT_EQ(want.name(), got.name());
    EXPECT_EQ(want.kind(), got.kind());
    EXPECT_EQ(want.domain_size(), got.domain_size());
  }
  // The grouped hierarchy must survive structurally: same node count,
  // same per-node fanout and leaf ranges, and it must re-validate.
  const data::Hierarchy& want = schema.attribute(1).hierarchy();
  const data::Hierarchy& got = snapshot->schema.attribute(1).hierarchy();
  ASSERT_EQ(want.num_nodes(), got.num_nodes());
  EXPECT_EQ(want.height(), got.height());
  for (std::size_t id = 0; id < want.num_nodes(); ++id) {
    EXPECT_EQ(want.fanout(id), got.fanout(id)) << "node " << id;
    EXPECT_EQ(want.node(id).leaf_begin, got.node(id).leaf_begin);
    EXPECT_EQ(want.node(id).leaf_end, got.node(id).leaf_end);
  }
  EXPECT_TRUE(got.Validate().ok());
}

// ---------------------------------------------------------------------------
// Corruption and truncation.

TEST(SnapshotTest, EveryTruncationPrefixIsRejectedWithoutCrashing) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("full.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 100u);

  const std::string cut = TempPath("cut.pvls");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{40},
        bytes.size() / 2, bytes.size() - 5, bytes.size() - 1}) {
    WriteFileBytes(cut, bytes.substr(0, keep));
    auto snapshot = storage::ReadSnapshot(cut);
    EXPECT_FALSE(snapshot.ok()) << "prefix of " << keep << " bytes parsed";
    auto info = storage::InspectSnapshot(cut);
    EXPECT_FALSE(info.ok()) << "prefix of " << keep << " bytes inspected";
  }
}

TEST(SnapshotTest, FlippedBytesAreRejected) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("flip_src.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string bytes = ReadFileBytes(path);

  const std::string flip = TempPath("flip.pvls");
  // Offsets spread over magic, header, matrix payload, table payload, and
  // the trailing CRC itself.
  for (const std::size_t offset :
       {std::size_t{0}, std::size_t{9}, std::size_t{60}, bytes.size() / 3,
        2 * bytes.size() / 3, bytes.size() - 2}) {
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
    WriteFileBytes(flip, corrupted);
    auto snapshot = storage::ReadSnapshot(flip);
    EXPECT_FALSE(snapshot.ok()) << "flip at " << offset << " parsed";
  }
}

TEST(SnapshotTest, TrailingBytesAreRejected) {
  const data::Schema schema = TestSchema();
  const query::PublishingSession session = PublishTestSession(schema, nullptr);
  const std::string path = TempPath("trail_src.pvls");
  ASSERT_TRUE(storage::SaveSession(path, session).ok());
  const std::string padded = TempPath("trail.pvls");
  WriteFileBytes(padded, ReadFileBytes(path) + std::string(6, '\0'));
  EXPECT_FALSE(storage::ReadSnapshot(padded).ok());
}

TEST(SnapshotTest, MissingFileIsAnIOError) {
  auto snapshot = storage::ReadSnapshot(TempPath("does_not_exist.pvls"));
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(StatusCode::kIOError, snapshot.status().code());
}

// ---------------------------------------------------------------------------
// Handcrafted files: lock the byte format and exercise the defensive
// checks that a writer can never produce (overflowing dims, payloads
// larger than the file).

class ByteBuilder {
 public:
  template <typename T>
  ByteBuilder& Pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* p = reinterpret_cast<const char*>(&value);
    bytes_.append(p, sizeof(value));
    return *this;
  }
  ByteBuilder& Str(const std::string& s) {
    Pod(static_cast<std::uint16_t>(s.size()));
    bytes_ += s;
    return *this;
  }
  /// Appends the CRC-32 of everything so far (a well-formed footer).
  ByteBuilder& Crc() {
    return Pod(storage::Crc32(bytes_.data(), bytes_.size()));
  }
  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

// Common prefix: header + a 1-attribute ordinal schema with the given
// domain, up to (excluding) the dims section.
ByteBuilder MinimalPrefix(std::uint64_t domain) {
  ByteBuilder b;
  b.Pod('P').Pod('V').Pod('L').Pod('S');
  b.Pod(std::uint32_t{1});                     // version
  b.Str("Test");                               // mechanism
  b.Pod(double{0.5});                          // epsilon
  b.Pod(std::uint64_t{7});                     // seed
  b.Pod(std::uint8_t{0}).Pod(std::uint64_t{64});  // engine options
  b.Pod(std::uint32_t{1});                     // num_attributes
  b.Str("A").Pod(std::uint8_t{0}).Pod(domain);  // ordinal attribute
  return b;
}

TEST(SnapshotTest, HandcraftedMinimalSnapshotParses) {
  ByteBuilder b = MinimalPrefix(4);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{4});  // dims
  for (const double v : {1.0, 2.0, 3.0, 4.0}) b.Pod(v);
  b.Pod(std::uint8_t{0});  // no table
  b.Crc();
  const std::string path = TempPath("minimal.pvls");
  WriteFileBytes(path, b.bytes());

  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ("Test", snapshot->mechanism);
  EXPECT_EQ(0.5, snapshot->epsilon);
  EXPECT_EQ(std::uint64_t{7}, snapshot->seed);
  EXPECT_EQ(std::vector<std::size_t>{4}, snapshot->published.dims());
  EXPECT_EQ((std::vector<double>{1.0, 2.0, 3.0, 4.0}),
            snapshot->published.values());
  EXPECT_FALSE(snapshot->prefix.has_value());
}

TEST(SnapshotTest, DimensionProductOverflowIsRejected) {
  // 2^32 * 2^32 wraps a 64-bit product; must fail overflow-checked, not
  // allocate a wrapped-to-tiny matrix.
  ByteBuilder b = MinimalPrefix(4);
  b.Pod(std::uint32_t{2})
      .Pod(std::uint64_t{1} << 32)
      .Pod(std::uint64_t{1} << 32);
  b.Crc();
  const std::string path = TempPath("overflow.pvls");
  WriteFileBytes(path, b.bytes());
  auto snapshot = storage::ReadSnapshot(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(std::string::npos,
            snapshot.status().message().find("overflow"))
      << snapshot.status().ToString();
}

TEST(SnapshotTest, MatrixPayloadBeyondFileSizeIsRejected) {
  // A 2^40-cell claim in a few-hundred-byte file must be rejected before
  // any allocation happens.
  ByteBuilder b = MinimalPrefix(std::uint64_t{1} << 40);
  b.Pod(std::uint32_t{1}).Pod(std::uint64_t{1} << 40);
  b.Crc();
  const std::string path = TempPath("huge.pvls");
  WriteFileBytes(path, b.bytes());
  EXPECT_FALSE(storage::ReadSnapshot(path).ok());
}

TEST(SnapshotTest, HierarchyWithFanoutOneIsRejected) {
  ByteBuilder b;
  b.Pod('P').Pod('V').Pod('L').Pod('S');
  b.Pod(std::uint32_t{1});
  b.Str("");
  b.Pod(double{0.5}).Pod(std::uint64_t{7});
  b.Pod(std::uint8_t{0}).Pod(std::uint64_t{64});
  b.Pod(std::uint32_t{1});
  // Nominal attribute whose "hierarchy" is a unary chain — must be
  // rejected during parsing (it would otherwise recurse once per node).
  b.Str("N").Pod(std::uint8_t{1});
  b.Pod(std::uint64_t{3});
  b.Pod(std::uint32_t{1}).Pod(std::uint32_t{1}).Pod(std::uint32_t{0});
  b.Crc();
  const std::string path = TempPath("chain.pvls");
  WriteFileBytes(path, b.bytes());
  EXPECT_FALSE(storage::ReadSnapshot(path).ok());
}

// ---------------------------------------------------------------------------
// API-level validation.

TEST(SnapshotTest, FromSnapshotRejectsMismatchedDims) {
  storage::ReleaseSnapshot snapshot;
  snapshot.schema = TestSchema();
  snapshot.published =
      matrix::FrequencyMatrix(std::vector<std::size_t>{2, 2});
  auto session = query::PublishingSession::FromSnapshot(std::move(snapshot));
  EXPECT_FALSE(session.ok());
}

TEST(SnapshotTest, WriteSnapshotRejectsMismatchedDims) {
  storage::ReleaseSnapshot snapshot;
  snapshot.schema = TestSchema();
  snapshot.published =
      matrix::FrequencyMatrix(std::vector<std::size_t>{2, 2});
  EXPECT_FALSE(
      storage::WriteSnapshot(TempPath("bad_dims.pvls"), snapshot).ok());
}

}  // namespace
}  // namespace privelet
