// Statistical acceptance tests for noise calibration: fixed-seed
// sample-moment checks that the injected noise matches the calibrated
// λ = 2ρ/ε per coefficient weight — per weight class of the Haar
// decomposition, per cell on identity axes, and per query against the
// closed-form exact variance. These replace "looks noisy" spot checks
// with tolerance bands derived from the variance of the sample variance
// (for Laplace, Var(s²) ≈ 5σ⁴/n, excess kurtosis 3) — shared with the
// planner accuracy suite via statistical_test_util.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "statistical_test_util.h"

#include "privelet/analysis/query_variance.h"
#include "privelet/common/math_util.h"
#include "privelet/data/attribute.h"
#include "privelet/data/hierarchy.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/noise.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/wavelet/haar.h"

namespace privelet {
namespace {

using testutil::ExpectCenteredNoiseWithVariance;
using testutil::VarianceTolerance;

TEST(NoiseStatisticsTest, ShardedLaplaceMatchesMoments) {
  // 2^17 draws span 16 shards; the pooled sample must look Laplace(b):
  // mean 0, variance 2b², half of the mass within b·ln 2 of 0.
  const std::size_t n = std::size_t{1} << 17;
  const double b = 3.0;
  std::vector<double> draws(n, 0.0);
  mechanism::AddLaplaceNoise(draws, b, /*noise_seed=*/404, nullptr);

  EXPECT_NEAR(Mean(draws), 0.0, 0.05);
  EXPECT_NEAR(SampleVariance(draws) / (2.0 * b * b), 1.0,
              VarianceTolerance(n));
  const std::size_t within = static_cast<std::size_t>(
      std::count_if(draws.begin(), draws.end(), [b](double x) {
        return std::abs(x) <= b * std::log(2.0);
      }));
  EXPECT_NEAR(static_cast<double>(within) / static_cast<double>(n), 0.5,
              0.01);
}

TEST(NoiseStatisticsTest, PriveletHaarNoisePerWeightClass) {
  // 1-D ordinal with |A| = 256 = 2^8 (no padding, so Forward of the
  // published matrix recovers the noisy coefficients exactly): coefficient
  // c of weight class W must carry Laplace noise of variance 2(λ/W)² with
  // λ = 2ρ/ε and ρ = 1 + log2 256 = 9.
  constexpr std::size_t kDomain = 256;
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kTrials = 400;
  const double lambda = 2.0 * 9.0 / kEpsilon;

  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", kDomain));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix zeros(schema.DomainSizes());
  const mechanism::PriveletMechanism privelet;
  const wavelet::HaarTransform haar(kDomain);

  // noise_by_class[0] = base coefficient; [i] = level-i coefficients.
  std::vector<std::vector<double>> noise_by_class(haar.levels() + 1);
  std::vector<double> coeffs(kDomain);
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    auto published = privelet.Publish(schema, zeros, kEpsilon, seed);
    ASSERT_TRUE(published.ok());
    haar.Forward(published->values().data(), coeffs.data());
    noise_by_class[0].push_back(coeffs[0]);
    for (std::size_t j = 1; j < kDomain; ++j) {
      noise_by_class[wavelet::HaarTransform::LevelOf(j)].push_back(coeffs[j]);
    }
  }

  const auto& weights = haar.weights();
  for (std::size_t cls = 0; cls < noise_by_class.size(); ++cls) {
    const auto& samples = noise_by_class[cls];
    // All coefficients of a class share one weight: W(base) = 256,
    // W(level i) = 2^(8 - i + 1).
    const double w =
        (cls == 0) ? weights[0] : weights[std::size_t{1} << (cls - 1)];
    const double target = 2.0 * (lambda / w) * (lambda / w);
    SCOPED_TRACE("weight class " + std::to_string(cls));
    ExpectCenteredNoiseWithVariance(samples, target);
  }
}

TEST(NoiseStatisticsTest, PriveletPlusIdentityAxisIsPerCellLaplace) {
  // SA = all attributes degenerates to Basic: every weight is 1, ρ = 1,
  // so each cell carries Laplace(2/ε) noise of variance 8/ε².
  constexpr double kEpsilon = 0.5;
  constexpr std::size_t kTrials = 30;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", 64));
  attrs.push_back(data::Attribute::Ordinal("B", 64));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix zeros(schema.DomainSizes());
  const mechanism::PriveletPlusMechanism plus({"A", "B"});

  std::vector<double> noise;
  noise.reserve(kTrials * 64 * 64);
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    auto published = plus.Publish(schema, zeros, kEpsilon, seed);
    ASSERT_TRUE(published.ok());
    noise.insert(noise.end(), published->values().begin(),
                 published->values().end());
  }
  ExpectCenteredNoiseWithVariance(noise, 8.0 / (kEpsilon * kEpsilon));
}

TEST(NoiseStatisticsTest, QueryNoiseMatchesExactVarianceOnMixedSchema) {
  // End-to-end: empirical variance of range-query noise (through nominal
  // refinement and reconstruction) must match the closed-form
  // ExactQueryNoiseVariance, not merely stay under the worst-case bound.
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kTrials = 500;
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Ord", 16));
  attrs.push_back(data::Attribute::Nominal(
      "Nom", data::Hierarchy::Balanced({2, 3}).value()));
  const data::Schema schema(std::move(attrs));
  const matrix::FrequencyMatrix zeros(schema.DomainSizes());
  const mechanism::PriveletMechanism privelet;

  std::vector<query::RangeQuery> queries;
  query::RangeQuery full(2);
  queries.push_back(full);
  query::RangeQuery box(2);
  ASSERT_TRUE(box.SetRange(schema, 0, 3, 11).ok());
  ASSERT_TRUE(box.SetHierarchyNode(schema, 1, 1).ok());
  queries.push_back(box);
  query::RangeQuery point(2);
  ASSERT_TRUE(point.SetRange(schema, 0, 5, 5).ok());
  ASSERT_TRUE(point.SetHierarchyNode(schema, 1, 3).ok());
  queries.push_back(point);

  std::vector<std::vector<double>> noise(queries.size());
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    auto published = privelet.Publish(schema, zeros, kEpsilon, seed);
    ASSERT_TRUE(published.ok());
    const query::QueryEvaluator evaluator(schema, *published);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      noise[q].push_back(evaluator.Answer(queries[q]));
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto exact =
        analysis::PriveletPlusQueryVariance(schema, {}, kEpsilon, queries[q]);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(SampleVariance(noise[q]) / *exact, 1.0,
                VarianceTolerance(kTrials))
        << "query " << q;
  }
}

}  // namespace
}  // namespace privelet
