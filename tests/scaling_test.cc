// Cross-mechanism scaling laws and invariants that the paper's analysis
// predicts, verified with the exact-variance calculator (no sampling
// noise): 1/ε² scaling, monotonicity in query width, additivity over
// disjoint ranges, and bound tightness on worst-case queries.
#include <gtest/gtest.h>

#include <vector>

#include "privelet/analysis/query_variance.h"
#include "privelet/data/attribute.h"
#include "privelet/mechanism/basic.h"
#include "privelet/mechanism/hay.h"
#include "privelet/mechanism/privelet_mechanism.h"
#include "privelet/query/workload.h"

namespace privelet {
namespace {

data::Schema OrdinalSchema(std::size_t domain) {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("A", domain));
  return data::Schema(std::move(attrs));
}

data::Schema CensusLikeSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Attribute::Ordinal("Age", 101));
  attrs.push_back(data::Attribute::Nominal(
      "Occ", data::Hierarchy::Balanced({16, 32}).value()));
  return data::Schema(std::move(attrs));
}

// All variance bounds must scale exactly as 1/ε².
class EpsilonScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonScalingTest, BoundsScaleInverseSquare) {
  const double eps = GetParam();
  const data::Schema schema = CensusLikeSchema();
  const mechanism::BasicMechanism basic;
  const mechanism::PriveletMechanism privelet;
  const mechanism::PriveletPlusMechanism plus({"Age"});

  const double scale = eps * eps;
  EXPECT_NEAR(basic.NoiseVarianceBound(schema, eps).value() * scale,
              basic.NoiseVarianceBound(schema, 1.0).value(), 1e-6);
  EXPECT_NEAR(privelet.NoiseVarianceBound(schema, eps).value() * scale,
              privelet.NoiseVarianceBound(schema, 1.0).value(), 1e-6);
  EXPECT_NEAR(plus.NoiseVarianceBound(schema, eps).value() * scale,
              plus.NoiseVarianceBound(schema, 1.0).value(), 1e-6);
}

TEST_P(EpsilonScalingTest, ExactQueryVarianceScalesInverseSquare) {
  const double eps = GetParam();
  const data::Schema schema = CensusLikeSchema();
  query::RangeQuery q(2);
  ASSERT_TRUE(q.SetRange(schema, 0, 18, 65).ok());
  ASSERT_TRUE(q.SetRange(schema, 1, 32, 300).ok());
  const double at_eps =
      analysis::PriveletPlusQueryVariance(schema, {}, eps, q).value();
  const double at_one =
      analysis::PriveletPlusQueryVariance(schema, {}, 1.0, q).value();
  EXPECT_NEAR(at_eps * eps * eps, at_one, 1e-6 * at_one);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonScalingTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.25, 2.0, 8.0));

TEST(ScalingTest, BasicExactVarianceIsLinearInWidth) {
  // Under the identity transform (Basic), variance is exactly
  // 2λ² * width.
  const data::Schema schema = OrdinalSchema(128);
  for (std::size_t width : {1u, 2u, 17u, 64u, 128u}) {
    query::RangeQuery q(1);
    ASSERT_TRUE(q.SetRange(schema, 0, 0, width - 1).ok());
    const double variance =
        analysis::PriveletPlusQueryVariance(schema, {"A"}, 1.0, q).value();
    EXPECT_DOUBLE_EQ(variance, 2.0 * 2.0 * 2.0 * width);
  }
}

TEST(ScalingTest, PriveletVarianceIsSublinearInWidth) {
  // The headline property: widening a Privelet query by 64x must not
  // raise variance anywhere near 64x (polylog vs linear growth).
  const data::Schema schema = OrdinalSchema(1024);
  query::RangeQuery narrow(1), wide(1);
  ASSERT_TRUE(narrow.SetRange(schema, 0, 1, 16).ok());
  ASSERT_TRUE(wide.SetRange(schema, 0, 1, 1022).ok());
  const double narrow_var =
      analysis::PriveletPlusQueryVariance(schema, {}, 1.0, narrow).value();
  const double wide_var =
      analysis::PriveletPlusQueryVariance(schema, {}, 1.0, wide).value();
  EXPECT_LT(wide_var / narrow_var, 4.0);
}

TEST(ScalingTest, WorstCaseQueryApproachesTheorem3Bound) {
  // A maximally unaligned range cuts both subtrees at every level: the
  // exact variance should come within a small constant of the bound
  // (showing the bound is not vacuous).
  const std::size_t domain = 1024;
  const data::Schema schema = OrdinalSchema(domain);
  const mechanism::PriveletMechanism privelet;
  const double bound = privelet.NoiseVarianceBound(schema, 1.0).value();
  double worst = 0.0;
  // Scan a family of ranges straddling power-of-two boundaries.
  for (std::size_t lo = 1; lo < 16; ++lo) {
    query::RangeQuery q(1);
    ASSERT_TRUE(q.SetRange(schema, 0, lo, domain - 2).ok());
    worst = std::max(
        worst,
        analysis::PriveletPlusQueryVariance(schema, {}, 1.0, q).value());
  }
  EXPECT_GT(worst, bound / 8.0);
  EXPECT_LE(worst, bound * (1 + 1e-9));
}

TEST(ScalingTest, DisjointRangeVariancesAreAdditiveForBasic) {
  // Identity noise is independent per cell, so variances add over
  // disjoint ranges. (Not true for Privelet — shared ancestors correlate.)
  const data::Schema schema = OrdinalSchema(64);
  query::RangeQuery left(1), right(1), both(1);
  ASSERT_TRUE(left.SetRange(schema, 0, 0, 15).ok());
  ASSERT_TRUE(right.SetRange(schema, 0, 16, 47).ok());
  ASSERT_TRUE(both.SetRange(schema, 0, 0, 47).ok());
  auto variance = [&](const query::RangeQuery& q) {
    return analysis::PriveletPlusQueryVariance(schema, {"A"}, 1.0, q)
        .value();
  };
  EXPECT_NEAR(variance(left) + variance(right), variance(both), 1e-9);
}

TEST(ScalingTest, HayBoundScalesWithCubeOfHeight) {
  const mechanism::HayHierarchicalMechanism hay;
  const double small =
      hay.NoiseVarianceBound(OrdinalSchema(16), 1.0).value();   // h=5
  const double large =
      hay.NoiseVarianceBound(OrdinalSchema(256), 1.0).value();  // h=9
  EXPECT_DOUBLE_EQ(small, 4.0 * 125.0);
  EXPECT_DOUBLE_EQ(large, 4.0 * 729.0);
}

TEST(ScalingTest, PriveletBoundGrowsPolylogInDomain) {
  // Quadrupling the domain multiplies Basic's bound by 4 but Privelet's
  // by far less.
  const mechanism::BasicMechanism basic;
  const mechanism::PriveletMechanism privelet;
  for (std::size_t domain : {256u, 1024u, 4096u}) {
    const double basic_ratio =
        basic.NoiseVarianceBound(OrdinalSchema(domain * 4), 1.0).value() /
        basic.NoiseVarianceBound(OrdinalSchema(domain), 1.0).value();
    const double privelet_ratio =
        privelet.NoiseVarianceBound(OrdinalSchema(domain * 4), 1.0).value() /
        privelet.NoiseVarianceBound(OrdinalSchema(domain), 1.0).value();
    EXPECT_DOUBLE_EQ(basic_ratio, 4.0);
    // (2+l)(2+2l)² grows by < 2x per 4x domain at these sizes (1.79 at
    // domain = 256), versus Basic's exact 4x.
    EXPECT_LT(privelet_ratio, 2.0);
  }
}

}  // namespace
}  // namespace privelet
