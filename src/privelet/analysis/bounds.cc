#include "privelet/analysis/bounds.h"

#include <algorithm>

#include "privelet/common/math_util.h"

namespace privelet::analysis {

double PFactor(const data::Attribute& attribute) {
  if (attribute.is_ordinal()) {
    const std::size_t padded = NextPowerOfTwo(attribute.domain_size());
    return 1.0 + static_cast<double>(FloorLog2(padded));
  }
  return static_cast<double>(attribute.hierarchy().height());
}

double HFactor(const data::Attribute& attribute) {
  if (attribute.is_ordinal()) {
    const std::size_t padded = NextPowerOfTwo(attribute.domain_size());
    return (2.0 + static_cast<double>(FloorLog2(padded))) / 2.0;
  }
  return 4.0;
}

Result<double> PriveletPlusVarianceBound(
    const data::Schema& schema, const std::vector<std::string>& sa_names,
    double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  std::vector<bool> in_sa(schema.num_attributes(), false);
  for (const std::string& name : sa_names) {
    PRIVELET_ASSIGN_OR_RETURN(std::size_t axis, schema.FindAttribute(name));
    in_sa[axis] = true;
  }
  double bound = 8.0 / (epsilon * epsilon);
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    if (in_sa[a]) {
      bound *= static_cast<double>(attr.domain_size());
    } else {
      const double p = PFactor(attr);
      bound *= p * p * HFactor(attr);
    }
  }
  return bound;
}

double BasicVarianceBound(const data::Schema& schema, double epsilon) {
  return 8.0 * static_cast<double>(schema.TotalDomainSize()) /
         (epsilon * epsilon);
}

double HaarOrdinalVarianceBound(std::size_t domain_size, double epsilon) {
  const double l =
      static_cast<double>(FloorLog2(NextPowerOfTwo(domain_size)));
  return (2.0 + l) * (2.0 + 2.0 * l) * (2.0 + 2.0 * l) / (epsilon * epsilon);
}

double NominalVarianceBound(std::size_t hierarchy_height, double epsilon) {
  const double h = static_cast<double>(hierarchy_height);
  return 32.0 * h * h / (epsilon * epsilon);
}

}  // namespace privelet::analysis
