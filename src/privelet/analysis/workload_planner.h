// Workload-aware SA planning — the paper's first future-work direction
// ("extend Privelet for the case where the distribution of range-count
// queries is known in advance", Sec. IX). Given a representative workload,
// the planner evaluates the *exact* expected noise variance (via
// ExactQueryNoiseVariance) of every SA subset and returns the best one —
// a data-independent choice, so using it costs no privacy budget.
#ifndef PRIVELET_ANALYSIS_WORKLOAD_PLANNER_H_
#define PRIVELET_ANALYSIS_WORKLOAD_PLANNER_H_

#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"

namespace privelet::analysis {

struct SaPlan {
  /// Attribute names placed in SA (identity axes).
  std::vector<std::string> sa_names;
  /// Mean exact noise variance over the planning workload at the
  /// requested epsilon.
  double expected_variance = 0.0;
};

/// Evaluates every one of the 2^d SA subsets against the workload and
/// returns them sorted by ascending expected variance (best first).
/// Rejects schemas with more than 16 attributes (65536 subsets) — use
/// AdviseSa's per-attribute rule beyond that.
Result<std::vector<SaPlan>> EvaluateAllSaSubsets(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload,
    double epsilon);

/// The best plan from EvaluateAllSaSubsets.
Result<SaPlan> PlanSaForWorkload(const data::Schema& schema,
                                 const std::vector<query::RangeQuery>& workload,
                                 double epsilon);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_WORKLOAD_PLANNER_H_
