#include "privelet/analysis/workload_planner.h"

#include <algorithm>

#include "privelet/analysis/query_variance.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::analysis {

Result<std::vector<SaPlan>> EvaluateAllSaSubsets(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload,
    double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("planning workload must be non-empty");
  }
  const std::size_t d = schema.num_attributes();
  if (d == 0) return Status::InvalidArgument("schema has no attributes");
  if (d > 16) {
    return Status::InvalidArgument(
        "subset enumeration capped at 16 attributes; use AdviseSa instead");
  }

  std::vector<SaPlan> plans;
  plans.reserve(std::size_t{1} << d);
  for (std::size_t mask = 0; mask < (std::size_t{1} << d); ++mask) {
    std::vector<std::size_t> sa_axes;
    SaPlan plan;
    for (std::size_t axis = 0; axis < d; ++axis) {
      if (mask & (std::size_t{1} << axis)) {
        sa_axes.push_back(axis);
        plan.sa_names.push_back(schema.attribute(axis).name());
      }
    }
    PRIVELET_ASSIGN_OR_RETURN(wavelet::HnTransform transform,
                              wavelet::HnTransform::Create(schema, sa_axes));
    const double lambda = 2.0 * transform.GeneralizedSensitivity() / epsilon;
    double total = 0.0;
    for (const query::RangeQuery& q : workload) {
      PRIVELET_ASSIGN_OR_RETURN(
          double variance,
          ExactQueryNoiseVariance(transform, schema, lambda, q));
      total += variance;
    }
    plan.expected_variance = total / static_cast<double>(workload.size());
    plans.push_back(std::move(plan));
  }
  std::stable_sort(plans.begin(), plans.end(),
                   [](const SaPlan& a, const SaPlan& b) {
                     return a.expected_variance < b.expected_variance;
                   });
  return plans;
}

Result<SaPlan> PlanSaForWorkload(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload,
    double epsilon) {
  PRIVELET_ASSIGN_OR_RETURN(std::vector<SaPlan> plans,
                            EvaluateAllSaSubsets(schema, workload, epsilon));
  return plans.front();
}

}  // namespace privelet::analysis
