#include "privelet/analysis/query_variance.h"

#include <vector>

namespace privelet::analysis {

Result<double> ExactQueryNoiseVariance(const wavelet::HnTransform& transform,
                                       const data::Schema& schema,
                                       double lambda,
                                       const query::RangeQuery& query) {
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (query.num_attributes() != transform.num_axes() ||
      schema.num_attributes() != transform.num_axes()) {
    return Status::InvalidArgument("query/schema/transform arity mismatch");
  }
  std::vector<std::size_t> lo, hi;
  query.ResolveBounds(schema, &lo, &hi);

  double factor_product = 1.0;
  std::vector<double> contribution;
  for (std::size_t axis = 0; axis < transform.num_axes(); ++axis) {
    const wavelet::Transform1D& t = transform.axis_transform(axis);
    if (hi[axis] >= t.input_size()) {
      return Status::OutOfRange("query range exceeds the transform's axis");
    }
    contribution.assign(t.coefficient_count(), 0.0);
    t.RangeContribution(lo[axis], hi[axis], contribution.data());
    factor_product *= t.RefinedQuadraticForm(contribution.data());
  }
  return 2.0 * lambda * lambda * factor_product;
}

Result<double> PriveletPlusQueryVariance(
    const data::Schema& schema, const std::vector<std::string>& sa_names,
    double epsilon, const query::RangeQuery& query) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  std::vector<std::size_t> sa_axes;
  for (const std::string& name : sa_names) {
    PRIVELET_ASSIGN_OR_RETURN(std::size_t axis, schema.FindAttribute(name));
    sa_axes.push_back(axis);
  }
  PRIVELET_ASSIGN_OR_RETURN(wavelet::HnTransform transform,
                            wavelet::HnTransform::Create(schema, sa_axes));
  const double lambda = 2.0 * transform.GeneralizedSensitivity() / epsilon;
  return ExactQueryNoiseVariance(transform, schema, lambda, query);
}

}  // namespace privelet::analysis
