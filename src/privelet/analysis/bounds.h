// Closed-form privacy/utility bookkeeping from paper Sec. VI-C:
//   P(A) — per-attribute generalized-sensitivity factor,
//   H(A) — per-attribute variance factor,
// and the noise-variance bounds of Eq. 4 (Haar), Eq. 6 (nominal) and Eq. 7
// (Privelet+). All bounds are for ε-differential privacy at the given ε.
#ifndef PRIVELET_ANALYSIS_BOUNDS_H_
#define PRIVELET_ANALYSIS_BOUNDS_H_

#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"

namespace privelet::analysis {

/// P(A): 1 + log2(|A| padded to a power of two) for ordinal A; the
/// hierarchy height h for nominal A.
double PFactor(const data::Attribute& attribute);

/// H(A): (2 + log2(|A| padded)) / 2 for ordinal A; 4 for nominal A.
double HFactor(const data::Attribute& attribute);

/// Eq. 7: worst-case noise variance of a range-count query under Privelet+
/// with the given SA attribute names:
///   8/ε² · Π_{A∈SA} |A| · Π_{A∉SA} P(A)² · H(A).
/// SA = {} gives Privelet's bound (Eq. 4 / Eq. 6 in one dimension);
/// SA = all attributes gives Basic's 8m/ε².
Result<double> PriveletPlusVarianceBound(
    const data::Schema& schema, const std::vector<std::string>& sa_names,
    double epsilon);

/// Dwork et al.: 8m/ε² (each covered cell contributes variance 2·(2/ε)²).
double BasicVarianceBound(const data::Schema& schema, double epsilon);

/// Eq. 4 for a one-dimensional ordinal domain of (padded) size m:
/// (2 + log2 m) · (2 + 2·log2 m)² / ε². This is what Privelet-with-HWT
/// yields on a nominal attribute after imposing a total order (Sec. V-D).
double HaarOrdinalVarianceBound(std::size_t domain_size, double epsilon);

/// Eq. 6 for a hierarchy of height h: 4 · 2 · (2h)²/ε² = 32h²/ε².
double NominalVarianceBound(std::size_t hierarchy_height, double epsilon);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_BOUNDS_H_
