#include "privelet/analysis/sa_advisor.h"

#include "privelet/analysis/bounds.h"

namespace privelet::analysis {

bool BelongsInSa(const data::Attribute& attribute) {
  const double p = PFactor(attribute);
  return static_cast<double>(attribute.domain_size()) <=
         p * p * HFactor(attribute);
}

std::vector<std::string> AdviseSa(const data::Schema& schema) {
  std::vector<std::string> sa;
  for (const data::Attribute& attr : schema.attributes()) {
    if (BelongsInSa(attr)) sa.push_back(attr.name());
  }
  return sa;
}

}  // namespace privelet::analysis
