// Workload-adaptive mechanism planning — the paper's Sec. VII tradeoff
// (nominal vs. Haar per attribute, Privelet+ vs. the Basic/Hay/Fourier
// baselines of Sec. VIII) turned into an end-to-end decision procedure.
// Given a representative workload, every applicable mechanism is scored by
// its *exact* expected per-query noise variance — a closed-form,
// data-independent computation, so planning costs no privacy budget — and
// the cheapest publishable candidate wins.
//
// The per-mechanism variance models are exact, not bounds:
//  - Basic: every cell gets independent Laplace(2/ε), so a range summing
//    C cells has variance C · 2(2/ε)².
//  - Privelet/Privelet+: ExactQueryNoiseVariance over the HN transform of
//    the chosen SA subset (the existing analysis/query_variance path).
//  - Hay: the consistency step is linear in the per-node noisy counts, so
//    the answer's coefficient on each node is computed by running the
//    two averaging passes backwards (adjoint accumulation, O(domain));
//    variance is 2λ² Σ_v c_v² with λ = h/ε. Mirrors mechanism/hay.cc.
//  - Fourier: on a binary cube a range predicate is a point constraint on
//    an attribute subset T, i.e. one entry of marginal T, reconstructed
//    from the 2^|T| closure coefficients scaled by 2^-|T|; with
//    λ = 2k/ε (k = downward-closure size over the workload's constrained
//    sets) the variance is exactly 2λ² / 2^|T|.
#ifndef PRIVELET_ANALYSIS_MECHANISM_PLANNER_H_
#define PRIVELET_ANALYSIS_MECHANISM_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/plan_record.h"
#include "privelet/query/range_query.h"

namespace privelet::analysis {

/// One scored mechanism option. `id` is a stable identifier ("basic",
/// "privelet", "privelet+ sa={A,B}", "hay", "fourier") — it is what
/// PlanRecord stores and what tests compare, so its format is frozen.
struct MechanismCandidate {
  std::string id;
  /// SA attribute names (schema order); meaningful for the Privelet
  /// family only (empty = pure Haar everywhere).
  std::vector<std::string> sa_names;
  /// Mean exact per-query noise variance over the planning workload.
  double expected_variance = 0.0;
  /// False for candidates that cannot produce a full noisy frequency
  /// matrix through the publish->snapshot pipeline (Fourier releases
  /// marginals, not a matrix); they are ranked for comparison but never
  /// chosen.
  bool publishable = true;
};

/// The planner's decision: candidates sorted by ascending expected
/// variance (ties broken by id, so the ranking is deterministic), with
/// `chosen` = the best publishable one.
struct MechanismPlan {
  MechanismCandidate chosen;
  std::vector<MechanismCandidate> ranked;
  std::size_t workload_queries = 0;

  /// Flattens the decision into release provenance (chosen + next-best
  /// publishable alternative).
  query::PlanRecord ToRecord() const;
};

/// Exact noise variance of `query` under the Basic mechanism (independent
/// Laplace(2/ε) per cell): 8/ε² times the number of covered cells.
Result<double> BasicQueryVariance(const data::Schema& schema, double epsilon,
                                  const query::RangeQuery& query);

/// Exact noise variance of `query` under the Hay hierarchical mechanism
/// (one ordinal attribute only) — adjoint propagation through the
/// two-pass consistency averaging of mechanism/hay.cc.
Result<double> HayQueryVariance(const data::Schema& schema, double epsilon,
                                const query::RangeQuery& query);

/// Downward-closure size of the workload's constrained attribute subsets
/// (the k in the Fourier mechanism's λ = 2k/ε). Requires an all-binary
/// schema. Always >= 1: the empty mask is in every closure.
Result<std::size_t> FourierClosureSize(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload);

/// Exact noise variance of `query` under the Fourier marginal mechanism
/// releasing `closure_size` coefficients: 2(2·closure_size/ε)² / 2^|T|
/// with T = the query's constrained attribute set. Requires an all-binary
/// schema.
Result<double> FourierQueryVariance(const data::Schema& schema, double epsilon,
                                    std::size_t closure_size,
                                    const query::RangeQuery& query);

/// Scores every applicable mechanism against the workload and returns the
/// full ranking. Always includes "basic" and the Privelet family (pure
/// Haar plus the best SA subset from EvaluateAllSaSubsets, d <= 16); adds
/// "hay" on one-ordinal-attribute schemas and "fourier" (rank-only) on
/// all-binary schemas. Deterministic for a fixed (schema, workload, ε).
Result<MechanismPlan> PlanMechanismForWorkload(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload,
    double epsilon);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_MECHANISM_PLANNER_H_
