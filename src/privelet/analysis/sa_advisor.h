// SA-subset advisor: the paper's rule for choosing Privelet+'s SA set
// (Sec. VI-D / Sec. VII-A): place attribute A in SA exactly when
// |A| <= P(A)² · H(A) — i.e. when Basic's per-attribute variance factor is
// no worse than Privelet's, so skipping the wavelet on that axis can only
// tighten Eq. 7.
#ifndef PRIVELET_ANALYSIS_SA_ADVISOR_H_
#define PRIVELET_ANALYSIS_SA_ADVISOR_H_

#include <string>
#include <vector>

#include "privelet/data/schema.h"

namespace privelet::analysis {

/// Names of the attributes the rule places in SA.
std::vector<std::string> AdviseSa(const data::Schema& schema);

/// True iff the rule puts this attribute in SA.
bool BelongsInSa(const data::Attribute& attribute);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_SA_ADVISOR_H_
