// Exact per-query noise variance under Privelet/Privelet+ — a sharper
// utility metric than the worst-case bounds of Theorem 3 (one of the
// paper's stated future-work directions is guarantees for finer utility
// metrics).
//
// The computation is closed-form: a range-count answer is a fixed linear
// combination a^T c of the wavelet coefficients, the injected noise is
// independent per coefficient with variance 2(λ/WHN(c))², WHN is a tensor
// product of per-axis weights, the mean-subtraction refinement is a
// per-axis linear projection, and the contribution vector a is a tensor
// product of per-axis contribution vectors. The variance therefore
// factorizes:
//   Var = 2λ² · Π_axis (a_axis^T P_axis D_axis P_axis^T a_axis)
// with D_axis = diag(1/w_axis[j]²). Each factor is what
// Transform1D::RefinedQuadraticForm computes in O(coefficients) time.
#ifndef PRIVELET_ANALYSIS_QUERY_VARIANCE_H_
#define PRIVELET_ANALYSIS_QUERY_VARIANCE_H_

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::analysis {

/// Exact noise variance of `query`'s answer when the coefficients of
/// `transform` receive independent Laplace noise of magnitude
/// lambda / WHN(c) and the noisy matrix is reconstructed with the
/// transform's refinement. O(sum of per-axis coefficient counts).
Result<double> ExactQueryNoiseVariance(const wavelet::HnTransform& transform,
                                       const data::Schema& schema,
                                       double lambda,
                                       const query::RangeQuery& query);

/// Convenience wrapper: the exact noise variance of `query` under
/// Privelet+ with the given SA set at privacy level epsilon (λ = 2ρ/ε as
/// in the mechanism itself).
Result<double> PriveletPlusQueryVariance(
    const data::Schema& schema, const std::vector<std::string>& sa_names,
    double epsilon, const query::RangeQuery& query);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_QUERY_VARIANCE_H_
