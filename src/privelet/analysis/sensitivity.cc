#include "privelet/analysis/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::analysis {

Result<double> ProbeGeneralizedSensitivity(
    const wavelet::HnTransform& transform,
    const SensitivityProbeOptions& options) {
  if (options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  rng::Xoshiro256pp gen(rng::DeriveSeed(options.seed, 0x5E25));

  matrix::FrequencyMatrix base(transform.input_dims());
  double max_ratio = 0.0;
  for (std::size_t trial = 0; trial < options.num_trials; ++trial) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      base[i] = static_cast<double>(gen.NextUint64InRange(0, 16));
    }
    PRIVELET_ASSIGN_OR_RETURN(wavelet::HnCoefficients before,
                              transform.Forward(base));

    const std::size_t entry = static_cast<std::size_t>(
        gen.NextUint64InRange(0, base.size() - 1));
    base[entry] += options.delta;
    PRIVELET_ASSIGN_OR_RETURN(wavelet::HnCoefficients after,
                              transform.Forward(base));
    base[entry] -= options.delta;

    double weighted_l1 = 0.0;
    const auto& before_values = before.coeffs.values();
    const auto& after_values = after.coeffs.values();
    before.ForEachCoefficient([&](std::size_t flat, double weight) {
      weighted_l1 += weight * std::abs(after_values[flat] - before_values[flat]);
    });
    max_ratio = std::max(max_ratio, weighted_l1 / options.delta);
  }
  return max_ratio;
}

}  // namespace privelet::analysis
