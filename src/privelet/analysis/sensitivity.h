// Empirical generalized-sensitivity probe (Definition 3). Used by the
// property tests to confirm Lemma 2, Lemma 4, and Theorem 2 on concrete
// transforms: perturb single entries of random matrices and measure the
// weighted L1 change of the coefficients.
#ifndef PRIVELET_ANALYSIS_SENSITIVITY_H_
#define PRIVELET_ANALYSIS_SENSITIVITY_H_

#include <cstdint>

#include "privelet/common/result.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::analysis {

struct SensitivityProbeOptions {
  std::size_t num_trials = 32;  ///< random (matrix, entry) pairs probed
  double delta = 1.0;           ///< perturbation size
  std::uint64_t seed = 11;
};

/// Returns the maximum observed Σ_c W(c)·|c(M) - c(M')| / δ over random
/// matrices M and single-entry perturbations M'. For the paper's
/// transforms this is the exact generalized sensitivity (the per-entry
/// change is data-independent), so the probe should match
/// HnTransform::GeneralizedSensitivity() to rounding error.
Result<double> ProbeGeneralizedSensitivity(
    const wavelet::HnTransform& transform,
    const SensitivityProbeOptions& options);

}  // namespace privelet::analysis

#endif  // PRIVELET_ANALYSIS_SENSITIVITY_H_
