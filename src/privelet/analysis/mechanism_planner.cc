#include "privelet/analysis/mechanism_planner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "privelet/analysis/workload_planner.h"
#include "privelet/common/math_util.h"

namespace privelet::analysis {

namespace {

Status CheckPlanningArgs(const data::Schema& schema, double epsilon,
                         const query::RangeQuery& query) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (query.num_attributes() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "query arity does not match the schema");
  }
  return Status::OK();
}

Status CheckBinarySchema(const data::Schema& schema) {
  if (schema.num_attributes() == 0 || schema.num_attributes() >= 30) {
    return Status::InvalidArgument(
        "the Fourier model needs 1..29 attributes");
  }
  for (const data::Attribute& attribute : schema.attributes()) {
    if (attribute.domain_size() != 2) {
      return Status::InvalidArgument(
          "the Fourier model requires binary attributes");
    }
  }
  return Status::OK();
}

/// Attribute-index mask of the query's point-constrained attributes (the
/// marginal subset T answering it on a binary cube).
std::uint64_t ConstrainedMask(const query::RangeQuery& query) {
  std::uint64_t mask = 0;
  for (std::size_t a = 0; a < query.num_attributes(); ++a) {
    const std::optional<query::ValueRange>& range = query.range(a);
    if (range.has_value() && range->width() == 1) {
      mask |= std::uint64_t{1} << a;
    }
  }
  return mask;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ",";
    joined += name;
  }
  return joined;
}

}  // namespace

Result<double> BasicQueryVariance(const data::Schema& schema, double epsilon,
                                  const query::RangeQuery& query) {
  PRIVELET_RETURN_IF_ERROR(CheckPlanningArgs(schema, epsilon, query));
  std::vector<std::size_t> lo, hi;
  query.ResolveBounds(schema, &lo, &hi);
  // Independent per-cell Laplace(2/ε): Var(answer) = #cells · 2(2/ε)².
  double cells = 1.0;
  for (std::size_t axis = 0; axis < lo.size(); ++axis) {
    cells *= static_cast<double>(hi[axis] - lo[axis] + 1);
  }
  return cells * 8.0 / (epsilon * epsilon);
}

Result<double> HayQueryVariance(const data::Schema& schema, double epsilon,
                                const query::RangeQuery& query) {
  PRIVELET_RETURN_IF_ERROR(CheckPlanningArgs(schema, epsilon, query));
  if (schema.num_attributes() != 1 || !schema.attribute(0).is_ordinal()) {
    return Status::InvalidArgument(
        "the Hay model supports exactly one ordinal attribute");
  }
  const std::size_t n = schema.TotalDomainSize();
  const std::size_t padded = NextPowerOfTwo(n);
  const std::size_t levels = FloorLog2(padded) + 1;
  const double lambda = static_cast<double>(levels) / epsilon;

  std::vector<std::size_t> lo, hi;
  query.ResolveBounds(schema, &lo, &hi);

  // The published leaf counts are linear in the iid per-node noise (the
  // consistency passes of hay.cc are linear maps), so the answer is
  // Σ_v c_v · noisy[v] + const and Var = 2λ² Σ_v c_v². The coefficients
  // come from running the two passes backwards: seed the gradient on the
  // requested leaves, reverse pass 2 (top-down averaging), then reverse
  // pass 1 (bottom-up subtree pooling). Same heap layout and α/β weights
  // as the forward code.
  std::vector<double> gh(2 * padded, 0.0);  // d answer / d h[v]
  std::vector<double> gz(2 * padded, 0.0);  // d answer / d z[v]
  std::vector<double> gn(2 * padded, 0.0);  // d answer / d noisy[v]
  for (std::size_t i = lo[0]; i <= hi[0]; ++i) gh[padded + i] = 1.0;

  // Reverse of: h[v] = z[v] + (h[parent] - (z[v] + z[sibling])) / 2 for
  // v ascending 2..2p-1, h[1] = z[1]. Children have larger indices than
  // their parent, so descending order visits every use of h[v] first.
  for (std::size_t v = 2 * padded; v-- > 2;) {
    const double g = gh[v];
    if (g == 0.0) continue;
    gz[v] += 0.5 * g;
    gz[v ^ 1] -= 0.5 * g;
    gh[v / 2] += 0.5 * g;
  }
  gz[1] += gh[1];

  // Reverse of: z[v] = α·noisy[v] + β·(z[2v] + z[2v+1]) for v descending
  // (leaves: z[v] = noisy[v]). Ascending order visits every use of z[v]
  // (by its parent, parent < v) first.
  for (std::size_t v = 1; v < 2 * padded; ++v) {
    const double g = gz[v];
    if (g == 0.0) continue;
    if (v >= padded) {  // leaf
      gn[v] += g;
      continue;
    }
    const std::size_t depth = FloorLog2(v) + 1;
    const std::size_t k = levels - depth + 1;
    const double pow_k = std::ldexp(1.0, static_cast<int>(k));
    const double pow_k1 = std::ldexp(1.0, static_cast<int>(k - 1));
    const double alpha = (pow_k - pow_k1) / (pow_k - 1.0);
    const double beta = (pow_k1 - 1.0) / (pow_k - 1.0);
    gn[v] += alpha * g;
    gz[2 * v] += beta * g;
    gz[2 * v + 1] += beta * g;
  }

  double sum_sq = 0.0;
  for (std::size_t v = 1; v < 2 * padded; ++v) sum_sq += gn[v] * gn[v];
  return 2.0 * lambda * lambda * sum_sq;
}

Result<std::size_t> FourierClosureSize(
    const data::Schema& schema,
    const std::vector<query::RangeQuery>& workload) {
  PRIVELET_RETURN_IF_ERROR(CheckBinarySchema(schema));
  if (workload.empty()) {
    return Status::InvalidArgument("planning workload must be non-empty");
  }
  std::set<std::uint64_t> closure;
  closure.insert(0);  // the total count is always released
  for (const query::RangeQuery& query : workload) {
    if (query.num_attributes() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "query arity does not match the schema");
    }
    const std::uint64_t mask = ConstrainedMask(query);
    std::uint64_t sub = mask;
    while (true) {
      closure.insert(sub);
      if (sub == 0) break;
      sub = (sub - 1) & mask;
    }
  }
  return closure.size();
}

Result<double> FourierQueryVariance(const data::Schema& schema, double epsilon,
                                    std::size_t closure_size,
                                    const query::RangeQuery& query) {
  PRIVELET_RETURN_IF_ERROR(CheckPlanningArgs(schema, epsilon, query));
  PRIVELET_RETURN_IF_ERROR(CheckBinarySchema(schema));
  if (closure_size == 0) {
    return Status::InvalidArgument("closure size must be positive");
  }
  const double lambda = 2.0 * static_cast<double>(closure_size) / epsilon;
  const int arity = __builtin_popcountll(ConstrainedMask(query));
  // One entry of marginal T: 2^|T| closure coefficients, each scaled by
  // 2^-|T|, each carrying independent Laplace(λ) noise.
  return 2.0 * lambda * lambda * std::ldexp(1.0, -arity);
}

query::PlanRecord MechanismPlan::ToRecord() const {
  query::PlanRecord record;
  record.chosen = chosen.id;
  record.predicted_variance = chosen.expected_variance;
  for (const MechanismCandidate& candidate : ranked) {
    if (candidate.publishable && candidate.id != chosen.id) {
      record.runner_up = candidate.id;
      record.runner_up_variance = candidate.expected_variance;
      break;
    }
  }
  record.workload_queries = static_cast<std::uint32_t>(workload_queries);
  return record;
}

Result<MechanismPlan> PlanMechanismForWorkload(
    const data::Schema& schema, const std::vector<query::RangeQuery>& workload,
    double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("planning workload must be non-empty");
  }

  std::vector<MechanismCandidate> candidates;
  auto mean_over_workload =
      [&](auto&& per_query) -> Result<double> {
    double total = 0.0;
    for (const query::RangeQuery& query : workload) {
      PRIVELET_ASSIGN_OR_RETURN(double variance, per_query(query));
      total += variance;
    }
    return total / static_cast<double>(workload.size());
  };

  // Basic: always applicable.
  {
    MechanismCandidate basic;
    basic.id = "basic";
    PRIVELET_ASSIGN_OR_RETURN(
        basic.expected_variance,
        mean_over_workload([&](const query::RangeQuery& q) {
          return BasicQueryVariance(schema, epsilon, q);
        }));
    candidates.push_back(std::move(basic));
  }

  // The Privelet family: the full SA-subset enumeration already scores
  // every subset; surface the pure-Haar release ("privelet", SA = ∅) and
  // the best subset ("privelet+ sa={...}") as candidates.
  {
    PRIVELET_ASSIGN_OR_RETURN(
        std::vector<SaPlan> plans,
        EvaluateAllSaSubsets(schema, workload, epsilon));
    for (const SaPlan& plan : plans) {
      if (plan.sa_names.empty()) {
        MechanismCandidate privelet;
        privelet.id = "privelet";
        privelet.expected_variance = plan.expected_variance;
        candidates.push_back(std::move(privelet));
        break;
      }
    }
    const SaPlan& best = plans.front();
    if (!best.sa_names.empty()) {
      MechanismCandidate plus;
      plus.id = "privelet+ sa={" + JoinNames(best.sa_names) + "}";
      plus.sa_names = best.sa_names;
      plus.expected_variance = best.expected_variance;
      candidates.push_back(std::move(plus));
    }
  }

  // Hay: one ordinal attribute only.
  if (schema.num_attributes() == 1 && schema.attribute(0).is_ordinal()) {
    MechanismCandidate hay;
    hay.id = "hay";
    PRIVELET_ASSIGN_OR_RETURN(
        hay.expected_variance,
        mean_over_workload([&](const query::RangeQuery& q) {
          return HayQueryVariance(schema, epsilon, q);
        }));
    candidates.push_back(std::move(hay));
  }

  // Fourier: binary cubes only, and rank-only — it releases marginals,
  // not a frequency matrix, so the snapshot pipeline cannot publish it.
  if (CheckBinarySchema(schema).ok()) {
    MechanismCandidate fourier;
    fourier.id = "fourier";
    fourier.publishable = false;
    PRIVELET_ASSIGN_OR_RETURN(std::size_t closure,
                              FourierClosureSize(schema, workload));
    PRIVELET_ASSIGN_OR_RETURN(
        fourier.expected_variance,
        mean_over_workload([&](const query::RangeQuery& q) {
          return FourierQueryVariance(schema, epsilon, closure, q);
        }));
    candidates.push_back(std::move(fourier));
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const MechanismCandidate& a, const MechanismCandidate& b) {
              if (a.expected_variance != b.expected_variance) {
                return a.expected_variance < b.expected_variance;
              }
              return a.id < b.id;
            });

  MechanismPlan plan;
  plan.ranked = std::move(candidates);
  plan.workload_queries = workload.size();
  for (const MechanismCandidate& candidate : plan.ranked) {
    if (candidate.publishable) {
      plan.chosen = candidate;
      break;
    }
  }
  PRIVELET_CHECK(!plan.chosen.id.empty(), "no publishable candidate");
  return plan;
}

}  // namespace privelet::analysis
