// Data-independent post-processing of published matrices. Differential
// privacy is closed under post-processing, so none of these operations
// consumes privacy budget; they trade unbiasedness for plausibility
// (non-negative and/or integral counts — the consistency properties Barak
// et al. optimize for, Sec. VIII of the paper).
#ifndef PRIVELET_MECHANISM_POSTPROCESS_H_
#define PRIVELET_MECHANISM_POSTPROCESS_H_

#include "privelet/matrix/frequency_matrix.h"

namespace privelet::mechanism {

/// Clamps every entry to >= 0.
///
/// WARNING: clamping is biased. Each clamped cell gains E[max(0, -noise)]
/// in expectation, so on sparse matrices (m >> n, where most cells are
/// zero plus noise) a range covering k cells drifts upward by Theta(k)
/// times the per-cell noise scale — easily dwarfing the true count. Use
/// it for releases queried at (near-)cell granularity; keep the unbiased
/// raw release when analysts run wide range-count queries. (The paper's
/// mechanisms deliberately publish unbiased, possibly-negative counts;
/// Barak et al., discussed in Sec. VIII, pay a linear program to get
/// non-negativity without this bias.)
void ClampNonNegative(matrix::FrequencyMatrix* m);

/// Rounds every entry to the nearest integer (half away from zero).
void RoundToIntegers(matrix::FrequencyMatrix* m);

/// Rescales all entries by a common factor so they sum to `target_total`
/// (e.g. a publicly known population size). No-op if the current total is
/// not positive.
void ScaleToTotal(matrix::FrequencyMatrix* m, double target_total);

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_POSTPROCESS_H_
