#include "privelet/mechanism/fourier_marginals.h"

#include <algorithm>
#include <set>

#include "privelet/common/check.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {

namespace {

// Parity of the bits of v (0 or 1).
inline int Parity(std::uint64_t v) { return __builtin_parityll(v); }

}  // namespace

void WalshHadamardTransform(std::vector<double>* values) {
  const std::size_t n = values->size();
  PRIVELET_CHECK(n != 0 && (n & (n - 1)) == 0, "WHT needs a 2^d vector");
  auto& v = *values;
  for (std::size_t half = 1; half < n; half <<= 1) {
    for (std::size_t block = 0; block < n; block += 2 * half) {
      for (std::size_t i = block; i < block + half; ++i) {
        const double a = v[i];
        const double b = v[i + half];
        v[i] = a + b;
        v[i + half] = a - b;
      }
    }
  }
}

FourierMarginalMechanism::FourierMarginalMechanism(
    std::vector<std::vector<std::size_t>> marginal_sets)
    : marginal_sets_(std::move(marginal_sets)) {
  // Downward closure of the requested subsets, as attribute-index masks.
  std::set<std::uint64_t> closure;
  for (const auto& attributes : marginal_sets_) {
    std::uint64_t mask = 0;
    for (std::size_t a : attributes) {
      PRIVELET_CHECK(a < 64, "attribute index too large");
      mask |= std::uint64_t{1} << a;
    }
    // Enumerate all submasks of `mask` (including 0 and mask itself).
    std::uint64_t sub = mask;
    while (true) {
      closure.insert(sub);
      if (sub == 0) break;
      sub = (sub - 1) & mask;
    }
  }
  closure_.assign(closure.begin(), closure.end());
}

Result<std::vector<Marginal>> FourierMarginalMechanism::Publish(
    const matrix::FrequencyMatrix& m, double epsilon,
    std::uint64_t seed) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t d = m.num_dims();
  for (std::size_t axis = 0; axis < d; ++axis) {
    if (m.dim(axis) != 2) {
      return Status::InvalidArgument(
          "the Fourier marginal mechanism requires binary attributes");
    }
  }
  if (d >= 30) {
    return Status::InvalidArgument("too many attributes (2^d cells)");
  }
  for (const auto& attributes : marginal_sets_) {
    if (attributes.empty()) {
      return Status::InvalidArgument("empty marginal subset");
    }
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i] >= d ||
          (i > 0 && attributes[i] <= attributes[i - 1])) {
        return Status::InvalidArgument(
            "marginal subsets must be ascending in-range attribute indices");
      }
    }
  }

  // Full Walsh-Hadamard transform of the frequency vector. Axis a of the
  // row-major matrix corresponds to bit (d-1-a) of the flat index.
  std::vector<double> fhat(m.values().begin(), m.values().end());
  WalshHadamardTransform(&fhat);
  auto flat_mask_of = [d](std::uint64_t attribute_mask) {
    std::uint64_t flat = 0;
    for (std::size_t a = 0; a < d; ++a) {
      if (attribute_mask & (std::uint64_t{1} << a)) {
        flat |= std::uint64_t{1} << (d - 1 - a);
      }
    }
    return flat;
  };

  // Release exactly the closure coefficients with calibrated noise; all
  // other coefficients stay private and unused.
  const double lambda =
      2.0 * static_cast<double>(closure_.size()) / epsilon;
  rng::Xoshiro256pp gen(rng::DeriveSeed(seed, 0xF0C5));
  std::vector<double> released(closure_.size());
  for (std::size_t i = 0; i < closure_.size(); ++i) {
    released[i] =
        fhat[flat_mask_of(closure_[i])] + rng::SampleLaplace(gen, lambda);
  }
  auto released_value = [&](std::uint64_t attribute_mask) {
    const auto it = std::lower_bound(closure_.begin(), closure_.end(),
                                     attribute_mask);
    PRIVELET_CHECK(it != closure_.end() && *it == attribute_mask,
                   "coefficient not in closure");
    return released[static_cast<std::size_t>(it - closure_.begin())];
  };

  // Reconstruct each marginal from the shared noisy coefficients:
  //   marginal_S(y) = 2^-|S| * sum_{alpha subset S} fhat_alpha chi_alpha(y).
  std::vector<Marginal> marginals;
  marginals.reserve(marginal_sets_.size());
  for (const auto& attributes : marginal_sets_) {
    std::uint64_t s_mask = 0;
    for (std::size_t a : attributes) s_mask |= std::uint64_t{1} << a;
    const std::size_t arity = attributes.size();
    Marginal marginal;
    marginal.attributes = attributes;
    marginal.counts.assign(std::size_t{1} << arity, 0.0);
    for (std::size_t y = 0; y < marginal.counts.size(); ++y) {
      // Expand the packed marginal cell y to an attribute-mask of the
      // attributes set to 1.
      std::uint64_t y_mask = 0;
      for (std::size_t i = 0; i < arity; ++i) {
        if (y & (std::size_t{1} << i)) {
          y_mask |= std::uint64_t{1} << attributes[i];
        }
      }
      double sum = 0.0;
      std::uint64_t alpha = s_mask;
      while (true) {
        const double sign = Parity(alpha & y_mask) ? -1.0 : 1.0;
        sum += sign * released_value(alpha);
        if (alpha == 0) break;
        alpha = (alpha - 1) & s_mask;
      }
      marginal.counts[y] =
          sum / static_cast<double>(std::size_t{1} << arity);
    }
    marginals.push_back(std::move(marginal));
  }
  return marginals;
}

Result<double> FourierMarginalMechanism::MarginalEntryVarianceBound(
    std::size_t num_dims, std::size_t marginal_arity, double epsilon) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (marginal_arity > num_dims) {
    return Status::InvalidArgument("marginal arity exceeds dimensionality");
  }
  // Entry = 2^-|S| * (sum of 2^|S| independent Laplace(2k/eps) noises).
  const double k = static_cast<double>(closure_.size());
  const double lambda = 2.0 * k / epsilon;
  const double coeff_count =
      static_cast<double>(std::size_t{1} << marginal_arity);
  return coeff_count * 2.0 * lambda * lambda / (coeff_count * coeff_count);
}

}  // namespace privelet::mechanism
