#include "privelet/mechanism/postprocess.h"

#include <cmath>

namespace privelet::mechanism {

void ClampNonNegative(matrix::FrequencyMatrix* m) {
  for (double& v : m->values()) {
    if (v < 0.0) v = 0.0;
  }
}

void RoundToIntegers(matrix::FrequencyMatrix* m) {
  for (double& v : m->values()) v = std::round(v);
}

void ScaleToTotal(matrix::FrequencyMatrix* m, double target_total) {
  const double total = m->Total();
  if (total <= 0.0) return;
  const double scale = target_total / total;
  for (double& v : m->values()) v *= scale;
}

}  // namespace privelet::mechanism
