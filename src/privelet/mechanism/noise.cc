#include "privelet/mechanism/noise.h"

#include <vector>

#include "privelet/common/check.h"
#include "privelet/rng/distributions.h"

namespace privelet::mechanism {

void ForEachNoiseShard(
    std::size_t total, std::uint64_t noise_seed, common::ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, rng::Xoshiro256pp&)>&
        body) {
  if (total == 0) return;
  const std::size_t shards = NumNoiseShards(total);
  // The streams are materialized up front (a Jump is ~256 state steps, a
  // few percent of the 8192 draws a full shard makes) so the parallel
  // phase touches only its own generator.
  std::vector<rng::Xoshiro256pp> streams =
      rng::MakeJumpStreams(noise_seed, shards);
  common::ParallelFor(pool, total, kNoiseShardSize,
                      [&](std::size_t begin, std::size_t end) {
                        body(begin, end, streams[begin / kNoiseShardSize]);
                      });
}

double NoiseStreamCursor::LaplaceAt(std::size_t index, double magnitude) {
  PRIVELET_DCHECK(magnitude > 0.0, "cursor draws require magnitude > 0");
  const std::size_t shard = index / kNoiseShardSize;
  if (shard != shard_ || index < next_index_) {
    PRIVELET_DCHECK(shard < streams_.size(), "index beyond the stream space");
    gen_ = streams_[shard];
    shard_ = shard;
    next_index_ = shard * kNoiseShardSize;
  }
  // Discard the draws of the skipped indices: one 64-bit step each
  // (SampleLaplace consumes exactly one NextDoubleOpenZero = one Next()).
  while (next_index_ < index) {
    gen_.Next();
    ++next_index_;
  }
  ++next_index_;
  return rng::SampleLaplace(gen_, magnitude);
}

void NoiseStreamCursor::UnitLaplaceRun(std::size_t index, std::size_t count,
                                       double* out,
                                       const simd::KernelTable& kernels) {
  std::size_t done = 0;
  while (done < count) {
    const std::size_t i = index + done;
    const std::size_t shard = i / kNoiseShardSize;
    if (shard != shard_ || i < next_index_) {
      PRIVELET_DCHECK(shard < streams_.size(),
                      "index beyond the stream space");
      gen_ = streams_[shard];
      shard_ = shard;
      next_index_ = shard * kNoiseShardSize;
    }
    while (next_index_ < i) {
      gen_.Next();
      ++next_index_;
    }
    const std::size_t shard_end = (shard + 1) * kNoiseShardSize;
    const std::size_t run = std::min(count - done, shard_end - i);
    rng::SampleLaplaceUnitBatch(gen_, out + done, run, kernels);
    next_index_ += run;
    done += run;
  }
}

void AddLaplaceNoise(std::span<double> values, double magnitude,
                     std::uint64_t noise_seed, common::ThreadPool* pool,
                     simd::IsaChoice isa) {
  PRIVELET_CHECK(magnitude >= 0.0, "Laplace magnitude must be >= 0");
  if (magnitude == 0.0) {
    // Degenerate case: SampleLaplace(gen, 0) consumes nothing and returns
    // +0.0, whose addition still normalizes any -0.0 entries. Preserved
    // as-is, outside the batched path.
    ForEachNoiseShard(values.size(), noise_seed, pool,
                      [values](std::size_t begin, std::size_t end,
                               rng::Xoshiro256pp& gen) {
                        (void)gen;
                        for (std::size_t i = begin; i < end; ++i) {
                          values[i] += 0.0;
                        }
                      });
    return;
  }
  const simd::KernelTable& kernels = simd::Kernels(simd::ResolveIsa(isa));
  ForEachNoiseShard(
      values.size(), noise_seed, pool,
      [values, magnitude, &kernels](std::size_t begin, std::size_t end,
                                    rng::Xoshiro256pp& gen) {
        // Per-block staging: unit draws from the shard's stream, then one
        // rounding per element at the final scale — the exact bits of
        // values[i] += SampleLaplace(gen, magnitude).
        constexpr std::size_t kBlock = 512;
        double unit[kBlock];
        for (std::size_t i = begin; i < end; i += kBlock) {
          const std::size_t run = std::min(kBlock, end - i);
          rng::SampleLaplaceUnitBatch(gen, unit, run, kernels);
          kernels.row_add_scaled(values.data() + i, unit, magnitude, run);
        }
      });
}

}  // namespace privelet::mechanism
