#include "privelet/mechanism/noise.h"

#include <vector>

#include "privelet/common/check.h"
#include "privelet/rng/distributions.h"

namespace privelet::mechanism {

void ForEachNoiseShard(
    std::size_t total, std::uint64_t noise_seed, common::ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, rng::Xoshiro256pp&)>&
        body) {
  if (total == 0) return;
  const std::size_t shards = NumNoiseShards(total);
  // The streams are materialized up front (a Jump is ~256 state steps, a
  // few percent of the 8192 draws a full shard makes) so the parallel
  // phase touches only its own generator.
  std::vector<rng::Xoshiro256pp> streams =
      rng::MakeJumpStreams(noise_seed, shards);
  common::ParallelFor(pool, total, kNoiseShardSize,
                      [&](std::size_t begin, std::size_t end) {
                        body(begin, end, streams[begin / kNoiseShardSize]);
                      });
}

double NoiseStreamCursor::LaplaceAt(std::size_t index, double magnitude) {
  PRIVELET_DCHECK(magnitude > 0.0, "cursor draws require magnitude > 0");
  const std::size_t shard = index / kNoiseShardSize;
  if (shard != shard_ || index < next_index_) {
    PRIVELET_DCHECK(shard < streams_.size(), "index beyond the stream space");
    gen_ = streams_[shard];
    shard_ = shard;
    next_index_ = shard * kNoiseShardSize;
  }
  // Discard the draws of the skipped indices: one 64-bit step each
  // (SampleLaplace consumes exactly one NextDoubleOpenZero = one Next()).
  while (next_index_ < index) {
    gen_.Next();
    ++next_index_;
  }
  ++next_index_;
  return rng::SampleLaplace(gen_, magnitude);
}

void AddLaplaceNoise(std::span<double> values, double magnitude,
                     std::uint64_t noise_seed, common::ThreadPool* pool) {
  ForEachNoiseShard(
      values.size(), noise_seed, pool,
      [values, magnitude](std::size_t begin, std::size_t end,
                          rng::Xoshiro256pp& gen) {
        for (std::size_t i = begin; i < end; ++i) {
          values[i] += rng::SampleLaplace(gen, magnitude);
        }
      });
}

}  // namespace privelet::mechanism
