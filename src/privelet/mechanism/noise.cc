#include "privelet/mechanism/noise.h"

#include <vector>

#include "privelet/rng/distributions.h"

namespace privelet::mechanism {

void ForEachNoiseShard(
    std::size_t total, std::uint64_t noise_seed, common::ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, rng::Xoshiro256pp&)>&
        body) {
  if (total == 0) return;
  const std::size_t shards = (total + kNoiseShardSize - 1) / kNoiseShardSize;
  // The streams are materialized up front (a Jump is ~256 state steps, a
  // few percent of the 8192 draws a full shard makes) so the parallel
  // phase touches only its own generator.
  std::vector<rng::Xoshiro256pp> streams =
      rng::MakeJumpStreams(noise_seed, shards);
  common::ParallelFor(pool, total, kNoiseShardSize,
                      [&](std::size_t begin, std::size_t end) {
                        body(begin, end, streams[begin / kNoiseShardSize]);
                      });
}

void AddLaplaceNoise(std::span<double> values, double magnitude,
                     std::uint64_t noise_seed, common::ThreadPool* pool) {
  ForEachNoiseShard(
      values.size(), noise_seed, pool,
      [values, magnitude](std::size_t begin, std::size_t end,
                          rng::Xoshiro256pp& gen) {
        for (std::size_t i = begin; i < end; ++i) {
          values[i] += rng::SampleLaplace(gen, magnitude);
        }
      });
}

}  // namespace privelet::mechanism
