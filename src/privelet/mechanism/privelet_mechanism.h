// Privelet and Privelet+ (paper Secs. IV-VI, Fig. 5).
//
// Privelet+ takes a subset SA of the attributes: the frequency matrix is
// conceptually divided into sub-matrices along the SA dimensions and the
// HN wavelet transform is applied to each sub-matrix. We realize this by
// running the HN transform with the identity 1-D transform on every SA
// axis (see IdentityTransform), which is algebraically the same thing and
// gives one code path for Privelet (SA = ∅), every hybrid, and the
// degenerate SA = all-attributes case (which coincides with Basic).
//
// Given ε, the Laplace magnitude is calibrated as λ = 2ρ/ε where
// ρ = Π_{A ∉ SA} P(A) is the HN transform's generalized sensitivity
// (Theorem 2 + Lemma 1, Corollary 1); coefficient c receives noise of
// magnitude λ / WHN(c).
#ifndef PRIVELET_MECHANISM_PRIVELET_MECHANISM_H_
#define PRIVELET_MECHANISM_PRIVELET_MECHANISM_H_

#include <string>
#include <vector>

#include "privelet/mechanism/mechanism.h"
#include "privelet/wavelet/hn_transform.h"

namespace privelet::mechanism {

class PriveletPlusMechanism : public Mechanism {
 public:
  /// `sa_names`: names of the attributes in SA (may be empty). Unknown
  /// names are reported at Publish time.
  explicit PriveletPlusMechanism(std::vector<std::string> sa_names = {});

  std::string_view name() const override { return name_; }

  Result<matrix::FrequencyMatrix> Publish(
      const data::Schema& schema, const matrix::FrequencyMatrix& m,
      double epsilon, std::uint64_t seed) const override;

  /// Eq. 7: 8/ε² · Π_{A∈SA} |A| · Π_{A∉SA} P(A)²·H(A).
  Result<double> NoiseVarianceBound(const data::Schema& schema,
                                    double epsilon) const override;

  /// The Laplace magnitude λ = 2ρ/ε used at this ε for this schema.
  Result<double> LaplaceMagnitude(const data::Schema& schema,
                                  double epsilon) const;

  const std::vector<std::string>& sa_names() const { return sa_names_; }

  /// Resolves SA names to attribute indices for `schema`.
  Result<std::vector<std::size_t>> ResolveSa(const data::Schema& schema) const;

 private:
  std::vector<std::string> sa_names_;
  std::string name_;
};

/// Privelet proper: Privelet+ with SA = ∅ (paper Secs. IV-VI).
class PriveletMechanism final : public PriveletPlusMechanism {
 public:
  PriveletMechanism()
      : PriveletPlusMechanism(std::vector<std::string>{}) {}
};

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_PRIVELET_MECHANISM_H_
