#include "privelet/mechanism/basic.h"

#include <span>

#include "privelet/mechanism/noise.h"
#include "privelet/rng/splitmix64.h"

namespace privelet::mechanism {

Status CheckPublishArgs(const data::Schema& schema,
                        const matrix::FrequencyMatrix& m, double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (m.dims() != schema.DomainSizes()) {
    return Status::InvalidArgument(
        "frequency matrix dims do not match the schema");
  }
  return Status::OK();
}

Result<matrix::FrequencyMatrix> BasicMechanism::Publish(
    const data::Schema& schema, const matrix::FrequencyMatrix& m,
    double epsilon, std::uint64_t seed) const {
  PRIVELET_RETURN_IF_ERROR(CheckPublishArgs(schema, m, epsilon));
  // Sensitivity of the frequency matrix is 2 (one tuple change moves two
  // entries by one each), so Laplace magnitude 2/ε gives ε-DP (Theorem 1).
  const double lambda = 2.0 / epsilon;
  matrix::FrequencyMatrix noisy = m;
  AddLaplaceNoise(noisy.values(), lambda, rng::DeriveSeed(seed, 0xBA51C),
                  thread_pool(), engine_options().isa);
  return noisy;
}

Result<double> BasicMechanism::NoiseVarianceBound(const data::Schema& schema,
                                                  double epsilon) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const double m = static_cast<double>(schema.TotalDomainSize());
  return 8.0 * m / (epsilon * epsilon);
}

}  // namespace privelet::mechanism
