// Basic: Dwork et al.'s method (paper Sec. II-B) — add independent
// Laplace(2/ε) noise to every frequency-matrix entry. The per-entry noise
// variance is 8/ε², so a query covering k entries carries noise variance
// 8k/ε² — Θ(m/ε²) in the worst case. This is the baseline the paper
// compares against; it is implemented independently of the wavelet stack.
#ifndef PRIVELET_MECHANISM_BASIC_H_
#define PRIVELET_MECHANISM_BASIC_H_

#include "privelet/mechanism/mechanism.h"

namespace privelet::mechanism {

class BasicMechanism final : public Mechanism {
 public:
  BasicMechanism() = default;

  std::string_view name() const override { return "Basic"; }

  Result<matrix::FrequencyMatrix> Publish(
      const data::Schema& schema, const matrix::FrequencyMatrix& m,
      double epsilon, std::uint64_t seed) const override;

  /// 8m/ε² (each of up to m covered entries contributes 2·(2/ε)²).
  Result<double> NoiseVarianceBound(const data::Schema& schema,
                                    double epsilon) const override;
};

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_BASIC_H_
