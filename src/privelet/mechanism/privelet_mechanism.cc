#include "privelet/mechanism/privelet_mechanism.h"

#include "privelet/common/residency.h"
#include "privelet/mechanism/noise.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/simd/kernels.h"

namespace privelet::mechanism {

PriveletPlusMechanism::PriveletPlusMechanism(std::vector<std::string> sa_names)
    : sa_names_(std::move(sa_names)) {
  if (sa_names_.empty()) {
    name_ = "Privelet";
  } else {
    name_ = "Privelet+{";
    for (std::size_t i = 0; i < sa_names_.size(); ++i) {
      if (i > 0) name_ += ",";
      name_ += sa_names_[i];
    }
    name_ += "}";
  }
}

Result<std::vector<std::size_t>> PriveletPlusMechanism::ResolveSa(
    const data::Schema& schema) const {
  std::vector<std::size_t> axes;
  axes.reserve(sa_names_.size());
  for (const std::string& name : sa_names_) {
    PRIVELET_ASSIGN_OR_RETURN(std::size_t axis, schema.FindAttribute(name));
    axes.push_back(axis);
  }
  return axes;
}

Result<double> PriveletPlusMechanism::LaplaceMagnitude(
    const data::Schema& schema, double epsilon) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  PRIVELET_ASSIGN_OR_RETURN(std::vector<std::size_t> sa, ResolveSa(schema));
  PRIVELET_ASSIGN_OR_RETURN(wavelet::HnTransform transform,
                            wavelet::HnTransform::Create(schema, sa));
  // Lemma 1: magnitude 2ρ/ε over weight W(c) yields ε-DP.
  return 2.0 * transform.GeneralizedSensitivity() / epsilon;
}

Result<matrix::FrequencyMatrix> PriveletPlusMechanism::Publish(
    const data::Schema& schema, const matrix::FrequencyMatrix& m,
    double epsilon, std::uint64_t seed) const {
  PRIVELET_RETURN_IF_ERROR(CheckPublishArgs(schema, m, epsilon));
  PRIVELET_ASSIGN_OR_RETURN(std::vector<std::size_t> sa, ResolveSa(schema));
  PRIVELET_ASSIGN_OR_RETURN(wavelet::HnTransform transform,
                            wavelet::HnTransform::Create(schema, sa));
  const double lambda =
      2.0 * transform.GeneralizedSensitivity() / epsilon;

  common::ThreadPool* pool = thread_pool();
  const matrix::EngineOptions& options = engine_options();
  const std::uint64_t noise_seed = rng::DeriveSeed(seed, 0x9121E7);

  // Step 1: wavelet transform.
  PRIVELET_ASSIGN_OR_RETURN(wavelet::HnCoefficients coefficients,
                            transform.Forward(m, pool, options));

  // Steps 2+3: Laplace noise of magnitude λ / WHN(c) per coefficient,
  // then refine (mean subtraction on nominal axes, inside Inverse) and
  // reconstruct the noisy frequency matrix. The draw at a coefficient
  // depends only on (seed, flat index) — fixed kNoiseShardSize-wide shards
  // on per-shard jump streams, see mechanism/noise.h — so the release is
  // bit-identical whatever the pool, engine, or tile size.
  const std::span<double> values = coefficients.coeffs.values();

  if (options.engine == matrix::LineEngine::kNaive) {
    // Reference path: a separate full-matrix noise sweep before Inverse.
    // The sweep walks the (possibly scratch-backed) coefficient matrix
    // once in flat order, so release-behind pacing applies here too.
    common::ResidencyGovernor governor(
        options.max_memory_bytes,
        [&coefficients] { coefficients.coeffs.ReleaseResidency(); });
    ForEachNoiseShard(
        values.size(), noise_seed, pool,
        [&](std::size_t begin, std::size_t end, rng::Xoshiro256pp& gen) {
          coefficients.ForEachCoefficientInRange(
              begin, end, [&](std::size_t flat, double weight) {
                values[flat] += rng::SampleLaplace(gen, lambda / weight);
              });
          governor.OnBytesProcessed((end - begin) * sizeof(double));
        });
    return transform.Inverse(coefficients, pool, options);
  }

  // Tiled engine: fuse the injection into the first Inverse axis pass —
  // each worker perturbs its coefficient panels while they are cache-hot,
  // drawing through a cursor that reproduces the sharded stream scheme
  // index-for-index.
  const std::vector<rng::Xoshiro256pp> streams =
      rng::MakeJumpStreams(noise_seed, NumNoiseShards(values.size()));
  const simd::KernelTable& kernels =
      simd::Kernels(simd::ResolveIsa(options.isa));
  const wavelet::PanelNoiseFactory noise_factory = [&]() {
    // Both cursors advance monotonically across the chunk's panels. The
    // unit buffer grows to the chunk's panel size on the first call and is
    // reused after that. Batching changes no bits: the per-index draw is
    // (lambda/weight) * unit = one rounding of the same real product
    // LaplaceAt evaluates (see NoiseStreamCursor::UnitLaplaceRun).
    return [lambda, &kernels, draws = NoiseStreamCursor(streams),
            weights = wavelet::HnWeightCursor(coefficients),
            unit = std::vector<double>()](
               std::size_t begin, std::size_t end, double* panel) mutable {
      if (unit.size() < end - begin) unit.resize(end - begin);
      draws.UnitLaplaceRun(begin, end - begin, unit.data(), kernels);
      weights.ForEachInRange(
          begin, end, [&](std::size_t flat, double weight) {
            panel[flat - begin] += (lambda / weight) * unit[flat - begin];
          });
    };
  };
  return transform.Inverse(coefficients, pool, options, noise_factory);
}

Result<double> PriveletPlusMechanism::NoiseVarianceBound(
    const data::Schema& schema, double epsilon) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  PRIVELET_ASSIGN_OR_RETURN(std::vector<std::size_t> sa, ResolveSa(schema));
  PRIVELET_ASSIGN_OR_RETURN(wavelet::HnTransform transform,
                            wavelet::HnTransform::Create(schema, sa));
  // Theorem 3 with σ² = 2λ² (Laplace variance), λ = 2ρ/ε. Identity axes
  // contribute P = 1 and H = |A|, which reproduces Eq. 7 exactly.
  const double rho = transform.GeneralizedSensitivity();
  const double sigma_sq = 2.0 * (2.0 * rho / epsilon) * (2.0 * rho / epsilon);
  return sigma_sq * transform.VarianceBoundFactor();
}

}  // namespace privelet::mechanism
