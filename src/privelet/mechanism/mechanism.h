// Mechanism: the interface of an ε-differentially-private data-publishing
// algorithm. A mechanism consumes a table's frequency matrix and produces a
// noisy frequency matrix of the same shape; all range-count queries are
// then answered from the noisy matrix.
#ifndef PRIVELET_MECHANISM_MECHANISM_H_
#define PRIVELET_MECHANISM_MECHANISM_H_

#include <cstdint>
#include <string_view>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::common {
class ThreadPool;
}  // namespace privelet::common

namespace privelet::mechanism {

/// Interface of a publishing mechanism. Implementations are stateless
/// apart from the two performance knobs below (pool, engine options);
/// Publish is const and may be called concurrently (see README,
/// "Threading model").
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Stable identifier of the mechanism (e.g. "Privelet+{Gender}") —
  /// what ReleaseMetadata and PVLS snapshots record as provenance.
  virtual std::string_view name() const = 0;

  /// Optional worker pool used by Publish implementations for internal
  /// parallelism (transform fan-out, sharded noise). Not owned; must
  /// outlive every Publish call. Publish output is bit-identical for a
  /// given seed whatever the pool — nullptr (serial, the default) and any
  /// pool size produce the same matrix — so threading is purely a
  /// performance knob.
  void set_thread_pool(common::ThreadPool* pool) { thread_pool_ = pool; }
  common::ThreadPool* thread_pool() const { return thread_pool_; }

  /// Line-engine selection for the transform/prefix passes inside Publish
  /// (see matrix/engine.h). Like the thread pool, purely a performance
  /// knob: for a given seed the published matrix is bit-identical across
  /// engines and tile sizes. Mechanisms without multi-dimensional line
  /// passes (Basic's flat noise sweep, Hay's 1-D tree) ignore it.
  void set_engine_options(const matrix::EngineOptions& options) {
    engine_options_ = options;
  }
  const matrix::EngineOptions& engine_options() const {
    return engine_options_;
  }

  /// Publishes a noisy version of `m` (dims must equal the schema's domain
  /// sizes) satisfying `epsilon`-differential privacy. Deterministic in
  /// `seed`. epsilon must be > 0.
  virtual Result<matrix::FrequencyMatrix> Publish(
      const data::Schema& schema, const matrix::FrequencyMatrix& m,
      double epsilon, std::uint64_t seed) const = 0;

  /// Worst-case noise variance of a single range-count query answered from
  /// the published matrix (the paper's utility bound for this mechanism at
  /// this ε). Used by the analysis module and the ablation benches.
  virtual Result<double> NoiseVarianceBound(const data::Schema& schema,
                                            double epsilon) const = 0;

 private:
  common::ThreadPool* thread_pool_ = nullptr;
  matrix::EngineOptions engine_options_;
};

/// Validates the common Publish preconditions; shared by implementations.
Status CheckPublishArgs(const data::Schema& schema,
                        const matrix::FrequencyMatrix& m, double epsilon);

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_MECHANISM_H_
