// Barak et al.'s Fourier-domain marginal release ("Privacy, accuracy, and
// consistency too", PODS 2007) — the framework the paper's related work
// contrasts Privelet against (Sec. VIII): same transform-noise-invert
// shape, but optimized for *marginals* (projections of the frequency
// matrix onto attribute subsets) instead of range-count queries.
//
// Scope: binary-attribute contingency tables (the setting of the original
// paper; m = 2^d). The frequency vector f over {0,1}^d is transformed by
// the Walsh-Hadamard characters chi_alpha(x) = (-1)^(alpha . x):
//
//   fhat_alpha = sum_x f(x) * chi_alpha(x).
//
// A marginal over attribute subset S depends only on {fhat_alpha :
// alpha subset of S}, so releasing the downward closure of the requested
// marginal subsets with Laplace noise yields every requested marginal,
// and — because all marginals are derived from the same noisy
// coefficients — they are mutually consistent (sum of any marginal equals
// the noisy total, shared sub-marginals agree). One tuple change moves
// every fhat_alpha by at most 2, so releasing k coefficients with
// Laplace(2k/eps) noise each is eps-differentially private.
//
// Deviation from Barak et al.: we omit their linear program that restores
// non-negativity/integrality (it needs an LP over all 2^d cells, which
// the paper criticizes as impractical for large m); the released
// marginals here are unbiased but may contain negative entries.
#ifndef PRIVELET_MECHANISM_FOURIER_MARGINALS_H_
#define PRIVELET_MECHANISM_FOURIER_MARGINALS_H_

#include <cstdint>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::mechanism {

/// One released marginal: the projection of the (noisy) frequency matrix
/// onto `attributes`, with counts[y] indexed by the packed bits of the
/// attribute values (attributes[0] is the least significant bit).
struct Marginal {
  std::vector<std::size_t> attributes;  ///< ascending attribute indices
  std::vector<double> counts;           ///< size 2^attributes.size()
};

/// In-place Walsh-Hadamard transform of a length-2^d vector (unnormalized;
/// applying it twice multiplies by 2^d). Exposed for tests and analysis.
void WalshHadamardTransform(std::vector<double>* values);

class FourierMarginalMechanism {
 public:
  /// `marginal_sets`: the attribute subsets whose marginals to release
  /// (e.g. {{0,1},{1,2}} for two 2-way marginals). Subsets must be
  /// non-empty with ascending in-range indices.
  explicit FourierMarginalMechanism(
      std::vector<std::vector<std::size_t>> marginal_sets);

  /// Publishes the requested marginals of `m` (which must be a 2x2x...x2
  /// matrix — d binary attributes) under epsilon-DP. Deterministic in
  /// `seed`.
  Result<std::vector<Marginal>> Publish(const matrix::FrequencyMatrix& m,
                                        double epsilon,
                                        std::uint64_t seed) const;

  /// Number of Fourier coefficients released (the downward-closure size);
  /// the per-coefficient Laplace magnitude is 2 * this / epsilon.
  std::size_t NumReleasedCoefficients() const { return closure_.size(); }

  /// Worst-case noise variance of a single marginal entry of a
  /// |S|-attribute marginal at the given epsilon: each entry averages
  /// 2^(d-|S|) cells, i.e. sums 2^|S| coefficients scaled by 2^-|S|.
  Result<double> MarginalEntryVarianceBound(std::size_t num_dims,
                                            std::size_t marginal_arity,
                                            double epsilon) const;

 private:
  std::vector<std::vector<std::size_t>> marginal_sets_;
  std::vector<std::uint64_t> closure_;  ///< released alpha masks, sorted
};

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_FOURIER_MARGINALS_H_
