// Hay et al.'s hierarchical mechanism ("Boosting the accuracy of
// differentially-private queries through consistency", 2009) — the
// independent contemporaneous approach discussed in the paper's related
// work (Sec. VIII). Implemented here as an extension baseline for
// one-dimensional ordinal data: noisy counts are published for every node
// of a binary interval tree over the (power-of-two padded) domain, then a
// two-pass weighted-averaging step enforces parent = sum(children)
// consistency, which provably minimizes L2 error among linear unbiased
// estimates.
//
// Privacy: one tuple affects one node per tree level, so per-node noise
// Laplace(h/ε), h = number of levels, yields ε-DP.
#ifndef PRIVELET_MECHANISM_HAY_H_
#define PRIVELET_MECHANISM_HAY_H_

#include "privelet/mechanism/mechanism.h"

namespace privelet::mechanism {

class HayHierarchicalMechanism final : public Mechanism {
 public:
  HayHierarchicalMechanism() = default;

  std::string_view name() const override { return "Hay"; }

  /// Only one-dimensional schemas with a single ordinal attribute are
  /// supported (the published algorithm is one-dimensional; the paper
  /// makes the same point when comparing, Sec. VIII).
  Result<matrix::FrequencyMatrix> Publish(
      const data::Schema& schema, const matrix::FrequencyMatrix& m,
      double epsilon, std::uint64_t seed) const override;

  /// O(h³/ε²) bound: a range decomposes into <= 2h tree nodes, each with
  /// post-consistency noise variance at most 2(h/ε)² — we report
  /// 2h · 2(h/ε)² = 4h³/ε² (consistency only tightens this).
  Result<double> NoiseVarianceBound(const data::Schema& schema,
                                    double epsilon) const override;
};

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_HAY_H_
