#include "privelet/mechanism/hay.h"

#include <cmath>
#include <span>
#include <vector>

#include "privelet/common/math_util.h"
#include "privelet/mechanism/noise.h"
#include "privelet/rng/splitmix64.h"

namespace privelet::mechanism {

namespace {

Status CheckOneDimensionalOrdinal(const data::Schema& schema) {
  if (schema.num_attributes() != 1 || !schema.attribute(0).is_ordinal()) {
    return Status::InvalidArgument(
        "the Hay hierarchical mechanism supports exactly one ordinal "
        "attribute");
  }
  return Status::OK();
}

}  // namespace

Result<matrix::FrequencyMatrix> HayHierarchicalMechanism::Publish(
    const data::Schema& schema, const matrix::FrequencyMatrix& m,
    double epsilon, std::uint64_t seed) const {
  PRIVELET_RETURN_IF_ERROR(CheckPublishArgs(schema, m, epsilon));
  PRIVELET_RETURN_IF_ERROR(CheckOneDimensionalOrdinal(schema));

  const std::size_t n = m.size();
  const std::size_t padded = NextPowerOfTwo(n);
  const std::size_t levels = FloorLog2(padded) + 1;  // tree height h

  // Complete binary tree in heap layout: node 1 is the root; leaves are
  // nodes [padded, 2*padded).
  std::vector<double> true_count(2 * padded, 0.0);
  for (std::size_t i = 0; i < n; ++i) true_count[padded + i] = m[i];
  for (std::size_t v = padded; v-- > 1;) {
    true_count[v] = true_count[2 * v] + true_count[2 * v + 1];
  }

  // Uniform budget split: each level gets ε/h, i.e. Laplace(h/ε) per node.
  // Sharded per-node noise (node 1 = shard offset 0, matching the old
  // serial draw order on single-shard trees).
  const double lambda = static_cast<double>(levels) / epsilon;
  std::vector<double> noisy = true_count;
  noisy[0] = 0.0;
  AddLaplaceNoise(std::span<double>(noisy).subspan(1), lambda,
                  rng::DeriveSeed(seed, 0x4A7), thread_pool(),
                  engine_options().isa);

  // Consistency, pass 1 (bottom-up): z[v] is the best subtree-local
  // estimate. For a node whose subtree has k levels:
  //   z[v] = (2^k - 2^(k-1)) / (2^k - 1) * noisy[v]
  //        + (2^(k-1) - 1)   / (2^k - 1) * (z[left] + z[right]).
  std::vector<double> z(2 * padded, 0.0);
  for (std::size_t v = 2 * padded; v-- > 1;) {
    if (v >= padded) {  // leaf: subtree has 1 level
      z[v] = noisy[v];
      continue;
    }
    // Subtree levels: leaves are at depth `levels`; node v has depth
    // floor(log2(v)) + 1.
    const std::size_t depth = FloorLog2(v) + 1;
    const std::size_t k = levels - depth + 1;
    const double pow_k = std::ldexp(1.0, static_cast<int>(k));        // 2^k
    const double pow_k1 = std::ldexp(1.0, static_cast<int>(k - 1));   // 2^(k-1)
    const double alpha = (pow_k - pow_k1) / (pow_k - 1.0);
    const double beta = (pow_k1 - 1.0) / (pow_k - 1.0);
    z[v] = alpha * noisy[v] + beta * (z[2 * v] + z[2 * v + 1]);
  }

  // Consistency, pass 2 (top-down): distribute each parent's surplus
  // equally between its children so that children sum to the parent.
  std::vector<double> h(2 * padded, 0.0);
  h[1] = z[1];
  for (std::size_t v = 2; v < 2 * padded; ++v) {
    const std::size_t parent = v / 2;
    const std::size_t sibling = v ^ 1;
    h[v] = z[v] + (h[parent] - (z[v] + z[sibling])) / 2.0;
  }

  matrix::FrequencyMatrix noisy_matrix(m.dims());
  for (std::size_t i = 0; i < n; ++i) noisy_matrix[i] = h[padded + i];
  return noisy_matrix;
}

Result<double> HayHierarchicalMechanism::NoiseVarianceBound(
    const data::Schema& schema, double epsilon) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  PRIVELET_RETURN_IF_ERROR(CheckOneDimensionalOrdinal(schema));
  const std::size_t padded = NextPowerOfTwo(schema.TotalDomainSize());
  const double h = static_cast<double>(FloorLog2(padded) + 1);
  return 4.0 * h * h * h / (epsilon * epsilon);
}

}  // namespace privelet::mechanism
