// Sharded Laplace noise injection shared by the publishing mechanisms.
//
// Determinism contract: the element range [0, total) is cut into fixed
// kNoiseShardSize-wide shards, and shard i always draws from jump-stream i
// of the noise seed (see rng::MakeJumpStreams). The noise added at a given
// index therefore depends only on (seed, index) — never on the thread
// pool or its size — so published matrices are bit-identical across
// thread counts. With a single shard, stream 0 is the plain
// Xoshiro256pp(seed) sequence, i.e. exactly what the pre-sharding serial
// mechanisms drew.
#ifndef PRIVELET_MECHANISM_NOISE_H_
#define PRIVELET_MECHANISM_NOISE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "privelet/common/thread_pool.h"
#include "privelet/rng/xoshiro256pp.h"
#include "privelet/simd/kernels.h"

namespace privelet::mechanism {

/// Fixed shard width of the noise-injection index space. Part of the
/// published-output format for a given seed: changing it changes every
/// multi-shard release.
inline constexpr std::size_t kNoiseShardSize = 8192;

/// Calls body(begin, end, gen) for every shard of [0, total), where `gen`
/// is the shard's private jump stream of `noise_seed`, fanned across
/// `pool` (nullptr runs the shards serially, in index order, with
/// identical draws). `body` must consume gen identically regardless of
/// scheduling (it sees each shard exactly once) and must not touch state
/// shared with other shards.
void ForEachNoiseShard(
    std::size_t total, std::uint64_t noise_seed, common::ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, rng::Xoshiro256pp&)>&
        body);

/// values[i] += Laplace(magnitude) with the sharded stream scheme above —
/// the whole noise step of the Basic and Hay mechanisms. The raw-bits ->
/// tail mapping of each draw runs through the kernel table selected by
/// `isa` (see simd::ResolveIsa); every level produces the same bits as the
/// original scalar loop.
void AddLaplaceNoise(std::span<double> values, double magnitude,
                     std::uint64_t noise_seed, common::ThreadPool* pool,
                     simd::IsaChoice isa = simd::IsaChoice::kAuto);

/// Number of shards ForEachNoiseShard cuts [0, total) into; the stream
/// count to pass to rng::MakeJumpStreams when driving the cursor below.
inline std::size_t NumNoiseShards(std::size_t total) {
  return (total + kNoiseShardSize - 1) / kNoiseShardSize;
}

/// Random access (monotone within a cursor) into the sharded Laplace
/// scheme: LaplaceAt(i, magnitude) returns exactly the draw the
/// ForEachNoiseShard loops make at index i, whatever chunking the caller
/// uses — the basis of fusing noise injection into the transform panels
/// without changing a single published bit.
///
/// Sequential accesses are O(1); skipping forward inside a shard costs one
/// raw RNG step per skipped index (SampleLaplace with magnitude > 0
/// consumes exactly one 64-bit draw), and entering a new shard restarts
/// from that shard's precomputed stream. Each worker keeps its own cursor
/// over the shared stream vector.
class NoiseStreamCursor {
 public:
  /// `streams` = rng::MakeJumpStreams(noise_seed, NumNoiseShards(total)),
  /// shared (read-only) across cursors; must outlive the cursor.
  explicit NoiseStreamCursor(const std::vector<rng::Xoshiro256pp>& streams)
      : streams_(streams) {}

  /// The Laplace(magnitude) draw of index `index`. Indices must be
  /// strictly increasing across calls on one cursor; magnitude must be
  /// > 0 (a zero magnitude would consume no draw and desynchronize the
  /// stream positions).
  double LaplaceAt(std::size_t index, double magnitude);

  /// Fills out[0..count) with the unit-magnitude draws of indices
  /// [index, index + count): magnitude * out[j] is bit-identical to
  /// LaplaceAt(index + j, magnitude) (see rng::SampleLaplaceUnitBatch).
  /// Splits the run at shard boundaries internally; the same monotonicity
  /// rule as LaplaceAt applies to the whole run.
  void UnitLaplaceRun(std::size_t index, std::size_t count, double* out,
                      const simd::KernelTable& kernels);

 private:
  const std::vector<rng::Xoshiro256pp>& streams_;
  rng::Xoshiro256pp gen_{0};
  std::size_t shard_ = static_cast<std::size_t>(-1);
  std::size_t next_index_ = 0;
};

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_NOISE_H_
