// Sharded Laplace noise injection shared by the publishing mechanisms.
//
// Determinism contract: the element range [0, total) is cut into fixed
// kNoiseShardSize-wide shards, and shard i always draws from jump-stream i
// of the noise seed (see rng::MakeJumpStreams). The noise added at a given
// index therefore depends only on (seed, index) — never on the thread
// pool or its size — so published matrices are bit-identical across
// thread counts. With a single shard, stream 0 is the plain
// Xoshiro256pp(seed) sequence, i.e. exactly what the pre-sharding serial
// mechanisms drew.
#ifndef PRIVELET_MECHANISM_NOISE_H_
#define PRIVELET_MECHANISM_NOISE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "privelet/common/thread_pool.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::mechanism {

/// Fixed shard width of the noise-injection index space. Part of the
/// published-output format for a given seed: changing it changes every
/// multi-shard release.
inline constexpr std::size_t kNoiseShardSize = 8192;

/// Calls body(begin, end, gen) for every shard of [0, total), where `gen`
/// is the shard's private jump stream of `noise_seed`, fanned across
/// `pool` (nullptr runs the shards serially, in index order, with
/// identical draws). `body` must consume gen identically regardless of
/// scheduling (it sees each shard exactly once) and must not touch state
/// shared with other shards.
void ForEachNoiseShard(
    std::size_t total, std::uint64_t noise_seed, common::ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, rng::Xoshiro256pp&)>&
        body);

/// values[i] += Laplace(magnitude) with the sharded stream scheme above —
/// the whole noise step of the Basic and Hay mechanisms.
void AddLaplaceNoise(std::span<double> values, double magnitude,
                     std::uint64_t noise_seed, common::ThreadPool* pool);

}  // namespace privelet::mechanism

#endif  // PRIVELET_MECHANISM_NOISE_H_
