// Data-cube operations above the frequency matrix. The paper treats the
// frequency matrix as "the lowest level of the data cube of T"
// (Sec. II-B); these helpers materialize the higher levels: marginal
// projections onto attribute subsets (group-by) and coarsenings of a
// nominal axis to one of its hierarchy levels (roll-up). Applied to a
// *published* noisy matrix they are data-independent post-processing, so
// they preserve ε-differential privacy.
#ifndef PRIVELET_MATRIX_DATA_CUBE_H_
#define PRIVELET_MATRIX_DATA_CUBE_H_

#include <cstddef>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::matrix {

/// Projects `m` onto the given axes (strictly ascending, non-empty):
/// the result's entry at (y_1..y_k) sums all entries of `m` whose
/// coordinates on `axes` equal y. O(m).
Result<FrequencyMatrix> ProjectMarginal(const FrequencyMatrix& m,
                                        const std::vector<std::size_t>& axes);

/// Rolls the nominal axis `axis` of `m` up to hierarchy level `level`
/// (1 = the root, hierarchy.height() = the leaves / no-op): the axis is
/// re-indexed by the level's nodes in left-to-right order, each entry
/// summing its subtree's leaves. O(m).
Result<FrequencyMatrix> RollUpNominalAxis(const FrequencyMatrix& m,
                                          const data::Schema& schema,
                                          std::size_t axis,
                                          std::size_t level);

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_DATA_CUBE_H_
