#include "privelet/matrix/data_cube.h"

namespace privelet::matrix {

Result<FrequencyMatrix> ProjectMarginal(
    const FrequencyMatrix& m, const std::vector<std::size_t>& axes) {
  if (axes.empty()) {
    return Status::InvalidArgument("marginal needs >= 1 axis");
  }
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes[i] >= m.num_dims() || (i > 0 && axes[i] <= axes[i - 1])) {
      return Status::InvalidArgument(
          "axes must be strictly ascending and in range");
    }
  }
  std::vector<std::size_t> out_dims;
  out_dims.reserve(axes.size());
  for (std::size_t axis : axes) out_dims.push_back(m.dim(axis));
  FrequencyMatrix out(out_dims);

  // Single pass with an incremental odometer over the source coordinates;
  // recompute the projected flat index only from the changed axis down.
  std::vector<std::size_t> coords(m.num_dims(), 0);
  std::vector<std::size_t> out_coords(axes.size());
  for (std::size_t flat = 0; flat < m.size(); ++flat) {
    for (std::size_t i = 0; i < axes.size(); ++i) {
      out_coords[i] = coords[axes[i]];
    }
    out.At(out_coords) += m[flat];
    // Row-major odometer.
    std::size_t axis = m.num_dims();
    while (axis-- > 0) {
      if (++coords[axis] < m.dim(axis)) break;
      coords[axis] = 0;
    }
  }
  return out;
}

Result<FrequencyMatrix> RollUpNominalAxis(const FrequencyMatrix& m,
                                          const data::Schema& schema,
                                          std::size_t axis,
                                          std::size_t level) {
  if (axis >= m.num_dims() || axis >= schema.num_attributes()) {
    return Status::InvalidArgument("axis out of range");
  }
  const data::Attribute& attribute = schema.attribute(axis);
  if (!attribute.is_nominal()) {
    return Status::InvalidArgument("axis '" + attribute.name() +
                                   "' is not nominal");
  }
  if (m.dim(axis) != attribute.domain_size()) {
    return Status::InvalidArgument("matrix does not match the schema");
  }
  const data::Hierarchy& hierarchy = attribute.hierarchy();
  if (level < 1 || level > hierarchy.height()) {
    return Status::OutOfRange("level must be in [1, height]");
  }

  // leaf -> index of its ancestor at `level` (nodes at a level are in
  // left-to-right order, so their leaf ranges are consecutive).
  const std::vector<std::size_t> nodes = hierarchy.NodesAtLevel(level);
  std::vector<std::size_t> leaf_to_group(hierarchy.num_leaves());
  for (std::size_t g = 0; g < nodes.size(); ++g) {
    const auto& node = hierarchy.node(nodes[g]);
    for (std::size_t leaf = node.leaf_begin; leaf < node.leaf_end; ++leaf) {
      leaf_to_group[leaf] = g;
    }
  }

  std::vector<std::size_t> out_dims = m.dims();
  out_dims[axis] = nodes.size();
  FrequencyMatrix out(out_dims);
  std::vector<double> line(m.dim(axis));
  std::vector<double> rolled(nodes.size());
  for (std::size_t l = 0; l < m.NumLines(axis); ++l) {
    m.GatherLine(axis, l, line.data());
    std::fill(rolled.begin(), rolled.end(), 0.0);
    for (std::size_t leaf = 0; leaf < line.size(); ++leaf) {
      rolled[leaf_to_group[leaf]] += line[leaf];
    }
    out.ScatterLine(axis, l, rolled.data());
  }
  return out;
}

}  // namespace privelet::matrix
