// d-dimensional prefix-sum (summed-area) table. Every range-count query in
// the paper is a contiguous box over the frequency matrix (ordinal
// predicates are intervals; nominal subtree predicates are contiguous in
// the imposed leaf order, Sec. V-A), so after O(m) preprocessing any query
// is answered with 2^d table lookups.
//
// Storage comes in three modes sharing one query path:
//   owned   — the build and parts constructors materialize the entries in
//     a private vector (the classic mode);
//   scratch — BuildScratch materializes them in an unlinked mmap scratch
//     file instead, releasing residency as the build streams so the
//     out-of-core publish path can build a table many times larger than
//     the memory budget (same arithmetic, hence bit-identical entries);
//   view    — the span constructor serves lookups straight out of caller-
//     managed memory (the raw accumulator section of a memory-mapped PVLS
//     v2 snapshot), so adopting a multi-GB table costs no copy at all.
// The caller of the view constructor guarantees the backing storage
// outlives the table and every copy of it (storage::MappedSnapshot is
// kept alive by the owning PublishingSession).
#ifndef PRIVELET_MATRIX_PREFIX_SUM_H_
#define PRIVELET_MATRIX_PREFIX_SUM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "privelet/common/check.h"
#include "privelet/common/file_mapping.h"
#include "privelet/common/residency.h"
#include "privelet/common/result.h"
#include "privelet/common/thread_pool.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/tile_buffer.h"
#include "privelet/simd/kernels.h"

namespace privelet::matrix {

/// Prefix-sum table with accumulator type T. Use Accum = long double for
/// noisy (real-valued) matrices to control cancellation error, and
/// Accum = std::int64_t for exact integer count matrices.
template <typename Accum>
class PrefixSumTable {
 public:
  /// Builds the table in O(m) per axis. A non-null `pool` fans each axis
  /// pass's independent running-sum lines across its workers; each line
  /// is a serial accumulation over disjoint elements, so the table is
  /// bit-identical for every pool size, engine, and tile size. The pool
  /// is only used during construction.
  ///
  /// `options` selects the line engine: the tiled engine (default) walks
  /// non-last axes a panel of adjacent lines at a time so the inner
  /// accumulation loop runs unit-stride over the panel (in place — the
  /// running sum needs no transpose); the naive engine is the per-line
  /// reference path.
  explicit PrefixSumTable(const FrequencyMatrix& source,
                          common::ThreadPool* pool = nullptr,
                          const EngineOptions& options = {})
      : PrefixSumTable(source.dims(), source.values(), pool, options) {}

  /// Same build over raw row-major values with the given dims (the
  /// product of `dims` must equal source.size()). Lets a serving process
  /// rebuild the table straight from a mapped snapshot's matrix section
  /// without materializing a FrequencyMatrix copy first.
  PrefixSumTable(std::vector<std::size_t> dims, std::span<const double> source,
                 common::ThreadPool* pool = nullptr,
                 const EngineOptions& options = {})
      : dims_(std::move(dims)) {
    InitStrides();
    PRIVELET_CHECK(!dims_.empty() && NumCells() == source.size(),
                   "source values do not match the dims");
    sums_.resize(source.size());
    data_ = sums_;
    BuildFrom(sums_.data(), source, pool, options, /*residency_source=*/nullptr);
  }

  /// Out-of-core build: the entries live in an unlinked mmap scratch file
  /// under options.scratch_dir and each build pass releases residency
  /// (of the table and, when non-null, of `residency_source` — typically
  /// the scratch-backed noisy matrix being summed) as it streams, pacing
  /// peak RSS by options.max_memory_bytes. The additions are the exact
  /// additions of the in-core build, so the resulting entries are
  /// bit-identical. Fails with IOError when the scratch file cannot be
  /// created or mapped.
  static Result<PrefixSumTable> BuildScratch(
      std::vector<std::size_t> dims, std::span<const double> source,
      common::ThreadPool* pool, const EngineOptions& options,
      const FrequencyMatrix* residency_source = nullptr) {
    PrefixSumTable table;
    table.dims_ = std::move(dims);
    table.InitStrides();
    PRIVELET_CHECK(!table.dims_.empty() && table.NumCells() == source.size(),
                   "source values do not match the dims");
    const std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    PRIVELET_CHECK(source.size() <= max_bytes / sizeof(Accum),
                   "dimension product overflow");
    PRIVELET_ASSIGN_OR_RETURN(
        table.scratch_,
        common::MappedFile::CreateScratch(source.size() * sizeof(Accum),
                                          options.scratch_dir));
    Accum* slots =
        reinterpret_cast<Accum*>(table.scratch_.mutable_bytes().data());
    table.data_ = std::span<const Accum>(slots, source.size());
    table.BuildFrom(slots, source, pool, options, residency_source);
    return table;
  }

  /// Reassembles a table from its serialized parts: `sums` must hold the
  /// flat (row-major) entries of a previously built table over a matrix
  /// with the given dims, in the layout raw_sums() exposes. The product of
  /// `dims` must equal sums.size() (the caller has already validated the
  /// product against overflow). Used by storage/snapshot.cc so a serving
  /// process can skip the O(m) rebuild; the entries themselves are trusted
  /// — integrity is the snapshot CRC's job.
  PrefixSumTable(std::vector<std::size_t> dims, std::vector<Accum> sums)
      : dims_(std::move(dims)), sums_(std::move(sums)) {
    InitStrides();
    PRIVELET_CHECK(!dims_.empty() && NumCells() == sums_.size(),
                   "prefix-sum parts do not form a table");
    data_ = sums_;
  }

  /// Non-owning view over externally stored entries (the raw accumulator
  /// section of a mapped PVLS v2 snapshot): lookups read `view` directly,
  /// so adoption is O(1) with no copy. Entries are trusted like the parts
  /// constructor's; the backing storage must outlive this table and every
  /// table copied from it.
  PrefixSumTable(std::vector<std::size_t> dims, std::span<const Accum> view)
      : dims_(std::move(dims)), data_(view) {
    InitStrides();
    PRIVELET_CHECK(!dims_.empty() && NumCells() == data_.size(),
                   "prefix-sum view does not form a table");
  }

  // `data_` must track the backing across copies and moves: a copied
  // owned/scratch table views its own copy of the entries, while a copied
  // view table keeps aliasing the external storage. Copies always land in
  // an owned vector (scratch-ness is not copied).
  PrefixSumTable(const PrefixSumTable& other)
      : dims_(other.dims_), strides_(other.strides_) {
    AdoptCopiedEntries(other);
  }
  PrefixSumTable(PrefixSumTable&& other) noexcept
      : dims_(std::move(other.dims_)),
        strides_(std::move(other.strides_)),
        sums_(std::move(other.sums_)),
        scratch_(std::move(other.scratch_)) {
    data_ = OwnBackedSpan(other.data_);
    other.data_ = {};
  }
  PrefixSumTable& operator=(const PrefixSumTable& other) {
    if (this != &other) {
      dims_ = other.dims_;
      strides_ = other.strides_;
      scratch_ = common::MappedFile();
      AdoptCopiedEntries(other);
    }
    return *this;
  }
  PrefixSumTable& operator=(PrefixSumTable&& other) noexcept {
    if (this != &other) {
      dims_ = std::move(other.dims_);
      strides_ = std::move(other.strides_);
      sums_ = std::move(other.sums_);
      scratch_ = std::move(other.scratch_);
      data_ = OwnBackedSpan(other.data_);
      other.data_ = {};
    }
    return *this;
  }

  /// Sum of all entries with lo[i] <= coord[i] <= hi[i] (inclusive bounds).
  Accum RangeSum(std::span<const std::size_t> lo,
                 std::span<const std::size_t> hi) const {
    const std::size_t d = dims_.size();
    PRIVELET_DCHECK(lo.size() == d && hi.size() == d, "bound arity mismatch");
    for (std::size_t axis = 0; axis < d; ++axis) {
      PRIVELET_DCHECK(lo[axis] <= hi[axis] && hi[axis] < dims_[axis],
                      "bad range bounds");
    }
    // Inclusion-exclusion over the 2^d box corners. Corner bit = 1 picks
    // hi[axis]; bit = 0 picks lo[axis]-1 (empty => the term vanishes).
    Accum total = 0;
    const std::size_t corners = std::size_t{1} << d;
    for (std::size_t corner = 0; corner < corners; ++corner) {
      std::size_t flat = 0;
      bool empty = false;
      int low_sides = 0;
      for (std::size_t axis = 0; axis < d; ++axis) {
        if (corner & (std::size_t{1} << axis)) {
          flat += hi[axis] * strides_[axis];
        } else {
          ++low_sides;
          if (lo[axis] == 0) {
            empty = true;
            break;
          }
          flat += (lo[axis] - 1) * strides_[axis];
        }
      }
      if (empty) continue;
      total += (low_sides % 2 == 0) ? data_[flat] : -data_[flat];
    }
    return total;
  }

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// True when the entries live in caller-managed storage (the span
  /// constructor) rather than in this table.
  bool is_view() const {
    return sums_.empty() && scratch_.size() == 0 && !data_.empty();
  }

  /// True when the entries live in an mmap scratch file (BuildScratch).
  bool is_scratch() const { return scratch_.size() > 0; }

  /// Drops resident pages of a scratch-backed table (data preserved);
  /// no-op otherwise. See common::MappedFile::ReleaseResidency.
  void ReleaseResidency() const { scratch_.ReleaseResidency(); }

  /// The flat (row-major) table entries — entry at a coordinate is the
  /// inclusive prefix sum up to it. The serialization surface consumed by
  /// storage/snapshot.cc and accepted back by the parts constructor.
  std::span<const Accum> raw_sums() const { return data_; }

 private:
  PrefixSumTable() = default;

  void InitStrides() {
    strides_.resize(dims_.size());
    std::size_t stride = 1;
    for (std::size_t axis = dims_.size(); axis-- > 0;) {
      strides_[axis] = stride;
      stride = CheckedCellMul(stride, dims_[axis]);
    }
  }

  std::size_t NumCells() const {
    std::size_t cells = 1;
    for (std::size_t d : dims_) cells = CheckedCellMul(cells, d);
    return cells;
  }

  static std::size_t CheckedCellMul(std::size_t a, std::size_t b) {
    PRIVELET_CHECK(b == 0 || a <= std::numeric_limits<std::size_t>::max() / b,
                   "dimension product overflow");
    return a * b;
  }

  // data_ spans that point into the moved-from object's own backing
  // (owned vector or scratch mapping) must be re-derived after the
  // backing transfers; external view spans carry over unchanged.
  std::span<const Accum> OwnBackedSpan(std::span<const Accum> view) {
    if (!sums_.empty()) return sums_;
    if (scratch_.size() > 0) {
      return {reinterpret_cast<const Accum*>(scratch_.bytes().data()),
              scratch_.size() / sizeof(Accum)};
    }
    return view;
  }

  void AdoptCopiedEntries(const PrefixSumTable& other) {
    if (other.is_view()) {
      sums_.clear();
      data_ = other.data_;
    } else {
      sums_.assign(other.data_.begin(), other.data_.end());
      data_ = sums_;
    }
  }

  /// The shared build: copy `source` into `slots`, then one running-sum
  /// pass per axis. Identical arithmetic for every storage mode.
  void BuildFrom(Accum* slots, std::span<const double> source,
                 common::ThreadPool* pool, const EngineOptions& options,
                 const FrequencyMatrix* residency_source) {
    common::ResidencyGovernor governor(
        is_scratch() ? options.max_memory_bytes : 0, [&] {
          ReleaseResidency();
          if (residency_source != nullptr) residency_source->ReleaseResidency();
        });
    common::ParallelFor(
        pool, source.size(), /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          // Charge in fixed sub-chunks: ParallelFor's auto chunks scale
          // with the domain, and a single end-of-chunk charge would let
          // the copy dirty a whole chunk's worth of table pages before
          // release-behind could fire.
          constexpr std::size_t kPaceCells = std::size_t{1} << 16;
          for (std::size_t i = begin; i < end; i += kPaceCells) {
            const std::size_t stop = std::min(end, i + kPaceCells);
            for (std::size_t j = i; j < stop; ++j) {
              slots[j] = static_cast<Accum>(source[j]);
            }
            governor.OnBytesProcessed((stop - i) *
                                      (sizeof(Accum) + sizeof(double)));
          }
        });
    // One running-sum pass per axis turns the copy into an inclusive
    // d-dimensional prefix table. Integer accumulators dispatch their
    // contiguous inner loops through the selected kernel table (int64
    // addition is associative, so any lane split is bit-identical); long
    // double accumulators have no vector form (x87) and stay scalar at
    // every level.
    const simd::KernelTable& kernels =
        simd::Kernels(simd::ResolveIsa(options.isa));
    for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
      const std::size_t stride_a = strides_[axis];
      const std::size_t axis_dim = dims_[axis];
      const std::size_t lines = source.size() / axis_dim;
      if (options.engine == LineEngine::kTiled && stride_a > 1) {
        BuildAxisTiled(slots, axis_dim, stride_a, lines,
                       std::max<std::size_t>(1, options.tile_lines), pool,
                       kernels, governor);
        continue;
      }
      // Per-line path; for the last axis (stride 1) each line is already
      // a contiguous sweep, so this is the layout-optimal walk there. A
      // strided line faults the whole page under every entry — axis_dim
      // pages before the line ends — so the strided walk charges the
      // governor per step, not per line (see common::PageTouchedBytes).
      const std::size_t step_touched =
          stride_a > 1
              ? common::PageTouchedBytes(1, stride_a, 1, sizeof(Accum))
              : 0;
      common::ParallelFor(
          pool, lines, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
            for (std::size_t line = begin; line < end; ++line) {
              std::size_t base = (line / stride_a) * (stride_a * axis_dim) +
                                 (line % stride_a);
              if (stride_a > 1) {
                for (std::size_t k = 1; k < axis_dim; ++k) {
                  slots[base + k * stride_a] +=
                      slots[base + (k - 1) * stride_a];
                  governor.OnBytesProcessed(step_touched);
                }
              } else {
                if constexpr (std::is_same_v<Accum, std::int64_t>) {
                  kernels.prefix_scan_i64(slots + base, axis_dim);
                } else {
                  for (std::size_t k = 1; k < axis_dim; ++k) {
                    slots[base + k] += slots[base + k - 1];
                  }
                }
                governor.OnBytesProcessed(axis_dim * sizeof(Accum));
              }
            }
          });
    }
  }

  /// Tiled running-sum pass along one axis: panels of up to `tile`
  /// adjacent lines advance through the axis together, so each step
  /// accumulates a contiguous run of elements into the contiguous run one
  /// axis-stride later. Per line the additions match the per-line path
  /// exactly (same operands, same order), hence bit-identical tables.
  void BuildAxisTiled(Accum* slots, std::size_t axis_dim, std::size_t stride,
                      std::size_t lines, std::size_t tile,
                      common::ThreadPool* pool,
                      const simd::KernelTable& kernels,
                      common::ResidencyGovernor& governor) {
    const std::size_t panels = (lines + tile - 1) / tile;
    common::ParallelFor(
        pool, panels, /*grain=*/0, [&](std::size_t pb, std::size_t pe) {
          for (std::size_t p = pb; p < pe; ++p) {
            const std::size_t first = p * tile;
            const std::size_t count = std::min(tile, lines - first);
            ForEachLineRun(
                stride, axis_dim, first, count,
                [&](std::size_t base, std::size_t col, std::size_t run) {
                  (void)col;
                  // Charge per axis step: a panel touches a page of the
                  // table per step, which can dwarf the byte budget long
                  // before an end-of-panel charge would fire.
                  const std::size_t step_touched = common::PageTouchedBytes(
                      1, stride, run, sizeof(Accum));
                  for (std::size_t k = 1; k < axis_dim; ++k) {
                    Accum* curr = slots + base + k * stride;
                    const Accum* prev = curr - stride;
                    if constexpr (std::is_same_v<Accum, std::int64_t>) {
                      kernels.prefix_rows_add_i64(curr, prev, run);
                    } else {
                      for (std::size_t b = 0; b < run; ++b) curr[b] += prev[b];
                    }
                    governor.OnBytesProcessed(step_touched);
                  }
                });
          }
        });
  }

  std::vector<std::size_t> dims_;
  std::vector<std::size_t> strides_;
  std::vector<Accum> sums_;  ///< owned entries; empty in scratch/view mode
  common::MappedFile scratch_;  ///< scratch entries; empty otherwise
  std::span<const Accum> data_;  ///< what RangeSum reads: backing or the view
};

extern template class PrefixSumTable<long double>;
extern template class PrefixSumTable<std::int64_t>;

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_PREFIX_SUM_H_
