#include "privelet/matrix/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

namespace privelet::matrix {

namespace {

constexpr char kMagic[4] = {'P', 'V', 'L', 'M'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

Status WriteMatrix(const std::string& path, const FrequencyMatrix& m) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto num_dims = static_cast<std::uint32_t>(m.num_dims());
  out.write(reinterpret_cast<const char*>(&num_dims), sizeof(num_dims));
  for (std::size_t d : m.dims()) {
    const auto dim = static_cast<std::uint64_t>(d);
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  out.write(reinterpret_cast<const char*>(m.values().data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<FrequencyMatrix> ReadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (file_size < 0) {
    return Status::IOError("cannot stat '" + path + "'");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a matrix file");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    return Status::InvalidArgument("unsupported matrix file version");
  }
  std::uint32_t num_dims = 0;
  in.read(reinterpret_cast<char*>(&num_dims), sizeof(num_dims));
  if (!in || num_dims == 0 || num_dims > 64) {
    return Status::InvalidArgument("corrupt matrix header");
  }
  std::vector<std::size_t> dims(num_dims);
  std::size_t cells = 1;
  for (auto& d : dims) {
    std::uint64_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (!in || dim == 0) {
      return Status::InvalidArgument("corrupt matrix dimensions");
    }
    d = static_cast<std::size_t>(dim);
    // Checked product: a corrupt dimension must not wrap the element
    // count (and silently truncate the matrix) ...
    if (d != dim ||
        cells > std::numeric_limits<std::size_t>::max() / d) {
      return Status::InvalidArgument("matrix dimension product overflows");
    }
    cells *= d;
  }
  // ... nor drive an allocation beyond what the file can actually hold:
  // the values are stored inline, so the payload bounds the plausible
  // element count before FrequencyMatrix allocates anything.
  const std::uint64_t header_bytes =
      sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
      num_dims * sizeof(std::uint64_t);
  if (cells > (static_cast<std::uint64_t>(file_size) - header_bytes) /
                  sizeof(double)) {
    return Status::InvalidArgument("matrix payload exceeds the file size");
  }
  FrequencyMatrix m(dims);
  in.read(reinterpret_cast<char*>(m.values().data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in || in.gcount() !=
                 static_cast<std::streamsize>(m.size() * sizeof(double))) {
    return Status::InvalidArgument("truncated matrix payload");
  }
  return m;
}

}  // namespace privelet::matrix
