#include "privelet/matrix/frequency_matrix.h"

#include "privelet/common/math_util.h"

namespace privelet::matrix {

FrequencyMatrix::FrequencyMatrix(std::vector<std::size_t> dims)
    : dims_(std::move(dims)) {
  PRIVELET_CHECK(!dims_.empty(), "matrix needs >= 1 dimension");
  for (std::size_t d : dims_) PRIVELET_CHECK(d >= 1, "axis size must be >= 1");
  strides_.resize(dims_.size());
  std::size_t stride = 1;
  for (std::size_t axis = dims_.size(); axis-- > 0;) {
    strides_[axis] = stride;
    stride *= dims_[axis];
  }
  values_.assign(CheckedProduct(dims_), 0.0);
}

std::size_t FrequencyMatrix::FlatIndex(
    std::span<const std::size_t> coords) const {
  PRIVELET_DCHECK(coords.size() == dims_.size(), "coordinate arity mismatch");
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    PRIVELET_DCHECK(coords[axis] < dims_[axis], "coordinate out of range");
    flat += coords[axis] * strides_[axis];
  }
  return flat;
}

std::vector<std::size_t> FrequencyMatrix::Coords(std::size_t flat) const {
  PRIVELET_DCHECK(flat < values_.size(), "flat index out of range");
  std::vector<std::size_t> coords(dims_.size());
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    coords[axis] = flat / strides_[axis];
    flat %= strides_[axis];
  }
  return coords;
}

std::size_t FrequencyMatrix::NumLines(std::size_t axis) const {
  PRIVELET_DCHECK(axis < dims_.size());
  return values_.size() / dims_[axis];
}

std::size_t FrequencyMatrix::LineBase(std::size_t axis, std::size_t line) const {
  // A line is identified by the coordinates of the other axes. Split the
  // line index into the part "outside" the axis (slower-varying axes) and
  // the part "inside" it, so the numbering is independent of dims_[axis].
  const std::size_t inner = strides_[axis];
  return (line / inner) * (inner * dims_[axis]) + (line % inner);
}

void FrequencyMatrix::GatherLine(std::size_t axis, std::size_t line,
                                 double* out) const {
  const std::size_t stride = strides_[axis];
  std::size_t index = LineBase(axis, line);
  for (std::size_t k = 0; k < dims_[axis]; ++k, index += stride) {
    out[k] = values_[index];
  }
}

void FrequencyMatrix::ScatterLine(std::size_t axis, std::size_t line,
                                  const double* in) {
  const std::size_t stride = strides_[axis];
  std::size_t index = LineBase(axis, line);
  for (std::size_t k = 0; k < dims_[axis]; ++k, index += stride) {
    values_[index] = in[k];
  }
}

FrequencyMatrix FrequencyMatrix::FromTable(const data::Table& table) {
  FrequencyMatrix m(table.schema().DomainSizes());
  const std::size_t num_attrs = table.schema().num_attributes();
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    std::size_t flat = 0;
    for (std::size_t a = 0; a < num_attrs; ++a) {
      flat += static_cast<std::size_t>(table.value(row, a)) * m.strides_[a];
    }
    m.values_[flat] += 1.0;
  }
  return m;
}

double FrequencyMatrix::Total() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

}  // namespace privelet::matrix
