#include "privelet/matrix/frequency_matrix.h"

#include <cstring>
#include <limits>
#include <utility>

#include "privelet/common/math_util.h"

namespace privelet::matrix {

namespace {

// Satellite of the 10^9-cell sizing math: a huge-domain schema must trip a
// CHECK, not silently wrap the cell count / strides around size_t.
std::size_t CheckedMul(std::size_t a, std::size_t b) {
  PRIVELET_CHECK(b == 0 || a <= std::numeric_limits<std::size_t>::max() / b,
                 "dimension product overflow");
  return a * b;
}

}  // namespace

void FrequencyMatrix::InitStrides() {
  PRIVELET_CHECK(!dims_.empty(), "matrix needs >= 1 dimension");
  for (std::size_t d : dims_) PRIVELET_CHECK(d >= 1, "axis size must be >= 1");
  strides_.resize(dims_.size());
  std::size_t stride = 1;
  for (std::size_t axis = dims_.size(); axis-- > 0;) {
    strides_[axis] = stride;
    stride = CheckedMul(stride, dims_[axis]);
  }
  size_ = stride;
}

FrequencyMatrix::FrequencyMatrix(std::vector<std::size_t> dims)
    : dims_(std::move(dims)) {
  InitStrides();
  owned_.assign(size_, 0.0);
  data_ = owned_.data();
}

FrequencyMatrix FrequencyMatrix::Uninitialized(std::vector<std::size_t> dims) {
  FrequencyMatrix m;
  m.dims_ = std::move(dims);
  m.InitStrides();
  // Default-initializing resize: MatrixAllocator skips the zero-fill, so
  // this is a pure allocation (the caller contract is a full overwrite).
  m.owned_.resize(m.size_);
  m.data_ = m.owned_.data();
  return m;
}

Result<FrequencyMatrix> FrequencyMatrix::CreateScratch(
    std::vector<std::size_t> dims, const std::string& scratch_dir) {
  FrequencyMatrix m;
  m.dims_ = std::move(dims);
  m.InitStrides();
  const std::size_t bytes = CheckedMul(m.size_, sizeof(double));
  PRIVELET_ASSIGN_OR_RETURN(
      m.scratch_, common::MappedFile::CreateScratch(bytes, scratch_dir));
  // ftruncate guarantees zero-filled pages, matching the owned constructor.
  m.data_ = reinterpret_cast<double*>(m.scratch_.mutable_bytes().data());
  return m;
}

FrequencyMatrix::FrequencyMatrix(const FrequencyMatrix& other)
    : dims_(other.dims_),
      strides_(other.strides_),
      owned_(other.data_, other.data_ + other.size_),
      data_(owned_.data()),
      size_(other.size_) {}

FrequencyMatrix& FrequencyMatrix::operator=(const FrequencyMatrix& other) {
  if (this != &other) {
    dims_ = other.dims_;
    strides_ = other.strides_;
    owned_.assign(other.data_, other.data_ + other.size_);
    scratch_ = common::MappedFile();
    data_ = owned_.data();
    size_ = other.size_;
  }
  return *this;
}

FrequencyMatrix::FrequencyMatrix(FrequencyMatrix&& other) noexcept
    : dims_(std::move(other.dims_)),
      strides_(std::move(other.strides_)),
      owned_(std::move(other.owned_)),
      scratch_(std::move(other.scratch_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {
  other.dims_.clear();
  other.strides_.clear();
  other.owned_.clear();
}

FrequencyMatrix& FrequencyMatrix::operator=(FrequencyMatrix&& other) noexcept {
  if (this != &other) {
    dims_ = std::move(other.dims_);
    strides_ = std::move(other.strides_);
    owned_ = std::move(other.owned_);
    scratch_ = std::move(other.scratch_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    other.dims_.clear();
    other.strides_.clear();
    other.owned_.clear();
  }
  return *this;
}

std::size_t FrequencyMatrix::FlatIndex(
    std::span<const std::size_t> coords) const {
  PRIVELET_DCHECK(coords.size() == dims_.size(), "coordinate arity mismatch");
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    PRIVELET_DCHECK(coords[axis] < dims_[axis], "coordinate out of range");
    flat += coords[axis] * strides_[axis];
  }
  return flat;
}

std::vector<std::size_t> FrequencyMatrix::Coords(std::size_t flat) const {
  PRIVELET_DCHECK(flat < size_, "flat index out of range");
  std::vector<std::size_t> coords(dims_.size());
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    coords[axis] = flat / strides_[axis];
    flat %= strides_[axis];
  }
  return coords;
}

std::size_t FrequencyMatrix::NumLines(std::size_t axis) const {
  PRIVELET_DCHECK(axis < dims_.size());
  return size_ / dims_[axis];
}

std::size_t FrequencyMatrix::LineBase(std::size_t axis, std::size_t line) const {
  // A line is identified by the coordinates of the other axes. Split the
  // line index into the part "outside" the axis (slower-varying axes) and
  // the part "inside" it, so the numbering is independent of dims_[axis].
  const std::size_t inner = strides_[axis];
  return (line / inner) * (inner * dims_[axis]) + (line % inner);
}

void FrequencyMatrix::GatherLine(std::size_t axis, std::size_t line,
                                 double* out) const {
  const std::size_t stride = strides_[axis];
  std::size_t index = LineBase(axis, line);
  for (std::size_t k = 0; k < dims_[axis]; ++k, index += stride) {
    out[k] = data_[index];
  }
}

void FrequencyMatrix::ScatterLine(std::size_t axis, std::size_t line,
                                  const double* in) {
  const std::size_t stride = strides_[axis];
  std::size_t index = LineBase(axis, line);
  for (std::size_t k = 0; k < dims_[axis]; ++k, index += stride) {
    data_[index] = in[k];
  }
}

FrequencyMatrix FrequencyMatrix::FromTable(const data::Table& table) {
  FrequencyMatrix m(table.schema().DomainSizes());
  const std::size_t num_attrs = table.schema().num_attributes();
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    std::size_t flat = 0;
    for (std::size_t a = 0; a < num_attrs; ++a) {
      flat += static_cast<std::size_t>(table.value(row, a)) * m.strides_[a];
    }
    m.data_[flat] += 1.0;
  }
  return m;
}

Result<FrequencyMatrix> FrequencyMatrix::FromTable(
    const data::Table& table, const EngineOptions& options) {
  if (!options.out_of_core()) return FromTable(table);
  PRIVELET_ASSIGN_OR_RETURN(
      FrequencyMatrix m,
      CreateScratch(table.schema().DomainSizes(), options.scratch_dir));
  const std::size_t num_attrs = table.schema().num_attributes();
  // Counting touches one cell per row at an arbitrary position, so pace
  // releases by rows: one row dirties at most one page.
  const std::size_t rows_per_release =
      std::max<std::size_t>(1, options.max_memory_bytes / 2 / 4096);
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    std::size_t flat = 0;
    for (std::size_t a = 0; a < num_attrs; ++a) {
      flat += static_cast<std::size_t>(table.value(row, a)) * m.strides_[a];
    }
    m.data_[flat] += 1.0;
    if ((row + 1) % rows_per_release == 0) m.ReleaseResidency();
  }
  return m;
}

double FrequencyMatrix::Total() const {
  double total = 0.0;
  for (std::size_t i = 0; i < size_; ++i) total += data_[i];
  return total;
}

}  // namespace privelet::matrix
