// Engine options for the layout-aware line traversal shared by the matrix,
// wavelet, mechanism, and query layers. Every multi-dimensional pass in the
// library (HN transform axes, prefix-sum axes) is a sweep of independent
// 1-D lines; the *engine* decides how those lines are walked:
//
//   kTiled — panels of `tile_lines` adjacent lines are block-transposed
//     into contiguous scratch (matrix::TileBuffer), transformed with the
//     batched Transform1D kernels, and scattered back. Strided per-element
//     access becomes contiguous run copies, so non-last-axis passes stream
//     through memory instead of thrashing the cache.
//   kNaive — the per-line reference implementation (gather one line,
//     transform, scatter). Kept alive so determinism tests can assert
//     bit-identical output between the engines.
//
// Both engines perform identical floating-point arithmetic per line, so
// for any fixed seed the published matrices are bit-identical across
// engines, tile sizes, and thread counts.
#ifndef PRIVELET_MATRIX_ENGINE_H_
#define PRIVELET_MATRIX_ENGINE_H_

#include <cstddef>
#include <string>

#include "privelet/simd/dispatch.h"

namespace privelet::matrix {

enum class LineEngine {
  kTiled,
  kNaive,
};

/// Default panel width B: 64 lines keeps gather/scatter run copies at one
/// or more full cache lines for every axis stride >= 64 while the panel of
/// a 1024-wide axis still fits in L2.
inline constexpr std::size_t kDefaultTileLines = 64;

struct EngineOptions {
  LineEngine engine = LineEngine::kTiled;
  /// Lines per panel (B) for the tiled engine; values < 1 are treated as 1.
  /// Purely a performance knob: results are bit-identical for every value.
  std::size_t tile_lines = kDefaultTileLines;
  /// Out-of-core publish budget in bytes. 0 (the default) keeps every
  /// intermediate in owned vectors (the in-core engine). When > 0, publish
  /// intermediates (transform scratch, prefix-sum accumulators) live in
  /// unlinked mmap scratch files and the passes release residency as they
  /// stream, bounding peak RSS by roughly this budget. Purely a memory
  /// knob: the arithmetic is untouched, so published releases are
  /// bit-identical to the in-core engine (see docs/DETERMINISM.md) — which
  /// is also why this field is deliberately NOT serialized into snapshots.
  std::size_t max_memory_bytes = 0;
  /// Directory for scratch files when max_memory_bytes > 0; empty means
  /// $TMPDIR (falling back to /tmp).
  std::string scratch_dir;
  /// Kernel instruction-set level for the hot loops (see simd/dispatch.h).
  /// kAuto defers to the PRIVELET_ISA environment variable, else the best
  /// level the host supports; every level is bit-identical, so this —
  /// like the engine and tile size — is purely a performance knob.
  simd::IsaChoice isa = simd::IsaChoice::kAuto;

  bool out_of_core() const { return max_memory_bytes > 0; }
};

/// Convenience factory for the common "engine + tile size" configuration
/// (partial aggregate init would trip -Wmissing-field-initializers now
/// that EngineOptions carries the out-of-core knobs too).
inline EngineOptions MakeEngineOptions(
    LineEngine engine, std::size_t tile_lines = kDefaultTileLines) {
  EngineOptions options;
  options.engine = engine;
  options.tile_lines = tile_lines;
  return options;
}

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_ENGINE_H_
