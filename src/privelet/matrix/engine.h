// Engine options for the layout-aware line traversal shared by the matrix,
// wavelet, mechanism, and query layers. Every multi-dimensional pass in the
// library (HN transform axes, prefix-sum axes) is a sweep of independent
// 1-D lines; the *engine* decides how those lines are walked:
//
//   kTiled — panels of `tile_lines` adjacent lines are block-transposed
//     into contiguous scratch (matrix::TileBuffer), transformed with the
//     batched Transform1D kernels, and scattered back. Strided per-element
//     access becomes contiguous run copies, so non-last-axis passes stream
//     through memory instead of thrashing the cache.
//   kNaive — the per-line reference implementation (gather one line,
//     transform, scatter). Kept alive so determinism tests can assert
//     bit-identical output between the engines.
//
// Both engines perform identical floating-point arithmetic per line, so
// for any fixed seed the published matrices are bit-identical across
// engines, tile sizes, and thread counts.
#ifndef PRIVELET_MATRIX_ENGINE_H_
#define PRIVELET_MATRIX_ENGINE_H_

#include <cstddef>

namespace privelet::matrix {

enum class LineEngine {
  kTiled,
  kNaive,
};

/// Default panel width B: 64 lines keeps gather/scatter run copies at one
/// or more full cache lines for every axis stride >= 64 while the panel of
/// a 1024-wide axis still fits in L2.
inline constexpr std::size_t kDefaultTileLines = 64;

struct EngineOptions {
  LineEngine engine = LineEngine::kTiled;
  /// Lines per panel (B) for the tiled engine; values < 1 are treated as 1.
  /// Purely a performance knob: results are bit-identical for every value.
  std::size_t tile_lines = kDefaultTileLines;
};

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_ENGINE_H_
