// TileBuffer: block-transposes a panel of B contiguous lines along any
// axis of a FrequencyMatrix into contiguous scratch, and scatters it back.
// The heart of the tiled transform engine (see matrix/engine.h).
//
// Panel layout ("interleaved"): element k of panel line b lives at
// panel[k * count + b]. Consecutive line indices along an axis with stride
// S > 1 have consecutive base addresses (runs of up to S lines), so one
// panel row k is a handful of contiguous run copies from the matrix —
// gathering B lines costs line_len * B contiguous traffic instead of
// line_len * B strided single-element loads. The layout also hands the
// batched Transform1D kernels unit-stride inner loops over b.
//
// For the innermost axis (stride == 1) lines are already contiguous in the
// matrix; callers should address them in place rather than paying the
// element-wise transpose this class would degenerate to.
#ifndef PRIVELET_MATRIX_TILE_BUFFER_H_
#define PRIVELET_MATRIX_TILE_BUFFER_H_

#include <algorithm>
#include <cstddef>

#include "privelet/common/aligned_buffer.h"
#include "privelet/common/residency.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::matrix {

/// Decomposes lines [first, first + count) along an axis with the given
/// stride into maximal runs of lines with consecutive base addresses
/// (lines sharing an outer block of `stride * axis_dim` elements), calling
/// fn(base, col, run) per run: `base` is the flat index of the run's first
/// line, `col` its offset within [first, first + count), `run` its length
/// (<= stride). The shared geometry under TileBuffer's panel copies and
/// PrefixSumTable's tiled running sums.
template <typename Fn>
void ForEachLineRun(std::size_t stride, std::size_t axis_dim,
                    std::size_t first, std::size_t count, Fn&& fn) {
  std::size_t line = first;
  std::size_t col = 0;
  while (col < count) {
    const std::size_t run = std::min(count - col, stride - (line % stride));
    const std::size_t base =
        (line / stride) * (stride * axis_dim) + (line % stride);
    fn(base, col, run);
    line += run;
    col += run;
  }
}

class TileBuffer {
 public:
  /// Grows the panel to hold `count` lines of `line_len` elements and
  /// returns its storage (64-byte aligned, so the vector kernels operate
  /// on aligned panels). Never shrinks, so pooled buffers stop allocating
  /// once they have seen the largest panel. Contents are unspecified
  /// after a growing call — every consumer gathers or writes the panel
  /// before reading it.
  double* Prepare(std::size_t line_len, std::size_t count);

  /// Gathers lines [first, first + count) of `m` along `axis` into the
  /// panel in interleaved layout. Requires first + count <= m.NumLines(axis).
  ///
  /// A non-null `governor` is charged the page-granular bytes each axis
  /// step touches, *as the step happens*. A strided panel maps one page of
  /// `m` per step — axis_dim pages before the copy loop finishes — so
  /// out-of-core callers must pace releases inside the loop or the panel
  /// blows through any byte budget before an end-of-panel charge could
  /// fire. Releasing mid-gather is safe: evicted pages re-fault from the
  /// page cache with their values intact.
  void Gather(const FrequencyMatrix& m, std::size_t axis, std::size_t first,
              std::size_t count,
              common::ResidencyGovernor* governor = nullptr);

  /// Writes the panel (same geometry as the matching Gather/Prepare) into
  /// lines [first, first + count) of `m` along `axis`. The panel must hold
  /// m.dim(axis) * count elements. `governor` paces releases per axis step
  /// exactly as in Gather (dirty pages survive MADV_DONTNEED on the shared
  /// scratch mappings release-behind targets).
  void Scatter(FrequencyMatrix& m, std::size_t axis, std::size_t first,
               std::size_t count,
               common::ResidencyGovernor* governor = nullptr) const;

  double* panel() { return panel_.data(); }
  const double* panel() const { return panel_.data(); }

 private:
  common::AlignedBuffer<double> panel_;
};

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_TILE_BUFFER_H_
