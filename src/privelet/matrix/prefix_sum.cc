#include "privelet/matrix/prefix_sum.h"

namespace privelet::matrix {

template class PrefixSumTable<long double>;
template class PrefixSumTable<std::int64_t>;

}  // namespace privelet::matrix
