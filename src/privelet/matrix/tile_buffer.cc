#include "privelet/matrix/tile_buffer.h"

#include <algorithm>

#include "privelet/common/check.h"

namespace privelet::matrix {

double* TileBuffer::Prepare(std::size_t line_len, std::size_t count) {
  return panel_.Grow(line_len * count);
}

void TileBuffer::Gather(const FrequencyMatrix& m, std::size_t axis,
                        std::size_t first, std::size_t count,
                        common::ResidencyGovernor* governor) {
  PRIVELET_DCHECK(first + count <= m.NumLines(axis), "panel out of range");
  const std::size_t len = m.dim(axis);
  const std::size_t stride = m.Stride(axis);
  double* panel = Prepare(len, count);
  const double* values = m.values().data();
  // Every run's lines have consecutive base addresses, so each std::copy
  // moves a contiguous span of up to `stride` elements.
  ForEachLineRun(stride, len, first, count,
                 [&](std::size_t base, std::size_t col, std::size_t run) {
                   if (governor == nullptr) {
                     for (std::size_t k = 0; k < len; ++k) {
                       const double* src = values + base + k * stride;
                       std::copy(src, src + run, panel + k * count + col);
                     }
                     return;
                   }
                   const std::size_t step_bytes = common::PageTouchedBytes(
                       1, stride, run, sizeof(double));
                   for (std::size_t k = 0; k < len; ++k) {
                     const double* src = values + base + k * stride;
                     std::copy(src, src + run, panel + k * count + col);
                     governor->OnBytesProcessed(step_bytes);
                   }
                 });
}

void TileBuffer::Scatter(FrequencyMatrix& m, std::size_t axis,
                         std::size_t first, std::size_t count,
                         common::ResidencyGovernor* governor) const {
  PRIVELET_DCHECK(first + count <= m.NumLines(axis), "panel out of range");
  const std::size_t len = m.dim(axis);
  const std::size_t stride = m.Stride(axis);
  PRIVELET_DCHECK(panel_.size() >= len * count, "panel too small");
  const double* panel = panel_.data();
  double* values = m.values().data();
  ForEachLineRun(stride, len, first, count,
                 [&](std::size_t base, std::size_t col, std::size_t run) {
                   if (governor == nullptr) {
                     for (std::size_t k = 0; k < len; ++k) {
                       const double* src = panel + k * count + col;
                       std::copy(src, src + run, values + base + k * stride);
                     }
                     return;
                   }
                   const std::size_t step_bytes = common::PageTouchedBytes(
                       1, stride, run, sizeof(double));
                   for (std::size_t k = 0; k < len; ++k) {
                     const double* src = panel + k * count + col;
                     std::copy(src, src + run, values + base + k * stride);
                     governor->OnBytesProcessed(step_bytes);
                   }
                 });
}

}  // namespace privelet::matrix
