// Binary serialization of bare frequency matrices — the minimal
// interchange format for a noisy (or exact) matrix on its own. Complete
// releases are persisted as PVLS snapshots instead (storage/snapshot.h),
// which wrap a matrix together with its schema, provenance, and
// prefix-sum table; PVLM remains for matrix-only tooling and tests.
//
// PVLM format v1 (little-endian): magic "PVLM", u32 version, u32
// num_dims (1..64), u64 dims[num_dims] (each >= 1), f64
// values[product(dims)].
//
// ReadMatrix validates the header defensively: dimension counts and
// sizes are bounds-checked, the dimension product is checked for
// overflow, and the claimed payload must fit in the file before any
// allocation happens — corrupt or truncated files are reported as
// Status errors, never crashes or pathological allocations.
#ifndef PRIVELET_MATRIX_MATRIX_IO_H_
#define PRIVELET_MATRIX_MATRIX_IO_H_

#include <string>

#include "privelet/common/result.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::matrix {

/// Writes `m` to `path`, overwriting any existing file.
Status WriteMatrix(const std::string& path, const FrequencyMatrix& m);

/// Reads a matrix previously written by WriteMatrix.
Result<FrequencyMatrix> ReadMatrix(const std::string& path);

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_MATRIX_IO_H_
