// Binary serialization of frequency matrices — the artifact a publishing
// pipeline actually releases (and the input analysts load).
//
// Format (little-endian): magic "PVLM", u32 version, u32 num_dims,
// u64 dims[num_dims], f64 values[product(dims)].
#ifndef PRIVELET_MATRIX_MATRIX_IO_H_
#define PRIVELET_MATRIX_MATRIX_IO_H_

#include <string>

#include "privelet/common/result.h"
#include "privelet/matrix/frequency_matrix.h"

namespace privelet::matrix {

/// Writes `m` to `path`, overwriting any existing file.
Status WriteMatrix(const std::string& path, const FrequencyMatrix& m);

/// Reads a matrix previously written by WriteMatrix.
Result<FrequencyMatrix> ReadMatrix(const std::string& path);

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_MATRIX_IO_H_
