// FrequencyMatrix: dense d-dimensional array of doubles — the lowest level
// of the data cube (paper Sec. II-B). Entry <x1,...,xd> counts the tuples
// with those attribute values; noisy matrices produced by the mechanisms
// reuse the same type. Also used for intermediate wavelet-coefficient
// matrices, whose axes may be longer than the data axes (the nominal
// transform is over-complete).
#ifndef PRIVELET_MATRIX_FREQUENCY_MATRIX_H_
#define PRIVELET_MATRIX_FREQUENCY_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "privelet/common/check.h"
#include "privelet/data/table.h"

namespace privelet::matrix {

/// Dense row-major d-dimensional matrix (last axis contiguous).
class FrequencyMatrix {
 public:
  FrequencyMatrix() = default;

  /// Zero-filled matrix with the given per-axis sizes (all >= 1).
  explicit FrequencyMatrix(std::vector<std::size_t> dims);

  /// Number of axes d (= the schema's attribute count for data matrices).
  std::size_t num_dims() const { return dims_.size(); }
  /// Per-axis sizes, in attribute order.
  const std::vector<std::size_t>& dims() const { return dims_; }
  /// Size of one axis.
  std::size_t dim(std::size_t axis) const { return dims_[axis]; }

  /// Total number of entries (the paper's m for data matrices).
  std::size_t size() const { return values_.size(); }

  /// Entry at a row-major flat index (no bounds check in release builds).
  double operator[](std::size_t flat) const { return values_[flat]; }
  double& operator[](std::size_t flat) { return values_[flat]; }

  /// The flat row-major storage; mutable access is how transforms and
  /// deserializers write in place.
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Row-major flat index of a coordinate vector.
  std::size_t FlatIndex(std::span<const std::size_t> coords) const;

  /// Inverse of FlatIndex.
  std::vector<std::size_t> Coords(std::size_t flat) const;

  double At(std::span<const std::size_t> coords) const {
    return values_[FlatIndex(coords)];
  }
  double& At(std::span<const std::size_t> coords) {
    return values_[FlatIndex(coords)];
  }

  /// Stride (in flat elements) between consecutive entries along `axis`.
  std::size_t Stride(std::size_t axis) const { return strides_[axis]; }

  /// Number of 1-D lines along `axis` (= size / dims[axis]).
  std::size_t NumLines(std::size_t axis) const;

  /// Flat index of the first element of the `line`-th line along `axis`.
  /// Elements of the line are then base, base + stride, base + 2*stride, ...
  /// Lines are numbered so that two matrices differing only in the length
  /// of `axis` enumerate corresponding lines with the same line index.
  std::size_t LineBase(std::size_t axis, std::size_t line) const;

  /// Copies the `line`-th line along `axis` into `out` (length dims[axis]).
  void GatherLine(std::size_t axis, std::size_t line, double* out) const;

  /// Writes `in` (length dims[axis]) into the `line`-th line along `axis`.
  void ScatterLine(std::size_t axis, std::size_t line, const double* in);

  /// Builds the frequency matrix of a table: dims = attribute domain
  /// sizes; entry = number of tuples with those values. O(n + m).
  static FrequencyMatrix FromTable(const data::Table& table);

  /// Sum of all entries (== n for a table-derived matrix).
  double Total() const;

 private:
  std::vector<std::size_t> dims_;
  std::vector<std::size_t> strides_;
  std::vector<double> values_;
};

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_FREQUENCY_MATRIX_H_
