// FrequencyMatrix: dense d-dimensional array of doubles — the lowest level
// of the data cube (paper Sec. II-B). Entry <x1,...,xd> counts the tuples
// with those attribute values; noisy matrices produced by the mechanisms
// reuse the same type. Also used for intermediate wavelet-coefficient
// matrices, whose axes may be longer than the data axes (the nominal
// transform is over-complete).
//
// Storage comes in two flavors behind one interface:
//   * owned   — a std::vector<double> (the default; in-core publish path).
//   * scratch — a writable common::MappedFile over an unlinked temp file
//     (CreateScratch; out-of-core publish path). Same layout, same
//     arithmetic; the only extra capability is ReleaseResidency(), which
//     lets streaming passes evict already-processed pages so peak RSS
//     stays bounded by the memory budget instead of the domain size.
#ifndef PRIVELET_MATRIX_FREQUENCY_MATRIX_H_
#define PRIVELET_MATRIX_FREQUENCY_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "privelet/common/check.h"
#include "privelet/common/file_mapping.h"
#include "privelet/common/result.h"
#include "privelet/data/table.h"
#include "privelet/matrix/engine.h"

namespace privelet::matrix {

namespace detail {

// Storage allocator for vector-backed matrices: 64-byte aligned (cache
// line / widest dispatched vector register, matching
// common::AlignedBuffer) and default-initializing, so resize() without a
// value performs no zero-fill. Explicit fills (assign, the (n, value)
// constructor, range copies) still write every element — only
// FrequencyMatrix::Uninitialized relies on the no-fill resize.
template <typename T>
struct MatrixAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  MatrixAllocator() = default;
  template <typename U>
  MatrixAllocator(const MatrixAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }
  template <typename U>
  void construct(U* p) noexcept {
    ::new (static_cast<void*>(p)) U;  // default-init: no fill for double
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
  bool operator==(const MatrixAllocator&) const { return true; }
  bool operator!=(const MatrixAllocator&) const { return false; }
};

}  // namespace detail

/// Dense row-major d-dimensional matrix (last axis contiguous).
class FrequencyMatrix {
 public:
  FrequencyMatrix() = default;

  /// Zero-filled vector-backed matrix with the given per-axis sizes
  /// (all >= 1).
  explicit FrequencyMatrix(std::vector<std::size_t> dims);

  /// Vector-backed matrix whose entries are left uninitialized. Strictly
  /// an allocation-cost optimization for callers that overwrite every
  /// entry before any read — e.g. the HN axis passes, where each pass
  /// writes all out_len elements of every line of its destination.
  /// Reading an entry before writing it is undefined behavior, so prefer
  /// the zero-filled constructor unless the full overwrite is structural.
  static FrequencyMatrix Uninitialized(std::vector<std::size_t> dims);

  /// Zero-filled matrix backed by an unlinked mmap scratch file under
  /// `scratch_dir` (empty -> $TMPDIR, then /tmp). Identical semantics to
  /// the vector-backed constructor; additionally supports
  /// ReleaseResidency(). Fails with IOError when the scratch file cannot
  /// be created or mapped.
  static Result<FrequencyMatrix> CreateScratch(
      std::vector<std::size_t> dims, const std::string& scratch_dir = "");

  /// Copying always lands in an owned vector (scratch-ness is a property
  /// of how a matrix was created, not of its values). Moves transfer the
  /// backing as-is.
  FrequencyMatrix(const FrequencyMatrix& other);
  FrequencyMatrix& operator=(const FrequencyMatrix& other);
  FrequencyMatrix(FrequencyMatrix&& other) noexcept;
  FrequencyMatrix& operator=(FrequencyMatrix&& other) noexcept;
  ~FrequencyMatrix() = default;

  /// Number of axes d (= the schema's attribute count for data matrices).
  std::size_t num_dims() const { return dims_.size(); }
  /// Per-axis sizes, in attribute order.
  const std::vector<std::size_t>& dims() const { return dims_; }
  /// Size of one axis.
  std::size_t dim(std::size_t axis) const { return dims_[axis]; }

  /// Total number of entries (the paper's m for data matrices).
  std::size_t size() const { return size_; }

  /// Entry at a row-major flat index (no bounds check in release builds).
  double operator[](std::size_t flat) const { return data_[flat]; }
  double& operator[](std::size_t flat) { return data_[flat]; }

  /// The flat row-major storage; mutable access is how transforms and
  /// deserializers write in place. Spans stay valid until the matrix is
  /// destroyed, moved from, or assigned over.
  std::span<const double> values() const { return {data_, size_}; }
  std::span<double> values() { return {data_, size_}; }

  /// True when the entries live in an mmap scratch file (CreateScratch).
  bool is_scratch() const { return scratch_.size() > 0; }

  /// Asks the kernel to drop resident pages of a scratch-backed matrix
  /// (data is preserved; see common::MappedFile::ReleaseResidency). No-op
  /// for vector-backed matrices. Safe to call concurrently with readers
  /// and writers.
  void ReleaseResidency() const { scratch_.ReleaseResidency(); }

  /// Row-major flat index of a coordinate vector.
  std::size_t FlatIndex(std::span<const std::size_t> coords) const;

  /// Inverse of FlatIndex.
  std::vector<std::size_t> Coords(std::size_t flat) const;

  double At(std::span<const std::size_t> coords) const {
    return data_[FlatIndex(coords)];
  }
  double& At(std::span<const std::size_t> coords) {
    return data_[FlatIndex(coords)];
  }

  /// Stride (in flat elements) between consecutive entries along `axis`.
  std::size_t Stride(std::size_t axis) const { return strides_[axis]; }

  /// Number of 1-D lines along `axis` (= size / dims[axis]).
  std::size_t NumLines(std::size_t axis) const;

  /// Flat index of the first element of the `line`-th line along `axis`.
  /// Elements of the line are then base, base + stride, base + 2*stride, ...
  /// Lines are numbered so that two matrices differing only in the length
  /// of `axis` enumerate corresponding lines with the same line index.
  std::size_t LineBase(std::size_t axis, std::size_t line) const;

  /// Copies the `line`-th line along `axis` into `out` (length dims[axis]).
  void GatherLine(std::size_t axis, std::size_t line, double* out) const;

  /// Writes `in` (length dims[axis]) into the `line`-th line along `axis`.
  void ScatterLine(std::size_t axis, std::size_t line, const double* in);

  /// Builds the frequency matrix of a table: dims = attribute domain
  /// sizes; entry = number of tuples with those values. O(n + m).
  static FrequencyMatrix FromTable(const data::Table& table);

  /// FromTable honoring `options`: with options.out_of_core() the counts
  /// land in a scratch-backed matrix and residency is released as rows
  /// stream in; otherwise identical to the in-core FromTable.
  static Result<FrequencyMatrix> FromTable(
      const data::Table& table, const EngineOptions& options);

  /// Sum of all entries (== n for a table-derived matrix).
  double Total() const;

 private:
  void InitStrides();

  std::vector<std::size_t> dims_;
  std::vector<std::size_t> strides_;
  // Exactly one of owned_ / scratch_ backs data_ (both empty for a
  // default-constructed matrix). 64-byte aligned so the vector kernels'
  // direct-to-matrix (strided panel) paths see the same alignment as
  // TileBuffer panels.
  std::vector<double, detail::MatrixAllocator<double>> owned_;
  common::MappedFile scratch_;
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Element-wise equality of two value spans (bit-exact, the comparison the
/// determinism tests rely on). A plain == on spans would compare pointers.
inline bool ValuesEqual(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace privelet::matrix

#endif  // PRIVELET_MATRIX_FREQUENCY_MATRIX_H_
