// The network serving daemon: a sharded epoll TCP front end over
// query::ReleaseStore, speaking the protocol in protocol.h (text and
// length-prefixed binary framings on one port). This is the ROADMAP's
// "real server" over the zero-copy serving tip — `privelet_cli daemon`
// is a thin wrapper around this class.
//
// Threading model: `num_loops` event loops (default: one per hardware
// thread; 1 reproduces the old single-loop daemon exactly), each owning
// its own epoll instance and its accepted connections — connection state
// is never shared, so request handling needs no locks. Connections reach
// the loops through per-loop SO_REUSEPORT listeners (the kernel spreads
// accepts across the listen sockets); where REUSEPORT is unavailable —
// or when ServerOptions::accept_mode forces it — loop 0 is the single
// acceptor and hands accepted fds to the other loops round-robin over a
// per-loop eventfd. A request's AnswerAll still fans its batch across
// the store's worker pool; batches past `compile_batch_threshold` are
// pre-resolved into a query::CompiledWorkload and evaluated through the
// dispatched SIMD gather kernels (bit-identical to the per-query scalar
// walk — docs/DETERMINISM.md). Each loop also keeps small per-release
// LRU answer caches (canonical predicate bytes -> answer), invalidated
// by the store's Rebind generation, so hot repeated queries skip the
// table walk. Pipelining is free: clients may send many requests back to
// back; a loop answers them in order, up to `max_pipeline` per
// connection per cycle before its other connections get a turn.
//
// Observability: per-loop counters are plain relaxed atomics and latency
// histograms are lock-free ConcurrentHistograms; stats() and the STATS
// verb merge them (LatencyHistogram::Merge) without stopping any loop.
//
// Admission control / backpressure: a connection's unparsed input is
// capped at `max_request_bytes` (a line or frame larger than that poisons
// the connection); buffered responses are capped at
// `max_buffered_bytes` — a slow client that lets half the cap accumulate
// stops being *read* (requests queue in its socket, then in its sender)
// until the buffer drains, and one that exceeds the full cap is dropped.
// `max_connections` caps the open connections across all loops.
//
// Shutdown: Shutdown() is async-signal-safe (one write to each loop's
// wake pipe), so SIGINT/SIGTERM handlers may call it directly; Run()
// then flushes what it can without blocking, closes every connection,
// and returns. Hot swap: the RELOAD verb rebinds a release id through
// ReleaseStore::Rebind — in-flight borrowers on any loop keep their
// session, later requests see the new file (and every loop's answer
// cache for the id dies on the generation bump).
//
// All public methods other than Shutdown() must be called from one thread
// (Start, then Run; accessors after Start). stats() is thread-safe.
#ifndef PRIVELET_SERVING_SERVER_H_
#define PRIVELET_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/stopwatch.h"
#include "privelet/query/release_store.h"
#include "privelet/serving/answer_cache.h"
#include "privelet/serving/concurrent_histogram.h"
#include "privelet/serving/latency_histogram.h"
#include "privelet/serving/protocol.h"

namespace privelet::serving {

struct ServerOptions {
  /// How accepted connections are distributed across the event loops.
  /// kAuto uses per-loop SO_REUSEPORT listeners when the platform has
  /// them and falls back to the single-acceptor eventfd handoff
  /// otherwise; the explicit modes force one path (kReusePort fails
  /// Start() where unsupported). Irrelevant at num_loops = 1.
  enum class AcceptMode { kAuto, kReusePort, kHandoff };

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound port with port()
  int backlog = 128;
  std::size_t max_connections = 256;
  /// Pipelined requests answered per connection per event-loop cycle
  /// before other connections are serviced.
  std::size_t max_pipeline = 64;
  /// Cap on one connection's unparsed input bytes.
  std::size_t max_request_bytes = std::size_t{1} << 20;
  /// Cap on one connection's buffered response bytes; reads pause at half
  /// of this, the connection is dropped when it is exceeded.
  std::size_t max_buffered_bytes = std::size_t{4} << 20;
  /// Sharded event loops; 0 = one per hardware thread. 1 preserves the
  /// single-loop daemon exactly.
  std::size_t num_loops = 0;
  AcceptMode accept_mode = AcceptMode::kAuto;
  /// Per-release, per-loop bound on the repeated-query answer cache;
  /// 0 disables caching.
  std::size_t answer_cache_entries = 1024;
  /// Batches with at least this many uncached queries are evaluated
  /// through the compiled-workload SIMD path; smaller ones (and 0,
  /// disabling it) take the per-query scalar walk. Answers are
  /// bit-identical either way.
  std::size_t compile_batch_threshold = 8;
};

/// Monotonic counters since Start(), summed over the loops (a snapshot;
/// thread-safe).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< closed for cap violations
  std::uint64_t requests = 0;             ///< all verbs, both framings
  std::uint64_t failures = 0;             ///< error responses sent
  std::uint64_t queries = 0;              ///< individual queries answered
  std::uint64_t reloads = 0;              ///< successful RELOADs
  std::uint64_t answer_cache_hits = 0;    ///< queries served from cache
};

class Server {
 public:
  /// `store` is not owned and must outlive the server. Release ids are
  /// whatever has been Register()ed (RELOAD can add more at runtime).
  Server(query::ReleaseStore* store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. After an OK return, port() is the bound port and
  /// num_loops() the resolved loop count.
  Status Start();

  /// The bound TCP port (valid after Start).
  std::uint16_t port() const { return port_; }

  /// The resolved event-loop count (valid after Start).
  std::size_t num_loops() const { return num_loops_; }

  /// Serves until Shutdown() or a fatal error. Blocks the calling thread
  /// (which drives loop 0; loops 1..N-1 run on internal threads).
  Status Run();

  /// Requests Run() to drain and return. Async-signal-safe and
  /// idempotent; callable from any thread or from a signal handler.
  void Shutdown();

  ServerStats stats() const;

 private:
  enum class Mode : std::uint8_t { kUnknown, kText, kBinary };

  struct Connection {
    int fd = -1;
    Mode mode = Mode::kUnknown;
    std::string in;        ///< received, not yet parsed (from in_head)
    std::size_t in_head = 0;
    std::string out;       ///< encoded, not yet sent (from out_head)
    std::size_t out_head = 0;
    bool want_close = false;   ///< close once out drains
    bool reading = true;       ///< EPOLLIN armed
    bool writing = false;      ///< EPOLLOUT armed
    // Text BATCH in progress: id + predicate lines collected so far.
    std::string batch_id;
    std::size_t batch_expected = 0;
    std::vector<std::string> batch_lines;
  };

  /// One loop's counters: relaxed atomics, written only by the owning
  /// loop, summed lock-free by stats().
  struct LoopCounters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_dropped{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> reloads{0};
    std::atomic<std::uint64_t> answer_cache_hits{0};
  };

  /// Everything one event loop owns. Connection state, ready list,
  /// answer caches, and the latency-slot cache are touched only by the
  /// owning loop thread; the counters/histograms are lock-free for
  /// cross-thread readers; the handoff queue is the one mutex-guarded
  /// hand-over point (single-acceptor mode only).
  struct EventLoop {
    std::size_t index = 0;
    int epoll_fd = -1;
    int listen_fd = -1;   ///< per-loop listener; -1 on loops >0 in handoff
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    int handoff_fd = -1;  ///< eventfd pinged by the acceptor (handoff mode)
    std::mutex handoff_mu;
    std::vector<int> handoff_queue;  ///< accepted fds parked for this loop
    std::map<int, std::unique_ptr<Connection>> connections;
    std::vector<int> ready;  ///< fds with buffered complete requests
    LoopCounters counters;
    ConcurrentHistogram all_latency;
    /// Loop-local pointer cache into release_latency_ (one find-or-create
    /// lock per release per loop; the hot path is lock-free after that).
    std::map<std::string, ConcurrentHistogram*> latency_slots;
    /// Loop-local per-release answer caches.
    std::map<std::string, AnswerCache> caches;
  };

  Status SetupLoop(EventLoop& loop);
  Status SetupListener(EventLoop& loop, bool reuse_port);
  Status RunLoop(EventLoop& loop);
  void AcceptPending(EventLoop& loop);
  void AdoptConnection(EventLoop& loop, int fd);
  void AdoptHandoff(EventLoop& loop);
  void OnReadable(EventLoop& loop, Connection& conn);
  void ProcessConnection(EventLoop& loop, Connection& conn);
  bool ProcessText(EventLoop& loop, Connection& conn, std::size_t* budget);
  bool ProcessBinary(EventLoop& loop, Connection& conn, std::size_t* budget);
  void HandleTextLine(EventLoop& loop, Connection& conn,
                      std::string_view line);
  void FinishTextBatch(EventLoop& loop, Connection& conn);
  void HandleBinaryRequest(EventLoop& loop, Connection& conn,
                           const BinaryRequest& request);
  /// Acquire + answer one batch, recording latency and counters.
  Result<std::vector<double>> AnswerTextQueries(
      EventLoop& loop, const std::string& id,
      std::span<const std::string> lines);
  Result<std::vector<double>> AnswerSpecQueries(
      EventLoop& loop, const std::string& id,
      std::span<const QuerySpec> specs);
  template <typename BuildQueries>
  Result<std::vector<double>> AnswerTimed(EventLoop& loop,
                                          const std::string& id,
                                          const BuildQueries& build);
  /// Scalar per-query walk below the compile threshold, compiled SIMD
  /// evaluation at or above it.
  std::vector<double> Evaluate(const query::PublishingSession& session,
                               std::span<const query::RangeQuery> queries);
  ConcurrentHistogram* LatencySlot(EventLoop& loop, const std::string& id);
  Result<std::string> DoReload(EventLoop& loop, const std::string& id,
                               const std::string& path);
  std::string RenderStatsText();
  std::string RenderIdsText();

  void AppendTextHeader(Connection& conn, std::size_t payload_lines);
  void AppendTextAnswers(Connection& conn, std::span<const double> answers);
  void AppendTextError(EventLoop& loop, Connection& conn,
                       const Status& status);

  void FlushConnection(Connection& conn);
  void UpdateInterest(EventLoop& loop, Connection& conn);
  void CloseConnection(EventLoop& loop, int fd);
  std::size_t OutPending(const Connection& conn) const {
    return conn.out.size() - conn.out_head;
  }

  query::ReleaseStore* const store_;
  const ServerOptions options_;

  std::size_t num_loops_ = 1;  ///< resolved by Start()
  bool handoff_ = false;       ///< single-acceptor fd handoff in effect
  /// Loop slots are allocated and wired in Start() and structurally
  /// immutable afterwards — Shutdown() (possibly from a signal handler)
  /// only reads wake fds written before Run() began.
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> open_connections_{0};
  std::size_t accept_rr_ = 0;  ///< handoff round-robin; acceptor loop only
  Stopwatch uptime_;

  /// id -> one ConcurrentHistogram per loop (index-aligned with loops_).
  /// The mutex guards only the map structure; recording goes through the
  /// per-loop slots without it.
  mutable std::mutex release_latency_mu_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram[]>>
      release_latency_;
};

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_SERVER_H_
