// The network serving daemon: an epoll-based concurrent TCP front end
// over query::ReleaseStore, speaking the protocol in protocol.h (text and
// length-prefixed binary framings on one port). This is the ROADMAP's
// "real server" over the zero-copy serving tip — `privelet_cli daemon`
// is a thin wrapper around this class.
//
// Threading model: one event-loop thread (the caller of Run()) owns every
// connection and executes requests inline — a request's AnswerAll still
// fans its batch across the store's worker pool, so large batches use the
// machine while the loop stays single-writer over connection state.
// Pipelining is free: clients may send many requests back to back; the
// loop answers them in order, up to `max_pipeline` per connection per
// cycle before other connections get a turn.
//
// Admission control / backpressure: a connection's unparsed input is
// capped at `max_request_bytes` (a line or frame larger than that poisons
// the connection); buffered responses are capped at
// `max_buffered_bytes` — a slow client that lets half the cap accumulate
// stops being *read* (requests queue in its socket, then in its sender)
// until the buffer drains, and one that exceeds the full cap is dropped.
//
// Shutdown: Shutdown() is async-signal-safe (one write to a wake pipe),
// so SIGINT/SIGTERM handlers may call it directly; Run() then flushes
// what it can without blocking, closes every connection, and returns.
// Hot swap: the RELOAD verb rebinds a release id through
// ReleaseStore::Rebind — in-flight borrowers keep their session, later
// requests see the new file.
//
// All public methods other than Shutdown() must be called from one thread
// (Start, then Run; accessors after Start). stats() is thread-safe.
#ifndef PRIVELET_SERVING_SERVER_H_
#define PRIVELET_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/stopwatch.h"
#include "privelet/query/release_store.h"
#include "privelet/serving/latency_histogram.h"
#include "privelet/serving/protocol.h"

namespace privelet::serving {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound port with port()
  int backlog = 128;
  std::size_t max_connections = 256;
  /// Pipelined requests answered per connection per event-loop cycle
  /// before other connections are serviced.
  std::size_t max_pipeline = 64;
  /// Cap on one connection's unparsed input bytes.
  std::size_t max_request_bytes = std::size_t{1} << 20;
  /// Cap on one connection's buffered response bytes; reads pause at half
  /// of this, the connection is dropped when it is exceeded.
  std::size_t max_buffered_bytes = std::size_t{4} << 20;
};

/// Monotonic counters since Start() (a snapshot; thread-safe).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< closed for cap violations
  std::uint64_t requests = 0;             ///< all verbs, both framings
  std::uint64_t failures = 0;             ///< error responses sent
  std::uint64_t queries = 0;              ///< individual queries answered
  std::uint64_t reloads = 0;              ///< successful RELOADs
};

class Server {
 public:
  /// `store` is not owned and must outlive the server. Release ids are
  /// whatever has been Register()ed (RELOAD can add more at runtime).
  Server(query::ReleaseStore* store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. After an OK return, port() is the bound port.
  Status Start();

  /// The bound TCP port (valid after Start).
  std::uint16_t port() const { return port_; }

  /// Serves until Shutdown() or a fatal error. Blocks the calling thread.
  Status Run();

  /// Requests Run() to drain and return. Async-signal-safe and
  /// idempotent; callable from any thread or from a signal handler.
  void Shutdown();

  ServerStats stats() const;

 private:
  enum class Mode : std::uint8_t { kUnknown, kText, kBinary };

  struct Connection {
    int fd = -1;
    Mode mode = Mode::kUnknown;
    std::string in;        ///< received, not yet parsed (from in_head)
    std::size_t in_head = 0;
    std::string out;       ///< encoded, not yet sent (from out_head)
    std::size_t out_head = 0;
    bool want_close = false;   ///< close once out drains
    bool reading = true;       ///< EPOLLIN armed
    bool writing = false;      ///< EPOLLOUT armed
    // Text BATCH in progress: id + predicate lines collected so far.
    std::string batch_id;
    std::size_t batch_expected = 0;
    std::vector<std::string> batch_lines;
  };

  Status SetupListener();
  Status RunLoop();
  void AcceptPending();
  void OnReadable(Connection& conn);
  void ProcessConnection(Connection& conn);
  bool ProcessText(Connection& conn, std::size_t* budget);
  bool ProcessBinary(Connection& conn, std::size_t* budget);
  void HandleTextLine(Connection& conn, std::string_view line);
  void FinishTextBatch(Connection& conn);
  void HandleBinaryRequest(Connection& conn, const BinaryRequest& request);
  /// Acquire + answer one batch, recording latency and counters.
  Result<std::vector<double>> AnswerTextQueries(
      const std::string& id, std::span<const std::string> lines);
  Result<std::vector<double>> AnswerSpecQueries(
      const std::string& id, std::span<const QuerySpec> specs);
  template <typename BuildQueries>
  Result<std::vector<double>> AnswerTimed(const std::string& id,
                                          const BuildQueries& build);
  Result<std::string> DoReload(const std::string& id, const std::string& path);
  std::string RenderStatsText();
  std::string RenderIdsText();

  void AppendTextHeader(Connection& conn, std::size_t payload_lines);
  void AppendTextAnswers(Connection& conn, std::span<const double> answers);
  void AppendTextError(Connection& conn, const Status& status);

  void FlushConnection(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  std::size_t OutPending(const Connection& conn) const {
    return conn.out.size() - conn.out_head;
  }

  query::ReleaseStore* const store_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  // Event-loop-thread state (no locking: single owner).
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::vector<int> ready_;  ///< fds with buffered complete requests
  LatencyHistogram all_latency_;
  std::map<std::string, LatencyHistogram> release_latency_;
  Stopwatch uptime_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_SERVER_H_
