// Lock-free sibling of LatencyHistogram for the sharded daemon: every
// event loop records into its own ConcurrentHistogram with relaxed
// atomic increments (no contention on the hot path — each loop touches
// only its own instance; the atomics exist so the STATS renderer, which
// may run on any loop, can read a consistent-enough snapshot without a
// lock). SnapshotInto drains the counters into a plain LatencyHistogram;
// the per-loop snapshots then combine via LatencyHistogram::Merge.
//
// Snapshot semantics under concurrent Record: each bucket counter is read
// exactly once, and the reported sample count is the sum of the bucket
// reads — so quantile math always sees a self-consistent mass even when
// a Record lands mid-snapshot. `sum` and `max` are read separately and
// may trail the buckets by in-flight samples; they feed only the mean and
// max display, where a one-sample skew is invisible.
#ifndef PRIVELET_SERVING_CONCURRENT_HISTOGRAM_H_
#define PRIVELET_SERVING_CONCURRENT_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "privelet/serving/latency_histogram.h"

namespace privelet::serving {

class ConcurrentHistogram {
 public:
  ConcurrentHistogram() = default;
  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  /// Adds one sample. Wait-free apart from the max CAS (which retries
  /// only while another thread is publishing a larger maximum).
  void Record(std::uint64_t value) {
    buckets_[LatencyHistogram::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Accumulates the current counters into `out` (without clearing them;
  /// the daemon's histograms are monotonic since Start).
  void SnapshotInto(LatencyHistogram* out) const {
    std::array<std::uint64_t, LatencyHistogram::kNumBuckets> counts;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    out->AccumulateBuckets(counts, sum_.load(std::memory_order_relaxed),
                           max_.load(std::memory_order_relaxed));
  }

  /// The current counters as a plain histogram.
  LatencyHistogram Snapshot() const {
    LatencyHistogram out;
    SnapshotInto(&out);
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kNumBuckets>
      buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_CONCURRENT_HISTOGRAM_H_
