// Wire protocol of the serving daemon (privelet_cli daemon). One request
// model, two framings over the same TCP stream:
//
// Text mode (default; newline-delimited, nc/telnet-friendly; a trailing
// '\r' is stripped so CRLF clients work). One request per line:
//
//   QUERY <release-id> <predicate...>     one range-count query
//   BATCH <release-id> <n>                then n predicate lines
//   RELOAD <release-id> <snapshot-path>   register or hot-swap a release
//   STATS                                 counters + latency histograms
//   IDS                                   registered release ids
//   PING                                  liveness probe
//   QUIT                                  server closes the connection
//
// Predicates use the workload-file syntax (tools/privelet_cli): `*` (no
// predicates), `name=lo:hi` (inclusive ordinal range), `name@node`
// (hierarchy subtree). Every response is one header line — `ok <n>` or
// `error: <message>` — followed by exactly n payload lines, so responses
// are parseable without knowing which verb they answer. QUERY/BATCH
// payload lines are `%.17g` answers, bit-identical to `privelet_cli
// query` output for the same release.
//
// Binary mode: the client's first 4 bytes are the magic "PVB1"; from then
// on both directions speak length-prefixed frames
//
//   [u32 payload_bytes][payload]
//
// with all integers little-endian. Request payloads begin with a verb
// byte (Verb below); responses begin with a status byte (0 = ok,
// 1 = error). See EncodeQueryRequest / DecodeRequest for the exact
// layouts. Query answers are raw IEEE-754 doubles — bit-identical to the
// in-process AnswerAll by construction.
//
// Framing errors (oversized frame, truncated payload) poison the stream
// and the server closes the connection; request-level failures (unknown
// id, bad predicate) are ordinary error responses and the connection
// lives on.
#ifndef PRIVELET_SERVING_PROTOCOL_H_
#define PRIVELET_SERVING_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"

namespace privelet::serving {

inline constexpr char kBinaryMagic[4] = {'P', 'V', 'B', '1'};
/// Hard cap on one frame's payload; a corrupt length field must not drive
/// a pathological allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;
/// Hard cap on queries per QUERY/BATCH request (admission control: one
/// request is answered as one pooled batch).
inline constexpr std::uint32_t kMaxQueriesPerRequest = 1u << 20;

enum class Verb : std::uint8_t {
  kQuery = 1,
  kReload = 2,
  kStats = 3,
  kPing = 4,
  kIds = 5,
};

// ---------------------------------------------------------------------------
// Predicate parsing (shared with the workload-file reader in
// tools/privelet_cli/workload_io.cc — one grammar, one implementation).

/// Parses one whitespace-separated predicate line (`*`, `name=lo:hi`,
/// `name@node` tokens) into a query against `schema`. The line must
/// contain at least one token, and may predicate each attribute at most
/// once; comments/blank handling is the caller's.
Result<query::RangeQuery> ParseQueryLine(const data::Schema& schema,
                                         std::string_view line);

/// Applies one predicate token to `query` (grammar above; `*` is not a
/// predicate and is rejected here).
Status ApplyPredicateToken(const data::Schema& schema, std::string_view token,
                           query::RangeQuery* query);

// ---------------------------------------------------------------------------
// Binary frames. A query travels as schema-independent predicate specs
// (attribute *index* + bounds); the server validates them against the
// release's schema once the session is acquired.

struct PredicateSpec {
  std::uint8_t kind = 0;  ///< 0 = inclusive range, 1 = hierarchy node
  std::uint16_t attr = 0;
  std::uint64_t lo = 0;  ///< node id when kind == 1
  std::uint64_t hi = 0;  ///< unused when kind == 1
};

struct QuerySpec {
  std::vector<PredicateSpec> predicates;
};

/// Builds a validated RangeQuery from a spec (bounds and node ids checked
/// against the schema's domains).
Result<query::RangeQuery> BuildQuery(const data::Schema& schema,
                                     const QuerySpec& spec);

struct BinaryRequest {
  Verb verb = Verb::kPing;
  std::string id;                 ///< kQuery / kReload
  std::string path;               ///< kReload
  std::vector<QuerySpec> queries;  ///< kQuery
};

struct BinaryResponse {
  bool ok = false;
  std::string error;            ///< ok == false
  std::vector<double> answers;  ///< ok QUERY
  std::string text;             ///< ok RELOAD/STATS/PING/IDS payload
};

/// Appends a complete [len][payload] request frame to `out`.
void EncodeQueryRequest(std::string* out, std::string_view id,
                        std::span<const QuerySpec> queries);
void EncodeReloadRequest(std::string* out, std::string_view id,
                         std::string_view path);
void EncodeVerbRequest(std::string* out, Verb verb);  ///< kStats/kPing/kIds

/// Appends a complete [len][payload] response frame to `out`.
void EncodeOkAnswers(std::string* out, std::span<const double> answers);
void EncodeOkText(std::string* out, std::string_view text);
void EncodeErrorResponse(std::string* out, const Status& status);

/// Frame splitter: returns the total frame size (header + payload) when
/// `buf` starts with a complete frame, 0 when more bytes are needed, or
/// InvalidArgument when the declared length exceeds kMaxFrameBytes (the
/// stream is poisoned — close the connection).
Result<std::size_t> PeekFrame(std::string_view buf);

/// Decodes one request payload (the bytes after the length prefix).
Result<BinaryRequest> DecodeRequest(std::string_view payload);
/// Decodes one response payload. The answers/text split follows the
/// status+shape bytes on the wire, not the request verb.
Result<BinaryResponse> DecodeResponse(std::string_view payload);

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_PROTOCOL_H_
