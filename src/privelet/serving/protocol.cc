#include "privelet/serving/protocol.h"

#include <bit>
#include <charconv>
#include <cstring>

namespace privelet::serving {

namespace {

// Builds "'<token>': <detail>" without the `"lit" + std::string(view)`
// pattern that trips GCC 12's -Wrestrict false positive.
Status BadToken(std::string_view token, std::string_view detail) {
  std::string message;
  message.reserve(token.size() + detail.size() + 4);
  message += '\'';
  message += token;
  message += "'";
  message += detail;
  return Status::InvalidArgument(std::move(message));
}

// --- strict numeric parsing -----------------------------------------------
// std::stoull-style parsing silently accepts (and wraps) signed input like
// "-1"; protocol indices are exact client inputs, so only plain digit
// strings are valid.
Result<std::uint64_t> ParseIndex(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    return BadToken(token, " is not an index");
  }
  return value;
}

// --- little-endian primitives ---------------------------------------------

template <typename T>
void PutLE(std::string* out, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double value) {
  PutLE(out, std::bit_cast<std::uint64_t>(value));
}

void PutString16(std::string* out, std::string_view s) {
  PutLE(out, static_cast<std::uint16_t>(s.size()));
  out->append(s);
}

void PutString32(std::string* out, std::string_view s) {
  PutLE(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over one frame payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  template <typename T>
  Result<T> ReadLE(const char* what) {
    static_assert(std::is_unsigned_v<T>);
    if (remaining() < sizeof(T)) return Truncated(what);
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(
          static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> ReadBytes(std::size_t len, const char* what) {
    if (remaining() < len) return Truncated(what);
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  Status Truncated(const char* what) const {
    return Status::InvalidArgument(std::string("frame truncated in ") + what);
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Reserves the 4-byte length prefix in `out` and back-patches it on
/// destruction — every encoder emits one complete frame.
class FrameBuilder {
 public:
  explicit FrameBuilder(std::string* out) : out_(out), start_(out->size()) {
    out_->append(4, '\0');
  }
  ~FrameBuilder() {
    const std::size_t payload = out_->size() - start_ - 4;
    for (std::size_t i = 0; i < 4; ++i) {
      (*out_)[start_ + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
    }
  }

 private:
  std::string* out_;
  std::size_t start_;
};

constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;
constexpr std::uint8_t kShapeAnswers = 0;
constexpr std::uint8_t kShapeText = 1;

}  // namespace

// ---------------------------------------------------------------------------
// Predicate grammar (shared by workload files and the daemon's text mode).

Status ApplyPredicateToken(const data::Schema& schema, std::string_view token,
                           query::RangeQuery* query) {
  const std::size_t eq = token.find('=');
  const std::size_t at = token.find('@');
  if (eq != std::string_view::npos) {
    const std::string_view name = token.substr(0, eq);
    const std::string_view bounds = token.substr(eq + 1);
    const std::size_t colon = bounds.find(':');
    if (colon == std::string_view::npos) {
      return BadToken(token, ": expected name=lo:hi");
    }
    PRIVELET_ASSIGN_OR_RETURN(std::size_t attr, schema.FindAttribute(name));
    // RangeQuery::SetRange silently overwrites; at the text-grammar
    // boundary a repeated attribute is almost certainly a typo, so reject
    // it instead of keeping whichever predicate came last.
    if (query->range(attr).has_value()) {
      return Status::InvalidArgument("duplicate predicate on attribute '" +
                                     std::string(name) + "'");
    }
    PRIVELET_ASSIGN_OR_RETURN(std::uint64_t lo,
                              ParseIndex(bounds.substr(0, colon)));
    PRIVELET_ASSIGN_OR_RETURN(std::uint64_t hi,
                              ParseIndex(bounds.substr(colon + 1)));
    return query->SetRange(schema, attr, static_cast<std::size_t>(lo),
                           static_cast<std::size_t>(hi));
  }
  if (at != std::string_view::npos) {
    const std::string_view name = token.substr(0, at);
    PRIVELET_ASSIGN_OR_RETURN(std::size_t attr, schema.FindAttribute(name));
    if (query->range(attr).has_value()) {
      return Status::InvalidArgument("duplicate predicate on attribute '" +
                                     std::string(name) + "'");
    }
    PRIVELET_ASSIGN_OR_RETURN(std::uint64_t node,
                              ParseIndex(token.substr(at + 1)));
    return query->SetHierarchyNode(schema, attr,
                                   static_cast<std::size_t>(node));
  }
  return BadToken(token, ": expected name=lo:hi or name@node");
}

Result<query::RangeQuery> ParseQueryLine(const data::Schema& schema,
                                         std::string_view line) {
  query::RangeQuery query(schema.num_attributes());
  std::size_t tokens = 0;
  bool star = false;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t begin = line.find_first_not_of(" \t\r", pos);
    if (begin == std::string_view::npos) break;
    std::size_t end = line.find_first_of(" \t\r", begin);
    if (end == std::string_view::npos) end = line.size();
    const std::string_view token = line.substr(begin, end - begin);
    pos = end;
    ++tokens;
    if (token == "*") {
      star = true;
      continue;
    }
    PRIVELET_RETURN_IF_ERROR(ApplyPredicateToken(schema, token, &query));
  }
  if (tokens == 0) {
    return Status::InvalidArgument("query has no predicates (use '*')");
  }
  if (star && tokens > 1) {
    return Status::InvalidArgument("'*' takes no predicates");
  }
  return query;
}

Result<query::RangeQuery> BuildQuery(const data::Schema& schema,
                                     const QuerySpec& spec) {
  query::RangeQuery query(schema.num_attributes());
  for (const PredicateSpec& pred : spec.predicates) {
    if (pred.kind == 0) {
      PRIVELET_RETURN_IF_ERROR(query.SetRange(
          schema, pred.attr, static_cast<std::size_t>(pred.lo),
          static_cast<std::size_t>(pred.hi)));
    } else if (pred.kind == 1) {
      PRIVELET_RETURN_IF_ERROR(query.SetHierarchyNode(
          schema, pred.attr, static_cast<std::size_t>(pred.lo)));
    } else {
      return Status::InvalidArgument("unknown predicate kind " +
                                     std::to_string(pred.kind));
    }
  }
  return query;
}

// ---------------------------------------------------------------------------
// Binary encoders.

void EncodeQueryRequest(std::string* out, std::string_view id,
                        std::span<const QuerySpec> queries) {
  FrameBuilder frame(out);
  PutLE(out, static_cast<std::uint8_t>(Verb::kQuery));
  PutString16(out, id);
  PutLE(out, static_cast<std::uint32_t>(queries.size()));
  for (const QuerySpec& q : queries) {
    PutLE(out, static_cast<std::uint16_t>(q.predicates.size()));
    for (const PredicateSpec& p : q.predicates) {
      PutLE(out, p.kind);
      PutLE(out, p.attr);
      PutLE(out, p.lo);
      PutLE(out, p.hi);
    }
  }
}

void EncodeReloadRequest(std::string* out, std::string_view id,
                         std::string_view path) {
  FrameBuilder frame(out);
  PutLE(out, static_cast<std::uint8_t>(Verb::kReload));
  PutString16(out, id);
  PutString16(out, path);
}

void EncodeVerbRequest(std::string* out, Verb verb) {
  FrameBuilder frame(out);
  PutLE(out, static_cast<std::uint8_t>(verb));
}

void EncodeOkAnswers(std::string* out, std::span<const double> answers) {
  FrameBuilder frame(out);
  PutLE(out, kStatusOk);
  PutLE(out, kShapeAnswers);
  PutLE(out, static_cast<std::uint32_t>(answers.size()));
  for (const double a : answers) PutDouble(out, a);
}

void EncodeOkText(std::string* out, std::string_view text) {
  FrameBuilder frame(out);
  PutLE(out, kStatusOk);
  PutLE(out, kShapeText);
  PutString32(out, text);
}

void EncodeErrorResponse(std::string* out, const Status& status) {
  FrameBuilder frame(out);
  PutLE(out, kStatusError);
  PutString32(out, status.ToString());
}

// ---------------------------------------------------------------------------
// Binary decoders.

Result<std::size_t> PeekFrame(std::string_view buf) {
  if (buf.size() < 4) return std::size_t{0};
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFrameBytes) +
                                   "-byte limit");
  }
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return std::size_t{0};
  return static_cast<std::size_t>(4 + len);
}

Result<BinaryRequest> DecodeRequest(std::string_view payload) {
  PayloadReader reader(payload);
  BinaryRequest request;
  PRIVELET_ASSIGN_OR_RETURN(std::uint8_t verb,
                            reader.ReadLE<std::uint8_t>("verb"));
  switch (static_cast<Verb>(verb)) {
    case Verb::kQuery: {
      request.verb = Verb::kQuery;
      PRIVELET_ASSIGN_OR_RETURN(std::uint16_t id_len,
                                reader.ReadLE<std::uint16_t>("id"));
      PRIVELET_ASSIGN_OR_RETURN(request.id, reader.ReadBytes(id_len, "id"));
      PRIVELET_ASSIGN_OR_RETURN(std::uint32_t num_queries,
                                reader.ReadLE<std::uint32_t>("query count"));
      if (num_queries > kMaxQueriesPerRequest) {
        return Status::InvalidArgument(
            "request carries " + std::to_string(num_queries) +
            " queries (limit " + std::to_string(kMaxQueriesPerRequest) + ")");
      }
      // Each query costs >= 2 payload bytes; reject counts the frame
      // cannot possibly hold before reserving.
      if (num_queries > reader.remaining() / 2) {
        return reader.Truncated("query list");
      }
      request.queries.resize(num_queries);
      for (QuerySpec& q : request.queries) {
        PRIVELET_ASSIGN_OR_RETURN(
            std::uint16_t num_preds,
            reader.ReadLE<std::uint16_t>("predicate count"));
        q.predicates.resize(num_preds);
        for (PredicateSpec& p : q.predicates) {
          PRIVELET_ASSIGN_OR_RETURN(p.kind,
                                    reader.ReadLE<std::uint8_t>("predicate"));
          PRIVELET_ASSIGN_OR_RETURN(p.attr,
                                    reader.ReadLE<std::uint16_t>("predicate"));
          PRIVELET_ASSIGN_OR_RETURN(p.lo,
                                    reader.ReadLE<std::uint64_t>("predicate"));
          PRIVELET_ASSIGN_OR_RETURN(p.hi,
                                    reader.ReadLE<std::uint64_t>("predicate"));
        }
      }
      break;
    }
    case Verb::kReload: {
      request.verb = Verb::kReload;
      PRIVELET_ASSIGN_OR_RETURN(std::uint16_t id_len,
                                reader.ReadLE<std::uint16_t>("id"));
      PRIVELET_ASSIGN_OR_RETURN(request.id, reader.ReadBytes(id_len, "id"));
      PRIVELET_ASSIGN_OR_RETURN(std::uint16_t path_len,
                                reader.ReadLE<std::uint16_t>("path"));
      PRIVELET_ASSIGN_OR_RETURN(request.path,
                                reader.ReadBytes(path_len, "path"));
      break;
    }
    case Verb::kStats:
    case Verb::kPing:
    case Verb::kIds:
      request.verb = static_cast<Verb>(verb);
      break;
    default:
      return Status::InvalidArgument("unknown verb byte " +
                                     std::to_string(verb));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after the request");
  }
  return request;
}

Result<BinaryResponse> DecodeResponse(std::string_view payload) {
  PayloadReader reader(payload);
  BinaryResponse response;
  PRIVELET_ASSIGN_OR_RETURN(std::uint8_t status,
                            reader.ReadLE<std::uint8_t>("status"));
  if (status == kStatusError) {
    PRIVELET_ASSIGN_OR_RETURN(std::uint32_t len,
                              reader.ReadLE<std::uint32_t>("error"));
    PRIVELET_ASSIGN_OR_RETURN(response.error, reader.ReadBytes(len, "error"));
    response.ok = false;
    return response;
  }
  if (status != kStatusOk) {
    return Status::InvalidArgument("unknown status byte " +
                                   std::to_string(status));
  }
  response.ok = true;
  PRIVELET_ASSIGN_OR_RETURN(std::uint8_t shape,
                            reader.ReadLE<std::uint8_t>("shape"));
  if (shape == kShapeAnswers) {
    PRIVELET_ASSIGN_OR_RETURN(std::uint32_t n,
                              reader.ReadLE<std::uint32_t>("answer count"));
    if (static_cast<std::size_t>(n) * 8 != reader.remaining()) {
      return reader.Truncated("answers");
    }
    response.answers.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      PRIVELET_ASSIGN_OR_RETURN(std::uint64_t bits,
                                reader.ReadLE<std::uint64_t>("answers"));
      response.answers.push_back(std::bit_cast<double>(bits));
    }
  } else if (shape == kShapeText) {
    PRIVELET_ASSIGN_OR_RETURN(std::uint32_t len,
                              reader.ReadLE<std::uint32_t>("text"));
    PRIVELET_ASSIGN_OR_RETURN(response.text, reader.ReadBytes(len, "text"));
  } else {
    return Status::InvalidArgument("unknown response shape " +
                                   std::to_string(shape));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after the response");
  }
  return response;
}

}  // namespace privelet::serving
