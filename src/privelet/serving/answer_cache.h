// AnswerCache: a small bounded LRU over one release's answered queries,
// keyed by canonical predicate bytes and stamped with the release's
// ReleaseStore Rebind generation. The daemon's hot repeated-query case —
// dashboards polling the same handful of ranges — skips the table walk
// entirely; a RELOAD bumps the generation and the next request drops the
// whole cache (answers of the old release must never leak under the new
// one).
//
// Correctness: a hit returns the exact double the evaluation produced,
// so caching never perturbs the bit-identical answer contract
// (docs/DETERMINISM.md). Not thread-safe by design — each event loop
// owns its caches, like its histograms.
#ifndef PRIVELET_SERVING_ANSWER_CACHE_H_
#define PRIVELET_SERVING_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "privelet/query/range_query.h"

namespace privelet::serving {

/// Appends the canonical predicate bytes of `query` to `key`: per
/// attribute one presence byte plus, when constrained, the inclusive
/// bounds little-endian. Equal predicates always canonicalize equally
/// regardless of framing (text and binary requests share the cache).
void AppendQueryKey(const query::RangeQuery& query, std::string* key);

class AnswerCache {
 public:
  /// `max_entries` bounds the resident answers; 0 disables (every Lookup
  /// misses, Insert is a no-op).
  explicit AnswerCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Drops everything when `generation` differs from the stamped one
  /// (and stamps the new value). Call with the store generation read
  /// BEFORE Acquire, so answers computed from an about-to-be-swapped
  /// session are stamped with the old generation and die on the bump.
  void SetGeneration(std::uint64_t generation) {
    if (generation == generation_) return;
    generation_ = generation;
    entries_.clear();
    order_.clear();
  }

  /// True (and `*answer` filled) on a hit; refreshes LRU order.
  bool Lookup(const std::string& key, double* answer) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    *answer = it->second->second;
    return true;
  }

  /// Remembers `key` -> `answer`, evicting the least recently used entry
  /// past the bound. Duplicate keys just refresh the value and order.
  void Insert(const std::string& key, double answer) {
    if (max_entries_ == 0) return;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second->second = answer;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, answer);
    entries_.emplace(key, order_.begin());
    if (entries_.size() > max_entries_) {
      entries_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t generation() const { return generation_; }

 private:
  using Order = std::list<std::pair<std::string, double>>;
  std::size_t max_entries_;
  std::uint64_t generation_ = 0;
  Order order_;  ///< most recent first
  std::unordered_map<std::string, Order::iterator> entries_;
};

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_ANSWER_CACHE_H_
