#include "privelet/serving/server.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "privelet/common/io_util.h"
#include "privelet/query/compiled_workload.h"
#include "privelet/simd/dispatch.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace privelet::serving {

namespace {

constexpr std::size_t kMaxLoops = 256;  // sanity bound on num_loops

#if defined(__linux__)

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Strict digit parsing: "-1" must never wrap into a huge batch size.
Result<std::uint64_t> ParseCount(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    return Status::InvalidArgument("'" + std::string(token) +
                                   "' is not a count");
  }
  return value;
}

std::string_view NextToken(std::string_view* line) {
  const std::size_t begin = line->find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) {
    *line = {};
    return {};
  }
  std::size_t end = line->find_first_of(" \t\r", begin);
  if (end == std::string_view::npos) end = line->size();
  const std::string_view token = line->substr(begin, end - begin);
  line->remove_prefix(end);
  return token;
}

#endif  // defined(__linux__)

}  // namespace

Server::Server(query::ReleaseStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() {
#if defined(__linux__)
  for (const auto& loop : loops_) {
    if (loop == nullptr) continue;
    for (auto& [fd, conn] : loop->connections) common::CloseFd(fd);
    loop->connections.clear();
    for (const int fd : loop->handoff_queue) common::CloseFd(fd);
    loop->handoff_queue.clear();
    if (loop->listen_fd >= 0) common::CloseFd(loop->listen_fd);
    if (loop->epoll_fd >= 0) common::CloseFd(loop->epoll_fd);
    if (loop->wake_read_fd >= 0) common::CloseFd(loop->wake_read_fd);
    if (loop->wake_write_fd >= 0) common::CloseFd(loop->wake_write_fd);
    if (loop->handoff_fd >= 0) common::CloseFd(loop->handoff_fd);
  }
#endif
}

ServerStats Server::stats() const {
  ServerStats total;
  for (const auto& loop : loops_) {
    if (loop == nullptr) continue;
    const LoopCounters& c = loop->counters;
    total.connections_accepted +=
        c.connections_accepted.load(std::memory_order_relaxed);
    total.connections_dropped +=
        c.connections_dropped.load(std::memory_order_relaxed);
    total.requests += c.requests.load(std::memory_order_relaxed);
    total.failures += c.failures.load(std::memory_order_relaxed);
    total.queries += c.queries.load(std::memory_order_relaxed);
    total.reloads += c.reloads.load(std::memory_order_relaxed);
    total.answer_cache_hits +=
        c.answer_cache_hits.load(std::memory_order_relaxed);
  }
  return total;
}

void Server::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
#if defined(__linux__)
  // One byte into every loop's wake pipe; safe from a signal handler —
  // no allocation, no locks, only fds wired up before Run() began. A
  // full pipe (EAGAIN) means that loop's wakeup is already pending.
  for (const auto& loop : loops_) {
    if (loop == nullptr) continue;
    const int fd = loop->wake_write_fd;
    if (fd >= 0) {
      const char byte = 'q';
      [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
    }
  }
#endif
}

#if !defined(__linux__)

Status Server::Start() {
  return Status::IOError("the serving daemon requires Linux (epoll)");
}
Status Server::Run() {
  return Status::IOError("the serving daemon requires Linux (epoll)");
}

#else  // defined(__linux__)

Status Server::Start() {
  num_loops_ = options_.num_loops != 0
                   ? options_.num_loops
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency());
  num_loops_ = std::min(num_loops_, kMaxLoops);

  switch (options_.accept_mode) {
    case ServerOptions::AcceptMode::kHandoff:
      handoff_ = num_loops_ > 1;
      break;
    case ServerOptions::AcceptMode::kReusePort:
    case ServerOptions::AcceptMode::kAuto: {
      handoff_ = false;
      if (num_loops_ > 1) {
        // Probe SO_REUSEPORT on a scratch socket; every modern Linux has
        // it, but the fallback keeps the daemon multi-loop regardless.
        const int probe =
            ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        const int one = 1;
        const bool supported =
            probe >= 0 && ::setsockopt(probe, SOL_SOCKET, SO_REUSEPORT, &one,
                                       sizeof(one)) == 0;
        if (probe >= 0) common::CloseFd(probe);
        if (!supported) {
          if (options_.accept_mode == ServerOptions::AcceptMode::kReusePort) {
            return Status::IOError("SO_REUSEPORT is not supported here");
          }
          handoff_ = true;
        }
      }
      break;
    }
  }

  loops_.clear();
  loops_.reserve(num_loops_);
  for (std::size_t i = 0; i < num_loops_; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    loops_.push_back(std::move(loop));
  }
  for (const auto& loop : loops_) {
    PRIVELET_RETURN_IF_ERROR(SetupLoop(*loop));
  }

  // Listeners. Sharded mode: one SO_REUSEPORT listener per loop, the
  // first bind resolving an ephemeral port for the rest of the group.
  // Handoff mode (and num_loops == 1): a single listener on loop 0, plus
  // an eventfd per other loop for the fd handover.
  const std::size_t listeners = handoff_ ? 1 : num_loops_;
  for (std::size_t i = 0; i < listeners; ++i) {
    PRIVELET_RETURN_IF_ERROR(
        SetupListener(*loops_[i], /*reuse_port=*/!handoff_ && num_loops_ > 1));
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loops_[i]->listen_fd;
    if (::epoll_ctl(loops_[i]->epoll_fd, EPOLL_CTL_ADD, loops_[i]->listen_fd,
                    &ev) != 0) {
      return Status::IOError("epoll_ctl(listener) failed: " +
                             common::ErrnoMessage());
    }
  }
  if (handoff_) {
    for (std::size_t i = 1; i < num_loops_; ++i) {
      EventLoop& loop = *loops_[i];
      loop.handoff_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (loop.handoff_fd < 0) {
        return Status::IOError("eventfd failed: " + common::ErrnoMessage());
      }
      struct epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop.handoff_fd;
      if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.handoff_fd, &ev) !=
          0) {
        return Status::IOError("epoll_ctl(handoff eventfd) failed: " +
                               common::ErrnoMessage());
      }
    }
  }
  uptime_.Restart();
  return Status::OK();
}

Status Server::SetupLoop(EventLoop& loop) {
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    return Status::IOError("cannot create wake pipe: " +
                           common::ErrnoMessage());
  }
  loop.wake_read_fd = pipe_fds[0];
  loop.wake_write_fd = pipe_fds[1];

  loop.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop.epoll_fd < 0) {
    return Status::IOError("epoll_create1 failed: " + common::ErrnoMessage());
  }
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = loop.wake_read_fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.wake_read_fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(wake pipe) failed: " +
                           common::ErrnoMessage());
  }
  return Status::OK();
}

Status Server::SetupListener(EventLoop& loop, bool reuse_port) {
  loop.listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (loop.listen_fd < 0) {
    return Status::IOError("socket failed: " + common::ErrnoMessage());
  }
  const int one = 1;
  // SO_REUSEADDR so a restarted daemon rebinds through TIME_WAIT remnants
  // of its predecessor instead of flaking with EADDRINUSE.
  (void)::setsockopt(loop.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (reuse_port &&
      ::setsockopt(loop.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                   sizeof(one)) != 0) {
    return Status::IOError("setsockopt(SO_REUSEPORT) failed: " +
                           common::ErrnoMessage());
  }

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loop 0 binds the configured port (possibly ephemeral); the rest of a
  // REUSEPORT group binds the port loop 0 resolved.
  addr.sin_port = htons(loop.index == 0 ? options_.port : port_);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + options_.host +
                                   "' is not an IPv4 address");
  }
  if (::bind(loop.listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("cannot bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           common::ErrnoMessage());
  }
  if (::listen(loop.listen_fd, options_.backlog) != 0) {
    return Status::IOError("listen failed: " + common::ErrnoMessage());
  }
  if (loop.index == 0) {
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(loop.listen_fd,
                      reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
      return Status::IOError("getsockname failed: " + common::ErrnoMessage());
    }
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

Status Server::Run() {
  if (loops_.empty() || loops_[0]->epoll_fd < 0) {
    return Status::FailedPrecondition("Run() before Start()");
  }
  std::vector<Status> statuses(num_loops_, Status::OK());
  if (num_loops_ == 1) {
    statuses[0] = RunLoop(*loops_[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_loops_ - 1);
    for (std::size_t i = 1; i < num_loops_; ++i) {
      threads.emplace_back([this, i, &statuses] {
        statuses[i] = RunLoop(*loops_[i]);
        // A fatal loop error downs the whole daemon rather than leaving
        // a silent shard hole.
        if (!statuses[i].ok()) Shutdown();
      });
    }
    statuses[0] = RunLoop(*loops_[0]);
    if (!statuses[0].ok()) Shutdown();
    for (std::thread& t : threads) t.join();
  }
  // Drain: one non-blocking flush attempt per connection, then close.
  for (const auto& loop : loops_) {
    for (auto& [fd, conn] : loop->connections) {
      FlushConnection(*conn);
      common::CloseFd(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    loop->connections.clear();
    for (const int fd : loop->handoff_queue) {
      common::CloseFd(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    loop->handoff_queue.clear();
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status Server::RunLoop(EventLoop& loop) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int timeout_ms = loop.ready.empty() ? -1 : 0;
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("epoll_wait failed: " + common::ErrnoMessage());
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.listen_fd) {
        AcceptPending(loop);
        continue;
      }
      if (fd == loop.wake_read_fd) {
        char drain[64];
        while (::read(loop.wake_read_fd, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == loop.handoff_fd) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t rc =
            ::read(loop.handoff_fd, &drain, sizeof(drain));
        AdoptHandoff(loop);
        continue;
      }
      const auto it = loop.connections.find(fd);
      if (it == loop.connections.end()) continue;  // closed earlier
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(loop, fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushConnection(conn);
      if (conn.fd < 0) {
        CloseConnection(loop, fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) OnReadable(loop, conn);
      if (conn.fd < 0) {
        CloseConnection(loop, fd);
        continue;
      }
      UpdateInterest(loop, conn);
    }
    // Connections whose pipelined input outlasted their per-cycle budget.
    std::vector<int> still_ready;
    still_ready.swap(loop.ready);
    for (const int fd : still_ready) {
      const auto it = loop.connections.find(fd);
      if (it == loop.connections.end()) continue;
      Connection& conn = *it->second;
      ProcessConnection(loop, conn);
      if (conn.fd < 0) {
        CloseConnection(loop, fd);
        continue;
      }
      UpdateInterest(loop, conn);
    }
  }
  return Status::OK();
}

void Server::AcceptPending(EventLoop& loop) {
  while (true) {
    const int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Transient per-connection failures
      // (ECONNABORTED, EMFILE pressure) just stop this accept burst.
      return;
    }
    // Global cap across loops: the increment is the reservation, undone
    // when the admission fails.
    if (open_connections_.fetch_add(1, std::memory_order_relaxed) >=
        options_.max_connections) {
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      common::CloseFd(fd);
      loop.counters.connections_dropped.fetch_add(1,
                                                  std::memory_order_relaxed);
      continue;
    }
    // Pipelined request/response turnarounds are tiny writes; Nagle
    // would batch them behind delayed ACKs, so turn it off at accept.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    loop.counters.connections_accepted.fetch_add(1,
                                                 std::memory_order_relaxed);
    if (handoff_ && num_loops_ > 1) {
      // Round-robin over all loops, including the acceptor itself.
      EventLoop& target = *loops_[accept_rr_++ % num_loops_];
      if (target.index != loop.index) {
        {
          std::lock_guard<std::mutex> lock(target.handoff_mu);
          target.handoff_queue.push_back(fd);
        }
        const std::uint64_t ping = 1;
        [[maybe_unused]] ssize_t rc =
            ::write(target.handoff_fd, &ping, sizeof(ping));
        continue;
      }
    }
    AdoptConnection(loop, fd);
  }
}

void Server::AdoptConnection(EventLoop& loop, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    common::CloseFd(fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  loop.connections.emplace(fd, std::move(conn));
}

void Server::AdoptHandoff(EventLoop& loop) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop.handoff_mu);
    fds.swap(loop.handoff_queue);
  }
  for (const int fd : fds) AdoptConnection(loop, fd);
}

void Server::CloseConnection(EventLoop& loop, int fd) {
  const auto it = loop.connections.find(fd);
  if (it == loop.connections.end()) return;
  common::CloseFd(fd);  // also deregisters from epoll
  loop.connections.erase(it);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::OnReadable(EventLoop& loop, Connection& conn) {
  char buf[64 * 1024];
  while (conn.reading) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.fd = -1;  // hard error; caller closes
      return;
    }
    if (n == 0) {
      // Peer finished sending: answer what is buffered, then close.
      conn.want_close = true;
      break;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    if (conn.in.size() - conn.in_head > options_.max_request_bytes) break;
  }
  ProcessConnection(loop, conn);
}

void Server::ProcessConnection(EventLoop& loop, Connection& conn) {
  if (conn.mode == Mode::kUnknown) {
    const std::size_t avail = conn.in.size() - conn.in_head;
    if (avail > 0) {
      const std::size_t check = std::min<std::size_t>(avail, 4);
      if (std::memcmp(conn.in.data() + conn.in_head, kBinaryMagic, check) ==
          0) {
        if (avail < 4) {
          // A prefix of the magic: wait for the rest (or EOF).
          if (!conn.want_close) return;
          conn.mode = Mode::kText;  // EOF mid-magic: treat as text garbage
        } else {
          conn.mode = Mode::kBinary;
          conn.in_head += 4;
        }
      } else {
        conn.mode = Mode::kText;
      }
    }
  }

  bool more = false;
  if (conn.mode != Mode::kUnknown) {
    std::size_t budget = options_.max_pipeline;
    more = conn.mode == Mode::kText ? ProcessText(loop, conn, &budget)
                                    : ProcessBinary(loop, conn, &budget);
  }

  // Compact the consumed prefix of the input buffer.
  if (conn.in_head == conn.in.size()) {
    conn.in.clear();
    conn.in_head = 0;
  } else if (conn.in_head > (std::size_t{64} << 10)) {
    conn.in.erase(0, conn.in_head);
    conn.in_head = 0;
  }

  // Oversized single request (no line/frame boundary within the cap):
  // the stream cannot resynchronize — report and close.
  if (!conn.want_close &&
      conn.in.size() - conn.in_head > options_.max_request_bytes) {
    const Status err = Status::InvalidArgument(
        "request exceeds " + std::to_string(options_.max_request_bytes) +
        " bytes");
    if (conn.mode == Mode::kBinary) {
      EncodeErrorResponse(&conn.out, err);
    } else {
      conn.out += "error: ";
      conn.out += err.ToString();
      conn.out += '\n';
    }
    conn.in.clear();
    conn.in_head = 0;
    conn.want_close = true;
    loop.counters.connections_dropped.fetch_add(1, std::memory_order_relaxed);
  }

  FlushConnection(conn);
  if (conn.fd < 0) return;

  // Slow-client cap: a connection buffering more than the limit is gone.
  if (OutPending(conn) > options_.max_buffered_bytes) {
    conn.fd = -1;
    loop.counters.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Backpressure: pause reads while the output backlog is high.
  conn.reading = OutPending(conn) <= options_.max_buffered_bytes / 2 &&
                 !conn.want_close;
  if (more && !conn.want_close) loop.ready.push_back(conn.fd);
  if (conn.want_close && OutPending(conn) == 0) conn.fd = -1;
}

bool Server::ProcessText(EventLoop& loop, Connection& conn,
                         std::size_t* budget) {
  while (*budget > 0) {
    if (OutPending(conn) > options_.max_buffered_bytes / 2) break;
    const std::size_t nl = conn.in.find('\n', conn.in_head);
    if (nl == std::string::npos) return false;
    std::string line = conn.in.substr(conn.in_head, nl - conn.in_head);
    conn.in_head = nl + 1;
    // CRLF clients (nc -C, telnet, Windows edits) terminate with \r\n.
    if (!line.empty() && line.back() == '\r') line.pop_back();

    if (conn.batch_expected > 0) {
      conn.batch_lines.push_back(std::move(line));
      if (conn.batch_lines.size() == conn.batch_expected) {
        FinishTextBatch(loop, conn);
        --*budget;
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    HandleTextLine(loop, conn, line);
    --*budget;
    if (conn.want_close) break;
  }
  return conn.in.find('\n', conn.in_head) != std::string::npos;
}

bool Server::ProcessBinary(EventLoop& loop, Connection& conn,
                           std::size_t* budget) {
  while (*budget > 0) {
    if (OutPending(conn) > options_.max_buffered_bytes / 2) break;
    const auto frame = PeekFrame(
        std::string_view(conn.in).substr(conn.in_head));
    if (!frame.ok()) {
      EncodeErrorResponse(&conn.out, frame.status());
      conn.in.clear();
      conn.in_head = 0;
      conn.want_close = true;
      loop.counters.failures.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (*frame == 0) return false;
    const std::string_view payload =
        std::string_view(conn.in).substr(conn.in_head + 4, *frame - 4);
    auto request = DecodeRequest(payload);
    conn.in_head += *frame;
    if (!request.ok()) {
      // The frame boundary held, so the stream is still in sync: report
      // and continue.
      EncodeErrorResponse(&conn.out, request.status());
      loop.counters.requests.fetch_add(1, std::memory_order_relaxed);
      loop.counters.failures.fetch_add(1, std::memory_order_relaxed);
    } else {
      HandleBinaryRequest(loop, conn, *request);
    }
    --*budget;
  }
  const auto next = PeekFrame(std::string_view(conn.in).substr(conn.in_head));
  return next.ok() && *next > 0;
}

void Server::HandleTextLine(EventLoop& loop, Connection& conn,
                            std::string_view line) {
  loop.counters.requests.fetch_add(1, std::memory_order_relaxed);
  std::string_view rest = line;
  std::string verb(NextToken(&rest));
  std::transform(verb.begin(), verb.end(), verb.begin(),
                 [](unsigned char c) { return std::toupper(c); });

  const auto fail = [&](const Status& status) {
    AppendTextError(loop, conn, status);
  };

  if (verb == "QUERY") {
    const std::string id(NextToken(&rest));
    const std::size_t preds = rest.find_first_not_of(" \t\r");
    if (id.empty() || preds == std::string_view::npos) {
      fail(Status::InvalidArgument(
          "usage: QUERY <release-id> <predicates> (predicates: '*', "
          "name=lo:hi, name@node)"));
      return;
    }
    const std::string pred_line(rest.substr(preds));
    auto answers = AnswerTextQueries(loop, id, std::span(&pred_line, 1));
    if (!answers.ok()) {
      fail(answers.status());
      return;
    }
    AppendTextHeader(conn, answers->size());
    AppendTextAnswers(conn, *answers);
    return;
  }
  if (verb == "BATCH") {
    const std::string id(NextToken(&rest));
    const std::string_view count_token = NextToken(&rest);
    auto count = ParseCount(count_token);
    if (id.empty() || !count.ok() || !NextToken(&rest).empty()) {
      fail(Status::InvalidArgument("usage: BATCH <release-id> <n>"));
      return;
    }
    if (*count == 0 || *count > kMaxQueriesPerRequest) {
      fail(Status::InvalidArgument(
          "batch size must be in [1, " +
          std::to_string(kMaxQueriesPerRequest) + "]"));
      return;
    }
    conn.batch_id = id;
    conn.batch_expected = static_cast<std::size_t>(*count);
    conn.batch_lines.clear();
    return;  // the response follows the n-th predicate line
  }
  if (verb == "RELOAD") {
    const std::string id(NextToken(&rest));
    const std::string path(NextToken(&rest));
    if (id.empty() || path.empty() || !NextToken(&rest).empty()) {
      fail(Status::InvalidArgument(
          "usage: RELOAD <release-id> <snapshot-path>"));
      return;
    }
    auto message = DoReload(loop, id, path);
    if (!message.ok()) {
      fail(message.status());
      return;
    }
    AppendTextHeader(conn, 1);
    conn.out += *message;
    conn.out += '\n';
    return;
  }
  if (verb == "STATS") {
    const std::string text = RenderStatsText();
    const std::size_t lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
    AppendTextHeader(conn, lines);
    conn.out += text;
    return;
  }
  if (verb == "IDS") {
    const std::string text = RenderIdsText();
    const std::size_t lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
    AppendTextHeader(conn, lines);
    conn.out += text;
    return;
  }
  if (verb == "PING") {
    AppendTextHeader(conn, 1);
    conn.out += "pong\n";
    return;
  }
  if (verb == "QUIT") {
    conn.want_close = true;
    return;
  }
  fail(Status::InvalidArgument(
      "unknown verb '" + verb +
      "' (QUERY|BATCH|RELOAD|STATS|IDS|PING|QUIT)"));
}

void Server::FinishTextBatch(EventLoop& loop, Connection& conn) {
  const std::string id = std::move(conn.batch_id);
  std::vector<std::string> lines = std::move(conn.batch_lines);
  conn.batch_id.clear();
  conn.batch_expected = 0;
  conn.batch_lines.clear();
  loop.counters.requests.fetch_add(1, std::memory_order_relaxed);
  auto answers = AnswerTextQueries(loop, id, lines);
  if (!answers.ok()) {
    AppendTextError(loop, conn, answers.status());
    return;
  }
  AppendTextHeader(conn, answers->size());
  AppendTextAnswers(conn, *answers);
}

void Server::HandleBinaryRequest(EventLoop& loop, Connection& conn,
                                 const BinaryRequest& request) {
  loop.counters.requests.fetch_add(1, std::memory_order_relaxed);
  switch (request.verb) {
    case Verb::kQuery: {
      auto answers = AnswerSpecQueries(loop, request.id, request.queries);
      if (!answers.ok()) {
        EncodeErrorResponse(&conn.out, answers.status());
        loop.counters.failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      EncodeOkAnswers(&conn.out, *answers);
      return;
    }
    case Verb::kReload: {
      auto message = DoReload(loop, request.id, request.path);
      if (!message.ok()) {
        EncodeErrorResponse(&conn.out, message.status());
        loop.counters.failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      EncodeOkText(&conn.out, *message);
      return;
    }
    case Verb::kStats:
      EncodeOkText(&conn.out, RenderStatsText());
      return;
    case Verb::kIds:
      EncodeOkText(&conn.out, RenderIdsText());
      return;
    case Verb::kPing:
      EncodeOkText(&conn.out, "pong");
      return;
  }
  EncodeErrorResponse(&conn.out, Status::Internal("unhandled verb"));
}

std::vector<double> Server::Evaluate(
    const query::PublishingSession& session,
    std::span<const query::RangeQuery> queries) {
  if (options_.compile_batch_threshold > 0 &&
      queries.size() >= options_.compile_batch_threshold) {
    return session.AnswerCompiled(session.Compile(queries));
  }
  return session.AnswerAll(queries);
}

ConcurrentHistogram* Server::LatencySlot(EventLoop& loop,
                                         const std::string& id) {
  const auto cached = loop.latency_slots.find(id);
  if (cached != loop.latency_slots.end()) return cached->second;
  std::unique_ptr<ConcurrentHistogram[]>* slots = nullptr;
  {
    std::lock_guard<std::mutex> lock(release_latency_mu_);
    slots = &release_latency_[id];
    if (*slots == nullptr) {
      *slots = std::make_unique<ConcurrentHistogram[]>(num_loops_);
    }
  }
  ConcurrentHistogram* slot = &(*slots)[loop.index];
  loop.latency_slots.emplace(id, slot);
  return slot;
}

template <typename BuildQueries>
Result<std::vector<double>> Server::AnswerTimed(EventLoop& loop,
                                                const std::string& id,
                                                const BuildQueries& build) {
  // Failures are counted where the error response is rendered
  // (AppendTextError / the binary encode sites), exactly once per
  // request; error returns here just propagate.
  const std::uint64_t start = NowNanos();
  // Generation before Acquire: if a RELOAD lands in between, answers
  // computed from the new session are stamped with the old generation
  // and the cache invalidates one request later — never the reverse
  // (stale answers surviving under a new generation).
  const std::uint64_t generation = store_->generation(id);
  PRIVELET_ASSIGN_OR_RETURN(auto session, store_->Acquire(id));
  PRIVELET_ASSIGN_OR_RETURN(std::vector<query::RangeQuery> queries,
                            build(session->schema()));
  std::vector<double> answers(queries.size());

  AnswerCache* cache = nullptr;
  if (options_.answer_cache_entries > 0) {
    cache = &loop.caches.try_emplace(id, options_.answer_cache_entries)
                 .first->second;
    cache->SetGeneration(generation);
  }

  std::vector<std::string> keys;
  std::vector<std::size_t> misses;
  if (cache != nullptr) {
    keys.resize(queries.size());
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      AppendQueryKey(queries[i], &keys[i]);
      if (cache->Lookup(keys[i], &answers[i])) {
        ++hits;
      } else {
        misses.push_back(i);
      }
    }
    if (hits > 0) {
      loop.counters.answer_cache_hits.fetch_add(hits,
                                                std::memory_order_relaxed);
    }
  }

  if (cache == nullptr) {
    answers = Evaluate(*session, queries);
  } else if (!misses.empty()) {
    std::vector<double> computed;
    if (misses.size() == queries.size()) {
      computed = Evaluate(*session, queries);
    } else {
      std::vector<query::RangeQuery> miss_queries;
      miss_queries.reserve(misses.size());
      for (const std::size_t i : misses) miss_queries.push_back(queries[i]);
      computed = Evaluate(*session, miss_queries);
    }
    for (std::size_t j = 0; j < misses.size(); ++j) {
      const std::size_t i = misses[j];
      answers[i] = computed[misses.size() == queries.size() ? i : j];
      cache->Insert(keys[i], answers[i]);
    }
  }

  const std::uint64_t elapsed = NowNanos() - start;
  loop.all_latency.Record(elapsed);
  LatencySlot(loop, id)->Record(elapsed);
  loop.counters.queries.fetch_add(answers.size(), std::memory_order_relaxed);
  return answers;
}

Result<std::vector<double>> Server::AnswerTextQueries(
    EventLoop& loop, const std::string& id,
    std::span<const std::string> lines) {
  return AnswerTimed(
      loop, id,
      [&](const data::Schema& schema)
          -> Result<std::vector<query::RangeQuery>> {
        std::vector<query::RangeQuery> queries;
        queries.reserve(lines.size());
        for (const std::string& line : lines) {
          PRIVELET_ASSIGN_OR_RETURN(query::RangeQuery query,
                                    ParseQueryLine(schema, line));
          queries.push_back(std::move(query));
        }
        return queries;
      });
}

Result<std::vector<double>> Server::AnswerSpecQueries(
    EventLoop& loop, const std::string& id,
    std::span<const QuerySpec> specs) {
  if (specs.size() > kMaxQueriesPerRequest) {
    return Status::InvalidArgument("batch exceeds the query limit");
  }
  return AnswerTimed(
      loop, id,
      [&](const data::Schema& schema)
          -> Result<std::vector<query::RangeQuery>> {
        std::vector<query::RangeQuery> queries;
        queries.reserve(specs.size());
        for (const QuerySpec& spec : specs) {
          PRIVELET_ASSIGN_OR_RETURN(query::RangeQuery query,
                                    BuildQuery(schema, spec));
          queries.push_back(std::move(query));
        }
        return queries;
      });
}

Result<std::string> Server::DoReload(EventLoop& loop, const std::string& id,
                                     const std::string& path) {
  PRIVELET_RETURN_IF_ERROR(store_->Rebind(id, path));
  // Load eagerly so a bad path is the RELOAD's error, not the next
  // query's; in-flight borrowers of the old session are untouched.
  PRIVELET_RETURN_IF_ERROR(store_->Acquire(id).status());
  loop.counters.reloads.fetch_add(1, std::memory_order_relaxed);
  return "reloaded " + id;
}

std::string Server::RenderStatsText() {
  const ServerStats snapshot = stats();
  const query::ReleaseStore::Stats store_stats = store_->stats();
  std::string out;
  char buf[256];
  const auto line = [&](const char* key, std::uint64_t value) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                  static_cast<unsigned long long>(value));
    out += buf;
  };
  std::snprintf(buf, sizeof(buf), "uptime_s %.3f\n",
                uptime_.ElapsedSeconds());
  out += buf;
  line("loops", num_loops_);
  line("connections_open",
       open_connections_.load(std::memory_order_relaxed));
  line("connections_accepted", snapshot.connections_accepted);
  line("connections_dropped", snapshot.connections_dropped);
  line("requests", snapshot.requests);
  line("failures", snapshot.failures);
  line("queries", snapshot.queries);
  line("answer_cache_hits", snapshot.answer_cache_hits);
  line("reloads", snapshot.reloads);
  line("store_loads", store_stats.loads);
  line("store_hits", store_stats.hits);
  line("store_evictions", store_stats.evictions);
  line("store_resident", store_->resident_count());
  // Kernel dispatch attribution: which vector level query evaluation and
  // reloads run at (and what the host could run), so a fleet operator can
  // spot a daemon silently pinned to scalar by a stray PRIVELET_ISA.
  out += "isa_active " + std::string(simd::IsaLevelName(simd::ResolveIsa())) +
         "\n";
  out += "isa_best " +
         std::string(simd::IsaLevelName(simd::DetectBestIsa())) + "\n";
  // Histograms: per-loop lock-free snapshots combined via Merge. The
  // render may run on any loop while others keep recording.
  LatencyHistogram all;
  for (const auto& loop : loops_) loop->all_latency.SnapshotInto(&all);
  out += "latency _all " + all.SummaryMicros() + "\n";
  {
    std::lock_guard<std::mutex> lock(release_latency_mu_);
    for (const auto& [id, slots] : release_latency_) {
      LatencyHistogram merged;
      for (std::size_t i = 0; i < num_loops_; ++i) {
        slots[i].SnapshotInto(&merged);
      }
      out += "latency " + id + " " + merged.SummaryMicros() + "\n";
    }
  }
  // Planner provenance of each resident release that was published under
  // --auto-plan (PVLS v3). PeekResident only: STATS must not force loads
  // or reshape the LRU order.
  for (const std::string& id : store_->ids()) {
    const auto session = store_->PeekResident(id);
    if (session == nullptr || !session->metadata().plan.has_value()) continue;
    const query::PlanRecord& plan = *session->metadata().plan;
    out += "plan " + id + " chosen=" + plan.chosen;
    std::snprintf(buf, sizeof(buf), " predicted_variance=%.17g",
                  plan.predicted_variance);
    out += buf;
    out += " runner_up=";
    out += plan.runner_up.empty() ? "-" : plan.runner_up;
    std::snprintf(buf, sizeof(buf),
                  " runner_up_variance=%.17g workload_queries=%lu\n",
                  plan.runner_up_variance,
                  static_cast<unsigned long>(plan.workload_queries));
    out += buf;
  }
  return out;
}

std::string Server::RenderIdsText() {
  std::string out;
  for (const std::string& id : store_->ids()) {
    out += id;
    out += '\n';
  }
  return out;
}

void Server::AppendTextHeader(Connection& conn, std::size_t payload_lines) {
  conn.out += "ok ";
  conn.out += std::to_string(payload_lines);
  conn.out += '\n';
}

void Server::AppendTextAnswers(Connection& conn,
                               std::span<const double> answers) {
  char buf[64];
  for (const double a : answers) {
    // %.17g round-trips doubles exactly — text answers are bit-identical
    // to `privelet_cli query` output for the same release.
    const int len = std::snprintf(buf, sizeof(buf), "%.17g\n", a);
    conn.out.append(buf, static_cast<std::size_t>(len));
  }
}

void Server::AppendTextError(EventLoop& loop, Connection& conn,
                             const Status& status) {
  conn.out += "error: ";
  conn.out += status.ToString();
  conn.out += '\n';
  loop.counters.failures.fetch_add(1, std::memory_order_relaxed);
}

void Server::FlushConnection(Connection& conn) {
  if (conn.fd < 0) return;
  while (OutPending(conn) > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_head, OutPending(conn),
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE/ECONNRESET: the peer is gone — an ordinary connection end,
      // not a server failure.
      conn.fd = -1;
      return;
    }
    conn.out_head += static_cast<std::size_t>(n);
  }
  if (OutPending(conn) == 0) {
    conn.out.clear();
    conn.out_head = 0;
    if (conn.want_close) conn.fd = -1;
  }
  conn.writing = OutPending(conn) > 0;
}

void Server::UpdateInterest(EventLoop& loop, Connection& conn) {
  if (conn.fd < 0) return;
  struct epoll_event ev{};
  ev.data.fd = conn.fd;
  ev.events = 0;
  if (conn.reading) ev.events |= EPOLLIN;
  if (conn.writing || OutPending(conn) > 0) ev.events |= EPOLLOUT;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

#endif  // defined(__linux__)

}  // namespace privelet::serving
