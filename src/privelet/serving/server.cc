#include "privelet/serving/server.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "privelet/common/io_util.h"
#include "privelet/simd/dispatch.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace privelet::serving {

namespace {

#if defined(__linux__)

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Strict digit parsing: "-1" must never wrap into a huge batch size.
Result<std::uint64_t> ParseCount(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    return Status::InvalidArgument("'" + std::string(token) +
                                   "' is not a count");
  }
  return value;
}

std::string_view NextToken(std::string_view* line) {
  const std::size_t begin = line->find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) {
    *line = {};
    return {};
  }
  std::size_t end = line->find_first_of(" \t\r", begin);
  if (end == std::string_view::npos) end = line->size();
  const std::string_view token = line->substr(begin, end - begin);
  line->remove_prefix(end);
  return token;
}

#endif  // defined(__linux__)

}  // namespace

Server::Server(query::ReleaseStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() {
#if defined(__linux__)
  for (auto& [fd, conn] : connections_) common::CloseFd(fd);
  connections_.clear();
  if (listen_fd_ >= 0) common::CloseFd(listen_fd_);
  if (epoll_fd_ >= 0) common::CloseFd(epoll_fd_);
  if (wake_read_fd_ >= 0) common::CloseFd(wake_read_fd_);
  if (wake_write_fd_ >= 0) common::CloseFd(wake_write_fd_);
#endif
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
#if defined(__linux__)
  // One byte into the wake pipe; safe from a signal handler. A full pipe
  // (EAGAIN) means a wakeup is already pending.
  const int fd = wake_write_fd_;
  if (fd >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
  }
#endif
}

#if !defined(__linux__)

Status Server::Start() {
  return Status::IOError("the serving daemon requires Linux (epoll)");
}
Status Server::Run() {
  return Status::IOError("the serving daemon requires Linux (epoll)");
}

#else  // defined(__linux__)

Status Server::Start() {
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    return Status::IOError("cannot create wake pipe: " +
                           common::ErrnoMessage());
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError("epoll_create1 failed: " + common::ErrnoMessage());
  }

  PRIVELET_RETURN_IF_ERROR(SetupListener());

  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(listener) failed: " +
                           common::ErrnoMessage());
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(wake pipe) failed: " +
                           common::ErrnoMessage());
  }
  uptime_.Restart();
  return Status::OK();
}

Status Server::SetupListener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket failed: " + common::ErrnoMessage());
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + options_.host +
                                   "' is not an IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("cannot bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           common::ErrnoMessage());
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Status::IOError("listen failed: " + common::ErrnoMessage());
  }
  struct sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) != 0) {
    return Status::IOError("getsockname failed: " + common::ErrnoMessage());
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status Server::Run() {
  if (epoll_fd_ < 0 || listen_fd_ < 0) {
    return Status::FailedPrecondition("Run() before Start()");
  }
  const Status status = RunLoop();
  // Drain: one non-blocking flush attempt per connection, then close.
  for (auto& [fd, conn] : connections_) {
    FlushConnection(*conn);
    common::CloseFd(fd);
  }
  connections_.clear();
  return status;
}

Status Server::RunLoop() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int timeout_ms = ready_.empty() ? -1 : 0;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("epoll_wait failed: " + common::ErrnoMessage());
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_read_fd_) {
        char drain[64];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this cycle
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushConnection(conn);
      if (conn.fd < 0) {
        CloseConnection(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) OnReadable(conn);
      if (conn.fd < 0) {
        CloseConnection(fd);
        continue;
      }
      UpdateInterest(conn);
    }
    // Connections whose pipelined input outlasted their per-cycle budget.
    std::vector<int> still_ready;
    still_ready.swap(ready_);
    for (const int fd : still_ready) {
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      ProcessConnection(conn);
      if (conn.fd < 0) {
        CloseConnection(fd);
        continue;
      }
      UpdateInterest(conn);
    }
  }
  return Status::OK();
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Transient per-connection failures
      // (ECONNABORTED, EMFILE pressure) just stop this accept burst.
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      common::CloseFd(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_dropped;
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      common::CloseFd(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void Server::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  common::CloseFd(fd);  // also deregisters from epoll
  connections_.erase(it);
}

void Server::OnReadable(Connection& conn) {
  char buf[64 * 1024];
  while (conn.reading) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.fd = -1;  // hard error; caller closes
      return;
    }
    if (n == 0) {
      // Peer finished sending: answer what is buffered, then close.
      conn.want_close = true;
      break;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    if (conn.in.size() - conn.in_head > options_.max_request_bytes) break;
  }
  ProcessConnection(conn);
}

void Server::ProcessConnection(Connection& conn) {
  if (conn.mode == Mode::kUnknown) {
    const std::size_t avail = conn.in.size() - conn.in_head;
    if (avail > 0) {
      const std::size_t check = std::min<std::size_t>(avail, 4);
      if (std::memcmp(conn.in.data() + conn.in_head, kBinaryMagic, check) ==
          0) {
        if (avail < 4) {
          // A prefix of the magic: wait for the rest (or EOF).
          if (!conn.want_close) return;
          conn.mode = Mode::kText;  // EOF mid-magic: treat as text garbage
        } else {
          conn.mode = Mode::kBinary;
          conn.in_head += 4;
        }
      } else {
        conn.mode = Mode::kText;
      }
    }
  }

  bool more = false;
  if (conn.mode != Mode::kUnknown) {
    std::size_t budget = options_.max_pipeline;
    more = conn.mode == Mode::kText ? ProcessText(conn, &budget)
                                    : ProcessBinary(conn, &budget);
  }

  // Compact the consumed prefix of the input buffer.
  if (conn.in_head == conn.in.size()) {
    conn.in.clear();
    conn.in_head = 0;
  } else if (conn.in_head > (std::size_t{64} << 10)) {
    conn.in.erase(0, conn.in_head);
    conn.in_head = 0;
  }

  // Oversized single request (no line/frame boundary within the cap):
  // the stream cannot resynchronize — report and close.
  if (!conn.want_close &&
      conn.in.size() - conn.in_head > options_.max_request_bytes) {
    const Status err = Status::InvalidArgument(
        "request exceeds " + std::to_string(options_.max_request_bytes) +
        " bytes");
    if (conn.mode == Mode::kBinary) {
      EncodeErrorResponse(&conn.out, err);
    } else {
      AppendTextError(conn, err);
    }
    conn.in.clear();
    conn.in_head = 0;
    conn.want_close = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_dropped;
  }

  FlushConnection(conn);
  if (conn.fd < 0) return;

  // Slow-client cap: a connection buffering more than the limit is gone.
  if (OutPending(conn) > options_.max_buffered_bytes) {
    conn.fd = -1;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_dropped;
    return;
  }
  // Backpressure: pause reads while the output backlog is high.
  conn.reading = OutPending(conn) <= options_.max_buffered_bytes / 2 &&
                 !conn.want_close;
  if (more && !conn.want_close) ready_.push_back(conn.fd);
  if (conn.want_close && OutPending(conn) == 0) conn.fd = -1;
}

bool Server::ProcessText(Connection& conn, std::size_t* budget) {
  while (*budget > 0) {
    if (OutPending(conn) > options_.max_buffered_bytes / 2) break;
    const std::size_t nl = conn.in.find('\n', conn.in_head);
    if (nl == std::string::npos) return false;
    std::string line = conn.in.substr(conn.in_head, nl - conn.in_head);
    conn.in_head = nl + 1;
    // CRLF clients (nc -C, telnet, Windows edits) terminate with \r\n.
    if (!line.empty() && line.back() == '\r') line.pop_back();

    if (conn.batch_expected > 0) {
      conn.batch_lines.push_back(std::move(line));
      if (conn.batch_lines.size() == conn.batch_expected) {
        FinishTextBatch(conn);
        --*budget;
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    HandleTextLine(conn, line);
    --*budget;
    if (conn.want_close) break;
  }
  return conn.in.find('\n', conn.in_head) != std::string::npos;
}

bool Server::ProcessBinary(Connection& conn, std::size_t* budget) {
  while (*budget > 0) {
    if (OutPending(conn) > options_.max_buffered_bytes / 2) break;
    const auto frame = PeekFrame(
        std::string_view(conn.in).substr(conn.in_head));
    if (!frame.ok()) {
      EncodeErrorResponse(&conn.out, frame.status());
      conn.in.clear();
      conn.in_head = 0;
      conn.want_close = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failures;
      return false;
    }
    if (*frame == 0) return false;
    const std::string_view payload =
        std::string_view(conn.in).substr(conn.in_head + 4, *frame - 4);
    auto request = DecodeRequest(payload);
    conn.in_head += *frame;
    if (!request.ok()) {
      // The frame boundary held, so the stream is still in sync: report
      // and continue.
      EncodeErrorResponse(&conn.out, request.status());
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests;
      ++stats_.failures;
    } else {
      HandleBinaryRequest(conn, *request);
    }
    --*budget;
  }
  const auto next = PeekFrame(std::string_view(conn.in).substr(conn.in_head));
  return next.ok() && *next > 0;
}

void Server::HandleTextLine(Connection& conn, std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  std::string_view rest = line;
  std::string verb(NextToken(&rest));
  std::transform(verb.begin(), verb.end(), verb.begin(),
                 [](unsigned char c) { return std::toupper(c); });

  const auto fail = [&](const Status& status) {
    AppendTextError(conn, status);
  };

  if (verb == "QUERY") {
    const std::string id(NextToken(&rest));
    const std::size_t preds = rest.find_first_not_of(" \t\r");
    if (id.empty() || preds == std::string_view::npos) {
      fail(Status::InvalidArgument(
          "usage: QUERY <release-id> <predicates> (predicates: '*', "
          "name=lo:hi, name@node)"));
      return;
    }
    const std::string pred_line(rest.substr(preds));
    auto answers = AnswerTextQueries(id, std::span(&pred_line, 1));
    if (!answers.ok()) {
      fail(answers.status());
      return;
    }
    AppendTextHeader(conn, answers->size());
    AppendTextAnswers(conn, *answers);
    return;
  }
  if (verb == "BATCH") {
    const std::string id(NextToken(&rest));
    const std::string_view count_token = NextToken(&rest);
    auto count = ParseCount(count_token);
    if (id.empty() || !count.ok() || !NextToken(&rest).empty()) {
      fail(Status::InvalidArgument("usage: BATCH <release-id> <n>"));
      return;
    }
    if (*count == 0 || *count > kMaxQueriesPerRequest) {
      fail(Status::InvalidArgument(
          "batch size must be in [1, " +
          std::to_string(kMaxQueriesPerRequest) + "]"));
      return;
    }
    conn.batch_id = id;
    conn.batch_expected = static_cast<std::size_t>(*count);
    conn.batch_lines.clear();
    return;  // the response follows the n-th predicate line
  }
  if (verb == "RELOAD") {
    const std::string id(NextToken(&rest));
    const std::string path(NextToken(&rest));
    if (id.empty() || path.empty() || !NextToken(&rest).empty()) {
      fail(Status::InvalidArgument(
          "usage: RELOAD <release-id> <snapshot-path>"));
      return;
    }
    auto message = DoReload(id, path);
    if (!message.ok()) {
      fail(message.status());
      return;
    }
    AppendTextHeader(conn, 1);
    conn.out += *message;
    conn.out += '\n';
    return;
  }
  if (verb == "STATS") {
    const std::string text = RenderStatsText();
    const std::size_t lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
    AppendTextHeader(conn, lines);
    conn.out += text;
    return;
  }
  if (verb == "IDS") {
    const std::string text = RenderIdsText();
    const std::size_t lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
    AppendTextHeader(conn, lines);
    conn.out += text;
    return;
  }
  if (verb == "PING") {
    AppendTextHeader(conn, 1);
    conn.out += "pong\n";
    return;
  }
  if (verb == "QUIT") {
    conn.want_close = true;
    return;
  }
  fail(Status::InvalidArgument(
      "unknown verb '" + verb +
      "' (QUERY|BATCH|RELOAD|STATS|IDS|PING|QUIT)"));
}

void Server::FinishTextBatch(Connection& conn) {
  const std::string id = std::move(conn.batch_id);
  std::vector<std::string> lines = std::move(conn.batch_lines);
  conn.batch_id.clear();
  conn.batch_expected = 0;
  conn.batch_lines.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  auto answers = AnswerTextQueries(id, lines);
  if (!answers.ok()) {
    AppendTextError(conn, answers.status());
    return;
  }
  AppendTextHeader(conn, answers->size());
  AppendTextAnswers(conn, *answers);
}

void Server::HandleBinaryRequest(Connection& conn,
                                 const BinaryRequest& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  switch (request.verb) {
    case Verb::kQuery: {
      auto answers = AnswerSpecQueries(request.id, request.queries);
      if (!answers.ok()) {
        EncodeErrorResponse(&conn.out, answers.status());
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.failures;
        return;
      }
      EncodeOkAnswers(&conn.out, *answers);
      return;
    }
    case Verb::kReload: {
      auto message = DoReload(request.id, request.path);
      if (!message.ok()) {
        EncodeErrorResponse(&conn.out, message.status());
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.failures;
        return;
      }
      EncodeOkText(&conn.out, *message);
      return;
    }
    case Verb::kStats:
      EncodeOkText(&conn.out, RenderStatsText());
      return;
    case Verb::kIds:
      EncodeOkText(&conn.out, RenderIdsText());
      return;
    case Verb::kPing:
      EncodeOkText(&conn.out, "pong");
      return;
  }
  EncodeErrorResponse(&conn.out, Status::Internal("unhandled verb"));
}

template <typename BuildQueries>
Result<std::vector<double>> Server::AnswerTimed(const std::string& id,
                                                const BuildQueries& build) {
  // Failures are counted where the error response is rendered
  // (AppendTextError / the binary encode sites), exactly once per
  // request; error returns here just propagate.
  const std::uint64_t start = NowNanos();
  PRIVELET_ASSIGN_OR_RETURN(auto session, store_->Acquire(id));
  PRIVELET_ASSIGN_OR_RETURN(std::vector<query::RangeQuery> queries,
                            build(session->schema()));
  std::vector<double> answers = session->AnswerAll(queries);
  const std::uint64_t elapsed = NowNanos() - start;
  all_latency_.Record(elapsed);
  release_latency_[id].Record(elapsed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.queries += answers.size();
  return answers;
}

Result<std::vector<double>> Server::AnswerTextQueries(
    const std::string& id, std::span<const std::string> lines) {
  return AnswerTimed(
      id,
      [&](const data::Schema& schema)
          -> Result<std::vector<query::RangeQuery>> {
        std::vector<query::RangeQuery> queries;
        queries.reserve(lines.size());
        for (const std::string& line : lines) {
          PRIVELET_ASSIGN_OR_RETURN(query::RangeQuery query,
                                    ParseQueryLine(schema, line));
          queries.push_back(std::move(query));
        }
        return queries;
      });
}

Result<std::vector<double>> Server::AnswerSpecQueries(
    const std::string& id, std::span<const QuerySpec> specs) {
  if (specs.size() > kMaxQueriesPerRequest) {
    return Status::InvalidArgument("batch exceeds the query limit");
  }
  return AnswerTimed(
      id,
      [&](const data::Schema& schema)
          -> Result<std::vector<query::RangeQuery>> {
        std::vector<query::RangeQuery> queries;
        queries.reserve(specs.size());
        for (const QuerySpec& spec : specs) {
          PRIVELET_ASSIGN_OR_RETURN(query::RangeQuery query,
                                    BuildQuery(schema, spec));
          queries.push_back(std::move(query));
        }
        return queries;
      });
}

Result<std::string> Server::DoReload(const std::string& id,
                                     const std::string& path) {
  PRIVELET_RETURN_IF_ERROR(store_->Rebind(id, path));
  // Load eagerly so a bad path is the RELOAD's error, not the next
  // query's; in-flight borrowers of the old session are untouched.
  PRIVELET_RETURN_IF_ERROR(store_->Acquire(id).status());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reloads;
  }
  return "reloaded " + id;
}

std::string Server::RenderStatsText() {
  ServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  const query::ReleaseStore::Stats store_stats = store_->stats();
  std::string out;
  char buf[256];
  const auto line = [&](const char* key, std::uint64_t value) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                  static_cast<unsigned long long>(value));
    out += buf;
  };
  std::snprintf(buf, sizeof(buf), "uptime_s %.3f\n",
                uptime_.ElapsedSeconds());
  out += buf;
  line("connections_open", connections_.size());
  line("connections_accepted", snapshot.connections_accepted);
  line("connections_dropped", snapshot.connections_dropped);
  line("requests", snapshot.requests);
  line("failures", snapshot.failures);
  line("queries", snapshot.queries);
  line("reloads", snapshot.reloads);
  line("store_loads", store_stats.loads);
  line("store_hits", store_stats.hits);
  line("store_evictions", store_stats.evictions);
  line("store_resident", store_->resident_count());
  // Kernel dispatch attribution: which vector level query evaluation and
  // reloads run at (and what the host could run), so a fleet operator can
  // spot a daemon silently pinned to scalar by a stray PRIVELET_ISA.
  out += "isa_active " + std::string(simd::IsaLevelName(simd::ResolveIsa())) +
         "\n";
  out += "isa_best " +
         std::string(simd::IsaLevelName(simd::DetectBestIsa())) + "\n";
  out += "latency _all " + all_latency_.SummaryMicros() + "\n";
  for (const auto& [id, histogram] : release_latency_) {
    out += "latency " + id + " " + histogram.SummaryMicros() + "\n";
  }
  // Planner provenance of each resident release that was published under
  // --auto-plan (PVLS v3). PeekResident only: STATS must not force loads
  // or reshape the LRU order.
  for (const std::string& id : store_->ids()) {
    const auto session = store_->PeekResident(id);
    if (session == nullptr || !session->metadata().plan.has_value()) continue;
    const query::PlanRecord& plan = *session->metadata().plan;
    out += "plan " + id + " chosen=" + plan.chosen;
    std::snprintf(buf, sizeof(buf), " predicted_variance=%.17g",
                  plan.predicted_variance);
    out += buf;
    out += " runner_up=";
    out += plan.runner_up.empty() ? "-" : plan.runner_up;
    std::snprintf(buf, sizeof(buf),
                  " runner_up_variance=%.17g workload_queries=%lu\n",
                  plan.runner_up_variance,
                  static_cast<unsigned long>(plan.workload_queries));
    out += buf;
  }
  return out;
}

std::string Server::RenderIdsText() {
  std::string out;
  for (const std::string& id : store_->ids()) {
    out += id;
    out += '\n';
  }
  return out;
}

void Server::AppendTextHeader(Connection& conn, std::size_t payload_lines) {
  conn.out += "ok ";
  conn.out += std::to_string(payload_lines);
  conn.out += '\n';
}

void Server::AppendTextAnswers(Connection& conn,
                               std::span<const double> answers) {
  char buf[64];
  for (const double a : answers) {
    // %.17g round-trips doubles exactly — text answers are bit-identical
    // to `privelet_cli query` output for the same release.
    const int len = std::snprintf(buf, sizeof(buf), "%.17g\n", a);
    conn.out.append(buf, static_cast<std::size_t>(len));
  }
}

void Server::AppendTextError(Connection& conn, const Status& status) {
  conn.out += "error: ";
  conn.out += status.ToString();
  conn.out += '\n';
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.failures;
}

void Server::FlushConnection(Connection& conn) {
  if (conn.fd < 0) return;
  while (OutPending(conn) > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_head, OutPending(conn),
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE/ECONNRESET: the peer is gone — an ordinary connection end,
      // not a server failure.
      conn.fd = -1;
      return;
    }
    conn.out_head += static_cast<std::size_t>(n);
  }
  if (OutPending(conn) == 0) {
    conn.out.clear();
    conn.out_head = 0;
    if (conn.want_close) conn.fd = -1;
  }
  conn.writing = OutPending(conn) > 0;
}

void Server::UpdateInterest(Connection& conn) {
  if (conn.fd < 0) return;
  struct epoll_event ev{};
  ev.data.fd = conn.fd;
  ev.events = 0;
  if (conn.reading) ev.events |= EPOLLIN;
  if (conn.writing || OutPending(conn) > 0) ev.events |= EPOLLOUT;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

#endif  // defined(__linux__)

}  // namespace privelet::serving
