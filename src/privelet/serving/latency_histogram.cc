#include "privelet/serving/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace privelet::serving {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) {
  constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int octave = std::bit_width(value) - 1;  // >= kSubBits
  const std::size_t group = static_cast<std::size_t>(octave - kSubBits + 1);
  const std::size_t sub = static_cast<std::size_t>(
      (value >> (octave - kSubBits)) - kSubCount);
  return (group << kSubBits) | sub;
}

std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t index) {
  constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  const std::size_t group = index >> kSubBits;
  const std::uint64_t sub = index & (kSubCount - 1);
  if (group == 0) return sub;
  // Top group's bound wraps to 2^64; the unsigned wrap-minus-one yields
  // UINT64_MAX, which is the correct clamp.
  return ((sub + kSubCount + 1) << (group - 1)) - 1;
}

void LatencyHistogram::Record(std::uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

std::uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::AccumulateBuckets(
    std::span<const std::uint64_t> bucket_counts, std::uint64_t sum,
    std::uint64_t max) {
  std::uint64_t mass = 0;
  const std::size_t n = std::min(bucket_counts.size(), kNumBuckets);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i] += bucket_counts[i];
    mass += bucket_counts[i];
  }
  count_ += mass;
  sum_ += sum;
  max_ = std::max(max_, max);
}

std::string LatencyHistogram::SummaryMicros() const {
  const auto micros = [](std::uint64_t nanos) {
    return static_cast<double>(nanos) * 1e-3;
  };
  const double mean =
      count_ == 0 ? 0.0
                  : static_cast<double>(sum_) / static_cast<double>(count_);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean_us=%.1f p50_us=%.1f p99_us=%.1f "
                "p999_us=%.1f max_us=%.1f",
                static_cast<unsigned long long>(count_), mean * 1e-3,
                micros(Quantile(0.50)), micros(Quantile(0.99)),
                micros(Quantile(0.999)), micros(max_));
  return buf;
}

}  // namespace privelet::serving
