// Log-linear latency histogram for the serving daemon's per-release
// observability (STATS verb). HDR-style bucketing: values below 2^kSubBits
// get exact buckets, above that each power-of-two octave is split into
// 2^kSubBits linear sub-buckets, so the relative quantile error is bounded
// by 2^-kSubBits (~6%) at any scale from nanoseconds to minutes with a
// few hundred fixed-size counters and O(1) recording — the event loop
// records one sample per request on its hot path.
//
// Not thread-safe: the daemon's event loop owns its histograms; clients
// that aggregate across threads Merge() thread-local instances.
#ifndef PRIVELET_SERVING_LATENCY_HISTOGRAM_H_
#define PRIVELET_SERVING_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace privelet::serving {

class LatencyHistogram {
 public:
  /// Adds one sample (any unit; the daemon records nanoseconds).
  void Record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }

  /// Smallest recorded-bucket upper bound below which at least a `q`
  /// fraction of samples fall (0 < q <= 1). Exact for values < 2^kSubBits;
  /// within one sub-bucket (relative error <= 2^-kSubBits) above. Returns
  /// 0 on an empty histogram.
  std::uint64_t Quantile(double q) const;

  /// Element-wise accumulation of another histogram's samples.
  void Merge(const LatencyHistogram& other);

  /// Raw accumulation of pre-bucketed samples: `bucket_counts` must have
  /// kNumBuckets entries (one count per bucket, in BucketIndex order);
  /// `sum` and `max` are the totals of the underlying samples. The sample
  /// count is derived from the bucket mass so count and bucket totals can
  /// never disagree. This is the landing pad for
  /// ConcurrentHistogram::SnapshotInto — a lock-free per-loop histogram
  /// drains into a plain one here, then the loops' plain histograms
  /// combine via Merge().
  void AccumulateBuckets(std::span<const std::uint64_t> bucket_counts,
                         std::uint64_t sum, std::uint64_t max);

  /// One-line "count=N mean_us=... p50_us=... p99_us=... p999_us=...
  /// max_us=..." rendering, interpreting samples as nanoseconds (the
  /// daemon's unit). Used verbatim by the STATS verb.
  std::string SummaryMicros() const;

  static constexpr int kSubBits = 4;
  // 64-bit values span 64 octaves; the first kSubBits octaves collapse
  // into the exact region.
  static constexpr std::size_t kNumBuckets = (64 - kSubBits + 1)
                                             << kSubBits;

  /// Bucket index for a value (exposed for tests).
  static std::size_t BucketIndex(std::uint64_t value);
  /// Inclusive upper bound of a bucket (exposed for tests).
  static std::uint64_t BucketUpperBound(std::size_t index);

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace privelet::serving

#endif  // PRIVELET_SERVING_LATENCY_HISTOGRAM_H_
