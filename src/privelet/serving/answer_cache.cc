#include "privelet/serving/answer_cache.h"

#include <cstdint>

namespace privelet::serving {

namespace {

void AppendU64(std::uint64_t v, std::string* key) {
  for (int shift = 0; shift < 64; shift += 8) {
    key->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

void AppendQueryKey(const query::RangeQuery& query, std::string* key) {
  for (std::size_t attr = 0; attr < query.num_attributes(); ++attr) {
    const auto& range = query.range(attr);
    if (!range.has_value()) {
      key->push_back('\0');
      continue;
    }
    key->push_back('\1');
    AppendU64(range->lo, key);
    AppendU64(range->hi, key);
  }
}

}  // namespace privelet::serving
