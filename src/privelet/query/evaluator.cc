#include "privelet/query/evaluator.h"

#include <utility>

namespace privelet::query {

QueryEvaluator::QueryEvaluator(const data::Schema& schema,
                               const matrix::FrequencyMatrix& m,
                               common::ThreadPool* pool,
                               const matrix::EngineOptions& options)
    : table_(m, pool, options) {
  PRIVELET_CHECK(table_.dims() == schema.DomainSizes(),
                 "matrix dims do not match the schema");
}

QueryEvaluator::QueryEvaluator(const data::Schema& schema,
                               matrix::PrefixSumTable<long double> table)
    : table_(std::move(table)) {
  PRIVELET_CHECK(table_.dims() == schema.DomainSizes(),
                 "prefix-sum table dims do not match the schema");
}

namespace {

// Per-thread bound scratch for the single-query entry points: keeps them
// allocation-free (after each thread's first call) without reintroducing
// the shared mutable state that made concurrent Answer calls race.
struct BoundScratch {
  std::vector<std::size_t> lo, hi;
};

BoundScratch& ThreadBoundScratch() {
  static thread_local BoundScratch scratch;
  return scratch;
}

}  // namespace

double QueryEvaluator::Answer(const RangeQuery& query) const {
  BoundScratch& scratch = ThreadBoundScratch();
  return Answer(query, &scratch.lo, &scratch.hi);
}

double QueryEvaluator::Answer(const RangeQuery& query,
                              std::vector<std::size_t>* lo,
                              std::vector<std::size_t>* hi) const {
  query.ResolveBounds(table_.dims(), lo, hi);
  return static_cast<double>(table_.RangeSum(*lo, *hi));
}

ExactEvaluator::ExactEvaluator(const data::Schema& schema,
                               const matrix::FrequencyMatrix& m,
                               common::ThreadPool* pool,
                               const matrix::EngineOptions& options)
    : table_(m, pool, options) {
  PRIVELET_CHECK(table_.dims() == schema.DomainSizes(),
                 "matrix dims do not match the schema");
}

std::int64_t ExactEvaluator::Answer(const RangeQuery& query) const {
  BoundScratch& scratch = ThreadBoundScratch();
  return Answer(query, &scratch.lo, &scratch.hi);
}

std::int64_t ExactEvaluator::Answer(const RangeQuery& query,
                                    std::vector<std::size_t>* lo,
                                    std::vector<std::size_t>* hi) const {
  query.ResolveBounds(table_.dims(), lo, hi);
  return table_.RangeSum(*lo, *hi);
}

double BruteForceAnswer(const data::Schema& schema,
                        const matrix::FrequencyMatrix& m,
                        const RangeQuery& query) {
  std::vector<std::size_t> lo, hi;
  query.ResolveBounds(schema, &lo, &hi);
  const std::size_t d = m.num_dims();
  std::vector<std::size_t> coords = lo;
  double total = 0.0;
  while (true) {
    total += m.At(coords);
    // Odometer increment within [lo, hi].
    std::size_t axis = d;
    while (axis-- > 0) {
      if (coords[axis] < hi[axis]) {
        ++coords[axis];
        break;
      }
      coords[axis] = lo[axis];
      if (axis == 0) return total;
    }
  }
}

}  // namespace privelet::query
