#include "privelet/query/evaluator.h"

namespace privelet::query {

QueryEvaluator::QueryEvaluator(const data::Schema& schema,
                               const matrix::FrequencyMatrix& m)
    : schema_(schema), table_(m) {}

double QueryEvaluator::Answer(const RangeQuery& query) const {
  query.ResolveBounds(schema_, &lo_, &hi_);
  return static_cast<double>(table_.RangeSum(lo_, hi_));
}

ExactEvaluator::ExactEvaluator(const data::Schema& schema,
                               const matrix::FrequencyMatrix& m)
    : schema_(schema), table_(m) {}

std::int64_t ExactEvaluator::Answer(const RangeQuery& query) const {
  query.ResolveBounds(schema_, &lo_, &hi_);
  return table_.RangeSum(lo_, hi_);
}

double BruteForceAnswer(const data::Schema& schema,
                        const matrix::FrequencyMatrix& m,
                        const RangeQuery& query) {
  std::vector<std::size_t> lo, hi;
  query.ResolveBounds(schema, &lo, &hi);
  const std::size_t d = m.num_dims();
  std::vector<std::size_t> coords = lo;
  double total = 0.0;
  while (true) {
    total += m.At(coords);
    // Odometer increment within [lo, hi].
    std::size_t axis = d;
    while (axis-- > 0) {
      if (coords[axis] < hi[axis]) {
        ++coords[axis];
        break;
      }
      coords[axis] = lo[axis];
      if (axis == 0) return total;
    }
  }
}

}  // namespace privelet::query
