#include "privelet/query/range_query.h"

#include <string>

#include "privelet/common/check.h"

namespace privelet::query {

Status RangeQuery::SetRange(const data::Schema& schema, std::size_t attr,
                            std::size_t lo, std::size_t hi) {
  if (attr >= ranges_.size() || attr >= schema.num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  if (lo > hi || hi >= schema.attribute(attr).domain_size()) {
    return Status::OutOfRange("bad interval [" + std::to_string(lo) + ", " +
                              std::to_string(hi) + "] for attribute '" +
                              schema.attribute(attr).name() + "'");
  }
  ranges_[attr] = ValueRange{lo, hi};
  return Status::OK();
}

Status RangeQuery::SetHierarchyNode(const data::Schema& schema,
                                    std::size_t attr, std::size_t node) {
  if (attr >= ranges_.size() || attr >= schema.num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  const data::Attribute& attribute = schema.attribute(attr);
  if (!attribute.is_nominal()) {
    return Status::InvalidArgument("attribute '" + attribute.name() +
                                   "' is not nominal");
  }
  const data::Hierarchy& hierarchy = attribute.hierarchy();
  if (node >= hierarchy.num_nodes()) {
    return Status::OutOfRange("hierarchy node out of range");
  }
  const auto& n = hierarchy.node(node);
  ranges_[attr] = ValueRange{n.leaf_begin, n.leaf_end - 1};
  return Status::OK();
}

std::size_t RangeQuery::NumPredicates() const {
  std::size_t count = 0;
  for (const auto& r : ranges_) {
    if (r.has_value()) ++count;
  }
  return count;
}

void RangeQuery::ResolveBounds(const data::Schema& schema,
                               std::vector<std::size_t>* lo,
                               std::vector<std::size_t>* hi) const {
  lo->resize(ranges_.size());
  hi->resize(ranges_.size());
  for (std::size_t a = 0; a < ranges_.size(); ++a) {
    if (ranges_[a].has_value()) {
      (*lo)[a] = ranges_[a]->lo;
      (*hi)[a] = ranges_[a]->hi;
    } else {
      (*lo)[a] = 0;
      (*hi)[a] = schema.attribute(a).domain_size() - 1;
    }
  }
}

void RangeQuery::ResolveBounds(std::span<const std::size_t> domain_sizes,
                               std::vector<std::size_t>* lo,
                               std::vector<std::size_t>* hi) const {
  PRIVELET_DCHECK(domain_sizes.size() == ranges_.size(),
                  "domain size arity mismatch");
  lo->resize(ranges_.size());
  hi->resize(ranges_.size());
  for (std::size_t a = 0; a < ranges_.size(); ++a) {
    if (ranges_[a].has_value()) {
      (*lo)[a] = ranges_[a]->lo;
      (*hi)[a] = ranges_[a]->hi;
    } else {
      (*lo)[a] = 0;
      (*hi)[a] = domain_sizes[a] - 1;
    }
  }
}

double RangeQuery::Coverage(const data::Schema& schema) const {
  double coverage = 1.0;
  for (std::size_t a = 0; a < ranges_.size(); ++a) {
    if (ranges_[a].has_value()) {
      coverage *= static_cast<double>(ranges_[a]->width()) /
                  static_cast<double>(schema.attribute(a).domain_size());
    }
  }
  return coverage;
}

}  // namespace privelet::query
