// Random range-count workload generator following the paper's evaluation
// protocol (Sec. VII-A): each query has a uniform number of predicates in
// [1, 4] over distinct random attributes; ordinal predicates are random
// intervals; nominal predicates select the subtree of a random non-root
// hierarchy node.
#ifndef PRIVELET_QUERY_WORKLOAD_H_
#define PRIVELET_QUERY_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/query/range_query.h"

namespace privelet::query {

/// Knobs of the random workload; the defaults are the paper's evaluation
/// configuration.
struct WorkloadOptions {
  std::size_t num_queries = 40'000;
  /// Predicate count is uniform in [min_predicates, max_predicates]
  /// (capped at the attribute count) over distinct random attributes.
  std::size_t min_predicates = 1;
  std::size_t max_predicates = 4;
  /// Generation is deterministic in this seed.
  std::uint64_t seed = 7;
};

/// Generates the random workload. Deterministic in `options.seed`.
/// `max_predicates` is capped at the number of attributes.
Result<std::vector<RangeQuery>> GenerateWorkload(
    const data::Schema& schema, const WorkloadOptions& options);

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_WORKLOAD_H_
