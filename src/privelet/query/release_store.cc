#include "privelet/query/release_store.h"

#include <utility>

#include "privelet/storage/session_io.h"

namespace privelet::query {

ReleaseStore::ReleaseStore() : ReleaseStore(Options{}) {}

ReleaseStore::ReleaseStore(Options options) : options_(options) {}

Status ReleaseStore::Register(std::string id, std::string path) {
  if (id.empty()) {
    return Status::InvalidArgument("release id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = entries_.try_emplace(std::move(id));
  if (!inserted) {
    return Status::InvalidArgument("release id '" + it->first +
                                   "' is already registered");
  }
  it->second.path = std::move(path);
  return Status::OK();
}

Status ReleaseStore::Rebind(std::string id, std::string path) {
  if (id.empty()) {
    return Status::InvalidArgument("release id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::move(id)];
  entry.path = std::move(path);
  ++entry.generation;
  if (entry.session != nullptr) {
    entry.session.reset();
    ++stats_.evictions;
  }
  // Detach any in-flight load of the old path: its waiters still get the
  // old session, but the loader will see the generation change and not
  // install it; the next Acquire starts a fresh load of the new path.
  entry.inflight.reset();
  return Status::OK();
}

std::vector<std::string> ReleaseStore::ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;  // std::map iterates sorted
}

std::shared_ptr<const PublishingSession> ReleaseStore::PeekResident(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.session;
}

Result<std::shared_ptr<const PublishingSession>> ReleaseStore::Acquire(
    const std::string& id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("release id '" + id + "' is not registered");
  }
  Entry& entry = it->second;
  if (entry.session != nullptr) {
    ++stats_.hits;
    entry.last_used = ++tick_;
    return entry.session;
  }
  if (entry.inflight != nullptr) {
    // Another thread is loading this release; wait on its result
    // outside the lock.
    const auto shared = entry.inflight;
    lock.unlock();
    const SessionResult& result = shared->get();
    if (!result.ok()) return result.status();
    // Count the serve and refresh the LRU clock — a release whose
    // traffic piled up during its load is hot, not cold. The load may
    // also have been evicted between set_value and our wakeup; the
    // loaded session itself is still valid to hand out regardless.
    lock.lock();
    if (entry.session == *result) {
      ++stats_.hits;
      entry.last_used = ++tick_;
    }
    return *result;
  }
  // Become the loader. The entry address is stable (std::map) and the
  // entry cannot be erased (there is no unregister), so holding the
  // pointer across the unlocked load is safe.
  auto promise = std::make_shared<std::promise<SessionResult>>();
  auto inflight = std::make_shared<std::shared_future<SessionResult>>(
      promise->get_future().share());
  entry.inflight = inflight;
  const std::uint64_t generation = entry.generation;
  const std::string path = entry.path;
  lock.unlock();

  auto opened = storage::OpenServingSession(path, options_.pool);
  SessionResult result =
      opened.ok()
          ? SessionResult(std::make_shared<const PublishingSession>(
                std::move(*opened)))
          : SessionResult(opened.status());

  lock.lock();
  // A Rebind may have replaced the binding (and possibly a newer loader)
  // while we loaded: only clear our own inflight marker, and only install
  // the session if the binding we loaded from is still current. Waiters
  // on our future still receive what they asked for.
  if (entry.inflight == inflight) entry.inflight.reset();
  if (result.ok()) {
    ++stats_.loads;
    if (entry.generation == generation) {
      entry.session = *result;
      entry.last_used = ++tick_;
      EnforceBoundLocked(&entry);
    }
  }
  lock.unlock();
  promise->set_value(result);
  return result;
}

Result<std::vector<double>> ReleaseStore::AnswerAll(
    const std::string& id, std::span<const RangeQuery> queries) {
  PRIVELET_ASSIGN_OR_RETURN(std::shared_ptr<const PublishingSession> session,
                            Acquire(id));
  return session->AnswerAll(queries);
}

bool ReleaseStore::Evict(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end() || it->second.session == nullptr) return false;
  it->second.session.reset();
  ++stats_.evictions;
  return true;
}

void ReleaseStore::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (entry.session != nullptr) {
      entry.session.reset();
      ++stats_.evictions;
    }
  }
}

std::uint64_t ReleaseStore::generation(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return 0;
  // +1 so a fresh Register (internal generation 0) is distinguishable
  // from "unknown id" — a caller keying caches on the value must see a
  // bump when an id it cached against is ever re-registered from scratch.
  return it->second.generation + 1;
}

std::size_t ReleaseStore::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.session != nullptr) ++count;
  }
  return count;
}

ReleaseStore::Stats ReleaseStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReleaseStore::EnforceBoundLocked(const Entry* keep) {
  if (options_.max_resident == 0) return;
  while (true) {
    std::size_t resident = 0;
    Entry* oldest = nullptr;
    for (auto& [id, entry] : entries_) {
      if (entry.session == nullptr) continue;
      ++resident;
      if (&entry == keep) continue;
      if (oldest == nullptr || entry.last_used < oldest->last_used) {
        oldest = &entry;
      }
    }
    if (resident <= options_.max_resident || oldest == nullptr) return;
    oldest->session.reset();
    ++stats_.evictions;
  }
}

}  // namespace privelet::query
