#include "privelet/query/metrics.h"

#include <algorithm>
#include <numeric>

namespace privelet::query {

std::vector<BucketStat> EqualCountBuckets(const std::vector<double>& keys,
                                          const std::vector<double>& values,
                                          std::size_t num_buckets) {
  PRIVELET_CHECK(keys.size() == values.size(), "keys/values size mismatch");
  PRIVELET_CHECK(num_buckets >= 1, "need >= 1 bucket");
  PRIVELET_CHECK(keys.size() >= num_buckets, "fewer pairs than buckets");

  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&keys](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });

  std::vector<BucketStat> buckets(num_buckets);
  const std::size_t n = keys.size();
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const std::size_t begin = b * n / num_buckets;
    const std::size_t end = (b + 1) * n / num_buckets;
    BucketStat& stat = buckets[b];
    stat.count = end - begin;
    double key_sum = 0.0, value_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      key_sum += keys[order[i]];
      value_sum += values[order[i]];
    }
    stat.avg_key = key_sum / static_cast<double>(stat.count);
    stat.avg_value = value_sum / static_cast<double>(stat.count);
  }
  return buckets;
}

}  // namespace privelet::query
