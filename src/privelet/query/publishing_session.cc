#include "privelet/query/publishing_session.h"

#include <utility>

namespace privelet::query {

PublishingSession::PublishingSession(
    std::shared_ptr<const data::Schema> schema,
    std::shared_ptr<const matrix::FrequencyMatrix> published,
    std::shared_ptr<const QueryEvaluator> evaluator, ReleaseMetadata metadata,
    common::ThreadPool* pool, const matrix::EngineOptions& options,
    std::shared_ptr<const void> mapping)
    : schema_(std::move(schema)),
      published_(std::move(published)),
      mapping_(std::move(mapping)),
      evaluator_(std::move(evaluator)),
      metadata_(std::move(metadata)),
      options_(options),
      pool_(pool) {}

PublishingSession PublishingSession::BuildOwned(
    data::Schema schema, matrix::FrequencyMatrix published,
    std::optional<matrix::PrefixSumTable<long double>> table,
    ReleaseMetadata metadata, common::ThreadPool* pool,
    const matrix::EngineOptions& options) {
  auto schema_ptr = std::make_shared<const data::Schema>(std::move(schema));
  auto matrix_ptr = std::make_shared<const matrix::FrequencyMatrix>(
      std::move(published));
  auto evaluator = table.has_value()
                       ? std::make_shared<const QueryEvaluator>(
                             *schema_ptr, std::move(*table))
                       : std::make_shared<const QueryEvaluator>(
                             *schema_ptr, *matrix_ptr, pool, options);
  return PublishingSession(std::move(schema_ptr), std::move(matrix_ptr),
                           std::move(evaluator), std::move(metadata), pool,
                           options);
}

Result<PublishingSession> PublishingSession::Publish(
    const data::Schema& schema, const mechanism::Mechanism& mech,
    const matrix::FrequencyMatrix& m, double epsilon, std::uint64_t seed,
    common::ThreadPool* pool, const matrix::EngineOptions& options) {
  PRIVELET_ASSIGN_OR_RETURN(matrix::FrequencyMatrix published,
                            mech.Publish(schema, m, epsilon, seed));
  ReleaseMetadata metadata{std::string(mech.name()), epsilon, seed,
                           options.out_of_core() ? PublishMode::kStreamed
                                                 : PublishMode::kInCore,
                           /*plan=*/std::nullopt};
  return BuildOwned(schema, std::move(published), std::nullopt,
                    std::move(metadata), pool, options);
}

Result<PublishingSession> PublishingSession::FromMatrix(
    const data::Schema& schema, matrix::FrequencyMatrix published,
    common::ThreadPool* pool, const matrix::EngineOptions& options) {
  if (published.dims() != schema.DomainSizes()) {
    return Status::InvalidArgument(
        "published matrix dims do not match the schema");
  }
  return BuildOwned(schema, std::move(published), std::nullopt,
                    ReleaseMetadata{}, pool, options);
}

Result<PublishingSession> PublishingSession::FromParts(
    const data::Schema& schema, matrix::FrequencyMatrix published,
    matrix::PrefixSumTable<long double> table, ReleaseMetadata metadata,
    common::ThreadPool* pool, const matrix::EngineOptions& options) {
  if (published.dims() != schema.DomainSizes()) {
    return Status::InvalidArgument(
        "published matrix dims do not match the schema");
  }
  if (table.dims() != published.dims()) {
    return Status::InvalidArgument(
        "prefix-sum table dims do not match the published matrix");
  }
  return BuildOwned(schema, std::move(published), std::move(table),
                    std::move(metadata), pool, options);
}

const matrix::FrequencyMatrix& PublishingSession::published() const {
  PRIVELET_CHECK(published_ != nullptr,
                 "mapped session does not materialize the release matrix");
  return *published_;
}

double PublishingSession::Answer(const RangeQuery& query) const {
  return evaluator_->Answer(query);
}

std::vector<double> PublishingSession::AnswerAll(
    std::span<const RangeQuery> queries) const {
  std::vector<double> answers(queries.size());
  common::ParallelFor(pool_, queries.size(), /*grain=*/0,
                      [&](std::size_t begin, std::size_t end) {
                        std::vector<std::size_t> lo, hi;
                        for (std::size_t i = begin; i < end; ++i) {
                          answers[i] = evaluator_->Answer(queries[i], &lo, &hi);
                        }
                      });
  return answers;
}

CompiledWorkload PublishingSession::Compile(
    std::span<const RangeQuery> queries) const {
  return CompiledWorkload::Compile(queries, evaluator_->table().dims());
}

std::vector<double> PublishingSession::AnswerCompiled(
    const CompiledWorkload& workload) const {
  const simd::IsaLevel level = simd::ResolveIsa(options_.isa);
  std::vector<double> answers(workload.num_queries());
  common::ParallelFor(pool_, workload.num_queries(), /*grain=*/0,
                      [&](std::size_t begin, std::size_t end) {
                        workload.AnswerInto(evaluator_->table(), begin, end,
                                            level, answers.data() + begin);
                      });
  return answers;
}

}  // namespace privelet::query
