// ReleaseStore: a thread-safe catalog of published releases for one
// serving process. The ROADMAP's traffic model is many scenarios resident
// at once — one process answering mixed workloads over dozens of
// releases — so the store maps release ids to snapshot paths and turns
// them into live PublishingSessions lazily: a release costs nothing until
// its first query, v2 snapshots are memory-mapped in place (zero-copy,
// O(header + CRC) open), and an optional LRU bound caps how many stay
// resident. Sessions are handed out as shared_ptrs, so eviction never
// yanks a release out from under an in-flight batch — the mapping is
// unmapped when the last borrower drops it.
//
// All public methods are safe to call concurrently; concurrent Acquire
// calls for the same cold release share a single load instead of racing
// to map the file N times.
//
// Layering note (docs/ARCHITECTURE.md): this header is storage-free, but
// release_store.cc composes storage::OpenServingSession with the session
// facade — it is the serving tip of the library, above both query and
// storage.
#ifndef PRIVELET_QUERY_RELEASE_STORE_H_
#define PRIVELET_QUERY_RELEASE_STORE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/thread_pool.h"
#include "privelet/query/publishing_session.h"
#include "privelet/query/range_query.h"

namespace privelet::query {

class ReleaseStore {
 public:
  struct Options {
    /// Maximum number of resident (loaded) releases; 0 = unbounded. When
    /// a load pushes the count past the bound, the least recently used
    /// resident releases are evicted (never the one just loaded).
    std::size_t max_resident = 0;
    /// Pool for batched answering and for table rebuilds on snapshots
    /// without an adoptable table. Not owned; may be nullptr (serial) and
    /// must outlive the store otherwise.
    common::ThreadPool* pool = nullptr;
  };

  /// Monotonic counters since construction (a snapshot; taken under the
  /// store lock).
  struct Stats {
    std::uint64_t loads = 0;      ///< snapshot opens (mapped or copy)
    std::uint64_t hits = 0;       ///< Acquire calls served by a resident session
    std::uint64_t evictions = 0;  ///< sessions dropped by the LRU bound or Evict
  };

  ReleaseStore();  // default Options
  explicit ReleaseStore(Options options);

  /// Catalogs `id` -> `path` without touching the file (errors surface on
  /// first Acquire). Duplicate ids are rejected.
  Status Register(std::string id, std::string path);

  /// Points `id` at `path`, registering it if unknown — the hot-swap
  /// behind the daemon's RELOAD verb. Any resident session for `id` is
  /// dropped (borrowed shared_ptrs stay valid; in-flight borrowers finish
  /// on the old release) and the next Acquire loads the new file. A load
  /// of the old path still in flight when Rebind runs is discarded on
  /// completion instead of being installed.
  Status Rebind(std::string id, std::string path);

  /// All registered ids, sorted.
  std::vector<std::string> ids() const;

  /// The live session for `id`, loading it on first use (and after an
  /// eviction). The returned shared_ptr keeps the release — including a
  /// mapped snapshot's pages — alive regardless of later evictions, so
  /// callers may hold it across an entire batch. NotFound for unknown
  /// ids; load failures are returned to every concurrent waiter and not
  /// cached (a later Acquire retries the file).
  Result<std::shared_ptr<const PublishingSession>> Acquire(
      const std::string& id);

  /// Convenience: Acquire(id) then pooled AnswerAll on the session.
  Result<std::vector<double>> AnswerAll(const std::string& id,
                                        std::span<const RangeQuery> queries);

  /// The resident session for `id`, or nullptr when the release is not
  /// loaded (or the id unknown). Unlike Acquire this never triggers a
  /// load, eviction, or LRU refresh — the diagnostics path (daemon STATS
  /// reporting release plans) must observe the store, not reshape it.
  std::shared_ptr<const PublishingSession> PeekResident(
      const std::string& id) const;

  /// Rebind generation of `id`: a nonzero value that changes every time
  /// Rebind points the id at a new path, and 0 for unknown ids. The
  /// serving layer keys its per-release answer caches on this — read the
  /// generation BEFORE Acquire and stamp cached answers with it, so a
  /// Rebind racing the read at worst invalidates one extra time, never
  /// serves a stale answer under the new generation.
  std::uint64_t generation(const std::string& id) const;

  /// Drops the resident session for `id`, if any (borrowed shared_ptrs
  /// stay valid). Returns true when a session was resident. Unknown ids
  /// return false.
  bool Evict(const std::string& id);

  /// Drops every resident session.
  void EvictAll();

  /// Number of currently resident sessions.
  std::size_t resident_count() const;

  Stats stats() const;

 private:
  using SessionResult = Result<std::shared_ptr<const PublishingSession>>;

  struct Entry {
    std::string path;
    std::shared_ptr<const PublishingSession> session;  ///< null until loaded
    /// In-flight load, shared by every concurrent Acquire of this id.
    std::shared_ptr<std::shared_future<SessionResult>> inflight;
    std::uint64_t last_used = 0;
    /// Bumped by Rebind; a loader only installs its session when the
    /// generation it captured is still current.
    std::uint64_t generation = 0;
  };

  /// Evicts least-recently-used resident sessions (excluding `keep`)
  /// until the bound holds. Caller holds mu_.
  void EnforceBoundLocked(const Entry* keep);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< node-stable; Entry* survive
  std::uint64_t tick_ = 0;                ///< LRU clock
  Stats stats_;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_RELEASE_STORE_H_
