// Query evaluation over frequency matrices. Exact counts come from an
// int64 prefix-sum table over the true matrix; noisy answers come from a
// long-double table over a mechanism's output. A brute-force evaluator is
// provided as the test oracle.
#ifndef PRIVELET_QUERY_EVALUATOR_H_
#define PRIVELET_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/prefix_sum.h"
#include "privelet/query/range_query.h"

namespace privelet::common {
class ThreadPool;
}  // namespace privelet::common

namespace privelet::query {

/// Answers range-count queries over a real-valued (typically noisy) matrix
/// in O(2^d) after O(m) setup. Answer is const with no hidden mutable
/// state, so a shared evaluator serves concurrent callers safely.
///
/// The schema passed at construction is only validated against, never
/// retained: answering resolves unconstrained axes from the table's own
/// dims (== the schema's domain sizes, checked), so an evaluator safely
/// outlives the schema — and, for table-adopting construction, the matrix
/// — it was built from.
class QueryEvaluator {
 public:
  /// `pool` (optional) parallelizes the prefix-sum build and `options`
  /// selects its line engine (matrix/engine.h); neither is retained after
  /// construction. The matrix dims must match the schema's domain sizes.
  QueryEvaluator(const data::Schema& schema, const matrix::FrequencyMatrix& m,
                 common::ThreadPool* pool = nullptr,
                 const matrix::EngineOptions& options = {});

  /// Adopts an already-built table — deserialized from a release snapshot,
  /// or a non-owning view into a mapped one — instead of paying the O(m)
  /// build. The table dims must match the schema's domain sizes. For view
  /// tables the caller keeps the backing storage alive (see
  /// matrix::PrefixSumTable).
  QueryEvaluator(const data::Schema& schema,
                 matrix::PrefixSumTable<long double> table);

  /// The underlying prefix-sum table; what storage/ serializes.
  const matrix::PrefixSumTable<long double>& table() const { return table_; }

  /// Noisy estimate of one range-count query. Thread-safe.
  double Answer(const RangeQuery& query) const;

  /// Scratch-reusing overload for batched callers: `lo`/`hi` are resized
  /// and overwritten, avoiding the two small allocations per query. Each
  /// concurrent caller passes its own scratch.
  double Answer(const RangeQuery& query, std::vector<std::size_t>* lo,
                std::vector<std::size_t>* hi) const;

 private:
  matrix::PrefixSumTable<long double> table_;
};

/// Answers range-count queries over an exact count matrix with integer
/// arithmetic (no rounding for any data size). Thread-safe like
/// QueryEvaluator, and likewise independent of the schema after
/// construction.
class ExactEvaluator {
 public:
  ExactEvaluator(const data::Schema& schema, const matrix::FrequencyMatrix& m,
                 common::ThreadPool* pool = nullptr,
                 const matrix::EngineOptions& options = {});

  std::int64_t Answer(const RangeQuery& query) const;

  std::int64_t Answer(const RangeQuery& query, std::vector<std::size_t>* lo,
                      std::vector<std::size_t>* hi) const;

 private:
  matrix::PrefixSumTable<std::int64_t> table_;
};

/// O(m)-per-query reference evaluator used to validate the tables.
double BruteForceAnswer(const data::Schema& schema,
                        const matrix::FrequencyMatrix& m,
                        const RangeQuery& query);

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_EVALUATOR_H_
