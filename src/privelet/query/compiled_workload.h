// CompiledWorkload: a batch of range-count queries pre-resolved against
// one prefix-sum table shape. Answering a query the direct way
// (QueryEvaluator::Answer) re-derives everything per call: predicate
// bounds, then 2^d inclusion-exclusion corners, each a d-term
// stride-multiply plus an empty-side branch. Compiling does that work
// once — every query flattens into a run of (table offset, sign) corner
// pairs — so evaluation is just a signed fold of gathered table slots:
// the offsets stream through the dispatched 16-byte gather kernel
// (simd/kernels.h, scalar/AVX2/AVX-512) into an L1-resident staging
// buffer, and a shared scalar x87 fold accumulates each query's corners
// in compile order.
//
// Bit-identity (docs/DETERMINISM.md): the corner order and the
// conditional negation are exactly PrefixSumTable::RangeSum's, corners
// skipped there (a low side at the domain edge) are dropped at compile
// time, and the gather moves bytes without arithmetic — so AnswerAll is
// bit-identical to the per-query scalar path at every ISA level by
// construction. The long double accumulation itself never vectorizes
// (x87 has no vector form); the lanes carry only independent offsets.
#ifndef PRIVELET_QUERY_COMPILED_WORKLOAD_H_
#define PRIVELET_QUERY_COMPILED_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "privelet/matrix/prefix_sum.h"
#include "privelet/query/range_query.h"
#include "privelet/simd/dispatch.h"

namespace privelet::query {

class CompiledWorkload {
 public:
  CompiledWorkload() = default;

  /// Resolves every query's bounds against per-attribute domain sizes
  /// (the table's dims) and flattens its inclusion-exclusion corners.
  /// Each query's arity must equal dims.size() (PRIVELET_CHECKed, same
  /// contract as QueryEvaluator).
  static CompiledWorkload Compile(std::span<const RangeQuery> queries,
                                  std::span<const std::size_t> dims);

  std::size_t num_queries() const { return num_queries_; }
  std::size_t num_corners() const { return offsets_.size(); }
  const std::vector<std::size_t>& dims() const { return dims_; }

  /// Answers queries [begin, end) into out[0 .. end-begin), evaluating
  /// through the kernel table of `level`. `table` must have the dims this
  /// workload was compiled against (PRIVELET_CHECKed). Thread-safe and
  /// re-entrant: disjoint ranges may be answered concurrently.
  void AnswerInto(const matrix::PrefixSumTable<long double>& table,
                  std::size_t begin, std::size_t end, simd::IsaLevel level,
                  double* out) const;

  /// All answers, in query order.
  std::vector<double> AnswerAll(
      const matrix::PrefixSumTable<long double>& table,
      simd::IsaLevel level) const;

 private:
  std::vector<std::size_t> dims_;
  std::vector<std::uint64_t> offsets_;  ///< flat corner offsets, all queries
  std::vector<std::int8_t> signs_;      ///< +1 / -1 per corner
  std::vector<std::uint64_t> begins_;   ///< per-query [begin, end) corners
  std::size_t num_queries_ = 0;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_COMPILED_WORKLOAD_H_
