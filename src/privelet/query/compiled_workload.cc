#include "privelet/query/compiled_workload.h"

#include <algorithm>

#include "privelet/common/check.h"
#include "privelet/simd/kernels.h"

namespace privelet::query {

CompiledWorkload CompiledWorkload::Compile(
    std::span<const RangeQuery> queries, std::span<const std::size_t> dims) {
  CompiledWorkload compiled;
  compiled.dims_.assign(dims.begin(), dims.end());
  compiled.num_queries_ = queries.size();

  const std::size_t d = dims.size();
  // Row-major strides, exactly PrefixSumTable::InitStrides (last axis
  // contiguous), so the flattened offsets address raw_sums() directly.
  std::vector<std::size_t> strides(d);
  std::size_t stride = 1;
  for (std::size_t axis = d; axis-- > 0;) {
    strides[axis] = stride;
    stride *= dims[axis];
  }

  compiled.begins_.reserve(queries.size() + 1);
  compiled.begins_.push_back(0);
  const std::size_t corners = std::size_t{1} << d;
  compiled.offsets_.reserve(queries.size() * corners);
  compiled.signs_.reserve(queries.size() * corners);

  std::vector<std::size_t> lo, hi;
  for (const RangeQuery& query : queries) {
    PRIVELET_CHECK(query.num_attributes() == d,
                   "query arity does not match the table dims");
    query.ResolveBounds(dims, &lo, &hi);
    // The corner walk below is PrefixSumTable::RangeSum verbatim, minus
    // the arithmetic: corners whose term vanishes (a low side at the
    // domain edge) are dropped here instead of skipped there, and the
    // surviving (offset, sign) pairs are emitted in RangeSum's corner
    // order so the evaluation fold adds the same values in the same
    // sequence — bit-identical answers.
    for (std::size_t corner = 0; corner < corners; ++corner) {
      std::size_t flat = 0;
      bool empty = false;
      int low_sides = 0;
      for (std::size_t axis = 0; axis < d; ++axis) {
        if (corner & (std::size_t{1} << axis)) {
          flat += hi[axis] * strides[axis];
        } else {
          ++low_sides;
          if (lo[axis] == 0) {
            empty = true;
            break;
          }
          flat += (lo[axis] - 1) * strides[axis];
        }
      }
      if (empty) continue;
      compiled.offsets_.push_back(static_cast<std::uint64_t>(flat));
      compiled.signs_.push_back(low_sides % 2 == 0 ? 1 : -1);
    }
    compiled.begins_.push_back(compiled.offsets_.size());
  }
  return compiled;
}

void CompiledWorkload::AnswerInto(
    const matrix::PrefixSumTable<long double>& table, std::size_t begin,
    std::size_t end, simd::IsaLevel level, double* out) const {
  PRIVELET_CHECK(table.dims() == dims_,
                 "table dims do not match the compiled workload");
  PRIVELET_CHECK(begin <= end && end <= num_queries_,
                 "query range out of bounds");
  if (begin == end) return;

  const long double* slots = table.raw_sums().data();
  const auto& kernels = simd::Kernels(level);

  // Corners stream through an L1-resident staging buffer: one gather
  // call covers a run spanning many queries, then the scalar fold walks
  // the staged slots closing queries as their corner ranges end. A
  // query's fold state survives a chunk boundary in `partial`.
  constexpr std::size_t kStageSlots = 1024;  // 16 KiB
  alignas(64) long double staged[kStageSlots];

  std::size_t q = begin;
  std::size_t c = begins_[begin];
  const std::size_t c_end = begins_[end];
  long double partial = 0.0L;
  while (c < c_end) {
    const std::size_t chunk = std::min<std::size_t>(kStageSlots, c_end - c);
    kernels.gather_slots_16b(slots, offsets_.data() + c, chunk, staged);
    const std::size_t chunk_end = c + chunk;
    std::size_t k = c;
    while (k < chunk_end) {
      const std::size_t close = std::min<std::size_t>(begins_[q + 1],
                                                      chunk_end);
      for (; k < close; ++k) {
        const long double v = staged[k - c];
        // Conditional negation exactly as RangeSum's signed accumulate.
        partial += signs_[k] > 0 ? v : -v;
      }
      if (close == begins_[q + 1]) {
        out[q - begin] = static_cast<double>(partial);
        partial = 0.0L;
        ++q;
      }
    }
    c = chunk_end;
  }
  // Trailing queries whose corners all vanished (empty at every corner).
  for (; q < end; ++q) {
    out[q - begin] = static_cast<double>(partial);
    partial = 0.0L;
  }
}

std::vector<double> CompiledWorkload::AnswerAll(
    const matrix::PrefixSumTable<long double>& table,
    simd::IsaLevel level) const {
  std::vector<double> answers(num_queries_);
  AnswerInto(table, 0, num_queries_, level, answers.data());
  return answers;
}

}  // namespace privelet::query
