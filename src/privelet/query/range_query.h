// Range-count queries (paper Sec. II-A):
//   SELECT COUNT(*) FROM T WHERE A1 IN S1 AND ... AND Ad IN Sd
// with Si an interval for ordinal attributes and, for nominal attributes,
// either a single leaf or the full subtree of a hierarchy node. Both forms
// are contiguous in the imposed leaf order, so a query is a d-dimensional
// box with inclusive per-axis bounds; unconstrained attributes cover their
// whole domain.
#ifndef PRIVELET_QUERY_RANGE_QUERY_H_
#define PRIVELET_QUERY_RANGE_QUERY_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "privelet/common/status.h"
#include "privelet/data/schema.h"

namespace privelet::query {

/// Inclusive range over one attribute's dense domain.
struct ValueRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  std::size_t width() const { return hi - lo + 1; }
  bool operator==(const ValueRange&) const = default;
};

/// A range-count query over a d-attribute schema.
class RangeQuery {
 public:
  /// A query with no predicates (answers the table cardinality).
  explicit RangeQuery(std::size_t num_attributes)
      : ranges_(num_attributes) {}

  /// Arity of the schema this query ranges over (not the predicate count).
  std::size_t num_attributes() const { return ranges_.size(); }

  /// Adds/overwrites the interval predicate "attr in [lo, hi]".
  Status SetRange(const data::Schema& schema, std::size_t attr,
                  std::size_t lo, std::size_t hi);

  /// Adds the nominal predicate selecting the subtree of `node` in the
  /// hierarchy of `attr` (a leaf node selects a single value). This is the
  /// roll-up/drill-down form from the paper.
  Status SetHierarchyNode(const data::Schema& schema, std::size_t attr,
                          std::size_t node);

  /// The predicate on `attr`, if any (nullopt = unconstrained).
  const std::optional<ValueRange>& range(std::size_t attr) const {
    return ranges_[attr];
  }

  /// Number of attributes with a predicate.
  std::size_t NumPredicates() const;

  /// Resolved inclusive per-axis bounds over the full matrix (unconstrained
  /// axes become [0, |A|-1]).
  void ResolveBounds(const data::Schema& schema,
                     std::vector<std::size_t>* lo,
                     std::vector<std::size_t>* hi) const;

  /// Same resolution against bare per-attribute domain sizes (one per
  /// attribute, in schema order). Evaluators hold the sizes by value and
  /// use this overload, so answering never dereferences the schema the
  /// query was built against.
  void ResolveBounds(std::span<const std::size_t> domain_sizes,
                     std::vector<std::size_t>* lo,
                     std::vector<std::size_t>* hi) const;

  /// Fraction of frequency-matrix entries the query covers (paper's
  /// "coverage").
  double Coverage(const data::Schema& schema) const;

 private:
  std::vector<std::optional<ValueRange>> ranges_;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_RANGE_QUERY_H_
