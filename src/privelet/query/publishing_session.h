// PublishingSession: the serving-side facade over one published release.
// It owns (or maps) the release's prefix-sum evaluator and answers
// range-count queries from it — one object to hand to a query-serving
// frontend. All answering entry points are const and thread-safe: any
// number of threads may call Answer / AnswerAll on a shared session
// concurrently, and AnswerAll additionally fans a batch across a worker
// pool.
//
// Releases outlive processes: ToSnapshot / FromSnapshot (implemented in
// storage/session_io.cc, which also provides the file-level
// SaveSession / LoadSession) round-trip a session through the PVLS
// snapshot format, so a serving process loads a release — including its
// precomputed prefix-sum table — instead of re-running the publish.
// FromMapped goes one step further: the session serves straight out of a
// memory-mapped v2 snapshot (storage::MappedSnapshot) with zero copies —
// the evaluator's table is a span view into the file's pages, kept alive
// by the session. See docs/ARCHITECTURE.md for the publish → snapshot →
// serve dataflow.
#ifndef PRIVELET_QUERY_PUBLISHING_SESSION_H_
#define PRIVELET_QUERY_PUBLISHING_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/thread_pool.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/matrix/prefix_sum.h"
#include "privelet/mechanism/mechanism.h"
#include "privelet/query/compiled_workload.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/plan_record.h"
#include "privelet/query/range_query.h"

namespace privelet::storage {
struct ReleaseSnapshot;
class MappedSnapshot;
}  // namespace privelet::storage

namespace privelet::query {

/// How a release's publish ran. Deliberately NOT persisted in snapshots:
/// streamed and in-core publishes of the same release produce
/// byte-identical PVLS files (docs/DETERMINISM.md), so the mode exists
/// only in the memory of the process that ran the publish — sessions
/// loaded from a file report kUnknown.
enum class PublishMode {
  kUnknown,  ///< not published by this process (loaded / wrapped matrix)
  kInCore,   ///< whole release resident during the publish
  kStreamed  ///< out-of-core: panels staged through mmap scratch files
};

/// Provenance of a published release, carried by the session and
/// persisted in its snapshot (publish_mode excepted — see PublishMode).
/// Publish() records the real values; sessions wrapped around a bare
/// matrix (FromMatrix) report the defaults below.
struct ReleaseMetadata {
  std::string mechanism;   ///< Mechanism::name() of the publisher; "" unknown
  double epsilon = 0.0;    ///< privacy budget; 0 unknown
  std::uint64_t seed = 0;  ///< publish seed; 0 when unknown
  PublishMode publish_mode = PublishMode::kUnknown;  ///< in-memory only
  /// Workload-adaptive planner decision behind this release (nullopt for
  /// releases published without --auto-plan). Persisted: snapshots with a
  /// plan are written as PVLS v3, plan-less ones stay byte-identical v2.
  std::optional<PlanRecord> plan;
};

class PublishingSession {
 public:
  /// Publishes `m` under `mech` at (epsilon, seed) and wraps the release.
  /// `pool` is used for batched answering and the prefix-sum build (and is
  /// handed to nothing else — configure parallel publishing on the
  /// mechanism via set_thread_pool). Not owned; may be nullptr (serial
  /// serving) and must outlive the session otherwise. `options` selects
  /// the line engine of the prefix-sum build (matrix/engine.h); the
  /// mechanism's own engine is configured via set_engine_options.
  static Result<PublishingSession> Publish(
      const data::Schema& schema, const mechanism::Mechanism& mech,
      const matrix::FrequencyMatrix& m, double epsilon, std::uint64_t seed,
      common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {});

  /// Wraps an already-published release (e.g. loaded from disk). The
  /// matrix dims must match the schema's domain sizes. The provenance is
  /// unknown (default ReleaseMetadata).
  static Result<PublishingSession> FromMatrix(
      const data::Schema& schema, matrix::FrequencyMatrix published,
      common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {});

  /// Wraps a fully materialized release: matrix plus its already-built
  /// prefix-sum table (dims of both must match the schema) — the
  /// skip-the-O(m)-rebuild path behind FromSnapshot. The table entries
  /// are trusted to be the prefix sums of `published`.
  static Result<PublishingSession> FromParts(
      const data::Schema& schema, matrix::FrequencyMatrix published,
      matrix::PrefixSumTable<long double> table, ReleaseMetadata metadata,
      common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {});

  /// Rebuilds a serving session from a decoded release snapshot, reusing
  /// the snapshot's prefix table when present and rebuilding it (with
  /// `pool`, under the snapshot's engine options) otherwise. Answers are
  /// bit-identical either way. Implemented in storage/session_io.cc —
  /// the storage layer sits above query in the dependency order.
  static Result<PublishingSession> FromSnapshot(
      storage::ReleaseSnapshot snapshot, common::ThreadPool* pool = nullptr);

  /// Wraps a memory-mapped v2 snapshot as a zero-copy serving session:
  /// when the mapping carries an adoptable prefix table, the evaluator
  /// views the file's pages directly (no O(m) copy or rebuild — opening
  /// is O(header + CRC)); otherwise the table is rebuilt from the mapped
  /// matrix values, still without materializing a matrix copy. The
  /// session shares ownership of the mapping, which therefore stays
  /// alive until the last session (and evaluator) using it is gone.
  /// Mapped sessions do not materialize the release matrix:
  /// has_published() is false. Implemented in storage/session_io.cc.
  static Result<PublishingSession> FromMapped(
      std::shared_ptr<const storage::MappedSnapshot> mapped,
      common::ThreadPool* pool = nullptr);

  /// Deep-copies this session's release into an owning snapshot (schema,
  /// metadata, matrix, prefix table). To persist without the copy, use
  /// storage::SaveSession, which streams straight from the live session.
  /// Requires has_published() (a mapped session is already a file).
  /// Implemented in storage/session_io.cc.
  storage::ReleaseSnapshot ToSnapshot() const;

  const data::Schema& schema() const { return *schema_; }

  /// Whether this session materializes the release matrix. True for every
  /// construction path except FromMapped.
  bool has_published() const { return published_ != nullptr; }

  /// The release matrix. PRIVELET_CHECKs has_published() — mapped
  /// sessions serve from the snapshot's pages and hold no matrix object.
  const matrix::FrequencyMatrix& published() const;

  /// Provenance of the release (mechanism id, epsilon, seed).
  const ReleaseMetadata& metadata() const { return metadata_; }

  /// Attaches the workload-planner decision behind this release to its
  /// provenance. Call after Publish and before SaveSession/ToSnapshot so
  /// the snapshot (PVLS v3) round-trips it.
  void set_plan(PlanRecord plan) { metadata_.plan = std::move(plan); }

  /// Engine options this session was built with (serving-side prefix-sum
  /// build and AnswerAll; persisted in snapshots).
  const matrix::EngineOptions& engine_options() const { return options_; }

  /// The serving prefix-sum table (what snapshots persist). For mapped
  /// sessions this is a non-owning view into the snapshot file.
  const matrix::PrefixSumTable<long double>& prefix_table() const {
    return evaluator_->table();
  }

  /// Answer of one query against the release. Thread-safe.
  double Answer(const RangeQuery& query) const;

  /// Answers of a whole batch, in input order, fanned across the session
  /// pool. Thread-safe: concurrent AnswerAll calls interleave on the
  /// shared workers.
  std::vector<double> AnswerAll(std::span<const RangeQuery> queries) const;

  /// Pre-resolves a batch against this release's table shape; the result
  /// may be answered repeatedly (and concurrently) via AnswerCompiled.
  CompiledWorkload Compile(std::span<const RangeQuery> queries) const;

  /// Answers a compiled batch, in input order, fanned across the session
  /// pool and evaluated through the dispatched gather kernels at this
  /// session's resolved ISA level. Bit-identical to AnswerAll on the
  /// same queries (query::CompiledWorkload header). Thread-safe.
  std::vector<double> AnswerCompiled(const CompiledWorkload& workload) const;

 private:
  PublishingSession(std::shared_ptr<const data::Schema> schema,
                    std::shared_ptr<const matrix::FrequencyMatrix> published,
                    std::shared_ptr<const QueryEvaluator> evaluator,
                    ReleaseMetadata metadata, common::ThreadPool* pool,
                    const matrix::EngineOptions& options,
                    std::shared_ptr<const void> mapping = nullptr);

  /// Shared assembly behind every matrix-owning factory: heap-holds the
  /// schema and matrix, builds the evaluator (adopting `table` when
  /// present, else the O(m) build on `pool` under `options`). Dims have
  /// already been validated by the caller. Takes the schema by value so
  /// load paths that own one (FromSnapshot) move instead of copying.
  static PublishingSession BuildOwned(
      data::Schema schema, matrix::FrequencyMatrix published,
      std::optional<matrix::PrefixSumTable<long double>> table,
      ReleaseMetadata metadata, common::ThreadPool* pool,
      const matrix::EngineOptions& options);

  // Heap-held so moves of the session never invalidate the references the
  // evaluator keeps into schema and matrix. `published_` is null for
  // mapped sessions; `mapping_` pins the MappedSnapshot (and with it the
  // pages the evaluator's table views) for the session's lifetime —
  // declared before `evaluator_` so destruction unmaps only after the
  // evaluator (whose table may view the mapped pages) is gone.
  std::shared_ptr<const data::Schema> schema_;
  std::shared_ptr<const matrix::FrequencyMatrix> published_;
  std::shared_ptr<const void> mapping_;
  std::shared_ptr<const QueryEvaluator> evaluator_;
  ReleaseMetadata metadata_;
  matrix::EngineOptions options_;
  common::ThreadPool* pool_;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_PUBLISHING_SESSION_H_
