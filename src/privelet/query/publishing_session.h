// PublishingSession: the serving-side facade over one published release.
// It owns the noisy frequency matrix together with its prefix-sum
// evaluator and answers range-count queries from them — one object to hand
// to a query-serving frontend. All answering entry points are const and
// thread-safe: any number of threads may call Answer / AnswerAll on a
// shared session concurrently, and AnswerAll additionally fans a batch
// across a worker pool.
#ifndef PRIVELET_QUERY_PUBLISHING_SESSION_H_
#define PRIVELET_QUERY_PUBLISHING_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/thread_pool.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/mechanism/mechanism.h"
#include "privelet/query/evaluator.h"
#include "privelet/query/range_query.h"

namespace privelet::query {

class PublishingSession {
 public:
  /// Publishes `m` under `mech` at (epsilon, seed) and wraps the release.
  /// `pool` is used for batched answering and the prefix-sum build (and is
  /// handed to nothing else — configure parallel publishing on the
  /// mechanism via set_thread_pool). Not owned; may be nullptr (serial
  /// serving) and must outlive the session otherwise. `options` selects
  /// the line engine of the prefix-sum build (matrix/engine.h); the
  /// mechanism's own engine is configured via set_engine_options.
  static Result<PublishingSession> Publish(
      const data::Schema& schema, const mechanism::Mechanism& mech,
      const matrix::FrequencyMatrix& m, double epsilon, std::uint64_t seed,
      common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {});

  /// Wraps an already-published release (e.g. loaded from disk). The
  /// matrix dims must match the schema's domain sizes.
  static Result<PublishingSession> FromMatrix(
      const data::Schema& schema, matrix::FrequencyMatrix published,
      common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {});

  const data::Schema& schema() const { return *schema_; }
  const matrix::FrequencyMatrix& published() const { return *published_; }

  /// Answer of one query against the release. Thread-safe.
  double Answer(const RangeQuery& query) const;

  /// Answers of a whole batch, in input order, fanned across the session
  /// pool. Thread-safe: concurrent AnswerAll calls interleave on the
  /// shared workers.
  std::vector<double> AnswerAll(std::span<const RangeQuery> queries) const;

 private:
  PublishingSession(std::shared_ptr<const data::Schema> schema,
                    matrix::FrequencyMatrix published,
                    common::ThreadPool* pool,
                    const matrix::EngineOptions& options);

  // Heap-held so moves of the session never invalidate the references the
  // evaluator keeps into schema and matrix.
  std::shared_ptr<const data::Schema> schema_;
  std::shared_ptr<const matrix::FrequencyMatrix> published_;
  std::shared_ptr<const QueryEvaluator> evaluator_;
  common::ThreadPool* pool_;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_PUBLISHING_SESSION_H_
