// Error metrics and bucketing used by the paper's evaluation (Sec. VII-A):
// square error, relative error with a sanity bound, and quintile bucketing
// of a workload by coverage or selectivity.
#ifndef PRIVELET_QUERY_METRICS_H_
#define PRIVELET_QUERY_METRICS_H_

#include <cstddef>
#include <vector>

#include "privelet/common/check.h"

namespace privelet::query {

/// (approx - actual)^2.
inline double SquareError(double approx, double actual) {
  const double diff = approx - actual;
  return diff * diff;
}

/// |approx - actual| / max(actual, sanity_bound). The sanity bound (the
/// paper uses 0.1% of the tuple count) mitigates queries with excessively
/// small selectivity.
inline double RelativeError(double approx, double actual,
                            double sanity_bound) {
  PRIVELET_DCHECK(sanity_bound > 0.0, "sanity bound must be positive");
  const double denom = (actual > sanity_bound) ? actual : sanity_bound;
  return (approx > actual ? approx - actual : actual - approx) / denom;
}

/// One bucket of a keyed aggregation: the mean key, the mean value, and the
/// member count.
struct BucketStat {
  double avg_key = 0.0;
  double avg_value = 0.0;
  std::size_t count = 0;
};

/// Splits (key, value) pairs into `num_buckets` equal-count buckets by
/// ascending key (the paper's per-quintile aggregation) and returns each
/// bucket's mean key and mean value. Keys need not be distinct. Requires
/// keys.size() == values.size() and at least one pair per bucket.
std::vector<BucketStat> EqualCountBuckets(const std::vector<double>& keys,
                                          const std::vector<double>& values,
                                          std::size_t num_buckets);

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_METRICS_H_
