// PlanRecord: the provenance of a workload-adaptive mechanism choice,
// carried in ReleaseMetadata and round-tripped through PVLS v3 snapshots.
// Deliberately flat (strings + numbers, no pointers into the planner's
// candidate structures) so the storage layer can serialize it without
// depending on the analysis module.
#ifndef PRIVELET_QUERY_PLAN_RECORD_H_
#define PRIVELET_QUERY_PLAN_RECORD_H_

#include <cstdint>
#include <string>

namespace privelet::query {

/// What the planner decided and why, in release provenance form. The ids
/// are the stable candidate identifiers of analysis::MechanismCandidate
/// ("basic", "privelet", "privelet+ sa={...}", "hay", "fourier").
struct PlanRecord {
  /// Candidate the release was (or would be) published under.
  std::string chosen;
  /// Mean exact per-query noise variance of `chosen` over the planning
  /// workload at the release epsilon.
  double predicted_variance = 0.0;
  /// Next-best publishable candidate ("" when there was no alternative).
  std::string runner_up;
  /// Expected variance of `runner_up` (0 when there was none).
  double runner_up_variance = 0.0;
  /// Size of the planning workload the prediction averages over.
  std::uint32_t workload_queries = 0;

  bool operator==(const PlanRecord&) const = default;
};

}  // namespace privelet::query

#endif  // PRIVELET_QUERY_PLAN_RECORD_H_
