#include "privelet/query/workload.h"

#include <algorithm>
#include <numeric>

#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::query {

Result<std::vector<RangeQuery>> GenerateWorkload(
    const data::Schema& schema, const WorkloadOptions& options) {
  const std::size_t num_attrs = schema.num_attributes();
  if (num_attrs == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  if (options.min_predicates < 1 ||
      options.min_predicates > options.max_predicates) {
    return Status::InvalidArgument("bad predicate-count range");
  }
  const std::size_t max_preds = std::min(options.max_predicates, num_attrs);
  const std::size_t min_preds = std::min(options.min_predicates, max_preds);

  rng::Xoshiro256pp gen(rng::DeriveSeed(options.seed, 0x90AD));
  std::vector<std::size_t> attr_order(num_attrs);
  std::iota(attr_order.begin(), attr_order.end(), 0);

  std::vector<RangeQuery> workload;
  workload.reserve(options.num_queries);
  for (std::size_t q = 0; q < options.num_queries; ++q) {
    const std::size_t num_preds = static_cast<std::size_t>(
        gen.NextUint64InRange(min_preds, max_preds));
    // Partial Fisher-Yates: the first num_preds entries become a uniform
    // sample of distinct attributes.
    for (std::size_t i = 0; i < num_preds; ++i) {
      const std::size_t j = static_cast<std::size_t>(
          gen.NextUint64InRange(i, num_attrs - 1));
      std::swap(attr_order[i], attr_order[j]);
    }

    RangeQuery query(num_attrs);
    for (std::size_t i = 0; i < num_preds; ++i) {
      const std::size_t attr = attr_order[i];
      const data::Attribute& attribute = schema.attribute(attr);
      if (attribute.is_ordinal()) {
        const std::size_t domain = attribute.domain_size();
        std::size_t a = static_cast<std::size_t>(
            gen.NextUint64InRange(0, domain - 1));
        std::size_t b = static_cast<std::size_t>(
            gen.NextUint64InRange(0, domain - 1));
        if (a > b) std::swap(a, b);
        PRIVELET_RETURN_IF_ERROR(query.SetRange(schema, attr, a, b));
      } else {
        // Random non-root hierarchy node (ids 1..num_nodes-1).
        const data::Hierarchy& hierarchy = attribute.hierarchy();
        const std::size_t node = static_cast<std::size_t>(
            gen.NextUint64InRange(1, hierarchy.num_nodes() - 1));
        PRIVELET_RETURN_IF_ERROR(query.SetHierarchyNode(schema, attr, node));
      }
    }
    workload.push_back(std::move(query));
  }
  return workload;
}

}  // namespace privelet::query
