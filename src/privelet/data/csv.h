// Minimal CSV round-trip for tables of dense domain indices. The header row
// carries the attribute names; data rows carry integer indices.
#ifndef PRIVELET_DATA_CSV_H_
#define PRIVELET_DATA_CSV_H_

#include <string>

#include "privelet/common/result.h"
#include "privelet/data/table.h"

namespace privelet::data {

/// Writes `table` to `path` (header + one line per row).
Status WriteCsv(const std::string& path, const Table& table);

/// Reads a table previously written by WriteCsv. The caller supplies the
/// schema; the file's header must match the schema's attribute names.
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

}  // namespace privelet::data

#endif  // PRIVELET_DATA_CSV_H_
