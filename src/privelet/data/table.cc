#include "privelet/data/table.h"

#include <string>

namespace privelet::data {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Table::AppendRow(std::span<const std::uint32_t> row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] >= schema_.attribute(i).domain_size()) {
      return Status::OutOfRange(
          "value " + std::to_string(row[i]) + " out of domain for attribute '" +
          schema_.attribute(i).name() + "'");
    }
  }
  for (std::size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
  ++num_rows_;
  return Status::OK();
}

void Table::Reserve(std::size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

}  // namespace privelet::data
