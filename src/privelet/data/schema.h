// Schema: the ordered attribute list of a relational table; defines the
// shape (and total size m) of the frequency matrix.
#ifndef PRIVELET_DATA_SCHEMA_H_
#define PRIVELET_DATA_SCHEMA_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/attribute.h"

namespace privelet::data {

/// Immutable ordered collection of attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  std::size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name.
  Result<std::size_t> FindAttribute(std::string_view name) const;

  /// Domain sizes per attribute = the frequency-matrix dimensions.
  std::vector<std::size_t> DomainSizes() const;

  /// Total domain size m = product of the attribute domain sizes.
  std::size_t TotalDomainSize() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace privelet::data

#endif  // PRIVELET_DATA_SCHEMA_H_
