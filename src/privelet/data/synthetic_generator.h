// Synthetic datasets for the scalability experiments (paper Sec. VII-B,
// Figs. 10-11): two ordinal and two nominal attributes, each with domain
// size m^(1/4); every nominal hierarchy has three levels with sqrt(|A|)
// level-2 nodes; tuple values are uniform over the attribute domains.
#ifndef PRIVELET_DATA_SYNTHETIC_GENERATOR_H_
#define PRIVELET_DATA_SYNTHETIC_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "privelet/common/result.h"
#include "privelet/data/table.h"

namespace privelet::data {

/// Builds the 4-attribute scalability schema for a frequency matrix of
/// (approximately) `total_domain_size` entries. The per-attribute domain is
/// round(total^(1/4)) and must be >= 4 so that the 3-level hierarchies have
/// fanout >= 2 everywhere.
Result<Schema> MakeScalabilitySchema(std::size_t total_domain_size);

/// A 3-level hierarchy over `num_leaves` leaves with ~sqrt(num_leaves)
/// level-2 groups of near-equal size (each >= 2 leaves). num_leaves >= 4.
Result<Hierarchy> MakeSqrtGroupHierarchy(std::size_t num_leaves);

/// Generates `num_tuples` tuples uniform over the schema's domains.
Result<Table> GenerateUniformTable(const Schema& schema,
                                   std::size_t num_tuples,
                                   std::uint64_t seed);

}  // namespace privelet::data

#endif  // PRIVELET_DATA_SYNTHETIC_GENERATOR_H_
