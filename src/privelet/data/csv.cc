#include "privelet/data/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace privelet::data {

namespace {

// Windows tools and HTTP bodies end lines with \r\n; getline leaves the
// \r on the last field, so strip it once per line.
void StripTrailingCR(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

// Strict uint32 parsing. strtoul accepts "-1" and wraps it to
// 4294967295, and a 64-bit unsigned long lets values above UINT32_MAX
// through a silent truncation — both must be rejected, naming the value.
Status ParseCell(const std::string& field, std::size_t line_number,
                 std::uint32_t* out) {
  const auto fail = [&](const char* why) {
    std::string message = "line " + std::to_string(line_number) + ": ";
    message += why;
    message += " '";
    message += field;
    message += "'";
    return Status::InvalidArgument(std::move(message));
  };
  std::uint32_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return fail("value exceeds UINT32_MAX:");
  }
  if (ec != std::errc{} || ptr != end || field.empty()) {
    return fail("non-integer field");
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Status WriteCsv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << ',';
    out << schema.attribute(c).name();
  }
  out << '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << ',';
      out << table.value(r, c);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  StripTrailingCR(&line);
  // Check the header against the schema.
  {
    std::stringstream header(line);
    std::string field;
    std::size_t col = 0;
    while (std::getline(header, field, ',')) {
      if (col >= schema.num_attributes() ||
          field != schema.attribute(col).name()) {
        return Status::InvalidArgument("CSV header does not match schema");
      }
      ++col;
    }
    if (col != schema.num_attributes()) {
      return Status::InvalidArgument("CSV header does not match schema");
    }
  }

  Table table(schema);
  std::vector<std::uint32_t> row(schema.num_attributes());
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    StripTrailingCR(&line);
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string field;
    std::size_t col = 0;
    while (std::getline(fields, field, ',')) {
      if (col >= row.size()) {
        return Status::InvalidArgument(
            "too many fields at line " + std::to_string(line_number));
      }
      PRIVELET_RETURN_IF_ERROR(ParseCell(field, line_number, &row[col]));
      ++col;
    }
    if (col != row.size()) {
      return Status::InvalidArgument(
          "too few fields at line " + std::to_string(line_number));
    }
    PRIVELET_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace privelet::data
