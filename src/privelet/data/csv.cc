#include "privelet/data/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace privelet::data {

Status WriteCsv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << ',';
    out << schema.attribute(c).name();
  }
  out << '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << ',';
      out << table.value(r, c);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  // Check the header against the schema.
  {
    std::stringstream header(line);
    std::string field;
    std::size_t col = 0;
    while (std::getline(header, field, ',')) {
      if (col >= schema.num_attributes() ||
          field != schema.attribute(col).name()) {
        return Status::InvalidArgument("CSV header does not match schema");
      }
      ++col;
    }
    if (col != schema.num_attributes()) {
      return Status::InvalidArgument("CSV header does not match schema");
    }
  }

  Table table(schema);
  std::vector<std::uint32_t> row(schema.num_attributes());
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string field;
    std::size_t col = 0;
    while (std::getline(fields, field, ',')) {
      if (col >= row.size()) {
        return Status::InvalidArgument(
            "too many fields at line " + std::to_string(line_number));
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long value = std::strtoul(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "non-integer field at line " + std::to_string(line_number));
      }
      row[col++] = static_cast<std::uint32_t>(value);
    }
    if (col != row.size()) {
      return Status::InvalidArgument(
          "too few fields at line " + std::to_string(line_number));
    }
    PRIVELET_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace privelet::data
