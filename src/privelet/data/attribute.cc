#include "privelet/data/attribute.h"

namespace privelet::data {

Attribute Attribute::Ordinal(std::string name, std::size_t domain_size) {
  PRIVELET_CHECK(domain_size >= 1, "ordinal domain must be non-empty");
  return Attribute(std::move(name), AttributeKind::kOrdinal, domain_size,
                   nullptr);
}

Attribute Attribute::Nominal(std::string name, Hierarchy hierarchy) {
  const std::size_t domain_size = hierarchy.num_leaves();
  return Attribute(std::move(name), AttributeKind::kNominal, domain_size,
                   std::make_shared<const Hierarchy>(std::move(hierarchy)));
}

}  // namespace privelet::data
