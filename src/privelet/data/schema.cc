#include "privelet/data/schema.h"

#include <string>

#include "privelet/common/math_util.h"

namespace privelet::data {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Result<std::size_t> Schema::FindAttribute(std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name() == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

std::vector<std::size_t> Schema::DomainSizes() const {
  std::vector<std::size_t> dims;
  dims.reserve(attributes_.size());
  for (const auto& attr : attributes_) dims.push_back(attr.domain_size());
  return dims;
}

std::size_t Schema::TotalDomainSize() const {
  return CheckedProduct(DomainSizes());
}

}  // namespace privelet::data
