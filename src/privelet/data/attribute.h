// Attribute: one column of a relational table — ordinal (discrete, totally
// ordered) or nominal (discrete, unordered, with an associated hierarchy).
#ifndef PRIVELET_DATA_ATTRIBUTE_H_
#define PRIVELET_DATA_ATTRIBUTE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "privelet/common/check.h"
#include "privelet/data/hierarchy.h"

namespace privelet::data {

enum class AttributeKind { kOrdinal, kNominal };

/// Immutable attribute description. Domain values are dense indices
/// 0..domain_size()-1: for ordinal attributes the index order is the value
/// order; for nominal attributes the index is the position in the
/// hierarchy's imposed leaf order (Sec. V-A of the paper).
class Attribute {
 public:
  /// Ordinal attribute with the given domain size (>= 1).
  static Attribute Ordinal(std::string name, std::size_t domain_size);

  /// Nominal attribute; the domain is the hierarchy's leaf set.
  static Attribute Nominal(std::string name, Hierarchy hierarchy);

  const std::string& name() const { return name_; }
  AttributeKind kind() const { return kind_; }
  bool is_ordinal() const { return kind_ == AttributeKind::kOrdinal; }
  bool is_nominal() const { return kind_ == AttributeKind::kNominal; }
  std::size_t domain_size() const { return domain_size_; }

  /// Hierarchy of a nominal attribute. CHECK-fails on ordinal attributes.
  const Hierarchy& hierarchy() const {
    PRIVELET_CHECK(is_nominal(), "ordinal attributes have no hierarchy");
    return *hierarchy_;
  }

  /// Shared ownership of the same hierarchy, for consumers that outlive
  /// (or want to avoid copying) the attribute — e.g. NominalTransform
  /// keeps the schema's instance alive instead of duplicating the node
  /// tables. CHECK-fails on ordinal attributes.
  const std::shared_ptr<const Hierarchy>& shared_hierarchy() const {
    PRIVELET_CHECK(is_nominal(), "ordinal attributes have no hierarchy");
    return hierarchy_;
  }

 private:
  Attribute(std::string name, AttributeKind kind, std::size_t domain_size,
            std::shared_ptr<const Hierarchy> hierarchy)
      : name_(std::move(name)),
        kind_(kind),
        domain_size_(domain_size),
        hierarchy_(std::move(hierarchy)) {}

  std::string name_;
  AttributeKind kind_;
  std::size_t domain_size_;
  std::shared_ptr<const Hierarchy> hierarchy_;  // null for ordinal
};

}  // namespace privelet::data

#endif  // PRIVELET_DATA_ATTRIBUTE_H_
