#include "privelet/data/census_generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/rng/distributions.h"
#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::data {

namespace {

struct CountryParams {
  std::size_t age_domain;
  std::size_t occupation_groups;
  std::size_t occupation_leaves_per_group;
  std::size_t paper_income_domain;
  std::size_t paper_num_tuples;
};

// Table III. Occupation hierarchies are 3 levels; the paper does not give
// the group structure, so we use balanced factorizations: 512 = 16 x 32
// (Brazil) and 511 = 7 x 73 (US).
CountryParams ParamsFor(CensusCountry country) {
  if (country == CensusCountry::kBrazil) {
    return {101, 16, 32, 1001, 10'000'000};
  }
  return {96, 7, 73, 1020, 8'000'000};
}

}  // namespace

CensusConfig PaperScaleCensusConfig(CensusCountry country) {
  const CountryParams params = ParamsFor(country);
  CensusConfig config;
  config.country = country;
  config.num_tuples = params.paper_num_tuples;
  config.income_domain = params.paper_income_domain;
  return config;
}

CensusConfig DefaultCensusConfig(CensusCountry country) {
  CensusConfig config;
  config.country = country;
  return config;
}

Result<Schema> MakeCensusSchema(CensusCountry country,
                                std::size_t income_domain) {
  const CountryParams params = ParamsFor(country);
  if (income_domain == 0) income_domain = params.paper_income_domain;

  PRIVELET_ASSIGN_OR_RETURN(Hierarchy gender_hierarchy, Hierarchy::Flat(2));
  PRIVELET_ASSIGN_OR_RETURN(
      Hierarchy occupation_hierarchy,
      Hierarchy::Balanced(
          {params.occupation_groups, params.occupation_leaves_per_group}));

  std::vector<Attribute> attributes;
  attributes.push_back(Attribute::Ordinal("Age", params.age_domain));
  attributes.push_back(
      Attribute::Nominal("Gender", std::move(gender_hierarchy)));
  attributes.push_back(
      Attribute::Nominal("Occupation", std::move(occupation_hierarchy)));
  attributes.push_back(Attribute::Ordinal("Income", income_domain));
  return Schema(std::move(attributes));
}

Result<Table> GenerateCensus(const CensusConfig& config) {
  const CountryParams params = ParamsFor(config.country);
  PRIVELET_ASSIGN_OR_RETURN(
      Schema schema, MakeCensusSchema(config.country, config.income_domain));
  const std::size_t age_domain = schema.attribute(0).domain_size();
  const std::size_t occupation_domain = schema.attribute(2).domain_size();
  const std::size_t income_domain = schema.attribute(3).domain_size();

  rng::Xoshiro256pp gen(rng::DeriveSeed(config.seed, 0xCE5505));

  // Age: mixture of three truncated normals (children / working age /
  // seniors) roughly mimicking a census age pyramid.
  struct AgeComponent {
    double weight, mean, stddev;
  };
  const std::array<AgeComponent, 3> age_mix = {{
      {0.30, 12.0, 8.0},
      {0.55, 38.0, 12.0},
      {0.15, 68.0, 10.0},
  }};
  rng::DiscreteSampler age_component(
      {age_mix[0].weight, age_mix[1].weight, age_mix[2].weight});

  // Occupation: Zipf over the imposed leaf order. Occupations within the
  // same hierarchy group get contiguous leaf indices, so groups inherit
  // heterogeneous (skewed) mass, as real occupation codebooks do.
  rng::ZipfSampler occupation_sampler(occupation_domain, 1.07);

  Table table(std::move(schema));
  table.Reserve(config.num_tuples);

  std::vector<std::uint32_t> row(4);
  for (std::size_t i = 0; i < config.num_tuples; ++i) {
    // Age.
    const std::size_t component = age_component.Sample(gen);
    const double raw_age = age_mix[component].mean +
                           age_mix[component].stddev *
                               rng::SampleStandardNormal(gen);
    const double max_age = static_cast<double>(age_domain - 1);
    const auto age =
        static_cast<std::uint32_t>(std::clamp(raw_age, 0.0, max_age));

    // Gender: close to even.
    const auto gender =
        static_cast<std::uint32_t>(rng::SampleBernoulli(gen, 0.49) ? 1 : 0);

    // Occupation.
    const auto occupation =
        static_cast<std::uint32_t>(occupation_sampler.Sample(gen));

    // Income: log-normal, location increasing in occupation rank and age.
    const double occupation_rank =
        1.0 - static_cast<double>(occupation) /
                  static_cast<double>(params.occupation_groups *
                                      params.occupation_leaves_per_group);
    const double age_factor =
        std::min(static_cast<double>(age), 60.0) / 60.0;
    const double mu = std::log(static_cast<double>(income_domain) * 0.05) +
                      0.9 * occupation_rank + 0.5 * age_factor;
    rng::DiscretizedLogNormal income_sampler(income_domain, mu, 0.8);
    const auto income = static_cast<std::uint32_t>(income_sampler.Sample(gen));

    row = {age, gender, occupation, income};
    PRIVELET_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace privelet::data
