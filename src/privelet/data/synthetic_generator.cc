#include "privelet/data/synthetic_generator.h"

#include <cmath>
#include <vector>

#include "privelet/rng/splitmix64.h"
#include "privelet/rng/xoshiro256pp.h"

namespace privelet::data {

Result<Hierarchy> MakeSqrtGroupHierarchy(std::size_t num_leaves) {
  if (num_leaves < 4) {
    return Status::InvalidArgument(
        "sqrt-group hierarchy needs >= 4 leaves");
  }
  auto num_groups = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(num_leaves))));
  // Keep every group at >= 2 leaves.
  num_groups = std::min(num_groups, num_leaves / 2);
  if (num_groups < 2) num_groups = 2;

  // Distribute leaves as evenly as possible.
  std::vector<std::size_t> group_sizes(num_groups, num_leaves / num_groups);
  for (std::size_t i = 0; i < num_leaves % num_groups; ++i) ++group_sizes[i];
  return Hierarchy::FromGroupSizes(group_sizes);
}

Result<Schema> MakeScalabilitySchema(std::size_t total_domain_size) {
  const auto per_attr = static_cast<std::size_t>(std::llround(
      std::pow(static_cast<double>(total_domain_size), 0.25)));
  if (per_attr < 4) {
    return Status::InvalidArgument(
        "total domain too small: per-attribute domain must be >= 4");
  }
  PRIVELET_ASSIGN_OR_RETURN(Hierarchy h1, MakeSqrtGroupHierarchy(per_attr));
  PRIVELET_ASSIGN_OR_RETURN(Hierarchy h2, MakeSqrtGroupHierarchy(per_attr));

  std::vector<Attribute> attributes;
  attributes.push_back(Attribute::Ordinal("O1", per_attr));
  attributes.push_back(Attribute::Ordinal("O2", per_attr));
  attributes.push_back(Attribute::Nominal("N1", std::move(h1)));
  attributes.push_back(Attribute::Nominal("N2", std::move(h2)));
  return Schema(std::move(attributes));
}

Result<Table> GenerateUniformTable(const Schema& schema,
                                   std::size_t num_tuples,
                                   std::uint64_t seed) {
  rng::Xoshiro256pp gen(rng::DeriveSeed(seed, 0x5CA1AB1E));
  Table table(schema);
  table.Reserve(num_tuples);
  std::vector<std::uint32_t> row(schema.num_attributes());
  for (std::size_t i = 0; i < num_tuples; ++i) {
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      row[a] = static_cast<std::uint32_t>(
          gen.NextUint64InRange(0, schema.attribute(a).domain_size() - 1));
    }
    PRIVELET_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace privelet::data
