// Hierarchy: the tree associated with a nominal attribute (paper Fig. 1).
// Leaves are the attribute's domain values; each internal node summarizes
// the leaves in its subtree. The nominal wavelet transform (paper Sec. V)
// derives its decomposition tree from this structure, and OLAP-style
// predicates select either a leaf or the full subtree of an internal node.
#ifndef PRIVELET_DATA_HIERARCHY_H_
#define PRIVELET_DATA_HIERARCHY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/common/status.h"

namespace privelet::data {

/// Recursive specification used to build arbitrary hierarchies (mostly by
/// tests and generators). A node with no children is a leaf.
struct HierarchySpec {
  std::vector<HierarchySpec> children;
};

/// Immutable hierarchy tree.
///
/// Invariants established by the builders (and checked by Validate):
///  * every internal node has fanout >= 2, except that the paper's
///    decomposition-tree construction implicitly demands this only of
///    hierarchy-internal nodes — which is exactly what we enforce;
///  * all leaves lie at the same depth (the paper's reconstruction, Eq. 5,
///    indexes one ancestor per level);
///  * nodes are stored in BFS (level) order, so node ids already follow the
///    "level-order traversal, base coefficient first" layout that the
///    multi-dimensional transform requires (Sec. VI-A).
///
/// Leaves are numbered 0..num_leaves()-1 left to right; this is the imposed
/// total order of Sec. V-A, under which every subtree is a contiguous leaf
/// range.
class Hierarchy {
 public:
  struct Node {
    std::size_t parent = 0;      ///< parent id; root points to itself
    std::size_t level = 1;       ///< 1-based; root is level 1
    std::size_t leaf_begin = 0;  ///< first leaf (inclusive) under this node
    std::size_t leaf_end = 0;    ///< last leaf (exclusive) under this node
    std::vector<std::size_t> children;  ///< child ids; empty for leaves
  };

  /// Builds a hierarchy from a recursive spec. Fails unless all leaves are
  /// at the same depth, every internal node has >= 2 children, and there
  /// are at least 2 levels (a lone root is not a usable hierarchy).
  static Result<Hierarchy> FromSpec(const HierarchySpec& spec);

  /// Perfectly balanced hierarchy: `fanouts[i]` is the fanout of every node
  /// at level i+1. Height is fanouts.size() + 1 and the number of leaves is
  /// the product of the fanouts.
  static Result<Hierarchy> Balanced(const std::vector<std::size_t>& fanouts);

  /// Three-level hierarchy (root, groups, leaves) with the given per-group
  /// leaf counts. Every group must have >= 2 leaves.
  static Result<Hierarchy> FromGroupSizes(
      const std::vector<std::size_t>& group_sizes);

  /// Flat two-level hierarchy: a root with `num_leaves` leaf children.
  static Result<Hierarchy> Flat(std::size_t num_leaves);

  /// Number of levels, counting both the root level and the leaf level.
  /// This is the paper's h.
  std::size_t height() const { return height_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_internal_nodes() const {
    return nodes_.size() - num_leaves_;
  }

  static constexpr std::size_t kRoot = 0;

  const Node& node(std::size_t id) const { return nodes_[id]; }
  bool is_leaf(std::size_t id) const { return nodes_[id].children.empty(); }
  std::size_t fanout(std::size_t id) const { return nodes_[id].children.size(); }

  /// Node id of the i-th leaf in the imposed total order.
  std::size_t leaf_node(std::size_t leaf_index) const {
    return leaf_nodes_[leaf_index];
  }

  /// All node ids at the given 1-based level, in left-to-right order.
  std::vector<std::size_t> NodesAtLevel(std::size_t level) const;

  /// Re-checks all class invariants; used by tests and after deserialization.
  Status Validate() const;

 private:
  std::vector<Node> nodes_;            // BFS order; index 0 is the root
  std::vector<std::size_t> leaf_nodes_;  // leaf index -> node id
  std::size_t num_leaves_ = 0;
  std::size_t height_ = 0;
};

}  // namespace privelet::data

#endif  // PRIVELET_DATA_HIERARCHY_H_
