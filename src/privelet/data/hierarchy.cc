#include "privelet/data/hierarchy.h"

#include <algorithm>
#include <queue>

#include "privelet/common/check.h"

namespace privelet::data {

namespace {

// Depth of the spec tree (a lone leaf has depth 1).
std::size_t SpecDepth(const HierarchySpec& spec) {
  std::size_t deepest = 0;
  for (const auto& child : spec.children) {
    deepest = std::max(deepest, SpecDepth(child));
  }
  return deepest + 1;
}

}  // namespace

Result<Hierarchy> Hierarchy::FromSpec(const HierarchySpec& spec) {
  const std::size_t height = SpecDepth(spec);
  if (height < 2) {
    return Status::InvalidArgument(
        "hierarchy must have at least two levels (root plus leaves)");
  }

  Hierarchy h;
  h.height_ = height;

  // BFS over the spec, materializing nodes in level order.
  struct Pending {
    const HierarchySpec* spec;
    std::size_t parent;
    std::size_t level;
  };
  std::queue<Pending> queue;
  queue.push({&spec, 0, 1});
  while (!queue.empty()) {
    const Pending item = queue.front();
    queue.pop();
    const std::size_t id = h.nodes_.size();
    Node node;
    node.parent = (id == 0) ? 0 : item.parent;
    node.level = item.level;
    h.nodes_.push_back(node);
    if (id != 0) h.nodes_[item.parent].children.push_back(id);

    if (item.spec->children.empty()) {
      if (item.level != height) {
        return Status::InvalidArgument(
            "all hierarchy leaves must lie at the same depth");
      }
    } else {
      if (item.spec->children.size() < 2) {
        return Status::InvalidArgument(
            "every internal hierarchy node must have fanout >= 2");
      }
      for (const auto& child : item.spec->children) {
        queue.push({&child, id, item.level + 1});
      }
    }
  }

  // Assign leaf indices in left-to-right order and propagate leaf ranges
  // bottom-up. BFS order guarantees children have larger ids than parents,
  // so one reverse pass suffices.
  for (auto& node : h.nodes_) {
    node.leaf_begin = 0;
    node.leaf_end = 0;
  }
  // Left-to-right leaf numbering = DFS order; do an explicit DFS.
  {
    std::vector<std::size_t> stack = {kRoot};
    while (!stack.empty()) {
      const std::size_t id = stack.back();
      stack.pop_back();
      if (h.nodes_[id].children.empty()) {
        const std::size_t leaf_index = h.leaf_nodes_.size();
        h.nodes_[id].leaf_begin = leaf_index;
        h.nodes_[id].leaf_end = leaf_index + 1;
        h.leaf_nodes_.push_back(id);
      } else {
        // Push children right-to-left so the leftmost is visited first.
        const auto& kids = h.nodes_[id].children;
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          stack.push_back(*it);
        }
      }
    }
  }
  h.num_leaves_ = h.leaf_nodes_.size();
  for (std::size_t id = h.nodes_.size(); id-- > 0;) {
    auto& node = h.nodes_[id];
    if (!node.children.empty()) {
      node.leaf_begin = h.nodes_[node.children.front()].leaf_begin;
      node.leaf_end = h.nodes_[node.children.back()].leaf_end;
    }
  }

  PRIVELET_RETURN_IF_ERROR(h.Validate());
  return h;
}

Result<Hierarchy> Hierarchy::Balanced(const std::vector<std::size_t>& fanouts) {
  if (fanouts.empty()) {
    return Status::InvalidArgument("balanced hierarchy needs >= 1 fanout");
  }
  // Build the spec bottom-up: start from a leaf and wrap it level by level.
  HierarchySpec level_spec;  // a leaf
  for (auto it = fanouts.rbegin(); it != fanouts.rend(); ++it) {
    if (*it < 2) {
      return Status::InvalidArgument("balanced hierarchy fanouts must be >= 2");
    }
    HierarchySpec parent;
    parent.children.assign(*it, level_spec);
    level_spec = std::move(parent);
  }
  return FromSpec(level_spec);
}

Result<Hierarchy> Hierarchy::FromGroupSizes(
    const std::vector<std::size_t>& group_sizes) {
  if (group_sizes.size() < 2) {
    return Status::InvalidArgument("need >= 2 groups");
  }
  HierarchySpec root;
  for (std::size_t size : group_sizes) {
    if (size < 2) {
      return Status::InvalidArgument("every group needs >= 2 leaves");
    }
    HierarchySpec group;
    group.children.assign(size, HierarchySpec{});
    root.children.push_back(std::move(group));
  }
  return FromSpec(root);
}

Result<Hierarchy> Hierarchy::Flat(std::size_t num_leaves) {
  if (num_leaves < 2) {
    return Status::InvalidArgument("flat hierarchy needs >= 2 leaves");
  }
  HierarchySpec root;
  root.children.assign(num_leaves, HierarchySpec{});
  return FromSpec(root);
}

std::vector<std::size_t> Hierarchy::NodesAtLevel(std::size_t level) const {
  std::vector<std::size_t> out;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].level == level) out.push_back(id);
  }
  return out;
}

Status Hierarchy::Validate() const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty hierarchy");
  if (height_ < 2) return Status::FailedPrecondition("height must be >= 2");
  if (nodes_[kRoot].level != 1 || nodes_[kRoot].parent != kRoot) {
    return Status::Internal("malformed root");
  }
  std::size_t leaf_count = 0;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.children.empty()) {
      ++leaf_count;
      if (node.level != height_) {
        return Status::FailedPrecondition("leaf not at leaf level");
      }
      if (node.leaf_end != node.leaf_begin + 1) {
        return Status::Internal("leaf must cover exactly one leaf index");
      }
    } else {
      if (node.children.size() < 2) {
        return Status::FailedPrecondition("internal node with fanout < 2");
      }
      for (std::size_t child : node.children) {
        if (child >= nodes_.size() || nodes_[child].parent != id ||
            nodes_[child].level != node.level + 1) {
          return Status::Internal("inconsistent parent/child links");
        }
      }
      if (node.leaf_begin != nodes_[node.children.front()].leaf_begin ||
          node.leaf_end != nodes_[node.children.back()].leaf_end) {
        return Status::Internal("inconsistent leaf ranges");
      }
    }
    // BFS layout: parents precede children.
    if (id != kRoot && node.parent >= id) {
      return Status::Internal("nodes not in level order");
    }
  }
  if (leaf_count != num_leaves_ || leaf_nodes_.size() != num_leaves_) {
    return Status::Internal("leaf bookkeeping out of sync");
  }
  for (std::size_t i = 0; i < leaf_nodes_.size(); ++i) {
    if (nodes_[leaf_nodes_[i]].leaf_begin != i) {
      return Status::Internal("leaf order mismatch");
    }
  }
  return Status::OK();
}

}  // namespace privelet::data
