// Census surrogate generator. The paper evaluates on IPUMS Brazil and US
// census extracts (Sec. VII-A, Table III), which are not redistributable;
// this generator produces synthetic tables with exactly the paper's schema
// (domain sizes and hierarchy heights) and realistic, mildly correlated
// marginals. The mechanisms' error behaviour depends on the frequency
// matrix's shape — domain sizes, hierarchy structure, ε, and the query
// workload — so matching Table III preserves the experiments' conclusions
// (see DESIGN.md, "Substitutions").
#ifndef PRIVELET_DATA_CENSUS_GENERATOR_H_
#define PRIVELET_DATA_CENSUS_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "privelet/common/result.h"
#include "privelet/data/table.h"

namespace privelet::data {

enum class CensusCountry { kBrazil, kUS };

/// Parameters of the census surrogate.
///
/// Paper defaults (Table III):
///   Brazil: n = 10M, Age 101, Gender 2 (h=2), Occupation 512 (h=3),
///           Income 1001 — m ≈ 1.04e8.
///   US:     n = 8M,  Age 96,  Gender 2 (h=2), Occupation 511 (h=3),
///           Income 1020 — m ≈ 1.0e8.
///
/// The paper-scale matrix needs ~1 GB per copy, so the default
/// configuration scales the Income domain and tuple count down; pass
/// `paper_scale = true` (or set PRIVELET_FULL=1 on the harnesses) to run
/// the original sizes.
struct CensusConfig {
  CensusCountry country = CensusCountry::kBrazil;
  std::size_t num_tuples = 1'000'000;
  /// Income domain size; 0 means "paper value" (1001 / 1020).
  std::size_t income_domain = 126;
  std::uint64_t seed = 2010;
};

/// Config matching the paper's scale for the given country.
CensusConfig PaperScaleCensusConfig(CensusCountry country);

/// Config sized for quick runs (default used by tests and benches).
CensusConfig DefaultCensusConfig(CensusCountry country);

/// The 4-attribute census schema: Age (ordinal), Gender (nominal, h=2),
/// Occupation (nominal, h=3), Income (ordinal). `income_domain == 0`
/// selects the paper value.
Result<Schema> MakeCensusSchema(CensusCountry country,
                                std::size_t income_domain);

/// Generates the synthetic census table. Deterministic in `config.seed`.
///
/// Marginals: Age is a three-component mixture (young/working-age/senior);
/// Gender is an even Bernoulli; Occupation is Zipf(1.07) over the leaf
/// order, so occupation groups have skewed, heterogeneous mass; Income is
/// a log-normal whose location rises with the occupation rank and with age
/// (mild positive correlation, as in real census data).
Result<Table> GenerateCensus(const CensusConfig& config);

}  // namespace privelet::data

#endif  // PRIVELET_DATA_CENSUS_GENERATOR_H_
