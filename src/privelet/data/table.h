// Table: a relational table whose cells are dense domain indices. Stored
// column-major, which is what both the frequency-matrix builder and the CSV
// writer consume.
#ifndef PRIVELET_DATA_TABLE_H_
#define PRIVELET_DATA_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "privelet/common/status.h"
#include "privelet/data/schema.h"

namespace privelet::data {

/// Column-major relational table. Values are validated against the schema's
/// domain sizes on insertion.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Appends one tuple; `row[i]` is the domain index for attribute i.
  Status AppendRow(std::span<const std::uint32_t> row);
  Status AppendRow(std::initializer_list<std::uint32_t> row) {
    return AppendRow(std::span<const std::uint32_t>(row.begin(), row.size()));
  }

  /// Value of attribute `col` in row `row`.
  std::uint32_t value(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }

  const std::vector<std::uint32_t>& column(std::size_t col) const {
    return columns_[col];
  }

  void Reserve(std::size_t rows);

 private:
  Schema schema_;
  std::vector<std::vector<std::uint32_t>> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace privelet::data

#endif  // PRIVELET_DATA_TABLE_H_
