// The Haar-nominal (HN) wavelet transform (paper Sec. VI-A): standard
// decomposition that applies a one-dimensional transform along each axis of
// the frequency matrix in turn — Haar on ordinal axes, the nominal
// transform on nominal axes, and (for Privelet+) the identity on axes in
// SA. The per-coefficient weight WHN is the product of the per-axis
// weights, so it is represented as one weight vector per axis rather than a
// materialized weight matrix.
//
// Each axis pass is executed by the line engine selected via
// matrix::EngineOptions: the tiled engine (default) streams panels of
// adjacent lines through the batched Transform1D kernels, the naive engine
// is the per-line reference path. Both produce bit-identical results for
// every thread count and tile size.
#ifndef PRIVELET_WAVELET_HN_TRANSFORM_H_
#define PRIVELET_WAVELET_HN_TRANSFORM_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/engine.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/wavelet/transform.h"

namespace privelet::common {
class ThreadPool;
}  // namespace privelet::common

namespace privelet::wavelet {

/// The output of HnTransform::Forward: the d-dimensional coefficient
/// matrix (axis i has axis_transform(i)->coefficient_count() entries) plus
/// the per-axis weight vectors defining WHN.
struct HnCoefficients {
  matrix::FrequencyMatrix coeffs;
  std::vector<const std::vector<double>*> axis_weights;

  /// WHN of the coefficient at the given flat index (product of per-axis
  /// weights). O(d) — use ForEachCoefficient for bulk access.
  double WeightAt(std::size_t flat) const;

  /// Calls fn(flat_index, weight) for every coefficient, amortized O(1)
  /// per coefficient (odometer with running weight products).
  template <typename Fn>
  void ForEachCoefficient(Fn&& fn) const;

  /// ForEachCoefficient restricted to flat indices [begin, end): O(d)
  /// startup to position the odometer, then amortized O(1) per
  /// coefficient. The building block of sharded (parallel) noise
  /// injection — disjoint ranges may run concurrently.
  template <typename Fn>
  void ForEachCoefficientInRange(std::size_t begin, std::size_t end,
                                 Fn&& fn) const;
};

/// Stateful flavor of ForEachCoefficientInRange for panel-at-a-time
/// callers (the fused noise hooks): the odometer buffers live in the
/// cursor, so successive ForEachInRange calls allocate nothing, and a
/// range continuing the previous one resumes in O(1) (any other start
/// costs an O(d) reseek). Ranges must be non-overlapping and increasing
/// within one cursor; each worker keeps its own.
class HnWeightCursor {
 public:
  /// `c` must outlive the cursor.
  explicit HnWeightCursor(const HnCoefficients& c)
      : c_(&c),
        coords_(c.coeffs.num_dims()),
        partial_(c.coeffs.num_dims()) {}

  /// Calls fn(flat, weight) for flat in [begin, end), like
  /// HnCoefficients::ForEachCoefficientInRange.
  template <typename Fn>
  void ForEachInRange(std::size_t begin, std::size_t end, Fn&& fn);

 private:
  void SeekTo(std::size_t flat) {
    const matrix::FrequencyMatrix& m = c_->coeffs;
    for (std::size_t axis = 0; axis < coords_.size(); ++axis) {
      coords_[axis] = (flat / m.Stride(axis)) % m.dim(axis);
    }
    RecomputeFrom(0);
  }

  // partial_[a] = product of weights over axes 0..a at coords_.
  void RecomputeFrom(std::size_t axis) {
    for (std::size_t a = axis; a < coords_.size(); ++a) {
      const double prev = (a == 0) ? 1.0 : partial_[a - 1];
      partial_[a] = prev * (*c_->axis_weights[a])[coords_[a]];
    }
  }

  const HnCoefficients* c_;
  std::vector<std::size_t> coords_;
  std::vector<double> partial_;
  // Flat index the odometer state corresponds to; anything else reseeks.
  std::size_t next_ = static_cast<std::size_t>(-1);
};

/// Coefficient perturbation fused into the first Inverse axis pass (the
/// mechanisms' Laplace injection, applied while the panel is cache-hot):
/// called with `values` holding the coefficients of flat indices
/// [begin, end) (values[i] is coefficient begin + i), before refinement
/// and inversion.
using PanelNoiseFn = std::function<void(std::size_t begin, std::size_t end,
                                        double* values)>;

/// Makes one PanelNoiseFn per ParallelFor chunk (so the closure may carry
/// mutable per-worker state, e.g. a noise-stream cursor). The returned
/// function is invoked with non-overlapping ranges in increasing order
/// within its chunk; across all chunks every coefficient is visited
/// exactly once.
using PanelNoiseFactory = std::function<PanelNoiseFn()>;

class HnTransform {
 public:
  /// Builds the transform for `schema`: Haar on ordinal axes, nominal on
  /// nominal axes, except that axes whose index appears in
  /// `identity_axes` get the identity transform (Privelet+'s SA set;
  /// Sec. VI-D).
  static Result<HnTransform> Create(const data::Schema& schema,
                                    const std::vector<std::size_t>&
                                        identity_axes = {});

  std::size_t num_axes() const { return transforms_.size(); }
  const Transform1D& axis_transform(std::size_t axis) const {
    return *transforms_[axis];
  }

  /// Expected data dims (= schema domain sizes).
  const std::vector<std::size_t>& input_dims() const { return input_dims_; }
  /// Coefficient-matrix dims.
  const std::vector<std::size_t>& output_dims() const { return output_dims_; }

  /// Applies the 1-D transforms along axes 0..d-1 in turn. A non-null
  /// `pool` fans the independent line transforms of each axis pass across
  /// its workers; `options` picks the line engine and tile size. The
  /// result is bit-identical for any pool size, engine, and tile size
  /// (each line is an independent computation undergoing identical
  /// floating-point operations on every path).
  Result<HnCoefficients> Forward(
      const matrix::FrequencyMatrix& m, common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {}) const;

  /// Inverts along axes d-1..0. On each axis the 1-D transform's Refine()
  /// runs on every coefficient line before inversion (for noise-free
  /// coefficients this is a no-op by construction). Parallel and
  /// deterministic across pool sizes, engines, and tile sizes like
  /// Forward.
  ///
  /// `noise` (tiled engine only) is applied to each coefficient panel of
  /// the first axis pass before refinement — the mechanisms fuse their
  /// Laplace injection here so the extra full-matrix noise sweep
  /// disappears. The input coefficients are not modified.
  Result<matrix::FrequencyMatrix> Inverse(
      const HnCoefficients& c, common::ThreadPool* pool = nullptr,
      const matrix::EngineOptions& options = {},
      const PanelNoiseFactory& noise = {}) const;

  /// Generalized sensitivity of the transform w.r.t. WHN:
  /// prod_i P(A_i) (Theorem 2).
  double GeneralizedSensitivity() const;

  /// Variance factor: noise variance of any range-count answer is at most
  /// VarianceBoundFactor() * sigma^2 when each coefficient's noise
  /// variance is at most (sigma/WHN(c))^2 (Theorem 3).
  double VarianceBoundFactor() const;

 private:
  explicit HnTransform(std::vector<std::unique_ptr<Transform1D>> transforms);

  std::vector<std::unique_ptr<Transform1D>> transforms_;
  std::vector<std::size_t> input_dims_;
  std::vector<std::size_t> output_dims_;
};

template <typename Fn>
void HnCoefficients::ForEachCoefficient(Fn&& fn) const {
  ForEachCoefficientInRange(0, coeffs.size(), std::forward<Fn>(fn));
}

template <typename Fn>
void HnCoefficients::ForEachCoefficientInRange(std::size_t begin,
                                               std::size_t end,
                                               Fn&& fn) const {
  HnWeightCursor cursor(*this);
  cursor.ForEachInRange(begin, end, std::forward<Fn>(fn));
}

template <typename Fn>
void HnWeightCursor::ForEachInRange(std::size_t begin, std::size_t end,
                                    Fn&& fn) {
  if (begin >= end) return;
  if (begin != next_) SeekTo(begin);
  const auto& dims = c_->coeffs.dims();
  const std::size_t d = dims.size();
  for (std::size_t flat = begin; flat < end; ++flat) {
    fn(flat, partial_[d - 1]);
    // Row-major odometer: bump the last axis, carry leftward.
    std::size_t axis = d;
    while (axis-- > 0) {
      if (++coords_[axis] < dims[axis]) {
        RecomputeFrom(axis);
        break;
      }
      coords_[axis] = 0;
    }
  }
  next_ = end;
}

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_HN_TRANSFORM_H_
