// The Haar-nominal (HN) wavelet transform (paper Sec. VI-A): standard
// decomposition that applies a one-dimensional transform along each axis of
// the frequency matrix in turn — Haar on ordinal axes, the nominal
// transform on nominal axes, and (for Privelet+) the identity on axes in
// SA. The per-coefficient weight WHN is the product of the per-axis
// weights, so it is represented as one weight vector per axis rather than a
// materialized weight matrix.
#ifndef PRIVELET_WAVELET_HN_TRANSFORM_H_
#define PRIVELET_WAVELET_HN_TRANSFORM_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "privelet/common/result.h"
#include "privelet/data/schema.h"
#include "privelet/matrix/frequency_matrix.h"
#include "privelet/wavelet/transform.h"

namespace privelet::common {
class ThreadPool;
}  // namespace privelet::common

namespace privelet::wavelet {

/// The output of HnTransform::Forward: the d-dimensional coefficient
/// matrix (axis i has axis_transform(i)->coefficient_count() entries) plus
/// the per-axis weight vectors defining WHN.
struct HnCoefficients {
  matrix::FrequencyMatrix coeffs;
  std::vector<const std::vector<double>*> axis_weights;

  /// WHN of the coefficient at the given flat index (product of per-axis
  /// weights). O(d) — use ForEachCoefficient for bulk access.
  double WeightAt(std::size_t flat) const;

  /// Calls fn(flat_index, weight) for every coefficient, amortized O(1)
  /// per coefficient (odometer with running weight products).
  template <typename Fn>
  void ForEachCoefficient(Fn&& fn) const;

  /// ForEachCoefficient restricted to flat indices [begin, end): O(d)
  /// startup to position the odometer, then amortized O(1) per
  /// coefficient. The building block of sharded (parallel) noise
  /// injection — disjoint ranges may run concurrently.
  template <typename Fn>
  void ForEachCoefficientInRange(std::size_t begin, std::size_t end,
                                 Fn&& fn) const;
};

class HnTransform {
 public:
  /// Builds the transform for `schema`: Haar on ordinal axes, nominal on
  /// nominal axes, except that axes whose index appears in
  /// `identity_axes` get the identity transform (Privelet+'s SA set;
  /// Sec. VI-D).
  static Result<HnTransform> Create(const data::Schema& schema,
                                    const std::vector<std::size_t>&
                                        identity_axes = {});

  std::size_t num_axes() const { return transforms_.size(); }
  const Transform1D& axis_transform(std::size_t axis) const {
    return *transforms_[axis];
  }

  /// Expected data dims (= schema domain sizes).
  const std::vector<std::size_t>& input_dims() const { return input_dims_; }
  /// Coefficient-matrix dims.
  const std::vector<std::size_t>& output_dims() const { return output_dims_; }

  /// Applies the 1-D transforms along axes 0..d-1 in turn. A non-null
  /// `pool` fans the independent 1-D line transforms of each axis pass
  /// across its workers; the result is bit-identical to the serial run for
  /// any pool size (each line is an independent computation writing a
  /// disjoint slice of the next matrix).
  Result<HnCoefficients> Forward(const matrix::FrequencyMatrix& m,
                                 common::ThreadPool* pool = nullptr) const;

  /// Inverts along axes d-1..0. On each axis the 1-D transform's Refine()
  /// runs on every coefficient line before inversion (for noise-free
  /// coefficients this is a no-op by construction). Parallel and
  /// deterministic across pool sizes like Forward.
  Result<matrix::FrequencyMatrix> Inverse(
      const HnCoefficients& c, common::ThreadPool* pool = nullptr) const;

  /// Generalized sensitivity of the transform w.r.t. WHN:
  /// prod_i P(A_i) (Theorem 2).
  double GeneralizedSensitivity() const;

  /// Variance factor: noise variance of any range-count answer is at most
  /// VarianceBoundFactor() * sigma^2 when each coefficient's noise
  /// variance is at most (sigma/WHN(c))^2 (Theorem 3).
  double VarianceBoundFactor() const;

 private:
  explicit HnTransform(std::vector<std::unique_ptr<Transform1D>> transforms);

  std::vector<std::unique_ptr<Transform1D>> transforms_;
  std::vector<std::size_t> input_dims_;
  std::vector<std::size_t> output_dims_;
};

template <typename Fn>
void HnCoefficients::ForEachCoefficient(Fn&& fn) const {
  ForEachCoefficientInRange(0, coeffs.size(), std::forward<Fn>(fn));
}

template <typename Fn>
void HnCoefficients::ForEachCoefficientInRange(std::size_t begin,
                                               std::size_t end,
                                               Fn&& fn) const {
  if (begin >= end) return;
  const auto& dims = coeffs.dims();
  const std::size_t d = dims.size();
  // partial[a] = product of weights over axes 0..a at the current coords.
  std::vector<std::size_t> coords = coeffs.Coords(begin);
  std::vector<double> partial(d, 1.0);
  auto recompute_from = [&](std::size_t axis) {
    for (std::size_t a = axis; a < d; ++a) {
      const double prev = (a == 0) ? 1.0 : partial[a - 1];
      partial[a] = prev * (*axis_weights[a])[coords[a]];
    }
  };
  recompute_from(0);
  for (std::size_t flat = begin; flat < end; ++flat) {
    fn(flat, partial[d - 1]);
    // Row-major odometer: bump the last axis, carry leftward.
    std::size_t axis = d;
    while (axis-- > 0) {
      if (++coords[axis] < dims[axis]) {
        recompute_from(axis);
        break;
      }
      coords[axis] = 0;
    }
  }
}

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_HN_TRANSFORM_H_
