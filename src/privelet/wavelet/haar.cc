#include "privelet/wavelet/haar.h"

#include <algorithm>

#include "privelet/common/check.h"
#include "privelet/common/math_util.h"

namespace privelet::wavelet {

HaarTransform::HaarTransform(std::size_t n) : n_(n) {
  PRIVELET_CHECK(n >= 1, "Haar input size must be >= 1");
  padded_ = NextPowerOfTwo(n);
  levels_ = FloorLog2(padded_);
  scratch_.resize(padded_);
  weights_.resize(padded_);
  weights_[0] = static_cast<double>(padded_);  // base coefficient
  for (std::size_t j = 1; j < padded_; ++j) {
    const std::size_t level = LevelOf(j);
    // WHaar = 2^(l - i + 1) for a level-i coefficient.
    weights_[j] = static_cast<double>(std::size_t{1} << (levels_ - level + 1));
  }
}

std::size_t HaarTransform::LevelOf(std::size_t j) {
  PRIVELET_CHECK(j >= 1, "base coefficient has no level");
  return FloorLog2(j) + 1;
}

void HaarTransform::Forward(const double* in, double* out) const {
  Forward(in, out, scratch_.data());
}

void HaarTransform::Forward(const double* in, double* out,
                            double* scratch) const {
  // `scratch` holds the running subtree averages; each pass halves it and
  // emits the detail coefficients of the current (finest remaining) level
  // into their level-order slots [half, len).
  std::copy(in, in + n_, scratch);
  std::fill(scratch + n_, scratch + padded_, 0.0);
  for (std::size_t len = padded_; len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const double left = scratch[2 * i];
      const double right = scratch[2 * i + 1];
      out[half + i] = (left - right) / 2.0;
      scratch[i] = (left + right) / 2.0;
    }
  }
  out[0] = scratch[0];
}

void HaarTransform::ForwardLines(std::size_t count, const double* in,
                                 double* out, double* scratch) const {
  // Interleaved panel: row k (elements [k*count, (k+1)*count)) holds
  // element k of every line. The single-line algorithm lifts row-wise:
  // copy the n_ input rows, zero the padding rows, then run each butterfly
  // level with a unit-stride inner loop over the lines.
  std::copy(in, in + n_ * count, scratch);
  std::fill(scratch + n_ * count, scratch + padded_ * count, 0.0);
  for (std::size_t len = padded_; len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const double* left = scratch + (2 * i) * count;
      const double* right = scratch + (2 * i + 1) * count;
      double* detail = out + (half + i) * count;
      double* avg = scratch + i * count;
      for (std::size_t b = 0; b < count; ++b) {
        detail[b] = (left[b] - right[b]) / 2.0;
        avg[b] = (left[b] + right[b]) / 2.0;
      }
    }
  }
  std::copy(scratch, scratch + count, out);
}

void HaarTransform::InverseLines(std::size_t count, const double* coeffs,
                                 double* out, double* scratch) const {
  std::copy(coeffs, coeffs + count, scratch);
  for (std::size_t len = 2; len <= padded_; len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = half; i-- > 0;) {
      const double* avg = scratch + i * count;
      const double* detail = coeffs + (half + i) * count;
      double* left = scratch + (2 * i) * count;
      double* right = scratch + (2 * i + 1) * count;
      // Right first: for i == 0 the left row aliases the avg row, and the
      // single-line path reads avg before overwriting it.
      for (std::size_t b = 0; b < count; ++b) {
        right[b] = avg[b] - detail[b];
      }
      for (std::size_t b = 0; b < count; ++b) {
        left[b] = avg[b] + detail[b];
      }
    }
  }
  std::copy(scratch, scratch + n_ * count, out);
}

void HaarTransform::RangeContribution(std::size_t lo, std::size_t hi,
                                      double* out) const {
  PRIVELET_CHECK(lo <= hi && hi < n_, "bad range");
  // Inclusive-bounds overlap of [lo, hi] with [begin, begin + size).
  auto overlap = [lo, hi](std::size_t begin, std::size_t size) -> double {
    const std::size_t end = begin + size;  // exclusive
    const std::size_t clipped_lo = std::max(lo, begin);
    const std::size_t clipped_hi = std::min(hi + 1, end);
    return clipped_hi > clipped_lo
               ? static_cast<double>(clipped_hi - clipped_lo)
               : 0.0;
  };
  out[0] = static_cast<double>(hi - lo + 1);
  for (std::size_t j = 1; j < padded_; ++j) {
    // Coefficient j sits at level FloorLog2(j)+1; its subtree covers a
    // block of size padded / 2^FloorLog2(j) starting at the block index
    // (j - 2^level_offset) within that level.
    const std::size_t level_offset = std::size_t{1} << FloorLog2(j);
    const std::size_t block = padded_ / level_offset;
    const std::size_t begin = (j - level_offset) * block;
    out[j] = overlap(begin, block / 2) - overlap(begin + block / 2, block / 2);
  }
}

void HaarTransform::Inverse(const double* coeffs, double* out) const {
  Inverse(coeffs, out, scratch_.data());
}

void HaarTransform::Inverse(const double* coeffs, double* out,
                            double* scratch) const {
  scratch[0] = coeffs[0];
  for (std::size_t len = 2; len <= padded_; len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = half; i-- > 0;) {
      const double avg = scratch[i];
      const double detail = coeffs[half + i];
      scratch[2 * i] = avg + detail;       // left subtree: g = +1 (Eq. 3)
      scratch[2 * i + 1] = avg - detail;   // right subtree: g = -1
    }
  }
  std::copy(scratch, scratch + n_, out);
}

}  // namespace privelet::wavelet
