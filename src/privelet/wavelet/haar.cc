#include "privelet/wavelet/haar.h"

#include <algorithm>

#include "privelet/common/check.h"
#include "privelet/common/math_util.h"
#include "privelet/simd/kernels.h"

namespace privelet::wavelet {

HaarTransform::HaarTransform(std::size_t n) : n_(n) {
  PRIVELET_CHECK(n >= 1, "Haar input size must be >= 1");
  padded_ = NextPowerOfTwo(n);
  levels_ = FloorLog2(padded_);
  scratch_.resize(padded_);
  weights_.resize(padded_);
  weights_[0] = static_cast<double>(padded_);  // base coefficient
  for (std::size_t j = 1; j < padded_; ++j) {
    const std::size_t level = LevelOf(j);
    // WHaar = 2^(l - i + 1) for a level-i coefficient.
    weights_[j] = static_cast<double>(std::size_t{1} << (levels_ - level + 1));
  }
}

std::size_t HaarTransform::LevelOf(std::size_t j) {
  PRIVELET_CHECK(j >= 1, "base coefficient has no level");
  return FloorLog2(j) + 1;
}

void HaarTransform::Forward(const double* in, double* out) const {
  Forward(in, out, scratch_.data());
}

void HaarTransform::Forward(const double* in, double* out,
                            double* scratch) const {
  Forward(in, out, scratch, simd::ResolveIsa());
}

void HaarTransform::Forward(const double* in, double* out, double* scratch,
                            simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  // `scratch` holds the running subtree averages; each pass halves it and
  // emits the detail coefficients of the current (finest remaining) level
  // into their level-order slots [half, len). Vector levels on
  // power-of-two inputs fuse the first level with the line copy: the
  // split kernel reads `in` directly and emits averages into scratch,
  // so the full-length copy never happens.
  std::size_t len = padded_;
  if (k.level != simd::IsaLevel::kScalar && n_ == padded_ && padded_ > 1) {
    const std::size_t half = padded_ / 2;
    k.haar_forward_level_split(in, scratch, out + half, half);
    len = half;
  } else {
    std::copy(in, in + n_, scratch);
    std::fill(scratch + n_, scratch + padded_, 0.0);
  }
  for (; len > 1; len /= 2) {
    const std::size_t half = len / 2;
    k.haar_forward_level(scratch, out + half, half);
  }
  out[0] = scratch[0];
}

void HaarTransform::ForwardLines(std::size_t count, const double* in,
                                 double* out, double* scratch) const {
  ForwardLines(count, in, out, scratch, simd::ResolveIsa());
}

void HaarTransform::ForwardLines(std::size_t count, const double* in,
                                 double* out, double* scratch,
                                 simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  // Interleaved panel: row k (elements [k*count, (k+1)*count)) holds
  // element k of every line. The single-line algorithm lifts row-wise:
  // copy the n_ input rows, zero the padding rows, then run each butterfly
  // level with a unit-stride inner loop over the lines. Vector levels on
  // power-of-two inputs skip the copy and run the first level straight
  // off `in` — the values every lane sees are identical either way.
  std::size_t len = padded_;
  if (k.level != simd::IsaLevel::kScalar && n_ == padded_ && padded_ > 1) {
    const std::size_t half = padded_ / 2;
    for (std::size_t i = 0; i < half; ++i) {
      k.haar_forward_step(in + (2 * i) * count, in + (2 * i + 1) * count,
                          out + (half + i) * count, scratch + i * count,
                          count);
    }
    len = half;
  } else {
    std::copy(in, in + n_ * count, scratch);
    std::fill(scratch + n_ * count, scratch + padded_ * count, 0.0);
  }
  for (; len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      // For i == 0 the avg row aliases the left row; the kernel loads
      // each lane before either store.
      k.haar_forward_step(scratch + (2 * i) * count,
                          scratch + (2 * i + 1) * count,
                          out + (half + i) * count, scratch + i * count,
                          count);
    }
  }
  std::copy(scratch, scratch + count, out);
}

void HaarTransform::InverseLines(std::size_t count, const double* coeffs,
                                 double* out, double* scratch) const {
  InverseLines(count, coeffs, out, scratch, simd::ResolveIsa());
}

void HaarTransform::InverseLines(std::size_t count, const double* coeffs,
                                 double* out, double* scratch,
                                 simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  // Vector levels on power-of-two inputs write the final expansion level
  // straight into `out`, replacing the trailing panel copy.
  const bool fuse_last =
      k.level != simd::IsaLevel::kScalar && n_ == padded_ && padded_ > 1;
  std::copy(coeffs, coeffs + count, scratch);
  for (std::size_t len = 2; len <= padded_; len *= 2) {
    const std::size_t half = len / 2;
    double* dst = (fuse_last && len == padded_) ? out : scratch;
    for (std::size_t i = half; i-- > 0;) {
      // Right first inside the kernel: for i == 0 the left row aliases
      // the avg row (scratch destinations only).
      k.haar_inverse_step(scratch + i * count, coeffs + (half + i) * count,
                          dst + (2 * i) * count, dst + (2 * i + 1) * count,
                          count);
    }
  }
  if (!fuse_last) std::copy(scratch, scratch + n_ * count, out);
}

void HaarTransform::ForwardLinesStrided(std::size_t count, const double* in,
                                        double* out, std::size_t stride,
                                        double* scratch,
                                        simd::IsaLevel isa) const {
  PRIVELET_CHECK(n_ == padded_, "strided panels require an unpadded line");
  if (padded_ == 1) {
    std::copy(in, in + count, out);
    return;
  }
  const simd::KernelTable& k = simd::Kernels(isa);
  // The first sweep reads the source matrix rows directly; every level
  // writes its detail rows straight into the destination matrix. Only the
  // ladder of running averages lives in scratch, at a pitch of
  // count + kStridedRowPad: a dense pitch of exactly `count` puts
  // consecutive ladder rows a page multiple apart whenever 8 * count is
  // one, and the resulting store-to-load 4K aliasing between a level's
  // avg stores and the next level's loads serializes the ladder. One
  // extra vector of slack keeps rows 64-byte aligned while breaking the
  // page-offset collision.
  //
  // Levels run in fused pairs: one sweep consumes 4 source rows, emits
  // the two finer detail rows plus the coarser one, and stages the
  // intermediate half-level averages in two reused (cache-hot) tmp rows
  // instead of materializing that ladder level — per line the butterflies
  // are the same kernel ops on the same values, only their store
  // addresses change, so fusing cannot change a bit. This cuts ladder
  // traffic by a third and keeps the resident ladder at a quarter line.
  const std::size_t pitch = count + kStridedRowPad;
  double* tmp0 = padded_ >= 4 ? scratch + (padded_ / 4) * pitch : nullptr;
  double* tmp1 = padded_ >= 4 ? tmp0 + pitch : nullptr;
  std::size_t len = padded_;
  bool from_src = true;
  auto row = [&](std::size_t r) {
    return from_src ? in + r * stride : scratch + r * pitch;
  };
  while (len > 1) {
    const std::size_t half = len / 2;
    if (len >= 4) {
      const std::size_t quarter = len / 4;
      for (std::size_t i = 0; i < quarter; ++i) {
        // Writing scratch row i is safe: rows 4i..4i+3 of the previous
        // level were consumed at iteration i/4 (< i, or within this very
        // iteration for i == 0, before the write below).
        k.haar_forward_step(row(4 * i), row(4 * i + 1),
                            out + (half + 2 * i) * stride, tmp0, count);
        k.haar_forward_step(row(4 * i + 2), row(4 * i + 3),
                            out + (half + 2 * i + 1) * stride, tmp1, count);
        k.haar_forward_step(tmp0, tmp1, out + (quarter + i) * stride,
                            scratch + i * pitch, count);
      }
      len = quarter;
    } else {
      // Odd level count: the coarsest level has no partner.
      k.haar_forward_step(row(0), row(1), out + stride, scratch, count);
      len = 1;
    }
    from_src = false;
  }
  std::copy(scratch, scratch + count, out);  // base coefficient row
}

void HaarTransform::InverseLinesStrided(std::size_t count,
                                        const double* coeffs, double* out,
                                        std::size_t stride, double* scratch,
                                        simd::IsaLevel isa) const {
  PRIVELET_CHECK(n_ == padded_, "strided panels require an unpadded line");
  if (padded_ == 1) {
    std::copy(coeffs, coeffs + count, out);
    return;
  }
  const simd::KernelTable& k = simd::Kernels(isa);
  // Detail rows are read from the coefficient matrix per level; the
  // expansion runs in scratch (padded pitch, see ForwardLinesStrided)
  // until the last level writes the output matrix rows directly. Like the
  // forward sweep, levels run in fused pairs: one sweep expands each avg
  // row into four, staging the intermediate half-level averages in two
  // reused tmp rows — identical per-line ops, so bit-identical output.
  const std::size_t pitch = count + kStridedRowPad;
  double* tmp0 = padded_ >= 4 ? scratch + (padded_ / 4) * pitch : nullptr;
  double* tmp1 = padded_ >= 4 ? tmp0 + pitch : nullptr;
  std::copy(coeffs, coeffs + count, scratch);  // base coefficient row
  std::size_t len = 1;
  if (levels_ % 2 == 1) {
    // Odd level count: expand the coarsest level alone so the remaining
    // sweeps pair evenly.
    const bool last = padded_ == 2;
    double* left = last ? out : scratch;
    double* right = last ? out + stride : scratch + pitch;
    // Right first inside the kernel: the in-scratch left row aliases the
    // avg row.
    k.haar_inverse_step(scratch, coeffs + stride, left, right, count);
    len = 2;
  }
  for (; len < padded_; len *= 4) {
    const bool last = len * 4 == padded_;
    for (std::size_t i = len; i-- > 0;) {
      // Descending i: writing rows 4i..4i+3 only clobbers avg rows this
      // sweep has already consumed (all > i except row 0, which the first
      // step below reads before anything is stored).
      k.haar_inverse_step(scratch + i * pitch, coeffs + (len + i) * stride,
                          tmp0, tmp1, count);
      double* o0 = last ? out + (4 * i) * stride : scratch + (4 * i) * pitch;
      double* o1 =
          last ? out + (4 * i + 1) * stride : scratch + (4 * i + 1) * pitch;
      double* o2 =
          last ? out + (4 * i + 2) * stride : scratch + (4 * i + 2) * pitch;
      double* o3 =
          last ? out + (4 * i + 3) * stride : scratch + (4 * i + 3) * pitch;
      k.haar_inverse_step(tmp0, coeffs + (2 * len + 2 * i) * stride, o0, o1,
                          count);
      k.haar_inverse_step(tmp1, coeffs + (2 * len + 2 * i + 1) * stride, o2,
                          o3, count);
    }
  }
}

void HaarTransform::RangeContribution(std::size_t lo, std::size_t hi,
                                      double* out) const {
  PRIVELET_CHECK(lo <= hi && hi < n_, "bad range");
  // Inclusive-bounds overlap of [lo, hi] with [begin, begin + size).
  auto overlap = [lo, hi](std::size_t begin, std::size_t size) -> double {
    const std::size_t end = begin + size;  // exclusive
    const std::size_t clipped_lo = std::max(lo, begin);
    const std::size_t clipped_hi = std::min(hi + 1, end);
    return clipped_hi > clipped_lo
               ? static_cast<double>(clipped_hi - clipped_lo)
               : 0.0;
  };
  out[0] = static_cast<double>(hi - lo + 1);
  for (std::size_t j = 1; j < padded_; ++j) {
    // Coefficient j sits at level FloorLog2(j)+1; its subtree covers a
    // block of size padded / 2^FloorLog2(j) starting at the block index
    // (j - 2^level_offset) within that level.
    const std::size_t level_offset = std::size_t{1} << FloorLog2(j);
    const std::size_t block = padded_ / level_offset;
    const std::size_t begin = (j - level_offset) * block;
    out[j] = overlap(begin, block / 2) - overlap(begin + block / 2, block / 2);
  }
}

void HaarTransform::Inverse(const double* coeffs, double* out) const {
  Inverse(coeffs, out, scratch_.data());
}

void HaarTransform::Inverse(const double* coeffs, double* out,
                            double* scratch) const {
  Inverse(coeffs, out, scratch, simd::ResolveIsa());
}

void HaarTransform::Inverse(const double* coeffs, double* out, double* scratch,
                            simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  scratch[0] = coeffs[0];
  // Per level: scratch[2i] = avg + detail (left subtree, g = +1, Eq. 3),
  // scratch[2i+1] = avg - detail (right subtree, g = -1), i descending.
  // Vector levels on power-of-two inputs fuse the final level with the
  // output copy: the expand kernel writes `out` directly.
  const bool fuse_last =
      k.level != simd::IsaLevel::kScalar && n_ == padded_ && padded_ > 1;
  for (std::size_t len = 2; len <= padded_; len *= 2) {
    if (fuse_last && len == padded_) {
      k.haar_inverse_level_expand(scratch, coeffs + len / 2, out, len / 2);
    } else {
      k.haar_inverse_level(scratch, coeffs + len / 2, len / 2);
    }
  }
  if (!fuse_last) std::copy(scratch, scratch + n_, out);
}

}  // namespace privelet::wavelet
