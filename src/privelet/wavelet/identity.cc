#include "privelet/wavelet/identity.h"

#include <algorithm>

#include "privelet/common/check.h"

namespace privelet::wavelet {

IdentityTransform::IdentityTransform(std::size_t n)
    : n_(n), weights_(n, 1.0) {
  PRIVELET_CHECK(n >= 1, "identity input size must be >= 1");
}

void IdentityTransform::Forward(const double* in, double* out) const {
  std::copy(in, in + n_, out);
}

void IdentityTransform::Inverse(const double* coeffs, double* out) const {
  std::copy(coeffs, coeffs + n_, out);
}

void IdentityTransform::ForwardLines(std::size_t count, const double* in,
                                     double* out, double* scratch) const {
  (void)scratch;
  std::copy(in, in + n_ * count, out);
}

void IdentityTransform::InverseLines(std::size_t count, const double* coeffs,
                                     double* out, double* scratch) const {
  (void)scratch;
  std::copy(coeffs, coeffs + n_ * count, out);
}

void IdentityTransform::RangeContribution(std::size_t lo, std::size_t hi,
                                          double* out) const {
  PRIVELET_CHECK(lo <= hi && hi < n_, "bad range");
  std::fill(out, out + n_, 0.0);
  std::fill(out + lo, out + hi + 1, 1.0);
}

}  // namespace privelet::wavelet
