// Identity "transform": coefficients are the data entries themselves, every
// weight is 1. Used to express Privelet+'s sub-matrix splitting (paper
// Fig. 5): running the HN transform with the identity on every axis in SA
// is exactly "divide M along SA and transform each sub-matrix", and with
// the identity on *all* axes it degenerates to Dwork et al.'s Basic
// mechanism. P(A) = 1 (one coefficient changes, by delta, with weight 1);
// H(A) = |A| (a range may cover all |A| unit-weight coefficients).
#ifndef PRIVELET_WAVELET_IDENTITY_H_
#define PRIVELET_WAVELET_IDENTITY_H_

#include <cstddef>
#include <vector>

#include "privelet/wavelet/transform.h"

namespace privelet::wavelet {

class IdentityTransform final : public Transform1D {
 public:
  explicit IdentityTransform(std::size_t n);

  std::string_view name() const override { return "identity"; }
  std::size_t input_size() const override { return n_; }
  std::size_t coefficient_count() const override { return n_; }

  void Forward(const double* in, double* out) const override;
  void Inverse(const double* coeffs, double* out) const override;

  /// Panel kernels: a panel copy, whatever the interleaving.
  std::size_t lines_scratch_size(std::size_t count) const override {
    (void)count;
    return 0;
  }
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch) const override;

  /// Indicator of the range: coefficients are the entries themselves.
  void RangeContribution(std::size_t lo, std::size_t hi,
                         double* out) const override;

  const std::vector<double>& weights() const override { return weights_; }

  double p_factor() const override { return 1.0; }
  double h_factor() const override { return static_cast<double>(n_); }

 private:
  std::size_t n_;
  std::vector<double> weights_;
};

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_IDENTITY_H_
