#include "privelet/wavelet/hn_transform.h"

#include <algorithm>
#include <string>

#include "privelet/common/check.h"
#include "privelet/common/thread_pool.h"
#include "privelet/wavelet/haar.h"
#include "privelet/wavelet/identity.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::wavelet {

namespace {

// Runs the 1-D transform `op` over every line of `current` along `axis`,
// fanned across `pool` in contiguous line chunks. Each chunk carries its
// own line buffers and Transform1D scratch, so a shared transform instance
// is safe; lines write disjoint slices of `next`, so the output is
// bit-identical for every pool size (including none).
template <typename LineOp>
void TransformLines(const matrix::FrequencyMatrix& current,
                    matrix::FrequencyMatrix& next, std::size_t axis,
                    const Transform1D& t, common::ThreadPool* pool,
                    const LineOp& op) {
  const std::size_t lines = current.NumLines(axis);
  common::ParallelFor(
      pool, lines, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
        std::vector<double> in_line(
            std::max(t.input_size(), t.coefficient_count()));
        std::vector<double> out_line(in_line.size());
        std::vector<double> scratch(t.scratch_size());
        double* scratch_ptr = scratch.empty() ? nullptr : scratch.data();
        for (std::size_t line = begin; line < end; ++line) {
          current.GatherLine(axis, line, in_line.data());
          op(in_line.data(), out_line.data(), scratch_ptr);
          next.ScatterLine(axis, line, out_line.data());
        }
      });
}

}  // namespace

double HnCoefficients::WeightAt(std::size_t flat) const {
  const auto coords = coeffs.Coords(flat);
  double weight = 1.0;
  for (std::size_t axis = 0; axis < coords.size(); ++axis) {
    weight *= (*axis_weights[axis])[coords[axis]];
  }
  return weight;
}

HnTransform::HnTransform(std::vector<std::unique_ptr<Transform1D>> transforms)
    : transforms_(std::move(transforms)) {
  input_dims_.reserve(transforms_.size());
  output_dims_.reserve(transforms_.size());
  for (const auto& t : transforms_) {
    input_dims_.push_back(t->input_size());
    output_dims_.push_back(t->coefficient_count());
  }
}

Result<HnTransform> HnTransform::Create(
    const data::Schema& schema,
    const std::vector<std::size_t>& identity_axes) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  for (std::size_t axis : identity_axes) {
    if (axis >= schema.num_attributes()) {
      return Status::InvalidArgument("identity axis out of range");
    }
  }
  std::vector<std::unique_ptr<Transform1D>> transforms;
  transforms.reserve(schema.num_attributes());
  for (std::size_t axis = 0; axis < schema.num_attributes(); ++axis) {
    const data::Attribute& attr = schema.attribute(axis);
    const bool identity =
        std::find(identity_axes.begin(), identity_axes.end(), axis) !=
        identity_axes.end();
    if (identity) {
      transforms.push_back(
          std::make_unique<IdentityTransform>(attr.domain_size()));
    } else if (attr.is_ordinal()) {
      transforms.push_back(std::make_unique<HaarTransform>(attr.domain_size()));
    } else {
      // Share the schema's hierarchy (attributes hold it by shared_ptr
      // internally, but the public accessor returns a reference; copying
      // once per transform is cheap relative to the matrices involved).
      transforms.push_back(std::make_unique<NominalTransform>(
          std::make_shared<const data::Hierarchy>(attr.hierarchy())));
    }
  }
  return HnTransform(std::move(transforms));
}

Result<HnCoefficients> HnTransform::Forward(const matrix::FrequencyMatrix& m,
                                            common::ThreadPool* pool) const {
  if (m.dims() != input_dims_) {
    return Status::InvalidArgument("matrix dims do not match the transform");
  }
  matrix::FrequencyMatrix current = m;
  // Step i (paper's C_i): transform every 1-D line along axis i.
  for (std::size_t axis = 0; axis < transforms_.size(); ++axis) {
    const Transform1D& t = *transforms_[axis];
    std::vector<std::size_t> next_dims = current.dims();
    next_dims[axis] = t.coefficient_count();
    matrix::FrequencyMatrix next(next_dims);

    TransformLines(current, next, axis, t, pool,
                   [&t](const double* in, double* out, double* scratch) {
                     t.Forward(in, out, scratch);
                   });
    current = std::move(next);
  }

  HnCoefficients result;
  result.coeffs = std::move(current);
  result.axis_weights.reserve(transforms_.size());
  for (const auto& t : transforms_) result.axis_weights.push_back(&t->weights());
  return result;
}

Result<matrix::FrequencyMatrix> HnTransform::Inverse(
    const HnCoefficients& c, common::ThreadPool* pool) const {
  if (c.coeffs.dims() != output_dims_) {
    return Status::InvalidArgument(
        "coefficient dims do not match the transform");
  }
  matrix::FrequencyMatrix current = c.coeffs;
  for (std::size_t axis = transforms_.size(); axis-- > 0;) {
    const Transform1D& t = *transforms_[axis];
    std::vector<std::size_t> next_dims = current.dims();
    next_dims[axis] = t.input_size();
    matrix::FrequencyMatrix next(next_dims);

    TransformLines(current, next, axis, t, pool,
                   [&t](double* in, double* out, double* scratch) {
                     t.Refine(in);
                     t.Inverse(in, out, scratch);
                   });
    current = std::move(next);
  }
  return current;
}

double HnTransform::GeneralizedSensitivity() const {
  double rho = 1.0;
  for (const auto& t : transforms_) rho *= t->p_factor();
  return rho;
}

double HnTransform::VarianceBoundFactor() const {
  double factor = 1.0;
  for (const auto& t : transforms_) factor *= t->h_factor();
  return factor;
}

}  // namespace privelet::wavelet
