#include "privelet/wavelet/hn_transform.h"

#include <algorithm>
#include <string>
#include <utility>

#include "privelet/common/aligned_buffer.h"
#include "privelet/common/check.h"
#include "privelet/common/residency.h"
#include "privelet/common/scratch_pool.h"
#include "privelet/common/thread_pool.h"
#include "privelet/matrix/tile_buffer.h"
#include "privelet/simd/dispatch.h"
#include "privelet/wavelet/haar.h"
#include "privelet/wavelet/identity.h"
#include "privelet/wavelet/nominal.h"

namespace privelet::wavelet {

namespace {

// Per-worker workspace shared by both engines: two panels (or line
// buffers) plus transform scratch. Pooled so chunk bodies never allocate
// after a worker's first chunk (capacities persist across leases and axis
// passes).
struct LineWorkspace {
  matrix::TileBuffer in;
  matrix::TileBuffer out;
  common::AlignedBuffer<double> scratch;

  double* Scratch(std::size_t n) {
    // 64-byte aligned like the panels, so the vector kernels' scratch
    // rows share the panels' alignment. Transforms fully write their
    // scratch before reading it, so uninitialized growth is fine.
    if (n == 0) return scratch.data();
    return scratch.Grow(n);
  }
};

using WorkspacePool = common::ScratchPool<LineWorkspace>;

enum class Direction { kForward, kInverse };

// Naive engine: the per-line reference path (gather one line, transform,
// scatter). Lines write disjoint slices of `dst`, so the output is
// bit-identical for every pool size (including none).
void TransformLinesNaive(const matrix::FrequencyMatrix& src,
                         matrix::FrequencyMatrix& dst, std::size_t axis,
                         const Transform1D& t, Direction dir,
                         common::ThreadPool* pool, WorkspacePool& workspaces,
                         const matrix::EngineOptions& options,
                         simd::IsaLevel isa,
                         common::ResidencyGovernor& governor) {
  const std::size_t lines = src.NumLines(axis);
  const std::size_t line_len =
      std::max(t.input_size(), t.coefficient_count());
  // Out-of-core: a strided line maps one page per element — axis_dim pages
  // before any end-of-line charge could fire — so the gather/scatter must
  // charge the governor per step. TileBuffer with count == 1 copies the
  // exact same elements as GatherLine/ScatterLine and carries that hook.
  const bool paced = options.out_of_core();
  common::ParallelFor(
      pool, lines, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
        auto ws = workspaces.Acquire();
        double* in_line = ws->in.Prepare(line_len, 1);
        double* out_line = ws->out.Prepare(line_len, 1);
        double* scratch = ws->Scratch(t.scratch_size());
        for (std::size_t line = begin; line < end; ++line) {
          if (paced) {
            ws->in.Gather(src, axis, line, 1, &governor);
          } else {
            src.GatherLine(axis, line, in_line);
          }
          if (dir == Direction::kForward) {
            t.Forward(in_line, out_line, scratch, isa);
          } else {
            t.Refine(in_line);
            t.Inverse(in_line, out_line, scratch, isa);
          }
          if (paced) {
            ws->out.Scatter(dst, axis, line, 1, &governor);
          } else {
            dst.ScatterLine(axis, line, out_line);
          }
        }
      });
}

// Tiled engine: panels of `options.tile_lines` adjacent lines per step.
// Axes whose lines are contiguous (stride == 1) are processed in place in
// the matrix slabs; other axes are block-transposed through TileBuffer and
// run through the batched Transform1D kernels. `noise` (first inverse
// pass only) perturbs each coefficient panel while it is cache-hot.
void TransformLinesTiled(const matrix::FrequencyMatrix& src,
                         matrix::FrequencyMatrix& dst, std::size_t axis,
                         const Transform1D& t, Direction dir,
                         common::ThreadPool* pool, WorkspacePool& workspaces,
                         const matrix::EngineOptions& options,
                         simd::IsaLevel isa,
                         const PanelNoiseFactory* noise_factory,
                         common::ResidencyGovernor& governor) {
  const std::size_t lines = src.NumLines(axis);
  const std::size_t tile = std::max<std::size_t>(1, options.tile_lines);
  const std::size_t panels = (lines + tile - 1) / tile;
  const std::size_t in_len = src.dim(axis);
  const std::size_t out_len = dst.dim(axis);
  // Out-of-core pacing must happen *inside* the copy loops, not at panel
  // boundaries: one panel touches up to a page per axis step in each
  // matrix, which can dwarf the byte budget long before an end-of-panel
  // charge would fire. The slab path charges per line below; the
  // transpose path hands the governor to Gather/Scatter, which charge per
  // axis step.
  common::ResidencyGovernor* paced =
      options.out_of_core() ? &governor : nullptr;
  // Slab lines are contiguous, so the bytes a line touches are the bytes
  // it processes.
  const std::size_t slab_line_bytes = (in_len + out_len) * sizeof(double);

  if (src.Stride(axis) == 1) {
    // Slab path: line b along this axis occupies the contiguous elements
    // [b * len, (b + 1) * len) of each matrix, so panels are addressed in
    // place — no transpose, no output staging.
    common::ParallelFor(
        pool, panels, /*grain=*/0, [&](std::size_t pb, std::size_t pe) {
          auto ws = workspaces.Acquire();
          double* scratch = ws->Scratch(t.scratch_size());
          PanelNoiseFn noise =
              noise_factory != nullptr ? (*noise_factory)() : PanelNoiseFn();
          // The source slab is const; noise and refinement mutate
          // coefficients, so those paths stage the panel in a buffer.
          const bool stage = dir == Direction::kInverse &&
                             (noise != nullptr || t.has_refinement());
          for (std::size_t p = pb; p < pe; ++p) {
            const std::size_t first = p * tile;
            const std::size_t count = std::min(tile, lines - first);
            const double* src_slab = src.values().data() + first * in_len;
            double* dst_slab = dst.values().data() + first * out_len;
            if (dir == Direction::kForward) {
              for (std::size_t b = 0; b < count; ++b) {
                t.Forward(src_slab + b * in_len, dst_slab + b * out_len,
                          scratch, isa);
                governor.OnBytesProcessed(slab_line_bytes);
              }
            } else if (!stage) {
              for (std::size_t b = 0; b < count; ++b) {
                t.Inverse(src_slab + b * in_len, dst_slab + b * out_len,
                          scratch, isa);
                governor.OnBytesProcessed(slab_line_bytes);
              }
            } else {
              // Stage one line at a time: the fused-noise sweep is
              // position-based (each draw depends only on the flat
              // coefficient index), so per-line staging perturbs exactly
              // the same values as whole-panel staging while keeping both
              // the heap workspace and the paced working set at one line.
              double* buf = ws->in.Prepare(in_len, 1);
              for (std::size_t b = 0; b < count; ++b) {
                const double* src_line = src_slab + b * in_len;
                std::copy(src_line, src_line + in_len, buf);
                if (noise != nullptr) {
                  const std::size_t flat = (first + b) * in_len;
                  noise(flat, flat + in_len, buf);
                }
                t.Refine(buf);
                t.Inverse(buf, dst_slab + b * out_len, scratch, isa);
                governor.OnBytesProcessed(slab_line_bytes);
              }
            }
          }
        });
    return;
  }

  PRIVELET_CHECK(noise_factory == nullptr,
                 "fused noise applies only to the contiguous axis");
  // Strided fast path for the vector levels: consecutive lines of a
  // non-contiguous axis have consecutive base addresses (runs of
  // ForEachLineRun), so the matrix storage already is an interleaved
  // panel with row pitch Stride(axis) — the batched kernels read `src`
  // and write `dst` directly and the Gather/Scatter copies disappear.
  // The scalar level keeps the PR 3 gather/transform/scatter structure
  // (it is the dispatch sweep's baseline), and the out-of-core engine
  // keeps it for its per-step residency pacing.
  if (paced == nullptr && isa != simd::IsaLevel::kScalar &&
      t.SupportsStridedLines() && !t.has_refinement()) {
    const std::size_t stride = src.Stride(axis);
    // Lane count per call: as many consecutive lines as possible, NOT the
    // tile size. With `count` lanes each panel row is a contiguous
    // `count`-element span at an 8*stride-byte pitch; short rows at a
    // page-multiple pitch serialize on store-to-load 4K aliasing, while
    // runs approaching the full stride turn every row access into
    // sequential streaming (count == stride means the rows tile the
    // matrix exactly). The cap only bounds the scratch ladder — per line
    // the operations are identical for every lane count, so the output
    // does not depend on this choice.
    constexpr std::size_t kStridedScratchBytes = std::size_t{8} << 20;
    const std::size_t line_len = std::max(in_len, out_len);
    const std::size_t chunk = std::max(
        tile, std::max<std::size_t>(
                  1, kStridedScratchBytes / (sizeof(double) * line_len)));
    const std::size_t chunks = (lines + chunk - 1) / chunk;
    common::ParallelFor(
        pool, chunks, /*grain=*/0, [&](std::size_t pb, std::size_t pe) {
          auto ws = workspaces.Acquire();
          for (std::size_t p = pb; p < pe; ++p) {
            const std::size_t first = p * chunk;
            const std::size_t count = std::min(chunk, lines - first);
            double* scratch = ws->Scratch(t.lines_scratch_size(count));
            matrix::ForEachLineRun(
                stride, in_len, first, count,
                [&](std::size_t base, std::size_t col, std::size_t run) {
                  const std::size_t dst_base =
                      dst.LineBase(axis, first + col);
                  if (dir == Direction::kForward) {
                    t.ForwardLinesStrided(run, src.values().data() + base,
                                          dst.values().data() + dst_base,
                                          stride, scratch, isa);
                  } else {
                    t.InverseLinesStrided(run, src.values().data() + base,
                                          dst.values().data() + dst_base,
                                          stride, scratch, isa);
                  }
                });
          }
        });
    return;
  }
  common::ParallelFor(
      pool, panels, /*grain=*/0, [&](std::size_t pb, std::size_t pe) {
        auto ws = workspaces.Acquire();
        for (std::size_t p = pb; p < pe; ++p) {
          const std::size_t first = p * tile;
          const std::size_t count = std::min(tile, lines - first);
          ws->in.Gather(src, axis, first, count, paced);
          double* out_panel = ws->out.Prepare(out_len, count);
          double* scratch = ws->Scratch(t.lines_scratch_size(count));
          if (dir == Direction::kForward) {
            t.ForwardLines(count, ws->in.panel(), out_panel, scratch, isa);
          } else {
            if (t.has_refinement()) {
              t.RefineLines(count, ws->in.panel(), scratch, isa);
            }
            t.InverseLines(count, ws->in.panel(), out_panel, scratch, isa);
          }
          ws->out.Scatter(dst, axis, first, count, paced);
        }
      });
}

void RunAxisPass(const matrix::FrequencyMatrix& src,
                 matrix::FrequencyMatrix& dst, std::size_t axis,
                 const Transform1D& t, Direction dir,
                 common::ThreadPool* pool, WorkspacePool& workspaces,
                 const matrix::EngineOptions& options,
                 const PanelNoiseFactory* noise_factory) {
  // Release-behind for the out-of-core engine: evict already-processed
  // pages of both matrices each time a quota of bytes has streamed by, so
  // the pass's resident set tracks options.max_memory_bytes, not the
  // matrix sizes. ReleaseResidency is a no-op on vector-backed matrices
  // and never alters values, so the pass's arithmetic (and thus the
  // published bytes) is unchanged.
  common::ResidencyGovernor governor(options.max_memory_bytes, [&src, &dst] {
    src.ReleaseResidency();
    dst.ReleaseResidency();
  });
  // Resolve the kernel level once per pass (options.isa, then the
  // PRIVELET_ISA environment, then the best the host supports) so every
  // worker of the pass dispatches to the same table.
  const simd::IsaLevel isa = simd::ResolveIsa(options.isa);
  if (options.engine == matrix::LineEngine::kNaive) {
    TransformLinesNaive(src, dst, axis, t, dir, pool, workspaces, options,
                        isa, governor);
  } else {
    TransformLinesTiled(src, dst, axis, t, dir, pool, workspaces, options,
                        isa, noise_factory, governor);
  }
}

}  // namespace

double HnCoefficients::WeightAt(std::size_t flat) const {
  const auto coords = coeffs.Coords(flat);
  double weight = 1.0;
  for (std::size_t axis = 0; axis < coords.size(); ++axis) {
    weight *= (*axis_weights[axis])[coords[axis]];
  }
  return weight;
}

HnTransform::HnTransform(std::vector<std::unique_ptr<Transform1D>> transforms)
    : transforms_(std::move(transforms)) {
  input_dims_.reserve(transforms_.size());
  output_dims_.reserve(transforms_.size());
  for (const auto& t : transforms_) {
    input_dims_.push_back(t->input_size());
    output_dims_.push_back(t->coefficient_count());
  }
}

Result<HnTransform> HnTransform::Create(
    const data::Schema& schema,
    const std::vector<std::size_t>& identity_axes) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no attributes");
  }
  for (std::size_t axis : identity_axes) {
    if (axis >= schema.num_attributes()) {
      return Status::InvalidArgument("identity axis out of range");
    }
  }
  std::vector<std::unique_ptr<Transform1D>> transforms;
  transforms.reserve(schema.num_attributes());
  for (std::size_t axis = 0; axis < schema.num_attributes(); ++axis) {
    const data::Attribute& attr = schema.attribute(axis);
    const bool identity =
        std::find(identity_axes.begin(), identity_axes.end(), axis) !=
        identity_axes.end();
    if (identity) {
      transforms.push_back(
          std::make_unique<IdentityTransform>(attr.domain_size()));
    } else if (attr.is_ordinal()) {
      transforms.push_back(std::make_unique<HaarTransform>(attr.domain_size()));
    } else {
      // Share the attribute's hierarchy — the transform keeps the schema's
      // instance alive instead of copying the node tables.
      transforms.push_back(
          std::make_unique<NominalTransform>(attr.shared_hierarchy()));
    }
  }
  return HnTransform(std::move(transforms));
}

Result<HnCoefficients> HnTransform::Forward(
    const matrix::FrequencyMatrix& m, common::ThreadPool* pool,
    const matrix::EngineOptions& options) const {
  if (m.dims() != input_dims_) {
    return Status::InvalidArgument("matrix dims do not match the transform");
  }
  WorkspacePool workspaces;
  // Step i (paper's C_i): transform every 1-D line along axis i. The first
  // pass reads `m` directly (no working copy of the input).
  const matrix::FrequencyMatrix* src = &m;
  matrix::FrequencyMatrix current;
  for (std::size_t axis = 0; axis < transforms_.size(); ++axis) {
    const Transform1D& t = *transforms_[axis];
    std::vector<std::size_t> next_dims = src->dims();
    next_dims[axis] = t.coefficient_count();
    // Out-of-core engine: each intermediate lives in an mmap scratch file
    // so the pass can release residency behind itself (the previous
    // intermediate's pages are freed wholesale when `current` is
    // reassigned below).
    matrix::FrequencyMatrix next;
    if (options.out_of_core()) {
      PRIVELET_ASSIGN_OR_RETURN(next, matrix::FrequencyMatrix::CreateScratch(
                                          std::move(next_dims),
                                          options.scratch_dir));
    } else {
      // Every engine writes all out_len elements of every destination
      // line, so the pass fully overwrites `next` — skip the zero-fill.
      next = matrix::FrequencyMatrix::Uninitialized(std::move(next_dims));
    }

    RunAxisPass(*src, next, axis, t, Direction::kForward, pool, workspaces,
                options, /*noise_factory=*/nullptr);
    current = std::move(next);
    src = &current;
  }

  HnCoefficients result;
  result.coeffs = std::move(current);
  result.axis_weights.reserve(transforms_.size());
  for (const auto& t : transforms_) result.axis_weights.push_back(&t->weights());
  return result;
}

Result<matrix::FrequencyMatrix> HnTransform::Inverse(
    const HnCoefficients& c, common::ThreadPool* pool,
    const matrix::EngineOptions& options,
    const PanelNoiseFactory& noise) const {
  if (c.coeffs.dims() != output_dims_) {
    return Status::InvalidArgument(
        "coefficient dims do not match the transform");
  }
  PRIVELET_CHECK(noise == nullptr ||
                     options.engine == matrix::LineEngine::kTiled,
                 "fused noise requires the tiled engine");
  WorkspacePool workspaces;
  // The first pass reads `c.coeffs` directly; fused noise perturbs staged
  // panels, never the caller's coefficients.
  const matrix::FrequencyMatrix* src = &c.coeffs;
  matrix::FrequencyMatrix current;
  for (std::size_t axis = transforms_.size(); axis-- > 0;) {
    const Transform1D& t = *transforms_[axis];
    std::vector<std::size_t> next_dims = src->dims();
    next_dims[axis] = t.input_size();
    matrix::FrequencyMatrix next;
    if (options.out_of_core()) {
      PRIVELET_ASSIGN_OR_RETURN(next, matrix::FrequencyMatrix::CreateScratch(
                                          std::move(next_dims),
                                          options.scratch_dir));
    } else {
      // Every engine writes all out_len elements of every destination
      // line, so the pass fully overwrites `next` — skip the zero-fill.
      next = matrix::FrequencyMatrix::Uninitialized(std::move(next_dims));
    }

    // Only the first pass (axis d-1, the contiguous axis, which touches
    // every coefficient exactly once) carries the noise hook.
    const bool first_pass = axis + 1 == transforms_.size();
    const PanelNoiseFactory* noise_factory =
        (first_pass && noise != nullptr) ? &noise : nullptr;
    RunAxisPass(*src, next, axis, t, Direction::kInverse, pool, workspaces,
                options, noise_factory);
    current = std::move(next);
    src = &current;
  }
  return current;
}

double HnTransform::GeneralizedSensitivity() const {
  double rho = 1.0;
  for (const auto& t : transforms_) rho *= t->p_factor();
  return rho;
}

double HnTransform::VarianceBoundFactor() const {
  double factor = 1.0;
  for (const auto& t : transforms_) factor *= t->h_factor();
  return factor;
}

}  // namespace privelet::wavelet
