#include "privelet/wavelet/nominal.h"

#include "privelet/common/check.h"

namespace privelet::wavelet {

NominalTransform::NominalTransform(
    std::shared_ptr<const data::Hierarchy> hierarchy)
    : hierarchy_(std::move(hierarchy)) {
  PRIVELET_CHECK(hierarchy_ != nullptr, "hierarchy must not be null");
  const data::Hierarchy& h = *hierarchy_;
  weights_.resize(h.num_nodes());
  weights_[data::Hierarchy::kRoot] = 1.0;  // base coefficient
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t f = h.fanout(h.node(id).parent);
    PRIVELET_CHECK(f >= 2, "internal hierarchy node with fanout < 2");
    const double fd = static_cast<double>(f);
    weights_[id] = fd / (2.0 * fd - 2.0);
  }
}

void NominalTransform::Forward(const double* in, double* out) const {
  const data::Hierarchy& h = *hierarchy_;
  // Leaf-sums bottom-up. BFS layout guarantees parent < child, so one
  // reverse pass accumulates children into parents.
  std::vector<double> leafsum(h.num_nodes(), 0.0);
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    leafsum[h.leaf_node(leaf)] = in[leaf];
  }
  for (std::size_t id = h.num_nodes(); id-- > 1;) {
    leafsum[h.node(id).parent] += leafsum[id];
  }

  out[data::Hierarchy::kRoot] = leafsum[data::Hierarchy::kRoot];
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t parent = h.node(id).parent;
    out[id] = leafsum[id] -
              leafsum[parent] / static_cast<double>(h.fanout(parent));
  }
}

void NominalTransform::Refine(double* coeffs) const {
  const data::Hierarchy& h = *hierarchy_;
  for (std::size_t id = 0; id < h.num_nodes(); ++id) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    double sum = 0.0;
    for (std::size_t child : children) sum += coeffs[child];
    const double mean = sum / static_cast<double>(children.size());
    for (std::size_t child : children) coeffs[child] -= mean;
  }
}

void NominalTransform::RangeContribution(std::size_t lo, std::size_t hi,
                                         double* out) const {
  const data::Hierarchy& h = *hierarchy_;
  PRIVELET_CHECK(lo <= hi && hi < h.num_leaves(), "bad range");
  for (std::size_t id = 0; id < h.num_nodes(); ++id) out[id] = 0.0;
  for (std::size_t leaf = lo; leaf <= hi; ++leaf) {
    out[h.leaf_node(leaf)] = 1.0;
  }
  // Bottom-up: parents precede children in the BFS layout.
  for (std::size_t id = h.num_nodes(); id-- > 0;) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    double sum = 0.0;
    for (std::size_t child : children) sum += out[child];
    out[id] = sum / static_cast<double>(children.size());
  }
}

double NominalTransform::RefinedQuadraticForm(const double* a) const {
  const data::Hierarchy& h = *hierarchy_;
  // Base coefficient: untouched by refinement, weight 1.
  double total = a[data::Hierarchy::kRoot] * a[data::Hierarchy::kRoot];
  for (std::size_t id = 0; id < h.num_nodes(); ++id) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    // All coefficients in the sibling group share the weight f/(2f-2).
    const double w = weights_[children.front()];
    const double v = 1.0 / (w * w);
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t child : children) {
      sum += a[child];
      sum_sq += a[child] * a[child];
    }
    const double g = static_cast<double>(children.size());
    total += v * (sum_sq - sum * sum / g);
  }
  return total;
}

void NominalTransform::Inverse(const double* coeffs, double* out) const {
  const data::Hierarchy& h = *hierarchy_;
  // Reconstruct leaf-sums top-down (Eq. 5 unrolled):
  //   leafsum(root) = c0;  leafsum(N) = c(N) + leafsum(parent)/fanout(parent)
  std::vector<double> leafsum(h.num_nodes(), 0.0);
  leafsum[data::Hierarchy::kRoot] = coeffs[data::Hierarchy::kRoot];
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t parent = h.node(id).parent;
    leafsum[id] = coeffs[id] +
                  leafsum[parent] / static_cast<double>(h.fanout(parent));
  }
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    out[leaf] = leafsum[h.leaf_node(leaf)];
  }
}

}  // namespace privelet::wavelet
