#include "privelet/wavelet/nominal.h"

#include <algorithm>
#include <vector>

#include "privelet/common/check.h"
#include "privelet/simd/kernels.h"

namespace privelet::wavelet {

NominalTransform::NominalTransform(
    std::shared_ptr<const data::Hierarchy> hierarchy)
    : hierarchy_(std::move(hierarchy)) {
  PRIVELET_CHECK(hierarchy_ != nullptr, "hierarchy must not be null");
  const data::Hierarchy& h = *hierarchy_;
  weights_.resize(h.num_nodes());
  weights_[data::Hierarchy::kRoot] = 1.0;  // base coefficient
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t f = h.fanout(h.node(id).parent);
    PRIVELET_CHECK(f >= 2, "internal hierarchy node with fanout < 2");
    const double fd = static_cast<double>(f);
    weights_[id] = fd / (2.0 * fd - 2.0);
  }
}

void NominalTransform::Forward(const double* in, double* out) const {
  std::vector<double> leafsum(hierarchy_->num_nodes());
  Forward(in, out, leafsum.data());
}

void NominalTransform::Forward(const double* in, double* out,
                               double* scratch) const {
  const data::Hierarchy& h = *hierarchy_;
  // Leaf-sums bottom-up in `scratch`. BFS layout guarantees parent <
  // child, so one reverse pass accumulates children into parents.
  double* leafsum = scratch;
  std::fill(leafsum, leafsum + h.num_nodes(), 0.0);
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    leafsum[h.leaf_node(leaf)] = in[leaf];
  }
  for (std::size_t id = h.num_nodes(); id-- > 1;) {
    leafsum[h.node(id).parent] += leafsum[id];
  }

  out[data::Hierarchy::kRoot] = leafsum[data::Hierarchy::kRoot];
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t parent = h.node(id).parent;
    out[id] = leafsum[id] -
              leafsum[parent] / static_cast<double>(h.fanout(parent));
  }
}

void NominalTransform::ForwardLines(std::size_t count, const double* in,
                                    double* out, double* scratch) const {
  ForwardLines(count, in, out, scratch, simd::ResolveIsa());
}

void NominalTransform::ForwardLines(std::size_t count, const double* in,
                                    double* out, double* scratch,
                                    simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  const data::Hierarchy& h = *hierarchy_;
  const std::size_t nodes = h.num_nodes();
  // scratch = num_nodes x count leaf-sum panel; per line b the node order
  // of every pass matches the single-line path exactly.
  double* leafsum = scratch;
  std::fill(leafsum, leafsum + nodes * count, 0.0);
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    std::copy(in + leaf * count, in + (leaf + 1) * count,
              leafsum + h.leaf_node(leaf) * count);
  }
  for (std::size_t id = nodes; id-- > 1;) {
    k.row_add(leafsum + h.node(id).parent * count, leafsum + id * count,
              count);
  }

  std::copy(leafsum + data::Hierarchy::kRoot * count,
            leafsum + (data::Hierarchy::kRoot + 1) * count,
            out + data::Hierarchy::kRoot * count);
  for (std::size_t id = 1; id < nodes; ++id) {
    const std::size_t parent = h.node(id).parent;
    const double fanout = static_cast<double>(h.fanout(parent));
    k.row_sub_div(out + id * count, leafsum + id * count,
                  leafsum + parent * count, fanout, count);
  }
}

void NominalTransform::Refine(double* coeffs) const {
  const data::Hierarchy& h = *hierarchy_;
  for (std::size_t id = 0; id < h.num_nodes(); ++id) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    double sum = 0.0;
    for (std::size_t child : children) sum += coeffs[child];
    const double mean = sum / static_cast<double>(children.size());
    for (std::size_t child : children) coeffs[child] -= mean;
  }
}

void NominalTransform::RefineLines(std::size_t count, double* coeffs,
                                   double* scratch) const {
  RefineLines(count, coeffs, scratch, simd::ResolveIsa());
}

void NominalTransform::RefineLines(std::size_t count, double* coeffs,
                                   double* scratch,
                                   simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  const data::Hierarchy& h = *hierarchy_;
  // One scratch row accumulates each sibling group's sum; children are
  // visited in the same order as the single-line Refine, so the per-line
  // sums (and hence the subtracted means) are bit-identical.
  double* sum = scratch;
  for (std::size_t id = 0; id < h.num_nodes(); ++id) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    std::fill(sum, sum + count, 0.0);
    for (std::size_t child : children) {
      k.row_add(sum, coeffs + child * count, count);
    }
    k.row_div(sum, static_cast<double>(children.size()), count);
    for (std::size_t child : children) {
      k.row_sub(coeffs + child * count, sum, count);
    }
  }
}

void NominalTransform::RangeContribution(std::size_t lo, std::size_t hi,
                                         double* out) const {
  const data::Hierarchy& h = *hierarchy_;
  PRIVELET_CHECK(lo <= hi && hi < h.num_leaves(), "bad range");
  for (std::size_t id = 0; id < h.num_nodes(); ++id) out[id] = 0.0;
  for (std::size_t leaf = lo; leaf <= hi; ++leaf) {
    out[h.leaf_node(leaf)] = 1.0;
  }
  // Bottom-up: parents precede children in the BFS layout.
  for (std::size_t id = h.num_nodes(); id-- > 0;) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    double sum = 0.0;
    for (std::size_t child : children) sum += out[child];
    out[id] = sum / static_cast<double>(children.size());
  }
}

double NominalTransform::RefinedQuadraticForm(const double* a) const {
  const data::Hierarchy& h = *hierarchy_;
  // Base coefficient: untouched by refinement, weight 1.
  double total = a[data::Hierarchy::kRoot] * a[data::Hierarchy::kRoot];
  for (std::size_t id = 0; id < h.num_nodes(); ++id) {
    const auto& children = h.node(id).children;
    if (children.empty()) continue;
    // All coefficients in the sibling group share the weight f/(2f-2).
    const double w = weights_[children.front()];
    const double v = 1.0 / (w * w);
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t child : children) {
      sum += a[child];
      sum_sq += a[child] * a[child];
    }
    const double g = static_cast<double>(children.size());
    total += v * (sum_sq - sum * sum / g);
  }
  return total;
}

void NominalTransform::Inverse(const double* coeffs, double* out) const {
  std::vector<double> leafsum(hierarchy_->num_nodes());
  Inverse(coeffs, out, leafsum.data());
}

void NominalTransform::Inverse(const double* coeffs, double* out,
                               double* scratch) const {
  const data::Hierarchy& h = *hierarchy_;
  // Reconstruct leaf-sums top-down (Eq. 5 unrolled):
  //   leafsum(root) = c0;  leafsum(N) = c(N) + leafsum(parent)/fanout(parent)
  double* leafsum = scratch;
  leafsum[data::Hierarchy::kRoot] = coeffs[data::Hierarchy::kRoot];
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t parent = h.node(id).parent;
    leafsum[id] = coeffs[id] +
                  leafsum[parent] / static_cast<double>(h.fanout(parent));
  }
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    out[leaf] = leafsum[h.leaf_node(leaf)];
  }
}

void NominalTransform::InverseLines(std::size_t count, const double* coeffs,
                                    double* out, double* scratch) const {
  InverseLines(count, coeffs, out, scratch, simd::ResolveIsa());
}

void NominalTransform::InverseLines(std::size_t count, const double* coeffs,
                                    double* out, double* scratch,
                                    simd::IsaLevel isa) const {
  const simd::KernelTable& k = simd::Kernels(isa);
  const data::Hierarchy& h = *hierarchy_;
  double* leafsum = scratch;
  std::copy(coeffs + data::Hierarchy::kRoot * count,
            coeffs + (data::Hierarchy::kRoot + 1) * count,
            leafsum + data::Hierarchy::kRoot * count);
  for (std::size_t id = 1; id < h.num_nodes(); ++id) {
    const std::size_t parent = h.node(id).parent;
    k.row_add_div(leafsum + id * count, coeffs + id * count,
                  leafsum + parent * count,
                  static_cast<double>(h.fanout(parent)), count);
  }
  for (std::size_t leaf = 0; leaf < h.num_leaves(); ++leaf) {
    std::copy(leafsum + h.leaf_node(leaf) * count,
              leafsum + (h.leaf_node(leaf) + 1) * count, out + leaf * count);
  }
}

}  // namespace privelet::wavelet
