#include "privelet/wavelet/transform.h"

#include <algorithm>

#include "privelet/common/check.h"

namespace privelet::wavelet {

namespace {

// The default *Lines implementations de-interleave one line at a time into
// line-major scratch, run the single-line entry point, and re-interleave.
// Correct for any Transform1D; transforms on the hot path override with
// kernels that work on the interleaved panel directly.
void GatherLine(const double* panel, std::size_t count, std::size_t b,
                std::size_t len, double* line) {
  for (std::size_t k = 0; k < len; ++k) line[k] = panel[k * count + b];
}

void ScatterLine(const double* line, std::size_t len, double* panel,
                 std::size_t count, std::size_t b) {
  for (std::size_t k = 0; k < len; ++k) panel[k * count + b] = line[k];
}

}  // namespace

std::size_t Transform1D::lines_scratch_size(std::size_t count) const {
  (void)count;
  // Two de-interleave line buffers plus the single-line scratch.
  return 2 * std::max(input_size(), coefficient_count()) + scratch_size();
}

void Transform1D::ForwardLines(std::size_t count, const double* in,
                               double* out, double* scratch) const {
  const std::size_t line = std::max(input_size(), coefficient_count());
  double* in_line = scratch;
  double* out_line = scratch + line;
  double* own_scratch = scratch_size() > 0 ? scratch + 2 * line : nullptr;
  for (std::size_t b = 0; b < count; ++b) {
    GatherLine(in, count, b, input_size(), in_line);
    Forward(in_line, out_line, own_scratch);
    ScatterLine(out_line, coefficient_count(), out, count, b);
  }
}

void Transform1D::RefineLines(std::size_t count, double* coeffs,
                              double* scratch) const {
  if (!has_refinement()) return;
  double* line = scratch;
  for (std::size_t b = 0; b < count; ++b) {
    GatherLine(coeffs, count, b, coefficient_count(), line);
    Refine(line);
    ScatterLine(line, coefficient_count(), coeffs, count, b);
  }
}

void Transform1D::InverseLines(std::size_t count, const double* coeffs,
                               double* out, double* scratch) const {
  const std::size_t line = std::max(input_size(), coefficient_count());
  double* in_line = scratch;
  double* out_line = scratch + line;
  double* own_scratch = scratch_size() > 0 ? scratch + 2 * line : nullptr;
  for (std::size_t b = 0; b < count; ++b) {
    GatherLine(coeffs, count, b, coefficient_count(), in_line);
    Inverse(in_line, out_line, own_scratch);
    ScatterLine(out_line, input_size(), out, count, b);
  }
}


void Transform1D::ForwardLinesStrided(std::size_t count, const double* in,
                                      double* out, std::size_t stride,
                                      double* scratch,
                                      simd::IsaLevel isa) const {
  (void)count; (void)in; (void)out; (void)stride; (void)scratch; (void)isa;
  PRIVELET_CHECK(false, "transform does not support strided panels");
}

void Transform1D::InverseLinesStrided(std::size_t count, const double* coeffs,
                                      double* out, std::size_t stride,
                                      double* scratch,
                                      simd::IsaLevel isa) const {
  (void)count; (void)coeffs; (void)out; (void)stride; (void)scratch;
  (void)isa;
  PRIVELET_CHECK(false, "transform does not support strided panels");
}

}  // namespace privelet::wavelet
