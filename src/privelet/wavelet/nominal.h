// The paper's novel nominal wavelet transform (Sec. V). The decomposition
// tree R is the attribute's hierarchy H with one data leaf attached under
// each hierarchy leaf; one coefficient is emitted per node of H, indexed by
// the hierarchy's BFS node id (= level order, base coefficient first).
//
//   coefficient(root) = sum of all entries               (base coefficient)
//   coefficient(N)    = leafsum(N) - leafsum(parent(N)) / fanout(parent(N))
//
// The transform is over-complete: coefficient_count() = H.num_nodes() >
// num_leaves. Refine() is the mean-subtraction procedure over sibling
// groups (Sec. V-B), applied to noisy coefficients before reconstruction.
// The weight function WNom maps the base coefficient to 1 and every other
// coefficient to f/(2f-2), where f is the fanout of its parent.
#ifndef PRIVELET_WAVELET_NOMINAL_H_
#define PRIVELET_WAVELET_NOMINAL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "privelet/data/hierarchy.h"
#include "privelet/wavelet/transform.h"

namespace privelet::wavelet {

class NominalTransform final : public Transform1D {
 public:
  /// The hierarchy must satisfy Hierarchy's invariants (uniform leaf depth,
  /// internal fanout >= 2) — those are established by its builders.
  explicit NominalTransform(std::shared_ptr<const data::Hierarchy> hierarchy);

  std::string_view name() const override { return "nominal"; }
  std::size_t input_size() const override { return hierarchy_->num_leaves(); }
  std::size_t coefficient_count() const override {
    return hierarchy_->num_nodes();
  }

  void Forward(const double* in, double* out) const override;

  /// Mean subtraction: within every sibling group (maximal set of
  /// coefficients sharing a parent in the decomposition tree) subtract the
  /// group mean, so each noisy group sums to zero.
  void Refine(double* coeffs) const override;
  bool has_refinement() const override { return true; }

  void Inverse(const double* coeffs, double* out) const override;

  /// Allocation-free overloads: scratch holds the per-node leaf sums.
  std::size_t scratch_size() const override { return hierarchy_->num_nodes(); }
  void Forward(const double* in, double* out, double* scratch) const override;
  void Inverse(const double* coeffs, double* out,
               double* scratch) const override;

  /// Blocked panel kernels: the bottom-up/top-down leaf-sum recurrences
  /// run node-by-node with unit-stride inner loops over the interleaved
  /// lines; scratch holds a num_nodes x count leaf-sum panel. These
  /// forward to the ISA-aware overloads at the ambient dispatch level
  /// (simd::ResolveIsa()).
  std::size_t lines_scratch_size(std::size_t count) const override {
    return hierarchy_->num_nodes() * count;
  }
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch) const override;
  void RefineLines(std::size_t count, double* coeffs,
                   double* scratch) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch) const override;

  /// Dispatched panel kernels: the per-node row combines (accumulate,
  /// subtract-scaled-parent, group mean) run through the selected
  /// simd::KernelTable's element-wise row kernels — node order is
  /// untouched, so every level is bit-identical to the scalar fold.
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch, simd::IsaLevel isa) const override;
  void RefineLines(std::size_t count, double* coeffs, double* scratch,
                   simd::IsaLevel isa) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch, simd::IsaLevel isa) const override;

  /// Reconstruction coefficients of a range sum via the Eq. 5 expansion:
  /// a[N] = sum over leaves v in [lo, hi] under N of
  /// prod_{ancestors B from N down to v's parent} 1/fanout(B), computed
  /// with a bottom-up DP: a[leaf node] = [leaf in range],
  /// a[N] = (1/fanout(N)) * sum over children.
  void RangeContribution(std::size_t lo, std::size_t hi,
                         double* out) const override;

  /// Accounts for the mean-subtraction refinement: within each sibling
  /// group the noise covariance is v*(I - J/g) (equal weights within a
  /// group), so the group's quadratic-form contribution is
  /// v * (sum a_j^2 - (sum a_j)^2 / g).
  double RefinedQuadraticForm(const double* a) const override;

  const std::vector<double>& weights() const override { return weights_; }

  /// P(A) = h, the hierarchy height (Lemma 4).
  double p_factor() const override {
    return static_cast<double>(hierarchy_->height());
  }

  /// H(A) = 4 (Lemma 5).
  double h_factor() const override { return 4.0; }

  const data::Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  std::shared_ptr<const data::Hierarchy> hierarchy_;
  std::vector<double> weights_;
};

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_NOMINAL_H_
