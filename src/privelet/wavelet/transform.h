// Transform1D: the interface every one-dimensional wavelet transform in the
// Privelet framework implements. A transform instance is bound to a fixed
// input size (and, for the nominal transform, a hierarchy); the
// multi-dimensional HN transform composes one instance per matrix axis
// (paper Sec. VI-A).
//
// Besides Forward/Inverse, a transform exposes:
//  * weights()  — the paper's weight function W over its coefficients; the
//    mechanism adds Laplace noise of magnitude lambda / W(c) to coefficient
//    c (Sec. III-B);
//  * Refine()   — the optional coefficient refinement applied to *noisy*
//    coefficients before reconstruction (the nominal transform's mean
//    subtraction, Sec. V-B); a no-op elsewhere;
//  * p_factor() — the transform's generalized sensitivity with respect to
//    its weight function (the paper's P(A), Sec. VI-C);
//  * h_factor() — the transform's per-axis noise-variance factor (the
//    paper's H(A), Sec. VI-C).
#ifndef PRIVELET_WAVELET_TRANSFORM_H_
#define PRIVELET_WAVELET_TRANSFORM_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "privelet/simd/dispatch.h"

namespace privelet::wavelet {

class Transform1D {
 public:
  virtual ~Transform1D() = default;

  virtual std::string_view name() const = 0;

  /// Length of the data vectors this instance transforms.
  virtual std::size_t input_size() const = 0;

  /// Number of coefficients produced. May exceed input_size() (the nominal
  /// transform is over-complete) or round it up (Haar pads to a power of
  /// two).
  virtual std::size_t coefficient_count() const = 0;

  /// Computes coefficients from data. `in` has input_size() elements,
  /// `out` coefficient_count() elements, in level order with the base
  /// coefficient first.
  virtual void Forward(const double* in, double* out) const = 0;

  /// Elements of caller-provided scratch the concurrent-safe overloads
  /// below need. 0 (the default) means the plain Forward/Inverse are
  /// already safe to call concurrently on a shared instance.
  virtual std::size_t scratch_size() const { return 0; }

  /// Concurrency-safe overloads: callers running line transforms in
  /// parallel on a shared instance pass their own scratch of
  /// scratch_size() elements (may be nullptr when that is 0). The default
  /// forwards to the plain overloads, which is correct for transforms
  /// without reusable internal workspace.
  virtual void Forward(const double* in, double* out, double* scratch) const {
    (void)scratch;
    Forward(in, out);
  }
  virtual void Inverse(const double* coeffs, double* out,
                       double* scratch) const {
    (void)scratch;
    Inverse(coeffs, out);
  }

  /// Refinement applied to noisy coefficients before Inverse. Must not use
  /// any information beyond the coefficients themselves (privacy relies on
  /// this, Sec. III-A). Default: no-op. Transforms overriding this must
  /// also override has_refinement() (and, for full batched-engine speed,
  /// RefineLines).
  virtual void Refine(double* coeffs) const { (void)coeffs; }

  /// Whether Refine is a non-trivial operation. The tiled engine skips the
  /// whole refinement pass (including its gather/scatter) when false.
  virtual bool has_refinement() const { return false; }

  /// Reconstructs data from (possibly refined) coefficients. Exact inverse
  /// of Forward for noise-free coefficients.
  virtual void Inverse(const double* coeffs, double* out) const = 0;

  /// ---- Batched (panel) entry points ---------------------------------
  /// The tiled engine transforms `count` lines at once from an interleaved
  /// panel: element k of line b lives at data[k * count + b] (the layout
  /// matrix::TileBuffer gathers). Each line undergoes exactly the same
  /// floating-point operations as the single-line entry points, so batched
  /// and per-line results are bit-identical. The defaults loop over the
  /// panel through the single-line calls; HaarTransform, IdentityTransform,
  /// and NominalTransform provide hand-blocked overrides whose inner loops
  /// run unit-stride over b.

  /// Elements of caller-provided scratch the *Lines entry points need for
  /// `count` lines.
  virtual std::size_t lines_scratch_size(std::size_t count) const;

  /// Forward over `count` interleaved lines: `in` holds input_size() rows,
  /// `out` coefficient_count() rows.
  virtual void ForwardLines(std::size_t count, const double* in, double* out,
                            double* scratch) const;

  /// Refine over `count` interleaved coefficient lines, in place.
  virtual void RefineLines(std::size_t count, double* coeffs,
                           double* scratch) const;

  /// Inverse over `count` interleaved lines: `coeffs` holds
  /// coefficient_count() rows, `out` input_size() rows.
  virtual void InverseLines(std::size_t count, const double* coeffs,
                            double* out, double* scratch) const;

  /// ---- ISA-aware entry points ---------------------------------------
  /// The variants the line engines call: `isa` is the already-resolved
  /// kernel level (simd::ResolveIsa, done once per axis pass) selecting
  /// the dispatched kernel table the hot loops run on. Every level is
  /// bit-identical to the scalar fold — see simd/kernels.h — so these are
  /// performance overloads, not semantic ones. The defaults ignore `isa`
  /// and forward to the plain overloads (correct for transforms without
  /// vector kernels, e.g. the memcpy-based identity transform);
  /// HaarTransform and NominalTransform override them with dispatched
  /// implementations and route their plain overloads here, so direct
  /// callers of the plain entry points get the same dispatched kernels.
  virtual void Forward(const double* in, double* out, double* scratch,
                       simd::IsaLevel isa) const {
    (void)isa;
    Forward(in, out, scratch);
  }
  virtual void Inverse(const double* coeffs, double* out, double* scratch,
                       simd::IsaLevel isa) const {
    (void)isa;
    Inverse(coeffs, out, scratch);
  }
  virtual void ForwardLines(std::size_t count, const double* in, double* out,
                            double* scratch, simd::IsaLevel isa) const {
    (void)isa;
    ForwardLines(count, in, out, scratch);
  }
  virtual void RefineLines(std::size_t count, double* coeffs, double* scratch,
                           simd::IsaLevel isa) const {
    (void)isa;
    RefineLines(count, coeffs, scratch);
  }
  virtual void InverseLines(std::size_t count, const double* coeffs,
                            double* out, double* scratch,
                            simd::IsaLevel isa) const {
    (void)isa;
    InverseLines(count, coeffs, out, scratch);
  }

  /// ---- Strided (in-matrix) panel entry points -----------------------
  /// For a panel of `count` lines whose base addresses are consecutive
  /// (one run of matrix::ForEachLineRun), element k of line b lives at
  /// data[b + k * stride] — the matrix's own storage is already an
  /// interleaved panel with row pitch `stride`. Transforms that support
  /// this run their batched kernels directly on the matrices, eliminating
  /// the gather and scatter copies of the TileBuffer path. Same
  /// per-element operations in the same order as the interleaved-panel
  /// kernels, so the results are bit-identical; `scratch` takes
  /// lines_scratch_size(count) elements as usual. Callers must check
  /// SupportsStridedLines() first — the defaults abort.
  virtual bool SupportsStridedLines() const { return false; }
  virtual void ForwardLinesStrided(std::size_t count, const double* in,
                                   double* out, std::size_t stride,
                                   double* scratch, simd::IsaLevel isa) const;
  virtual void InverseLinesStrided(std::size_t count, const double* coeffs,
                                   double* out, std::size_t stride,
                                   double* scratch, simd::IsaLevel isa) const;

  /// The weight W(c) of each coefficient (all weights are > 0).
  virtual const std::vector<double>& weights() const = 0;

  /// Generalized sensitivity of this transform w.r.t. weights(): changing
  /// one input entry by delta changes the weighted coefficient L1 norm by
  /// at most p_factor() * delta. (Lemma 2 / Lemma 4.)
  virtual double p_factor() const = 0;

  /// Variance factor: if each coefficient c carries independent noise of
  /// variance at most (sigma/W(c))^2, any range sum reconstructed from the
  /// coefficients has noise variance at most h_factor() * sigma^2.
  /// (Lemma 3 / Lemma 5.)
  virtual double h_factor() const = 0;

  /// Reconstruction coefficients of a range sum: fills `out`
  /// (coefficient_count() entries) with the unique a such that
  /// sum_{v in [lo, hi]} data[v] = sum_j a[j] * coeffs[j] for the exact
  /// coefficients of any data vector. Requires lo <= hi < input_size().
  /// Used by the exact query-variance calculator.
  virtual void RangeContribution(std::size_t lo, std::size_t hi,
                                 double* out) const = 0;

  /// The per-axis variance factor of the weighted sum a^T coeffs when each
  /// coefficient j carries independent noise of variance 1/W(j)^2 and the
  /// transform's Refine() step is applied before reconstruction: returns
  /// a^T P D P^T a with D = diag(1/W(j)^2) and P the linear map Refine
  /// performs (identity for transforms without refinement). The total
  /// noise variance of the range sum under Laplace magnitude lambda/W is
  /// 2*lambda^2 times the product of this quantity across axes.
  virtual double RefinedQuadraticForm(const double* a) const;
};

inline double Transform1D::RefinedQuadraticForm(const double* a) const {
  const std::vector<double>& w = weights();
  double total = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    const double scaled = a[j] / w[j];
    total += scaled * scaled;
  }
  return total;
}

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_TRANSFORM_H_
