// One-dimensional Haar wavelet transform (paper Sec. IV). The input is
// padded with zeros to the next power of two 2^l; coefficients are laid out
// in level order: index 0 is the base coefficient (the mean), index 1 the
// root of the decomposition tree, and indices [2^(i-1), 2^i) the level-i
// coefficients. Each coefficient is (avg of left subtree - avg of right
// subtree) / 2 and the weight function is WHaar (base -> 2^l, level i ->
// 2^(l-i+1)).
#ifndef PRIVELET_WAVELET_HAAR_H_
#define PRIVELET_WAVELET_HAAR_H_

#include <cstddef>
#include <vector>

#include "privelet/wavelet/transform.h"

namespace privelet::wavelet {

class HaarTransform final : public Transform1D {
 public:
  /// Transform for data vectors of length `n` (>= 1; padded internally).
  explicit HaarTransform(std::size_t n);

  std::string_view name() const override { return "haar"; }
  std::size_t input_size() const override { return n_; }
  std::size_t coefficient_count() const override { return padded_; }

  /// Allocation-free: both overloads reuse a workspace sized at
  /// construction, so per-query transforms never touch the heap. Because
  /// the workspace is a member, concurrent Forward/Inverse calls on the
  /// *same* instance race; use one instance per thread (or the explicit
  /// scratch overloads below) for parallel transforms.
  void Forward(const double* in, double* out) const override;
  void Inverse(const double* coeffs, double* out) const override;

  /// Core implementations with caller-provided scratch of padded_size()
  /// elements. These never allocate and are safe to call concurrently on a
  /// shared instance as long as each caller passes its own scratch.
  std::size_t scratch_size() const override { return padded_; }
  void Forward(const double* in, double* out,
               double* scratch) const override;
  void Inverse(const double* coeffs, double* out,
               double* scratch) const override;

  /// Blocked panel kernels (see Transform1D): the butterfly of each level
  /// runs across all `count` interleaved lines with unit-stride inner
  /// loops, performing per line exactly the ops of the single-line path.
  std::size_t lines_scratch_size(std::size_t count) const override {
    return padded_ * count;
  }
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch) const override;

  /// a[0] = |S|; a[j] = (leaves of j's left subtree in S) - (leaves of
  /// j's right subtree in S), per the proof of Lemma 3.
  void RangeContribution(std::size_t lo, std::size_t hi,
                         double* out) const override;

  const std::vector<double>& weights() const override { return weights_; }

  /// P(A) = 1 + log2(2^l) (Lemma 2).
  double p_factor() const override {
    return 1.0 + static_cast<double>(levels_);
  }

  /// H(A) = (2 + log2(2^l)) / 2 (Lemma 3).
  double h_factor() const override {
    return (2.0 + static_cast<double>(levels_)) / 2.0;
  }

  /// Padded length 2^l.
  std::size_t padded_size() const { return padded_; }
  /// l = log2(padded_size); the decomposition tree has l levels of
  /// non-base coefficients.
  std::size_t levels() const { return levels_; }

  /// 1-based level of non-base coefficient index j (j in [1, 2^l)). The
  /// root is level 1.
  static std::size_t LevelOf(std::size_t j);

 private:
  std::size_t n_;
  std::size_t padded_;
  std::size_t levels_;
  std::vector<double> weights_;
  // Reusable workspace for the scratch-less Forward/Inverse overloads;
  // mutable because transforming does not observably change the instance.
  mutable std::vector<double> scratch_;
};

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_HAAR_H_
