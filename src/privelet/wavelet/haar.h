// One-dimensional Haar wavelet transform (paper Sec. IV). The input is
// padded with zeros to the next power of two 2^l; coefficients are laid out
// in level order: index 0 is the base coefficient (the mean), index 1 the
// root of the decomposition tree, and indices [2^(i-1), 2^i) the level-i
// coefficients. Each coefficient is (avg of left subtree - avg of right
// subtree) / 2 and the weight function is WHaar (base -> 2^l, level i ->
// 2^(l-i+1)).
#ifndef PRIVELET_WAVELET_HAAR_H_
#define PRIVELET_WAVELET_HAAR_H_

#include <cstddef>
#include <vector>

#include "privelet/wavelet/transform.h"

namespace privelet::wavelet {

class HaarTransform final : public Transform1D {
 public:
  /// Transform for data vectors of length `n` (>= 1; padded internally).
  explicit HaarTransform(std::size_t n);

  std::string_view name() const override { return "haar"; }
  std::size_t input_size() const override { return n_; }
  std::size_t coefficient_count() const override { return padded_; }

  /// Allocation-free: both overloads reuse a workspace sized at
  /// construction, so per-query transforms never touch the heap. Because
  /// the workspace is a member, concurrent Forward/Inverse calls on the
  /// *same* instance race; use one instance per thread (or the explicit
  /// scratch overloads below) for parallel transforms.
  void Forward(const double* in, double* out) const override;
  void Inverse(const double* coeffs, double* out) const override;

  /// Core implementations with caller-provided scratch of padded_size()
  /// elements. These never allocate and are safe to call concurrently on a
  /// shared instance as long as each caller passes its own scratch. They
  /// forward to the ISA-aware overloads below at the ambient dispatch
  /// level (simd::ResolveIsa()) — bit-identical at every level.
  std::size_t scratch_size() const override { return padded_; }
  void Forward(const double* in, double* out,
               double* scratch) const override;
  void Inverse(const double* coeffs, double* out,
               double* scratch) const override;

  /// Blocked panel kernels (see Transform1D): the butterfly of each level
  /// runs across all `count` interleaved lines with unit-stride inner
  /// loops, performing per line exactly the ops of the single-line path.
  /// Like the single-line entry points, these forward to the ISA-aware
  /// overloads at the ambient level.
  std::size_t lines_scratch_size(std::size_t count) const override {
    // Sized for the strided path's padded row pitch (see kStridedRowPad);
    // the interleaved-panel path uses a dense `count` pitch and needs
    // strictly less.
    return padded_ * (count + kStridedRowPad);
  }
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch) const override;

  /// Dispatched implementations: every butterfly level runs through the
  /// selected simd::KernelTable. The scalar level reproduces the hand
  /// blocked loops above verbatim; vector levels additionally fuse the
  /// first forward level (read `in` directly) and last inverse level
  /// (write `out` directly) of the panel kernels when n == padded_size()
  /// — the copies those levels replace move values untouched, so fusion
  /// never changes a bit.
  void Forward(const double* in, double* out, double* scratch,
               simd::IsaLevel isa) const override;
  void Inverse(const double* coeffs, double* out, double* scratch,
               simd::IsaLevel isa) const override;
  void ForwardLines(std::size_t count, const double* in, double* out,
                    double* scratch, simd::IsaLevel isa) const override;
  void InverseLines(std::size_t count, const double* coeffs, double* out,
                    double* scratch, simd::IsaLevel isa) const override;

  /// Strided panels (see Transform1D): matrix rows spaced `stride` apart
  /// are the panel rows, so the gather/scatter copies of the TileBuffer
  /// path disappear — the first forward level reads the source matrix and
  /// every detail level writes the destination matrix directly, with only
  /// the running averages staged in scratch. Available when no padding is
  /// needed (n == padded_size(); padded rows would have no matrix storage
  /// to read). Per line the butterflies are the same ops in the same
  /// order as the interleaved-panel path: bit-identical.
  bool SupportsStridedLines() const override { return n_ == padded_; }
  void ForwardLinesStrided(std::size_t count, const double* in, double* out,
                           std::size_t stride, double* scratch,
                           simd::IsaLevel isa) const override;
  void InverseLinesStrided(std::size_t count, const double* coeffs,
                           double* out, std::size_t stride, double* scratch,
                           simd::IsaLevel isa) const override;

  /// a[0] = |S|; a[j] = (leaves of j's left subtree in S) - (leaves of
  /// j's right subtree in S), per the proof of Lemma 3.
  void RangeContribution(std::size_t lo, std::size_t hi,
                         double* out) const override;

  const std::vector<double>& weights() const override { return weights_; }

  /// P(A) = 1 + log2(2^l) (Lemma 2).
  double p_factor() const override {
    return 1.0 + static_cast<double>(levels_);
  }

  /// H(A) = (2 + log2(2^l)) / 2 (Lemma 3).
  double h_factor() const override {
    return (2.0 + static_cast<double>(levels_)) / 2.0;
  }

  /// Padded length 2^l.
  std::size_t padded_size() const { return padded_; }
  /// l = log2(padded_size); the decomposition tree has l levels of
  /// non-base coefficients.
  std::size_t levels() const { return levels_; }

  /// 1-based level of non-base coefficient index j (j in [1, 2^l)). The
  /// root is level 1.
  static std::size_t LevelOf(std::size_t j);

 private:
  // Extra doubles of slack between ladder rows of the strided-panel
  // scratch: keeps rows 64-byte aligned while moving consecutive rows off
  // a common page offset (dense page-multiple pitches serialize on
  // store-to-load 4K aliasing). One 512-bit vector is enough.
  static constexpr std::size_t kStridedRowPad = 8;

  std::size_t n_;
  std::size_t padded_;
  std::size_t levels_;
  std::vector<double> weights_;
  // Reusable workspace for the scratch-less Forward/Inverse overloads;
  // mutable because transforming does not observably change the instance.
  mutable std::vector<double> scratch_;
};

}  // namespace privelet::wavelet

#endif  // PRIVELET_WAVELET_HAAR_H_
