#include "privelet/common/status.h"

namespace privelet {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace privelet
