#include "privelet/common/file_mapping.h"

#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "privelet/common/check.h"
#include "privelet/common/io_util.h"

#if !defined(_WIN32)
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace privelet::common {

namespace {

#if !defined(_WIN32)
std::string ResolveScratchDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
  return "/tmp";
}
#endif

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if defined(_WIN32)
  return Status::IOError("memory mapping is not supported on this platform");
#else
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "': " + ErrnoMessage());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string msg = ErrnoMessage();
    CloseFd(fd);
    return Status::IOError("cannot stat '" + path + "': " + msg);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    CloseFd(fd);
    return MappedFile();
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // not needed past this point either way.
  CloseFd(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot map '" + path + "': " + ErrnoMessage());
  }
  // Best-effort readahead hint: snapshot opens stream the whole file once
  // for the CRC check immediately after mapping.
#if defined(POSIX_MADV_WILLNEED)
  (void)::posix_madvise(addr, size, POSIX_MADV_WILLNEED);
#endif
  return MappedFile(addr, size, /*writable=*/false, /*release_safe=*/false);
#endif
}

Result<MappedFile> MappedFile::CreateScratch(std::size_t size,
                                             const std::string& dir) {
#if defined(_WIN32)
  return Status::IOError("scratch mapping is not supported on this platform");
#else
  const std::string resolved = ResolveScratchDir(dir);
  std::vector<char> name(resolved.begin(), resolved.end());
  const char suffix[] = "/privelet_scratch.XXXXXX";
  name.insert(name.end(), suffix, suffix + sizeof(suffix));
  const int fd = ::mkstemp(name.data());
  if (fd < 0) {
    return Status::IOError("cannot create scratch file under '" + resolved +
                           "': " + ErrnoMessage());
  }
  // Unlink immediately: the mapping keeps the inode alive, and the space
  // is reclaimed no matter how the process exits.
  ::unlink(name.data());
  if (size == 0) {
    CloseFd(fd);
    MappedFile empty;
    empty.writable_ = true;
    return empty;
  }
  int rc;
  do {
    rc = ::ftruncate(fd, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string msg = ErrnoMessage();
    CloseFd(fd);
    return Status::IOError("cannot size scratch file to " +
                           std::to_string(size) + " bytes: " + msg);
  }
  void* addr =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  CloseFd(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot map scratch file (" + std::to_string(size) +
                           " bytes): " + ErrnoMessage());
  }
  // Suppress readahead on scratch mappings: strided passes touch one
  // element per page, and physical readahead would stream whole tracts of
  // the file into the page cache for single-element reads. (This does not
  // stop fault-around, which maps already-cached pages near a read fault;
  // PageTouchedBytes accounts for that when pacing release-behind.)
#if defined(POSIX_MADV_RANDOM)
  (void)::posix_madvise(addr, size, POSIX_MADV_RANDOM);
#endif
  return MappedFile(addr, size, /*writable=*/true, /*release_safe=*/true);
#endif
}

Result<MappedFile> MappedFile::CreateAnonymous(std::size_t size) {
#if defined(_WIN32)
  return Status::IOError(
      "anonymous mapping is not supported on this platform");
#else
  if (size == 0) {
    MappedFile empty;
    empty.writable_ = true;
    return empty;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot map " + std::to_string(size) +
                           " anonymous bytes: " + ErrnoMessage());
  }
  // Anonymous pages must never be MADV_DONTNEED'ed: the kernel would
  // replace them with zero pages, destroying the contents.
  return MappedFile(addr, size, /*writable=*/true, /*release_safe=*/false);
#endif
}

std::span<std::byte> MappedFile::mutable_bytes() const {
  PRIVELET_CHECK(writable_, "mutable_bytes() on a read-only mapping");
  return {static_cast<std::byte*>(addr_), size_};
}

void MappedFile::ReleaseResidency() const {
#if !defined(_WIN32)
  if (release_safe_ && addr_ != nullptr) {
    (void)::madvise(addr_, size_, MADV_DONTNEED);
  }
#endif
}

void MappedFile::Reset() {
#if !defined(_WIN32)
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
#endif
  addr_ = nullptr;
  size_ = 0;
  writable_ = false;
  release_safe_ = false;
}

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      writable_(std::exchange(other.writable_, false)),
      release_safe_(std::exchange(other.release_safe_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    writable_ = std::exchange(other.writable_, false);
    release_safe_ = std::exchange(other.release_safe_, false);
  }
  return *this;
}

}  // namespace privelet::common
