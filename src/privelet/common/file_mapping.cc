#include "privelet/common/file_mapping.h"

#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace privelet::common {

namespace {

#if !defined(_WIN32)
std::string ErrnoMessage() {
  char buf[128];
  // GNU strerror_r may return a static string instead of filling buf.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return strerror_r(errno, buf, sizeof(buf));
#else
  return strerror_r(errno, buf, sizeof(buf)) == 0 ? buf : "unknown error";
#endif
}
#endif

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if defined(_WIN32)
  return Status::IOError("memory mapping is not supported on this platform");
#else
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "': " + ErrnoMessage());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string msg = ErrnoMessage();
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "': " + msg);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile();
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot map '" + path + "': " + ErrnoMessage());
  }
  // Best-effort readahead hint: snapshot opens stream the whole file once
  // for the CRC check immediately after mapping.
#if defined(POSIX_MADV_WILLNEED)
  (void)::posix_madvise(addr, size, POSIX_MADV_WILLNEED);
#endif
  return MappedFile(addr, size);
#endif
}

void MappedFile::Reset() {
#if !defined(_WIN32)
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
#endif
  addr_ = nullptr;
  size_ = 0;
}

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace privelet::common
