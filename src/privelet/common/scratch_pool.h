// ScratchPool: a free-list of reusable per-worker workspaces for
// ParallelFor bodies. Chunk bodies used to allocate their line buffers and
// transform scratch as local std::vectors — one heap round-trip per chunk,
// multiplied by every axis pass. A pool amortizes that to one allocation
// per concurrent worker for the lifetime of the pool (buffers keep their
// capacity between leases), which matters on the memory-bound transform
// hot path.
//
// Workspaces are interchangeable scratch: which lease a chunk gets affects
// only capacity reuse, never results, so pooled computations stay
// deterministic for every pool size and scheduling.
#ifndef PRIVELET_COMMON_SCRATCH_POOL_H_
#define PRIVELET_COMMON_SCRATCH_POOL_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace privelet::common {

/// Pool of default-constructed `State` workspaces. Acquire() hands out a
/// RAII lease; destroying the lease returns the workspace (with whatever
/// capacity it grew) to the free list. Thread-safe; typically stack-local
/// to one parallel operation and shared by its chunk bodies.
template <typename State>
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<State> state)
        : pool_(pool), state_(std::move(state)) {}
    ~Lease() {
      if (state_ != nullptr) pool_->Release(std::move(state_));
    }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), state_(std::move(other.state_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    State& operator*() { return *state_; }
    State* operator->() { return state_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<State> state_;
  };

  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<State> state = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(state));
      }
    }
    return Lease(this, std::make_unique<State>());
  }

 private:
  void Release(std::unique_ptr<State> state) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(state));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<State>> free_;
};

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_SCRATCH_POOL_H_
