// Wall-clock stopwatch used by the scalability benchmarks (Figs. 10-11).
#ifndef PRIVELET_COMMON_STOPWATCH_H_
#define PRIVELET_COMMON_STOPWATCH_H_

#include <chrono>

namespace privelet {

/// Monotonic wall-clock timer. Starts on construction; ElapsedSeconds() may
/// be called repeatedly; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privelet

#endif  // PRIVELET_COMMON_STOPWATCH_H_
