// Small integer/float math helpers shared across modules.
#ifndef PRIVELET_COMMON_MATH_UTIL_H_
#define PRIVELET_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privelet {

/// True iff n is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1). CHECK-fails on overflow.
std::size_t NextPowerOfTwo(std::size_t n);

/// floor(log2(n)) for n >= 1.
std::size_t FloorLog2(std::size_t n);

/// ceil(log2(n)) for n >= 1. CeilLog2(1) == 0.
std::size_t CeilLog2(std::size_t n);

/// Product of a dimension vector, checking for overflow.
std::size_t CheckedProduct(const std::vector<std::size_t>& dims);

/// Sample mean of `values`.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double SampleVariance(const std::vector<double>& values);

}  // namespace privelet

#endif  // PRIVELET_COMMON_MATH_UTIL_H_
