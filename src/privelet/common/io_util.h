// EINTR- and short-I/O-safe wrappers over the raw POSIX file descriptor
// calls. The serving daemon (src/privelet/serving/) installs signal
// handlers, so any blocking syscall anywhere in the process can return
// EINTR mid-operation — and a partially applied read or write in the
// snapshot path would corrupt a release. Every raw fd operation in the
// library goes through these helpers so a delivered signal can interrupt
// *when* I/O happens but never *whether* it completes.
//
// All functions are no-ops returning IOError on _WIN32 (the library's
// fd-based paths are already gated off there).
#ifndef PRIVELET_COMMON_IO_UTIL_H_
#define PRIVELET_COMMON_IO_UTIL_H_

#include <cstddef>
#include <string>

#include "privelet/common/status.h"

namespace privelet::common {

/// strerror_r(errno) as a std::string (thread-safe, glibc- and
/// POSIX-variant tolerant).
std::string ErrnoMessage();

/// open(2) retried on EINTR. Returns the fd, or -1 with errno set.
int OpenRetry(const char* path, int flags);

/// close(2) ignoring EINTR (POSIX leaves the fd state unspecified after
/// EINTR; retrying close risks double-closing a recycled descriptor, so
/// the fd is always considered released). Returns 0 or -1 as close does.
int CloseFd(int fd);

/// Reads exactly `len` bytes, retrying EINTR and short reads. An EOF
/// before `len` bytes is an IOError naming `what`.
Status ReadFull(int fd, void* buf, std::size_t len, const char* what);

/// Writes exactly `len` bytes, retrying EINTR and short writes. EPIPE and
/// other hard errors surface as IOError naming `what`.
Status WriteFull(int fd, const void* buf, std::size_t len, const char* what);

/// fsync(2) retried on EINTR.
Status FsyncRetry(int fd, const std::string& path);

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_IO_UTIL_H_
