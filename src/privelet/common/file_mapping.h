// Memory mappings of whole files, in two roles:
//
//  * Read-only mapping of an existing file (Open). The zero-copy serving
//    path (storage::MappedSnapshot) is built on this: a multi-GB release
//    snapshot is mapped once and its payload sections are served straight
//    from the page cache, so opening a release costs no allocation
//    proportional to the file and many processes mapping the same snapshot
//    share one set of physical pages.
//
//  * Writable scratch backing for the out-of-core publish path
//    (CreateScratch / CreateAnonymous). A scratch mapping behaves like a
//    zero-initialized array that the kernel may spill to disk: the
//    streaming transform writes panels through it and periodically calls
//    ReleaseResidency() so peak RSS stays bounded by the panel budget even
//    when the cube is many times larger than RAM allows.
#ifndef PRIVELET_COMMON_FILE_MAPPING_H_
#define PRIVELET_COMMON_FILE_MAPPING_H_

#include <cstddef>
#include <span>
#include <string>

#include "privelet/common/result.h"

namespace privelet::common {

/// RAII mapping of one file (or of anonymous memory). Move-only; the
/// mapping (and the validity of every span derived from bytes() /
/// mutable_bytes()) ends when the owning object is destroyed. The mapped
/// base address is page-aligned, so a payload section placed at a
/// 64-byte-aligned file offset is 64-byte aligned in memory too.
class MappedFile {
 public:
  /// Maps `path` read-only in full. Fails with IOError when the file
  /// cannot be opened, stat'ed, or mapped (including on platforms without
  /// mmap support).
  static Result<MappedFile> Open(const std::string& path);

  /// Creates a writable zero-filled scratch mapping of `size` bytes backed
  /// by an unlinked temporary file under `dir` (empty -> $TMPDIR, falling
  /// back to /tmp). The file has no name the moment this returns, so the
  /// space is reclaimed automatically when the mapping is destroyed (or
  /// the process dies). Because the backing is a file mapped MAP_SHARED,
  /// ReleaseResidency() can evict resident pages without losing data:
  /// dirty pages live on in the page cache / on disk and fault back in on
  /// the next access.
  static Result<MappedFile> CreateScratch(std::size_t size,
                                          const std::string& dir = "");

  /// Creates a writable zero-filled anonymous mapping of `size` bytes.
  /// Unlike CreateScratch the pages have no file backing, so
  /// ReleaseResidency() is a no-op (discarding anonymous pages would
  /// zero-fill them). Useful where a plain allocation is wanted but the
  /// mapping interface must stay uniform.
  static Result<MappedFile> CreateAnonymous(std::size_t size);

  /// An empty mapping (bytes() is an empty span).
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file's bytes. Valid until this object (or the object it was
  /// moved into) is destroyed.
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(addr_), size_};
  }

  /// Writable view of a scratch/anonymous mapping. CHECK-fails on
  /// read-only mappings.
  std::span<std::byte> mutable_bytes() const;

  std::size_t size() const { return size_; }

  /// True for CreateScratch / CreateAnonymous mappings.
  bool writable() const { return writable_; }

  /// Drops the mapping's resident pages (MADV_DONTNEED) so they stop
  /// counting against the process RSS. Only file-backed scratch mappings
  /// honor this — their dirty pages survive in the page cache and fault
  /// back in on next access, so contents are unaffected. For read-only
  /// and anonymous mappings this is a no-op (discarding an anonymous
  /// page would destroy its contents). Safe to call concurrently with
  /// readers/writers of the same mapping: they take minor faults and see
  /// the stored data.
  void ReleaseResidency() const;

 private:
  MappedFile(void* addr, std::size_t size, bool writable, bool release_safe)
      : addr_(addr),
        size_(size),
        writable_(writable),
        release_safe_(release_safe) {}

  void Reset();

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool writable_ = false;
  bool release_safe_ = false;
};

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_FILE_MAPPING_H_
