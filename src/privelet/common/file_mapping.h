// Read-only memory mapping of whole files. The zero-copy serving path
// (storage::MappedSnapshot) is built on this: a multi-GB release snapshot
// is mapped once and its payload sections are served straight from the
// page cache, so opening a release costs no allocation proportional to
// the file and many processes mapping the same snapshot share one set of
// physical pages.
#ifndef PRIVELET_COMMON_FILE_MAPPING_H_
#define PRIVELET_COMMON_FILE_MAPPING_H_

#include <cstddef>
#include <span>
#include <string>

#include "privelet/common/result.h"

namespace privelet::common {

/// RAII read-only mapping of one file. Move-only; the mapping (and the
/// validity of every span derived from bytes()) ends when the owning
/// object is destroyed. The mapped base address is page-aligned, so a
/// payload section placed at a 64-byte-aligned file offset is 64-byte
/// aligned in memory too.
class MappedFile {
 public:
  /// Maps `path` read-only in full. Fails with IOError when the file
  /// cannot be opened, stat'ed, or mapped (including on platforms without
  /// mmap support).
  static Result<MappedFile> Open(const std::string& path);

  /// An empty mapping (bytes() is an empty span).
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file's bytes. Valid until this object (or the object it was
  /// moved into) is destroyed.
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(addr_), size_};
  }

  std::size_t size() const { return size_; }

 private:
  MappedFile(void* addr, std::size_t size) : addr_(addr), size_(size) {}

  void Reset();

  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_FILE_MAPPING_H_
