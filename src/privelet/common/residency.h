// Release-behind pacing for the out-of-core publish path. A pass over an
// mmap-backed scratch matrix touches every page once; without back
// pressure the kernel keeps all of them resident and peak RSS grows to
// the full cube size. A ResidencyGovernor counts bytes as workers process
// them and invokes a release callback (typically MappedFile's
// MADV_DONTNEED via ReleaseResidency) every time another quota's worth of
// bytes has gone by, so the resident set stays proportional to the
// configured memory budget rather than to the domain.
//
// Correctness note (see docs/DETERMINISM.md): releasing residency only
// changes *where* bytes live (RAM vs page cache vs disk), never their
// values, so pacing frequency cannot affect published results.
#ifndef PRIVELET_COMMON_RESIDENCY_H_
#define PRIVELET_COMMON_RESIDENCY_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <utility>

namespace privelet::common {

/// Residency estimate for one panel of `count` adjacent lines along an
/// axis of length `axis_dim` whose elements are `stride` elements (of
/// `elem_bytes` bytes) apart. Residency is paid in mapping granules, not
/// element bytes: a strided access faults the whole page under every
/// element, and on Linux a *read* fault on a file mapping additionally
/// maps the surrounding fault-around window (fault_around_bytes, 64 KiB
/// by default; POSIX_MADV_RANDOM suppresses readahead but not
/// fault-around). The bytes a pass *touches* can therefore exceed the
/// bytes it *processes* by up to fault_around / elem_bytes. Feeding this
/// to a ResidencyGovernor (rather than the processed-byte count) keeps
/// release-behind pacing honest on transpose passes; for contiguous lines
/// it reduces to the plain count-times-line-bytes charge.
inline std::size_t PageTouchedBytes(std::size_t axis_dim, std::size_t stride,
                                    std::size_t count,
                                    std::size_t elem_bytes) {
  constexpr std::size_t kPage = 4096;
  // Linux default fault-around window (/sys/kernel/debug/fault_around_bytes).
  constexpr std::size_t kFaultAround = std::size_t{64} << 10;
  // Contiguous bytes the panel's `count` adjacent lines cover at each of
  // the axis_dim element steps.
  const std::size_t band = count * elem_bytes;
  // Distance between consecutive steps. Steps closer together than the
  // fault-around window share mapped granules, so the cost per step is at
  // most the step distance; farther apart, each step maps its own window
  // (plus whatever the band spills past it).
  const std::size_t per_step =
      std::min(stride * elem_bytes,
               (band + kPage - 1) / kPage * kPage + kFaultAround);
  return axis_dim * std::max(band, per_step);
}

/// Thread-safe byte-counting trigger. A budget of 0 disables it (every
/// OnBytesProcessed is a cheap early-out), matching the in-core engine.
/// The release callback may fire concurrently from several workers; that
/// is safe for its intended payload (madvise on a shared file mapping).
class ResidencyGovernor {
 public:
  ResidencyGovernor(std::size_t budget_bytes, std::function<void()> release)
      : quota_(budget_bytes == 0
                   ? 0
                   : std::max<std::size_t>(budget_bytes / 4, kMinQuota)),
        release_(std::move(release)) {}

  ResidencyGovernor(const ResidencyGovernor&) = delete;
  ResidencyGovernor& operator=(const ResidencyGovernor&) = delete;

  /// Records `bytes` of progress; fires the release callback when the
  /// running total crosses a quota boundary.
  void OnBytesProcessed(std::size_t bytes) {
    if (quota_ == 0) return;
    const std::size_t before =
        counter_.fetch_add(bytes, std::memory_order_relaxed);
    if (before / quota_ != (before + bytes) / quota_) release_();
  }

 private:
  // Releasing more often than every 64 KiB would be all syscall overhead.
  static constexpr std::size_t kMinQuota = std::size_t{64} << 10;

  const std::size_t quota_;
  std::function<void()> release_;
  std::atomic<std::size_t> counter_{0};
};

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_RESIDENCY_H_
