// Result<T>: a value-or-Status holder, the library's StatusOr analogue.
#ifndef PRIVELET_COMMON_RESULT_H_
#define PRIVELET_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "privelet/common/check.h"
#include "privelet/common/status.h"

namespace privelet {

/// Holds either a T or a non-OK Status. Construction from a T yields an OK
/// result; construction from a Status requires the status to be non-OK.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    PRIVELET_DCHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the held value. Dies (DCHECK) if the result holds an error;
  /// callers must test ok() first on fallible paths.
  T& value() & {
    PRIVELET_DCHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  const T& value() const& {
    PRIVELET_DCHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    PRIVELET_DCHECK(ok(), "Result::value() on error: " + status_.ToString());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is engaged.
};

}  // namespace privelet

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (a declaration or assignable lvalue).
#define PRIVELET_ASSIGN_OR_RETURN(lhs, expr)                    \
  PRIVELET_ASSIGN_OR_RETURN_IMPL(                               \
      PRIVELET_CONCAT_(_privelet_result_, __LINE__), lhs, expr)

#define PRIVELET_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define PRIVELET_CONCAT_(a, b) PRIVELET_CONCAT_IMPL_(a, b)
#define PRIVELET_CONCAT_IMPL_(a, b) a##b

#endif  // PRIVELET_COMMON_RESULT_H_
