// Status: lightweight error-reporting type used across the Privelet public
// API. The library does not throw exceptions across API boundaries;
// recoverable failures (bad hierarchies, mismatched dimensions, I/O errors)
// are reported through Status / Result<T> instead.
#ifndef PRIVELET_COMMON_STATUS_H_
#define PRIVELET_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace privelet {

/// Error categories used by the library. Mirrors the usual database-engine
/// set (RocksDB/Arrow style); only the codes the library actually produces
/// are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kIOError = 5,
  kInternal = 6,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation. A default-constructed
/// Status is OK. Statuses are cheap to move and copy (one string).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace privelet

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T>.
#define PRIVELET_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::privelet::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

#endif  // PRIVELET_COMMON_STATUS_H_
