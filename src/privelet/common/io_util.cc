#include "privelet/common/io_util.h"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace privelet::common {

std::string ErrnoMessage() {
#if defined(_WIN32)
  return "unsupported platform";
#else
  char buf[128];
  // GNU strerror_r may return a static string instead of filling buf.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return strerror_r(errno, buf, sizeof(buf));
#else
  return strerror_r(errno, buf, sizeof(buf)) == 0 ? buf : "unknown error";
#endif
#endif
}

int OpenRetry(const char* path, int flags) {
#if defined(_WIN32)
  (void)path;
  (void)flags;
  errno = ENOSYS;
  return -1;
#else
  int fd;
  do {
    fd = ::open(path, flags);
  } while (fd < 0 && errno == EINTR);
  return fd;
#endif
}

int CloseFd(int fd) {
#if defined(_WIN32)
  (void)fd;
  return -1;
#else
  return ::close(fd);
#endif
}

Status ReadFull(int fd, void* buf, std::size_t len, const char* what) {
#if defined(_WIN32)
  (void)fd;
  (void)buf;
  (void)len;
  return Status::IOError(std::string(what) + ": unsupported platform");
#else
  char* dst = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, dst, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(what) + ": " + ErrnoMessage());
    }
    if (n == 0) {
      return Status::IOError(std::string(what) + ": unexpected end of file");
    }
    dst += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
#endif
}

Status WriteFull(int fd, const void* buf, std::size_t len, const char* what) {
#if defined(_WIN32)
  (void)fd;
  (void)buf;
  (void)len;
  return Status::IOError(std::string(what) + ": unsupported platform");
#else
  const char* src = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, src, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(what) + ": " + ErrnoMessage());
    }
    src += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
#endif
}

Status FsyncRetry(int fd, const std::string& path) {
#if defined(_WIN32)
  (void)fd;
  return Status::IOError("fsync of '" + path + "': unsupported platform");
#else
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IOError("fsync of '" + path + "' failed: " +
                           ErrnoMessage());
  }
  return Status::OK();
#endif
}

}  // namespace privelet::common
