#include "privelet/common/thread_pool.h"

#include <atomic>
#include <memory>

#include "privelet/common/check.h"

namespace privelet::common {

namespace {

// Shared state of one ParallelFor call. Tasks claim chunks from `next`;
// the caller waits until every claimed chunk has run to completion. Held
// by shared_ptr so tasks that dequeue after the loop already finished
// (possible when other chunks were claimed faster) can still read it and
// exit cleanly.
struct LoopState {
  std::size_t n = 0;
  std::size_t grain = 0;
  std::size_t num_chunks = 0;
  std::function<void(std::size_t, std::size_t)> body;

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable all_done;
  std::size_t done = 0;
};

// Claims and runs chunks until none remain. Returns after contributing to
// the completion count for every chunk it ran.
void RunChunks(LoopState& state) {
  std::size_t ran = 0;
  for (;;) {
    const std::size_t chunk = state.next.fetch_add(1);
    if (chunk >= state.num_chunks) break;
    const std::size_t begin = chunk * state.grain;
    const std::size_t end = std::min(begin + state.grain, state.n);
    state.body(begin, end);
    ++ran;
  }
  if (ran > 0) {
    std::lock_guard<std::mutex> lock(state.mu);
    state.done += ran;
    if (state.done == state.num_chunks) state.all_done.notify_all();
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  PRIVELET_CHECK(num_threads >= 1, "thread pool needs >= 1 worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) {
    // Auto chunking: enough chunks for dynamic balancing, few enough that
    // per-chunk setup (buffer allocation in transform bodies) amortizes.
    grain = std::max<std::size_t>(1, n / (num_threads() * 4));
  }
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    body(0, n);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = body;

  // One assist task per worker, capped by the chunk count (the caller
  // claims chunks too, so even a fully busy pool makes progress).
  const std::size_t assists = std::min(num_threads(), num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < assists; ++i) {
      queue_.emplace_back([state] { RunChunks(*state); });
    }
  }
  work_available_.notify_all();

  RunChunks(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock,
                       [&] { return state->done == state->num_chunks; });
}

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, body);
    return;
  }
  if (n == 0) return;
  if (grain == 0) {
    body(0, n);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    body(begin, std::min(begin + grain, n));
  }
}

}  // namespace privelet::common
