// AlignedBuffer: grow-only scratch storage on a 64-byte boundary (one
// cache line, and the widest vector register the simd kernel layer
// dispatches to). TileBuffer panels and per-worker transform scratch use
// this instead of std::vector so vector kernels see aligned panels and
// panel rows never split a cache line they don't have to.
//
// Unlike std::vector, growth does NOT preserve or zero contents — every
// user of pooled scratch fully writes a region before reading it, and
// skipping the zero-fill keeps Prepare() free on the hot path.
#ifndef PRIVELET_COMMON_ALIGNED_BUFFER_H_
#define PRIVELET_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>

namespace privelet::common {

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuffer skips construction and destruction");

 public:
  static constexpr std::size_t kAlignment = 64;

  /// Grows the buffer to hold at least `n` elements and returns its
  /// storage. Never shrinks (pooled buffers stop allocating once they
  /// have seen their largest request); contents are unspecified after a
  /// growing call.
  T* Grow(std::size_t n) {
    if (n > size_) {
      data_.reset(static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kAlignment})));
      size_ = n;
    }
    return data_.get();
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  /// High-water element count of Grow() calls so far.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Deleter {
    void operator()(T* p) const {
      ::operator delete(p, std::align_val_t{kAlignment});
    }
  };

  std::unique_ptr<T, Deleter> data_;
  std::size_t size_ = 0;
};

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_ALIGNED_BUFFER_H_
