#include "privelet/common/math_util.h"

#include <limits>

#include "privelet/common/check.h"

namespace privelet {

std::size_t NextPowerOfTwo(std::size_t n) {
  PRIVELET_CHECK(n >= 1);
  std::size_t p = 1;
  while (p < n) {
    PRIVELET_CHECK(p <= (std::numeric_limits<std::size_t>::max() >> 1),
                   "NextPowerOfTwo overflow");
    p <<= 1;
  }
  return p;
}

std::size_t FloorLog2(std::size_t n) {
  PRIVELET_CHECK(n >= 1);
  std::size_t l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

std::size_t CeilLog2(std::size_t n) {
  PRIVELET_CHECK(n >= 1);
  std::size_t l = FloorLog2(n);
  return IsPowerOfTwo(n) ? l : l + 1;
}

std::size_t CheckedProduct(const std::vector<std::size_t>& dims) {
  std::size_t product = 1;
  for (std::size_t d : dims) {
    PRIVELET_CHECK(d == 0 || product <= std::numeric_limits<std::size_t>::max() / d,
                   "dimension product overflow");
    product *= d;
  }
  return product;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) {
    const double d = v - mean;
    ss += d * d;
  }
  return ss / static_cast<double>(values.size() - 1);
}

}  // namespace privelet
