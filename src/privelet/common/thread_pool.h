// Work-sharded thread pool backing every parallel stage of the library
// (HN transform line fan-out, sharded noise injection, batched query
// serving). The design contract is determinism: ParallelFor executes a
// caller-chosen chunking of [0, n) and which thread runs which chunk is
// the ONLY scheduling freedom, so any computation whose chunks touch
// disjoint state produces bit-identical results for every pool size —
// including no pool at all (the serial fallback runs the same chunks in
// index order).
#ifndef PRIVELET_COMMON_THREAD_POOL_H_
#define PRIVELET_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace privelet::common {

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains queued work and joins them. All public methods are safe to call
/// from multiple threads concurrently (ParallelFor calls from different
/// threads interleave on the shared workers without blocking each other).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs body(begin, end) over chunks covering [0, n) and returns when
  /// all chunks have finished. `grain` > 0 fixes the chunking to
  /// [i*grain, min((i+1)*grain, n)) — callers that derive per-chunk state
  /// from the chunk index (e.g. RNG shards) rely on this; `grain` == 0
  /// lets the pool pick a chunking (an implementation detail that must not
  /// affect results). The calling thread participates in chunk execution,
  /// so nested ParallelFor calls from inside a body cannot deadlock. `body`
  /// must tolerate concurrent invocation on distinct chunks and must not
  /// throw.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// max(1, std::thread::hardware_concurrency()) — the conventional pool
  /// size for compute-bound work.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Serial-tolerant entry point used throughout the library: with a pool it
/// forwards to pool->ParallelFor; with nullptr it runs the same chunk
/// sequence inline in index order. Either way the chunk boundaries (for
/// grain > 0) are identical, so sharded computations are bit-identical
/// with and without a pool.
void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace privelet::common

#endif  // PRIVELET_COMMON_THREAD_POOL_H_
