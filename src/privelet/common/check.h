// Invariant-checking macros. PRIVELET_CHECK fires in all build types and is
// reserved for programming errors (API misuse that cannot be reported via
// Status); PRIVELET_DCHECK compiles out of release builds.
#ifndef PRIVELET_COMMON_CHECK_H_
#define PRIVELET_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace privelet::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "PRIVELET_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace privelet::internal

#define PRIVELET_CHECK(cond, ...)                              \
  do {                                                         \
    if (!(cond)) {                                             \
      ::privelet::internal::CheckFailed(__FILE__, __LINE__,    \
                                        #cond, ::std::string(__VA_ARGS__)); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define PRIVELET_DCHECK(cond, ...) \
  do {                             \
    (void)sizeof(cond);            \
  } while (0)
#else
#define PRIVELET_DCHECK(cond, ...) PRIVELET_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // PRIVELET_COMMON_CHECK_H_
